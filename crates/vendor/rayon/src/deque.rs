//! A fixed-capacity Chase–Lev work-stealing deque.
//!
//! The owner pushes and pops at the *bottom* (LIFO, newest-first — keeps
//! nested work hot in cache); thieves steal from the *top* (FIFO,
//! oldest-first — steals the largest remaining chunks of older fan-outs).
//! This is the classic algorithm from "Dynamic Circular Work-Stealing
//! Deque" (Chase & Lev, SPAA'05) with the memory orderings of
//! crossbeam-deque, minus the growable buffer: the ring has a fixed
//! power-of-two capacity and `push` reports overflow instead of resizing,
//! so no reclamation scheme is needed (the registry overflows to its
//! injector queue, which is rare — a deque holds at most
//! `nesting-depth × num-threads` jobs at once).
//!
//! Why a stale slot can never be stolen: `top` is a monotonically
//! increasing counter CAS'd by every successful steal (and by the owner's
//! pop of the final element), so the ABA hazard would require `top` to
//! revisit an old value — impossible. A push can only overwrite the slot a
//! pending thief has read if `bottom - top >= capacity`, which the
//! overflow check refuses; any interleaving that frees the slot first
//! advances `top`, making the thief's CAS fail.

use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

use crate::job::{JobHeader, JobRef};

/// Ring capacity (power of two). Each queued entry is one pointer.
const CAPACITY: usize = 256;
const MASK: usize = CAPACITY - 1;

/// One worker's deque. Exactly one thread may call [`Deque::push`] /
/// [`Deque::pop`] (the owner); any thread may call [`Deque::steal`].
pub(crate) struct Deque {
    /// Steal end: index of the oldest element. Only ever incremented.
    top: AtomicIsize,
    /// Owner end: index one past the newest element.
    bottom: AtomicIsize,
    slots: Box<[AtomicPtr<JobHeader>]>,
}

impl Deque {
    pub(crate) fn new() -> Self {
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: (0..CAPACITY)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    /// Owner-only: queue a job at the bottom. Returns the job back on
    /// overflow so the caller can route it to the injector instead.
    pub(crate) fn push(&self, job: JobRef) -> Result<(), JobRef> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) >= CAPACITY as isize {
            return Err(job);
        }
        self.slots[b as usize & MASK].store(job.0, Ordering::Relaxed);
        // Publish the slot (and the job's contents, written before this
        // call) to thieves that acquire-load `bottom`.
        self.bottom.store(b.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Owner-only: take the newest job (LIFO).
    pub(crate) fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        self.bottom.store(b, Ordering::Relaxed);
        // Order the speculative bottom decrement before reading top, so a
        // concurrent thief sees either the decrement or our CAS below.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Deque was empty; restore.
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return None;
        }
        let job = self.slots[b as usize & MASK].load(Ordering::Relaxed);
        if t == b {
            // Last element: race the thieves for it via `top`.
            let won = self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return won.then_some(JobRef(job));
        }
        Some(JobRef(job))
    }

    /// Any thread: take the oldest job (FIFO). Retries internally on CAS
    /// races (another thief winning is global progress), returns `None`
    /// only when the deque is observed empty.
    pub(crate) fn steal(&self) -> Option<JobRef> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            let job = self.slots[t as usize & MASK].load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(JobRef(job));
            }
        }
    }

    /// Racy emptiness probe (used for sleep/wake heuristics only — never
    /// for correctness decisions).
    pub(crate) fn is_empty(&self) -> bool {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        b <= t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobHeader;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A test job that bumps a per-slot execution counter.
    #[repr(C)]
    struct CountJob {
        header: JobHeader,
        hits: Arc<Vec<AtomicUsize>>,
        id: usize,
    }

    unsafe fn count_exec(job: *mut JobHeader) {
        let job = Box::from_raw(job as *mut CountJob);
        job.hits[job.id].fetch_add(1, Ordering::Relaxed);
    }

    fn count_job(hits: &Arc<Vec<AtomicUsize>>, id: usize) -> JobRef {
        JobRef(Box::into_raw(Box::new(CountJob {
            header: JobHeader { exec: count_exec },
            hits: Arc::clone(hits),
            id,
        })) as *mut JobHeader)
    }

    #[test]
    fn lifo_pop_fifo_steal() {
        let hits: Arc<Vec<AtomicUsize>> = Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect());
        let d = Deque::new();
        for id in 0..3 {
            d.push(count_job(&hits, id)).unwrap();
        }
        // Thief takes the oldest, owner the newest.
        unsafe { d.steal().unwrap().execute() };
        unsafe { d.pop().unwrap().execute() };
        unsafe { d.pop().unwrap().execute() };
        assert!(d.pop().is_none());
        assert!(d.steal().is_none());
        for h in hits.iter() {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn overflow_reports_the_job_back() {
        let hits: Arc<Vec<AtomicUsize>> =
            Arc::new((0..CAPACITY + 1).map(|_| AtomicUsize::new(0)).collect());
        let d = Deque::new();
        for id in 0..CAPACITY {
            d.push(count_job(&hits, id)).unwrap();
        }
        let overflow = count_job(&hits, CAPACITY);
        let rejected = d.push(overflow).unwrap_err();
        unsafe { rejected.execute() };
        while let Some(j) = d.pop() {
            unsafe { j.execute() };
        }
        for h in hits.iter() {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    /// Owner pushes/pops while three thieves hammer `steal`: every job must
    /// execute exactly once — the each-exactly-once invariant is the whole
    /// point of the CAS discipline.
    #[test]
    fn stress_each_job_runs_exactly_once() {
        const JOBS: usize = 20_000;
        let hits: Arc<Vec<AtomicUsize>> =
            Arc::new((0..JOBS).map(|_| AtomicUsize::new(0)).collect());
        let d = Arc::new(Deque::new());
        let done = Arc::new(AtomicUsize::new(0));

        std::thread::scope(|s| {
            for _ in 0..3 {
                let d = Arc::clone(&d);
                let done = Arc::clone(&done);
                s.spawn(move || loop {
                    if let Some(j) = d.steal() {
                        unsafe { j.execute() };
                        done.fetch_add(1, Ordering::Release);
                    } else if d.is_empty() && done.load(Ordering::Acquire) >= JOBS {
                        break;
                    } else {
                        std::hint::spin_loop();
                    }
                });
            }
            // Owner: push in bursts, pop roughly half back.
            let mut next = 0usize;
            while next < JOBS {
                for _ in 0..7 {
                    if next >= JOBS {
                        break;
                    }
                    if let Err(j) = d.push(count_job(&hits, next)) {
                        // Ring full: run it inline, like the injector would.
                        unsafe { j.execute() };
                        done.fetch_add(1, Ordering::Release);
                    }
                    next += 1;
                }
                for _ in 0..3 {
                    if let Some(j) = d.pop() {
                        unsafe { j.execute() };
                        done.fetch_add(1, Ordering::Release);
                    }
                }
            }
            // Drain what's left so the thieves can terminate.
            while let Some(j) = d.pop() {
                unsafe { j.execute() };
                done.fetch_add(1, Ordering::Release);
            }
        });

        for (id, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "job {id} ran a wrong number of times"
            );
        }
    }
}
