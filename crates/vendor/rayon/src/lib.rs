//! Offline shim for `rayon`: the parallel-iterator surface this workspace
//! uses (`par_iter` / `into_par_iter`, `map`, `filter_map`, `enumerate`,
//! `for_each`, `collect`), executed on a **persistent work-stealing pool**.
//!
//! A lazily-started global registry (`RAYON_NUM_THREADS`, else the
//! machine's available parallelism) owns one worker thread per slot; each
//! worker has a lock-free Chase–Lev deque and steals from random victims
//! when its own runs dry. Fan-outs claim item indices from a shared atomic
//! cursor in chunks, the submitting thread participates in the drain, and
//! nested `par_iter` calls from inside a worker run inline on the same
//! pool — no thread spawn per call, no oversubscription. Dispatching a
//! small fan-out costs on the order of a microsecond instead of the four
//! `thread::spawn`s the previous scoped-threads shim paid (see
//! `BENCH_pool.json` for the measured before/after on this surface).
//!
//! Semantics kept from rayon proper:
//! - combinators preserve input order regardless of stealing;
//! - a panicking closure poisons nothing — the first panic payload is
//!   rethrown at the caller and the workers stay alive for later calls;
//! - [`scope`] / [`join`] allow borrowed-data fan-outs;
//! - [`ThreadPool::install`] routes the enclosed calls to an explicit
//!   pool (handy for forcing a worker count in tests on any machine).
//!
//! Deliberately out of scope (the workspace doesn't use them): lazy
//! adaptor fusion, `ParallelExtend`, splitter-based producers, custom
//! spawn handlers.

mod batch;
mod deque;
mod job;
mod registry;
mod scope;

pub use scope::{join, scope, Scope};

/// Number of workers a fan-out from the calling context would use: the
/// enclosing [`ThreadPool::install`]'s size, else the current worker's
/// pool, else the global pool (starting it if needed).
///
/// Callers shard work with this (e.g. campaign sharding, portfolio
/// sizing); it is also the honest observable for the global pool's size —
/// `RAYON_NUM_THREADS` or the detected parallelism, never a silent 1.
pub fn current_num_threads() -> usize {
    batch::effective_threads()
}

/// An eagerly evaluated parallel pipeline over an owned batch of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item in parallel (input order preserved).
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: batch::par_map_vec(self.items, f),
        }
    }

    /// Applies `f` in parallel and keeps the `Some` results (input order).
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: batch::par_map_vec(self.items, f)
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Collects the (already computed) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Runs `f` over every item in parallel, discarding results (rayon's
    /// `for_each`). Used with owned `&mut` chunk items for in-place
    /// parallel writes.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        batch::par_for_each_vec(self.items, f);
    }
}

/// Conversion of an owned collection into a parallel pipeline.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Consumes `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Borrowing counterpart of [`IntoParallelIterator`] (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send;

    /// A parallel pipeline over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// An explicitly sized pool with its own workers, independent of the
/// global registry. Workers shut down (and are joined) on drop.
///
/// Main use here: [`ThreadPool::install`] forces fan-outs inside the
/// closure onto this pool, which lets tests exercise real multi-worker
/// scheduling on machines where the global pool would be size 1.
pub struct ThreadPool {
    registry: std::sync::Arc<registry::Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Builds a pool with exactly `num_threads` workers (min 1).
    pub fn new(num_threads: usize) -> ThreadPool {
        let (registry, handles) = registry::Registry::start(num_threads.max(1));
        ThreadPool { registry, handles }
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Runs `op` with all parallel calls made by this thread inside it
    /// routed to this pool (restored on return, panic-safe).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _guard = registry::InstallGuard::new(&self.registry);
        op()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // Workers exit on their first empty scan after shutdown, which can
        // strand a stale batch runner in a queue; run the leftovers (cheap
        // no-ops by then) so their allocations are released, not leaked.
        self.registry.drain_queues();
    }
}

/// Builder for [`ThreadPool`] (rayon-compatible spelling).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Starts a builder with defaults (size = the global default).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = use the global default sizing).
    pub fn num_threads(mut self, num_threads: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(num_threads);
        self
    }

    /// Builds the pool. Infallible here; `Result` keeps rayon's signature.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        let n = match self.num_threads {
            Some(n) if n > 0 => n,
            _ => registry::default_num_threads(),
        };
        Ok(ThreadPool::new(n))
    }
}

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order() {
        let out: Vec<usize> = (0..100)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        assert_eq!(out, (0..100).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 50);
        assert_eq!(lens[9], 1);
        assert_eq!(lens[10], 2);
    }

    #[test]
    fn enumerate_matches_sequential() {
        let v = vec!["a", "bb", "ccc"];
        let out: Vec<(usize, usize)> = v
            .par_iter()
            .enumerate()
            .map(|(i, s)| (i, s.len()))
            .collect();
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn actually_runs_concurrently() {
        // Forced onto a 2-worker pool so this holds on 1-core machines too:
        // two 50 ms sleeps must overlap.
        let pool = ThreadPool::new(2);
        pool.install(|| {
            let start = std::time::Instant::now();
            let _: Vec<()> = (0..2)
                .into_par_iter()
                .map(|_| std::thread::sleep(std::time::Duration::from_millis(50)))
                .collect();
            assert!(start.elapsed() < std::time::Duration::from_millis(95));
        });
    }

    /// Order must survive adversarial stealing: item costs are wildly
    /// uneven (front-loaded), so chunks complete far out of order.
    #[test]
    fn order_preserved_under_uneven_costs() {
        let pool = ThreadPool::new(4);
        let out: Vec<usize> = pool.install(|| {
            (0..500)
                .into_par_iter()
                .map(|i| {
                    if i % 97 == 0 {
                        // Spin to force real imbalance (not sleep: keep
                        // workers busy so stealing actually happens).
                        let mut x = i as u64;
                        for _ in 0..200_000 {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        }
                        std::hint::black_box(x);
                    }
                    i * 3
                })
                .collect()
        });
        assert_eq!(out, (0..500).map(|i| i * 3).collect::<Vec<_>>());
    }

    /// Nested `par_iter` from inside a worker must run inline on the same
    /// pool (no deadlock, no second pool) and still preserve order.
    #[test]
    fn nested_par_iter_inside_worker() {
        let pool = ThreadPool::new(3);
        let out: Vec<Vec<usize>> = pool.install(|| {
            (0..20)
                .into_par_iter()
                .map(|i| (0..30).into_par_iter().map(|j| i * 100 + j).collect())
                .collect()
        });
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &(0..30).map(|j| i * 100 + j).collect::<Vec<_>>());
        }
    }

    /// `scope` tasks may borrow stack data and all finish before return.
    #[test]
    fn scope_borrows_stack_data() {
        let pool = ThreadPool::new(3);
        pool.install(|| {
            let counters: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(0)).collect();
            scope(|s| {
                for c in &counters {
                    s.spawn(move |_| {
                        c.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            for c in &counters {
                assert_eq!(c.load(Ordering::Relaxed), 1);
            }
        });
    }

    /// `scope` tasks can spawn further tasks; all complete before return.
    #[test]
    fn scope_spawns_nested_tasks() {
        let pool = ThreadPool::new(2);
        pool.install(|| {
            let hits = AtomicUsize::new(0);
            scope(|s| {
                for _ in 0..8 {
                    let hits = &hits;
                    s.spawn(move |inner| {
                        hits.fetch_add(1, Ordering::Relaxed);
                        inner.spawn(move |_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            });
            assert_eq!(hits.load(Ordering::Relaxed), 16);
        });
    }

    #[test]
    fn join_runs_both_and_returns_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.install(|| join(|| 6 * 7, || "ok".to_string()));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    /// A panicking item must rethrow at the caller — and the pool must
    /// stay fully usable afterwards (workers not wedged, no poisoning).
    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        pool.install(|| {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _: Vec<usize> = (0..200)
                    .into_par_iter()
                    .map(|i| {
                        if i == 137 {
                            panic!("poisoned item");
                        }
                        i
                    })
                    .collect();
            }));
            let payload = caught.expect_err("panic must propagate to the caller");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("<non-str payload>");
            assert!(msg.contains("poisoned item"));

            // Same pool, fresh fan-out: must complete normally.
            let out: Vec<usize> = (0..300).into_par_iter().map(|i| i + 1).collect();
            assert_eq!(out, (1..=300).collect::<Vec<_>>());
        });
    }

    /// Drop correctness around panics: produced results are dropped, the
    /// never-computed ones aren't double-dropped (checked via a counter).
    #[test]
    fn panic_path_drops_results_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct CountDrop(#[allow(dead_code)] usize);
        impl Drop for CountDrop {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }

        let pool = ThreadPool::new(2);
        pool.install(|| {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _: Vec<CountDrop> = (0..100)
                    .into_par_iter()
                    .map(|i| {
                        if i == 50 {
                            panic!("boom");
                        }
                        CountDrop(i)
                    })
                    .collect();
            }));
            assert!(caught.is_err());
        });
        // 99 successful items produced a CountDrop each; every one must be
        // dropped exactly once on the unwind path.
        assert_eq!(DROPS.load(Ordering::Relaxed), 99);
    }

    /// `install` must route nested calls even across pools: a worker of
    /// pool A installing pool B sends its fan-outs to B.
    #[test]
    fn install_overrides_inside_worker() {
        let outer = ThreadPool::new(2);
        let inner = ThreadPool::new(3);
        let counts: Vec<usize> = outer.install(|| {
            (0..4)
                .into_par_iter()
                .map(|_| inner.install(current_num_threads))
                .collect()
        });
        assert_eq!(counts, vec![3, 3, 3, 3]);
        assert_eq!(outer.install(current_num_threads), 2);
    }

    #[test]
    fn builder_builds_requested_size() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        assert_eq!(pool.current_num_threads(), 5);
    }

    /// Regression (REVIEW): the scope/join completion latches are heap-
    /// allocated and reference-counted, so a finishing worker can still
    /// lock/notify them after the caller observed completion and
    /// returned. Hammer tiny scopes and joins — the racy window is the
    /// gap between the finisher's counter update and its notify — so a
    /// use-after-free in that teardown would crash (or trip ASan) here.
    #[test]
    fn scope_and_join_latch_teardown_stress() {
        let pool = ThreadPool::new(4);
        pool.install(|| {
            for i in 0..2000usize {
                let hit = AtomicUsize::new(0);
                scope(|s| {
                    s.spawn(|_| {
                        hit.fetch_add(1, Ordering::Relaxed);
                    });
                });
                assert_eq!(hit.load(Ordering::Relaxed), 1);
                let (a, b) = join(|| i, || i + 1);
                assert_eq!((a, b), (i, i + 1));
            }
        });
    }

    /// Same teardown stress from an *external* caller (parks on the latch
    /// condvar instead of work-stealing): the global pool's workers finish
    /// the tasks while the caller races them to return.
    #[test]
    fn scope_and_join_latch_teardown_stress_external_caller() {
        for i in 0..500usize {
            let hit = AtomicUsize::new(0);
            scope(|s| {
                s.spawn(|_| {
                    hit.fetch_add(1, Ordering::Relaxed);
                });
            });
            assert_eq!(hit.load(Ordering::Relaxed), 1);
            let (a, b) = join(|| i * 2, || i * 2 + 1);
            assert_eq!((a, b), (i * 2, i * 2 + 1));
        }
    }

    /// Idle workers park untimed; a fan-out after a quiet stretch must
    /// still wake them through the sleep/wake handshake (this would hang,
    /// not just slow down, if a wakeup could be missed).
    #[test]
    fn fanout_after_idle_period_completes() {
        let pool = ThreadPool::new(3);
        for round in 0..3 {
            std::thread::sleep(std::time::Duration::from_millis(40));
            pool.install(|| {
                let start = std::time::Instant::now();
                let _: Vec<()> = (0..2)
                    .into_par_iter()
                    .map(|_| std::thread::sleep(std::time::Duration::from_millis(20)))
                    .collect();
                // Two 20 ms sleeps overlapping proves a second worker woke.
                assert!(
                    start.elapsed() < std::time::Duration::from_millis(39),
                    "round {round}: parked workers did not wake for new work"
                );
            });
        }
    }

    /// Explicit pools are torn down on drop: workers exit and join.
    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = ThreadPool::new(3);
        let out: Vec<usize> = pool.install(|| (0..64).into_par_iter().map(|i| i).collect());
        assert_eq!(out.len(), 64);
        drop(pool); // must not hang
    }
}
