//! Offline shim for `rayon`: the parallel-iterator surface this workspace
//! uses (`par_iter` / `into_par_iter`, `map`, `filter_map`, `enumerate`,
//! `collect`), executed eagerly on scoped OS threads.
//!
//! Unlike rayon's lazy, work-stealing iterators, each combinator here runs
//! its closure over all items immediately, fanning out over
//! `std::thread::available_parallelism()` workers that pull indices from a
//! shared atomic queue (so uneven per-item costs still balance). Results
//! always preserve input order. This trades rayon's generality for ~200
//! lines with zero dependencies; the call sites are source-compatible.

use std::sync::Mutex;

/// An eagerly evaluated parallel pipeline over an owned batch of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Runs `f` over `items` on a scoped thread pool; returns results in input
/// order. Falls back to inline execution for tiny batches.
fn par_map_vec<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Workers pull (index, item) pairs from a shared queue and tag results
    // with the index so order can be restored after the join.
    let queue = Mutex::new(items.into_iter().enumerate());
    let f = &f;
    let queue = &queue;
    let mut tagged: Vec<(usize, U)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, U)> = Vec::new();
                    loop {
                        let job = queue.lock().unwrap().next();
                        let Some((i, item)) = job else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("worker thread panicked"));
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, u)| u).collect()
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item in parallel.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// Applies `f` in parallel and keeps the `Some` results (input order).
    pub fn filter_map<U: Send, F: Fn(T) -> Option<U> + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: par_map_vec(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Collects the (already computed) results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Runs `f` over every item in parallel, discarding results (rayon's
    /// `for_each`). Used with owned `&mut` chunk items for in-place
    /// parallel writes.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        let _: Vec<()> = par_map_vec(self.items, f);
    }
}

/// Conversion of an owned collection into a parallel pipeline.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Consumes `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Borrowing counterpart of [`IntoParallelIterator`] (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send;

    /// A parallel pipeline over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order() {
        let out: Vec<usize> = (0..100)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        assert_eq!(out, (0..100).filter(|i| i % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 50);
        assert_eq!(lens[9], 1);
        assert_eq!(lens[10], 2);
    }

    #[test]
    fn enumerate_matches_sequential() {
        let v = vec!["a", "bb", "ccc"];
        let out: Vec<(usize, usize)> = v
            .par_iter()
            .enumerate()
            .map(|(i, s)| (i, s.len()))
            .collect();
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn actually_runs_concurrently() {
        // With >= 2 workers, two tasks sleeping 50 ms should finish well
        // under the 100 ms sequential time. Skip on single-core machines.
        if std::thread::available_parallelism().map_or(1, |p| p.get()) < 2 {
            return;
        }
        let start = std::time::Instant::now();
        let _: Vec<()> = (0..2)
            .into_par_iter()
            .map(|_| std::thread::sleep(std::time::Duration::from_millis(50)))
            .collect();
        assert!(start.elapsed() < std::time::Duration::from_millis(95));
    }
}
