//! Type-erased job pointers and the shared panic slot.
//!
//! Every unit of schedulable work is a concrete struct whose **first**
//! field is a [`JobHeader`] (`#[repr(C)]`), so a thin `*mut JobHeader` can
//! be queued in the lock-free deques and later dispatched through the
//! header's `exec` function, which casts back to the concrete type. This
//! avoids fat pointers (the deque slots are single `AtomicPtr`s) and any
//! trait-object lifetime bounds: jobs that borrow caller stack frames are
//! sound because their owners block until the job has run (see the module
//! docs of `batch` and `scope` for the two ownership regimes).

use std::any::Any;
use std::sync::Mutex;

/// Dispatch header embedded at offset 0 of every concrete job type.
#[repr(C)]
pub(crate) struct JobHeader {
    /// Casts the pointer back to the concrete job and executes it. Must be
    /// called exactly once per queued pointer, and must not unwind (each
    /// implementation catches its closure's panic and records it).
    pub(crate) exec: unsafe fn(*mut JobHeader),
}

/// A queued job pointer. Raw pointers are not `Send`, but a job pointer is
/// only ever dereferenced by the single thread that dequeued it, and the
/// pointee is kept alive until `exec` has run (batch and join state is
/// reference-counted, scope jobs are owned boxes backed by a
/// reference-counted latch).
#[derive(Clone, Copy, Debug)]
pub(crate) struct JobRef(pub(crate) *mut JobHeader);

// SAFETY: see the type docs — ownership is transferred through the queue,
// never shared; the queue itself synchronises the handoff.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job. Caller must be the unique dequeuer of this pointer.
    pub(crate) unsafe fn execute(self) {
        ((*self.0).exec)(self.0)
    }
}

/// First-panic-wins slot shared by one batch or scope: concurrent item
/// panics race, exactly one payload is kept and later rethrown at the
/// caller (rayon semantics), the rest are dropped.
pub(crate) struct PanicSlot {
    slot: Mutex<Option<Box<dyn Any + Send>>>,
}

impl PanicSlot {
    pub(crate) fn new() -> Self {
        PanicSlot {
            slot: Mutex::new(None),
        }
    }

    /// Records a payload unless one is already held.
    pub(crate) fn record(&self, payload: Box<dyn Any + Send>) {
        let mut guard = self.slot.lock().unwrap();
        guard.get_or_insert(payload);
    }

    /// Takes the recorded payload, if any.
    pub(crate) fn take(&self) -> Option<Box<dyn Any + Send>> {
        self.slot.lock().unwrap().take()
    }
}
