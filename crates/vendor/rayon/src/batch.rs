//! Flat index fan-outs over the pool: the engine behind every `ParIter`
//! combinator.
//!
//! A fan-out of `n` items shares one heap-allocated [`BatchShared`]: a
//! lock-free claim cursor (items are claimed in chunks with a single
//! `fetch_add` — the old shim's contended `Mutex<iter>` queue, replaced),
//! a completed-items latch, and a first-panic slot. The caller queues up
//! to `num_threads` small *runner* jobs (each loops claiming chunks until
//! the cursor is exhausted) and then **participates itself**, draining the
//! same cursor — so a fan-out submitted from inside a worker runs inline
//! on the pool with zero new OS threads, and a small batch often finishes
//! entirely in the caller before any worker wakes (this is where the
//! ~μs dispatch latency comes from; see `BENCH_pool.json`).
//!
//! The caller returns as soon as the *items* are done — not the runner
//! jobs. A runner that wakes late finds the cursor exhausted, drops its
//! reference and exits; the last reference frees the batch. That is why
//! the batch state is reference-counted rather than borrowed: stale
//! runners may outlive the caller's stack frame, but they only ever touch
//! the cursor and the refcount, never the (dead) closure — an item index
//! below `n` can only be claimed while the caller is still blocked.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::job::{JobHeader, JobRef, PanicSlot};
use crate::registry::{self, current_worker_of, execute_job, Registry, LATCH_PARK};

/// Shared state of one fan-out. `F: Fn(usize)` executes one item.
struct BatchShared<F> {
    /// Next unclaimed item index (claimed in `chunk`-sized strides).
    cursor: AtomicUsize,
    /// Completed (executed or panicked) item count; the caller's latch.
    done: AtomicUsize,
    n: usize,
    chunk: usize,
    /// Live references: one per queued runner job plus the caller.
    refs: AtomicUsize,
    func: F,
    panic: PanicSlot,
    mutex: Mutex<()>,
    cond: Condvar,
}

/// A queued runner for one batch (boxed; freed by whoever executes it).
#[repr(C)]
struct RunnerJob<F> {
    header: JobHeader,
    state: *const BatchShared<F>,
}

unsafe fn runner_exec<F: Fn(usize)>(job: *mut JobHeader) {
    let job = Box::from_raw(job as *mut RunnerJob<F>);
    drain(&*job.state);
    release(job.state);
}

/// Claims and executes chunks until the cursor is exhausted. Item panics
/// are recorded (first wins) and draining *continues*: a poisoned item
/// neither wedges the workers nor strands unclaimed items.
fn drain<F: Fn(usize)>(state: &BatchShared<F>) {
    loop {
        let start = state.cursor.fetch_add(state.chunk, Ordering::Relaxed);
        if start >= state.n {
            return;
        }
        let end = (start + state.chunk).min(state.n);
        for i in start..end {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (state.func)(i))) {
                state.panic.record(payload);
            }
        }
        finish_items(state, end - start);
    }
}

/// Credits `count` completed items; the final credit wakes the caller.
fn finish_items<F>(state: &BatchShared<F>, count: usize) {
    // Release pairs with the caller's Acquire load: item results (e.g.
    // writes into the output buffer) happen-before the caller observes
    // completion.
    let previous = state.done.fetch_add(count, Ordering::Release);
    if previous + count == state.n {
        // Notify under the mutex so a caller that checked `done` under the
        // same mutex cannot miss the wakeup.
        let _guard = state.mutex.lock().unwrap();
        state.cond.notify_all();
    }
}

unsafe fn release<F>(state: *const BatchShared<F>) {
    if (*state).refs.fetch_sub(1, Ordering::AcqRel) == 1 {
        drop(Box::from_raw(state as *mut BatchShared<F>));
    }
}

/// Chunk stride: coarse enough that a trivial-item fan-out is not bound on
/// cursor `fetch_add` traffic, fine enough that uneven item costs still
/// balance across workers (≥ ~16 claims per worker).
fn chunk_for(n: usize, threads: usize) -> usize {
    (n / (threads * 16)).clamp(1, 1024)
}

/// Runs `func(0..n)` across the current registry's workers, blocking until
/// every item completed and rethrowing the first item panic. The caller
/// participates; nested calls from worker threads stay on the pool.
///
/// Precondition: `n >= 2` and the registry has ≥ 2 workers (single-thread
/// and single-item cases take the plain sequential path in the callers —
/// that keeps panic propagation natural and skips all allocation).
pub(crate) fn par_execute<F: Fn(usize) + Sync>(registry: &Registry, n: usize, func: F) {
    debug_assert!(n >= 2 && registry.num_threads() >= 2);
    let threads = registry.num_threads();
    let chunk = chunk_for(n, threads);
    // No point queueing more runners than there are claimable chunks
    // (minus the caller's own share) or workers.
    let runners = threads.min(n.div_ceil(chunk)).max(1);

    let state = Box::into_raw(Box::new(BatchShared {
        cursor: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        n,
        chunk,
        refs: AtomicUsize::new(runners + 1),
        func,
        panic: PanicSlot::new(),
        mutex: Mutex::new(()),
        cond: Condvar::new(),
    }));

    for _ in 0..runners {
        let job = Box::into_raw(Box::new(RunnerJob::<F> {
            header: JobHeader {
                exec: runner_exec::<F>,
            },
            state,
        }));
        registry.submit(JobRef(job as *mut JobHeader));
    }
    registry.notify(runners);

    // SAFETY: `state` stays alive until the last `release`; the caller
    // holds one of the references counted above.
    unsafe {
        drain(&*state);
        wait_done(registry, &*state);
        let panic = (*state).panic.take();
        release(state);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

/// Blocks until all items completed. A worker caller keeps executing other
/// queued jobs while it waits (work-stealing wait — this is what lets
/// nested fan-outs make progress without extra threads); an external
/// caller parks on the batch condvar.
fn wait_done<F>(registry: &Registry, state: &BatchShared<F>) {
    if state.done.load(Ordering::Acquire) >= state.n {
        return;
    }
    match current_worker_of(registry) {
        Some(index) => loop {
            if state.done.load(Ordering::Acquire) >= state.n {
                return;
            }
            if let Some(job) = registry.find_work(Some(index)) {
                execute_job(job);
            } else {
                let guard = state.mutex.lock().unwrap();
                if state.done.load(Ordering::Acquire) >= state.n {
                    return;
                }
                // Timed: stealable work can appear without this batch's
                // condvar being notified.
                let _ = state.cond.wait_timeout(guard, LATCH_PARK).unwrap();
            }
        },
        None => {
            let mut guard = state.mutex.lock().unwrap();
            while state.done.load(Ordering::Acquire) < state.n {
                // Untimed is sound (completion notifies under this mutex),
                // but stay timed for uniform robustness.
                guard = state.cond.wait_timeout(guard, LATCH_PARK).unwrap().0;
            }
        }
    }
}

/// Raw-pointer capture that asserts cross-thread use is safe (each item
/// index touches a disjoint element).
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `SendPtr` — a bare `.0` would make Rust 2021's disjoint capture
    /// grab the non-`Sync` raw pointer field itself.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// The number of workers fan-outs from this thread would use. Computed
/// without starting the global pool (sizing is deterministic), so callers
/// probing for a sequential fallback don't fork a worker fleet.
pub(crate) fn effective_threads() -> usize {
    registry::current_size()
}

/// Parallel `map` over an owned batch, preserving input order. Falls back
/// to plain sequential iteration for trivial sizes or a 1-thread pool.
pub(crate) fn par_map_vec<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    let n = items.len();
    if n <= 1 || effective_threads() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let mut items = items;
    let mut out: Vec<std::mem::MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit needs no initialisation; length set so the
    // parallel writers can address all n slots.
    unsafe { out.set_len(n) };
    let written: Vec<std::sync::atomic::AtomicBool> = (0..n)
        .map(|_| std::sync::atomic::AtomicBool::new(false))
        .collect();

    let src = SendPtr(items.as_mut_ptr());
    let dst = SendPtr(out.as_mut_ptr());
    let written_ref = &written;
    let f_ref = &f;
    let result = catch_unwind(AssertUnwindSafe(|| {
        registry::with_current(|registry| {
            par_execute(registry, n, |i| {
                // SAFETY: index `i` is claimed exactly once across the
                // whole fan-out, so the element read and the slot write
                // are unaliased; the buffers outlive the blocking caller.
                unsafe {
                    let item = std::ptr::read(src.get().add(i));
                    (*dst.get().add(i)).write(f_ref(item));
                }
                written_ref[i].store(true, Ordering::Release);
            });
        })
    }));

    // Every index was claimed and read out of `items` (draining continues
    // past panics), so only the allocation remains to free.
    // SAFETY: elements moved out; shrink to 0 so drop frees memory only.
    unsafe { items.set_len(0) };
    drop(items);

    match result {
        Ok(()) => {
            // SAFETY: no panic ⇒ all n slots written and initialised.
            let mut out = std::mem::ManuallyDrop::new(out);
            unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut U, n, out.capacity()) }
        }
        Err(payload) => {
            // Drop the values that were produced before rethrowing; slots
            // of panicked items were never written.
            for (i, flag) in written.iter().enumerate() {
                if flag.load(Ordering::Acquire) {
                    // SAFETY: flag set ⇒ slot i initialised, dropped once.
                    unsafe { out[i].assume_init_drop() };
                }
            }
            resume_unwind(payload);
        }
    }
}

/// Parallel `for_each` over an owned batch (no result buffer).
pub(crate) fn par_for_each_vec<T: Send>(items: Vec<T>, f: impl Fn(T) + Sync) {
    let n = items.len();
    if n <= 1 || effective_threads() <= 1 {
        items.into_iter().for_each(f);
        return;
    }
    let mut items = items;
    let src = SendPtr(items.as_mut_ptr());
    let f_ref = &f;
    let result = catch_unwind(AssertUnwindSafe(|| {
        registry::with_current(|registry| {
            par_execute(registry, n, |i| {
                // SAFETY: as in `par_map_vec` — each index claimed once.
                unsafe { f_ref(std::ptr::read(src.get().add(i))) };
            });
        })
    }));
    // SAFETY: all elements moved out (see par_map_vec).
    unsafe { items.set_len(0) };
    drop(items);
    if let Err(payload) = result {
        resume_unwind(payload);
    }
}
