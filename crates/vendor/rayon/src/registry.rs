//! The persistent worker registry: N worker threads, one Chase–Lev deque
//! each, a mutex-protected overflow injector, and a sleep/wake protocol.
//!
//! The **global** registry is built lazily on first use and lives for the
//! process: its size comes from `RAYON_NUM_THREADS`, falling back to
//! [`std::thread::available_parallelism`] (a failure there is reported on
//! stderr once instead of silently degrading — and is always observable
//! through [`crate::current_num_threads`]). Explicit [`crate::ThreadPool`]s
//! own private registries that shut their workers down on drop.
//!
//! Job routing: a worker thread pushes to its own deque (cheap, lock-free,
//! keeps nested fan-outs local — this is what makes nested `par_iter`
//! calls run inline on the pool instead of spawning a second generation of
//! OS threads); any other thread appends to the injector. Idle workers
//! pop their own deque LIFO, then steal from random victims FIFO, then
//! drain the injector, then park **untimed** on a condvar. The park cannot
//! miss a job: a worker announces itself in `sleepers` and re-scans behind
//! a `SeqCst` fence, while a submitter pushes its job and reads `sleepers`
//! behind a matching `SeqCst` fence — in the total order of those fences,
//! either the submitter sees the sleeper (and notifies under the sleep
//! mutex, which the sleeper also checks under before waiting) or the
//! sleeper's re-scan sees the job. So idle workers cost zero wakeups,
//! instead of polling on a timeout.

use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use crate::deque::Deque;
use crate::job::JobRef;

/// Hard cap on worker count (a runaway `RAYON_NUM_THREADS` should not fork
/// thousands of threads; deque sizing also assumes a modest thread count).
const MAX_THREADS: usize = 128;

/// How long a blocked fan-out caller parks between work-stealing attempts.
pub(crate) const LATCH_PARK: Duration = Duration::from_millis(1);

pub(crate) struct Registry {
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<JobRef>>,
    /// Number of workers currently parked (or about to park) in
    /// [`Registry::idle_wait`].
    sleepers: AtomicUsize,
    sleep_mutex: Mutex<()>,
    sleep_cond: Condvar,
    shutdown: AtomicBool,
}

impl Registry {
    /// Builds a registry and spawns its workers. The returned handles are
    /// joined by [`crate::ThreadPool::drop`]; the global registry leaks
    /// its handles (workers live for the process).
    pub(crate) fn start(n_threads: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        let n = n_threads.clamp(1, MAX_THREADS);
        let registry = Arc::new(Registry {
            deques: (0..n).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleepers: AtomicUsize::new(0),
            sleep_mutex: Mutex::new(()),
            sleep_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..n)
            .map(|index| {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    .spawn(move || worker_main(reg, index))
                    .expect("spawning pool worker")
            })
            .collect();
        (registry, handles)
    }

    pub(crate) fn num_threads(&self) -> usize {
        self.deques.len()
    }

    /// Queues a job: own deque if the current thread is a worker of this
    /// registry, the injector otherwise (or on deque overflow). Always
    /// follow with [`Registry::notify`].
    pub(crate) fn submit(&self, job: JobRef) {
        match current_worker_of(self) {
            Some(index) => {
                if let Err(job) = self.deques[index].push(job) {
                    self.inject(job);
                }
            }
            None => self.inject(job),
        }
    }

    fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap().push_back(job);
    }

    /// Wakes parked workers after queueing `count` jobs.
    pub(crate) fn notify(&self, count: usize) {
        // Pairs with the fence in `idle_wait` (see there and the module
        // docs): a sleeper registration this load misses implies the
        // sleeper's post-fence re-scan sees the job pushed before this.
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep_mutex.lock().unwrap();
            if count == 1 {
                self.sleep_cond.notify_one();
            } else {
                self.sleep_cond.notify_all();
            }
        }
    }

    /// Finds one queued job: own deque (LIFO), random-start steal sweep
    /// (FIFO), then the injector. `own` is the caller's worker index in
    /// this registry, if it is one of its workers.
    pub(crate) fn find_work(&self, own: Option<usize>) -> Option<JobRef> {
        if let Some(index) = own {
            if let Some(job) = self.deques[index].pop() {
                return Some(job);
            }
        }
        let n = self.deques.len();
        let start = steal_start(n);
        for k in 0..n {
            let victim = (start + k) % n;
            if own == Some(victim) {
                continue;
            }
            if let Some(job) = self.deques[victim].steal() {
                return Some(job);
            }
        }
        self.injector.lock().unwrap().pop_front()
    }

    /// Racy "is anything queued" probe for the sleep protocol.
    fn has_work(&self) -> bool {
        self.deques.iter().any(|d| !d.is_empty()) || !self.injector.lock().unwrap().is_empty()
    }

    /// Parks the calling worker until notified. Untimed, yet it cannot
    /// miss a job (module docs): the increment + fence here pair with the
    /// fence + `sleepers` load in [`Registry::notify`], so a submitter
    /// either sees our registration and notifies under `sleep_mutex`
    /// (which we hold between the final re-scan and the wait — no window),
    /// or its pushed job is visible to the re-scan below and we never
    /// wait. Spurious wakeups just return to the caller's scan loop.
    fn idle_wait(&self) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if !self.has_work() && !self.shutdown.load(Ordering::Acquire) {
            let guard = self.sleep_mutex.lock().unwrap();
            if !self.has_work() && !self.shutdown.load(Ordering::Acquire) {
                let _unused = self.sleep_cond.wait(guard).unwrap();
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Initiates shutdown (explicit pools only) and wakes every worker.
    /// `shutdown` is set before taking the sleep mutex, so a worker either
    /// sees it on its pre-wait check or is parked and gets this notify.
    pub(crate) fn terminate(&self) {
        self.shutdown.store(true, Ordering::Release);
        let _guard = self.sleep_mutex.lock().unwrap();
        self.sleep_cond.notify_all();
    }

    /// Executes every job still queued. Called by `ThreadPool::drop`
    /// *after* the workers were joined (no concurrency left): a worker
    /// exits on its first empty scan after shutdown, which can strand a
    /// just-pushed stale batch runner in a deque or the injector — running
    /// it here releases its boxed job and its `BatchShared` reference
    /// instead of leaking them. Stale runners find their claim cursor
    /// exhausted and return immediately, so this terminates.
    pub(crate) fn drain_queues(&self) {
        while let Some(job) = self.find_work(None) {
            execute_job(job);
        }
    }
}

/// Worker main loop: run jobs until the registry shuts down and drains.
fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&registry), index))));
    loop {
        if let Some(job) = registry.find_work(Some(index)) {
            execute_job(job);
            continue;
        }
        if registry.shutdown.load(Ordering::Acquire) {
            break;
        }
        registry.idle_wait();
    }
    WORKER.with(|w| w.set(None));
}

/// Runs one job, catching any panic that escapes it. Job `exec` impls
/// record their closure's panic themselves, so a payload reaching this
/// catch would indicate a bug in the shim — swallowing it here still keeps
/// the worker alive for subsequent fan-outs (panic hygiene).
pub(crate) fn execute_job(job: JobRef) {
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { job.execute() }));
}

thread_local! {
    /// `(registry, index)` of the worker owning this thread, if any.
    static WORKER: std::cell::Cell<Option<(*const Registry, usize)>> =
        const { std::cell::Cell::new(None) };
    /// Registry override installed by [`crate::ThreadPool::install`].
    static INSTALLED: std::cell::Cell<*const Registry> =
        const { std::cell::Cell::new(std::ptr::null()) };
    /// Per-thread xorshift state for the steal sweep's starting victim.
    static STEAL_RNG: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Starting victim for a steal sweep: cheap per-thread xorshift so
/// concurrent thieves fan out over different victims.
fn steal_start(n: usize) -> usize {
    STEAL_RNG.with(|c| {
        let mut x = c.get();
        if x == 0 {
            // Seed from this thread's TLS cell address; any nonzero works.
            x = (c as *const std::cell::Cell<u64> as usize as u64) | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        c.set(x);
        (x as usize) % n.max(1)
    })
}

/// The calling thread's worker index in `registry`, if it is one of its
/// workers (a worker of a *different* pool is not).
pub(crate) fn current_worker_of(registry: &Registry) -> Option<usize> {
    WORKER.with(|w| match w.get() {
        Some((ptr, index)) if std::ptr::eq(ptr, registry) => Some(index),
        _ => None,
    })
}

/// Global registry (lazily started).
fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let (registry, handles) = Registry::start(global_size());
        // Global workers live for the process; nothing joins them.
        for h in handles {
            drop(h);
        }
        registry
    })
}

/// The global registry's worker count, computed (and cached — the env var
/// is read once, like upstream) **without** starting the workers. `global`
/// sizes itself from this same cache, so the answer never changes once the
/// pool does start.
fn global_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(default_num_threads)
}

/// The worker count fan-outs from the calling context would use: the
/// installed pool's, else the current worker's pool's, else the global
/// pool's — with the global pool merely *sized*, not started. Callers use
/// this for shard sizing and sequential-fallback guards, which must not
/// fork a full worker fleet just to read a number.
pub(crate) fn current_size() -> usize {
    let installed = INSTALLED.with(|c| c.get());
    if !installed.is_null() {
        // SAFETY: see `with_current`.
        return unsafe { (*installed).num_threads() };
    }
    if let Some((ptr, _)) = WORKER.with(|w| w.get()) {
        // SAFETY: see `with_current`.
        return unsafe { (*ptr).num_threads() };
    }
    global_size()
}

/// Worker count for the global registry: `RAYON_NUM_THREADS` (positive
/// integers honoured, `0` or garbage ignored), else the machine's
/// available parallelism, else 1 — loudly, not silently.
pub(crate) fn default_num_threads() -> usize {
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        match value.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n.min(MAX_THREADS),
            _ => eprintln!(
                "[rayon shim] ignoring unusable RAYON_NUM_THREADS={value:?} \
                 (want a positive integer)"
            ),
        }
    }
    match std::thread::available_parallelism() {
        Ok(p) => p.get().min(MAX_THREADS),
        Err(e) => {
            eprintln!(
                "[rayon shim] available_parallelism() failed ({e}); running \
                 with 1 worker — set RAYON_NUM_THREADS to override"
            );
            1
        }
    }
}

/// Runs `f` against the registry the calling context routes to: the
/// enclosing [`crate::ThreadPool::install`], else the worker's own pool,
/// else the global registry.
pub(crate) fn with_current<R>(f: impl FnOnce(&Registry) -> R) -> R {
    let installed = INSTALLED.with(|c| c.get());
    if !installed.is_null() {
        // SAFETY: `install` keeps the pool (and its Arc'd registry)
        // borrowed for the whole closure, so the pointer outlives this use.
        return f(unsafe { &*installed });
    }
    if let Some((ptr, _)) = WORKER.with(|w| w.get()) {
        // SAFETY: a worker's registry outlives the worker thread — the
        // worker itself holds an `Arc` until its main loop returns.
        return f(unsafe { &*ptr });
    }
    f(global())
}

/// RAII guard for [`crate::ThreadPool::install`]'s registry override.
pub(crate) struct InstallGuard {
    previous: *const Registry,
}

impl InstallGuard {
    pub(crate) fn new(registry: &Registry) -> InstallGuard {
        let previous = INSTALLED.with(|c| c.replace(registry as *const Registry));
        InstallGuard { previous }
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|c| c.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobHeader;

    #[repr(C)]
    struct FlagJob {
        header: JobHeader,
        flag: Arc<AtomicUsize>,
    }

    unsafe fn flag_exec(job: *mut JobHeader) {
        let job = Box::from_raw(job as *mut FlagJob);
        job.flag.fetch_add(1, Ordering::Relaxed);
    }

    /// Regression (REVIEW): a job still queued when the workers exit must
    /// be drained by `ThreadPool::drop`, not leaked. Simulate the stranded
    /// state directly: shut a registry down, join its workers, queue a
    /// job, and check `drain_queues` runs (and thereby frees) it.
    #[test]
    fn drain_queues_runs_jobs_stranded_by_shutdown() {
        let (registry, handles) = Registry::start(2);
        registry.terminate();
        for h in handles {
            let _ = h.join();
        }
        let ran = Arc::new(AtomicUsize::new(0));
        registry.submit(JobRef(Box::into_raw(Box::new(FlagJob {
            header: JobHeader { exec: flag_exec },
            flag: Arc::clone(&ran),
        })) as *mut JobHeader));
        registry.drain_queues();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }
}
