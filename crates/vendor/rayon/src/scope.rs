//! `scope` and `join`: structured fan-outs over borrowed data.
//!
//! [`scope`] hands the closure a [`Scope`] whose `spawn`ed tasks may
//! borrow anything outliving the `scope` call — sound because `scope`
//! blocks until every spawned task (transitively) finished, exactly like
//! rayon. [`join`] runs two closures potentially in parallel: the second
//! is queued as a *stack* job while the first runs in the caller; if no
//! worker stole it meanwhile, the caller pops it back and runs it inline
//! (LIFO pop makes this the common case), so an un-stolen `join` costs two
//! deque operations, not a thread handoff.
//!
//! Both primitives use work-stealing waits on worker threads: a blocked
//! caller keeps executing other queued jobs, so nested parallelism never
//! idles a worker or spawns an extra thread. Panics in spawned tasks are
//! captured and the first payload is rethrown from the owning call.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::job::{JobHeader, JobRef, PanicSlot};
use crate::registry::{self, current_worker_of, execute_job, Registry, LATCH_PARK};

/// Completion latch + panic slot shared by one scope (lives on the
/// `scope` caller's stack; all tasks finish before it unwinds).
struct ScopeShared {
    /// Spawned-but-unfinished task count.
    pending: AtomicUsize,
    panic: PanicSlot,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl ScopeShared {
    fn task_finished(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.mutex.lock().unwrap();
            self.cond.notify_all();
        }
    }
}

/// Spawn handle passed to the [`scope`] closure. The `'scope` lifetime
/// ties every spawned closure's borrows to data outliving the scope.
pub struct Scope<'scope> {
    shared: *const ScopeShared,
    registry: *const Registry,
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

// SAFETY: the raw pointers target the scope caller's stack frame and the
// current registry, both of which outlive every spawned task (the scope
// blocks until `pending == 0`). Handing `&Scope` to tasks on other
// threads only exposes `spawn`, which touches those two pointees.
unsafe impl Sync for Scope<'_> {}
unsafe impl Send for Scope<'_> {}

/// A spawned scope task: boxed closure + backlink to the scope latch.
#[repr(C)]
struct ScopeJob {
    header: JobHeader,
    shared: *const ScopeShared,
    registry: *const Registry,
    /// Erased to `'static`; really `'scope` (see module docs for why the
    /// borrow is sound).
    func: Option<Box<dyn FnOnce() + Send>>,
}

unsafe fn scope_job_exec(job: *mut JobHeader) {
    let mut job = Box::from_raw(job as *mut ScopeJob);
    let shared = &*job.shared;
    if let Some(func) = job.func.take() {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(func)) {
            shared.panic.record(payload);
        }
    }
    shared.task_finished();
}

impl<'scope> Scope<'scope> {
    /// Queues `f` to run on the pool (or on any thread blocked in this
    /// scope — whoever gets to it first). May borrow `'scope` data.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        // SAFETY: both pointees outlive the scope (module docs).
        let shared = unsafe { &*self.shared };
        let registry = unsafe { &*self.registry };
        shared.pending.fetch_add(1, Ordering::AcqRel);
        let task_scope = Scope {
            shared: self.shared,
            registry: self.registry,
            marker: PhantomData,
        };
        let closure: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || f(&task_scope));
        // SAFETY: lifetime erasure to store the closure in a queue that
        // outlives `'scope`; the scope's completion latch guarantees the
        // closure runs (and is dropped) before `'scope` data goes away.
        let closure: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(closure) };
        let job = Box::into_raw(Box::new(ScopeJob {
            header: JobHeader {
                exec: scope_job_exec,
            },
            shared: self.shared,
            registry: self.registry,
            func: Some(closure),
        }));
        registry.submit(JobRef(job as *mut JobHeader));
        registry.notify(1);
    }
}

/// Creates a scope for spawning borrowed-data tasks; returns `f`'s result
/// after every spawned task (transitively) completed. The first panic of
/// `f` or any task is rethrown here.
pub fn scope<'scope, R>(f: impl FnOnce(&Scope<'scope>) -> R) -> R {
    registry::with_current(|registry| {
        let shared = ScopeShared {
            pending: AtomicUsize::new(0),
            panic: PanicSlot::new(),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        };
        let scope_handle = Scope {
            shared: &shared,
            registry,
            marker: PhantomData,
        };
        // Even if `f` itself panics, every already-spawned task must
        // finish before the stack frame (which they reference) unwinds.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope_handle)));
        wait_pending(registry, &shared);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = shared.panic.take() {
                    resume_unwind(payload);
                }
                value
            }
        }
    })
}

/// Blocks until the scope latch clears, work-stealing on worker threads.
fn wait_pending(registry: &Registry, shared: &ScopeShared) {
    if shared.pending.load(Ordering::Acquire) == 0 {
        return;
    }
    match current_worker_of(registry) {
        Some(index) => loop {
            if shared.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(job) = registry.find_work(Some(index)) {
                execute_job(job);
            } else {
                let guard = shared.mutex.lock().unwrap();
                if shared.pending.load(Ordering::Acquire) == 0 {
                    return;
                }
                let _ = shared.cond.wait_timeout(guard, LATCH_PARK).unwrap();
            }
        },
        None => {
            let mut guard = shared.mutex.lock().unwrap();
            while shared.pending.load(Ordering::Acquire) != 0 {
                guard = shared.cond.wait_timeout(guard, LATCH_PARK).unwrap().0;
            }
        }
    }
}

/// `join`'s queued second closure: lives on the `join` caller's stack
/// (never freed by the queue — the caller blocks until `done`).
#[repr(C)]
struct StackJob<F, R> {
    header: JobHeader,
    func: Mutex<Option<F>>,
    result: Mutex<Option<R>>,
    panic: PanicSlot,
    done: AtomicUsize,
    mutex: Mutex<()>,
    cond: Condvar,
}

unsafe fn stack_job_exec<F, R>(job: *mut JobHeader)
where
    F: FnOnce() -> R,
{
    let job = &*(job as *mut StackJob<F, R>);
    if let Some(func) = job.func.lock().unwrap().take() {
        match catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => *job.result.lock().unwrap() = Some(value),
            Err(payload) => job.panic.record(payload),
        }
    }
    job.done.store(1, Ordering::Release);
    let _guard = job.mutex.lock().unwrap();
    job.cond.notify_all();
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
/// Rayon semantics: if either closure panics, the first payload is
/// rethrown after both finished (a queued-but-unstarted `b` is executed by
/// the waiting caller itself, so it always runs).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    registry::with_current(|registry| {
        if registry.num_threads() <= 1 {
            let ra = a();
            return (ra, b());
        }
        let job = StackJob::<B, RB> {
            header: JobHeader {
                exec: stack_job_exec::<B, RB>,
            },
            func: Mutex::new(Some(b)),
            result: Mutex::new(None),
            panic: PanicSlot::new(),
            done: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        };
        registry.submit(JobRef(&job as *const StackJob<B, RB> as *mut JobHeader));
        registry.notify(1);

        let ra = catch_unwind(AssertUnwindSafe(a));
        // Wait for `b`: on a worker this pops our own deque first, so an
        // un-stolen `b` runs inline right here.
        wait_stack_job(registry, &job);

        let rb_panic = job.panic.take();
        match (ra, rb_panic) {
            (Ok(ra), None) => {
                let rb = job
                    .result
                    .lock()
                    .unwrap()
                    .take()
                    .expect("join closure result");
                (ra, rb)
            }
            (Err(payload), _) => resume_unwind(payload),
            (Ok(_), Some(payload)) => resume_unwind(payload),
        }
    })
}

fn wait_stack_job<F, R>(registry: &Registry, job: &StackJob<F, R>) {
    match current_worker_of(registry) {
        Some(index) => loop {
            if job.done.load(Ordering::Acquire) != 0 {
                return;
            }
            if let Some(found) = registry.find_work(Some(index)) {
                execute_job(found);
            } else {
                let guard = job.mutex.lock().unwrap();
                if job.done.load(Ordering::Acquire) != 0 {
                    return;
                }
                let _ = job.cond.wait_timeout(guard, LATCH_PARK).unwrap();
            }
        },
        None => {
            let mut guard = job.mutex.lock().unwrap();
            while job.done.load(Ordering::Acquire) == 0 {
                guard = job.cond.wait_timeout(guard, LATCH_PARK).unwrap().0;
            }
        }
    }
}
