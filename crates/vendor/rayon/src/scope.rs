//! `scope` and `join`: structured fan-outs over borrowed data.
//!
//! [`scope`] hands the closure a [`Scope`] whose `spawn`ed tasks may
//! borrow anything outliving the `scope` call — sound because `scope`
//! blocks until every spawned task (transitively) finished, exactly like
//! rayon. [`join`] runs two closures potentially in parallel: the second
//! is queued as a heap job while the first runs in the caller; if no
//! worker stole it meanwhile, the caller pops it back and runs it inline
//! (LIFO pop makes this the common case), so an un-stolen `join` costs one
//! allocation and two deque operations, not a thread handoff.
//!
//! Both primitives use work-stealing waits on worker threads: a blocked
//! caller keeps executing other queued jobs, so nested parallelism never
//! idles a worker or spawns an extra thread. Panics in spawned tasks are
//! captured and the first payload is rethrown from the owning call.
//!
//! # Latch lifetime
//!
//! The completion latches ([`ScopeShared`], [`JoinJob`]) are heap-allocated
//! and reference-counted like `batch::BatchShared`, **not** borrowed from
//! the caller's stack. This is load-bearing for soundness: a finishing
//! task decrements the pending counter (or sets `done`) and *then* locks
//! the latch mutex to notify — by which time the blocked caller may
//! already have observed completion and returned. The finisher's own
//! reference keeps the mutex and condvar alive across that notify; the
//! last reference (finisher or caller, whoever is later) frees the latch.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::job::{JobHeader, JobRef, PanicSlot};
use crate::registry::{self, current_worker_of, execute_job, Registry, LATCH_PARK};

/// Completion latch + panic slot shared by one scope (heap-allocated,
/// reference-counted — see the module docs on latch lifetime).
struct ScopeShared {
    /// Spawned-but-unfinished task count.
    pending: AtomicUsize,
    /// Live references: the blocked `scope` caller plus one per queued
    /// task whose `exec` has not yet returned.
    refs: AtomicUsize,
    panic: PanicSlot,
    mutex: Mutex<()>,
    cond: Condvar,
}

impl ScopeShared {
    fn task_finished(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // The caller may observe `pending == 0` and return before we
            // acquire this lock; our reference keeps the latch alive.
            let _guard = self.mutex.lock().unwrap();
            self.cond.notify_all();
        }
    }
}

/// Drops one reference; the last one frees the latch.
unsafe fn release_scope(shared: *const ScopeShared) {
    if (*shared).refs.fetch_sub(1, Ordering::AcqRel) == 1 {
        drop(Box::from_raw(shared as *mut ScopeShared));
    }
}

/// Spawn handle passed to the [`scope`] closure. The `'scope` lifetime
/// ties every spawned closure's borrows to data outliving the scope.
pub struct Scope<'scope> {
    shared: *const ScopeShared,
    registry: *const Registry,
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

// SAFETY: `shared` is refcounted (alive until caller and all tasks
// released it) and `registry` outlives every task it runs. Handing
// `&Scope` to tasks on other threads only exposes `spawn`, which touches
// those two pointees.
unsafe impl Sync for Scope<'_> {}
unsafe impl Send for Scope<'_> {}

/// A spawned scope task: boxed closure + backlink to the scope latch.
#[repr(C)]
struct ScopeJob {
    header: JobHeader,
    shared: *const ScopeShared,
    registry: *const Registry,
    /// Erased to `'static`; really `'scope` (see module docs for why the
    /// borrow is sound).
    func: Option<Box<dyn FnOnce() + Send>>,
}

unsafe fn scope_job_exec(job: *mut JobHeader) {
    let mut job = Box::from_raw(job as *mut ScopeJob);
    {
        let shared = &*job.shared;
        if let Some(func) = job.func.take() {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(func)) {
                shared.panic.record(payload);
            }
        }
        shared.task_finished();
    }
    release_scope(job.shared);
}

impl<'scope> Scope<'scope> {
    /// Queues `f` to run on the pool (or on any thread blocked in this
    /// scope — whoever gets to it first). May borrow `'scope` data.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        // SAFETY: both pointees are alive — the scope caller still holds
        // its latch reference, and the registry outlives the scope call.
        let shared = unsafe { &*self.shared };
        let registry = unsafe { &*self.registry };
        shared.pending.fetch_add(1, Ordering::AcqRel);
        // The queued job owns one latch reference (released after its
        // `task_finished`), so the latch outlives the job's notify even if
        // the caller returns first.
        shared.refs.fetch_add(1, Ordering::Relaxed);
        let task_scope = Scope {
            shared: self.shared,
            registry: self.registry,
            marker: PhantomData,
        };
        let closure: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || f(&task_scope));
        // SAFETY: lifetime erasure to store the closure in a queue that
        // outlives `'scope`; the scope's completion latch guarantees the
        // closure runs (and is dropped) before `'scope` data goes away.
        let closure: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(closure) };
        let job = Box::into_raw(Box::new(ScopeJob {
            header: JobHeader {
                exec: scope_job_exec,
            },
            shared: self.shared,
            registry: self.registry,
            func: Some(closure),
        }));
        registry.submit(JobRef(job as *mut JobHeader));
        registry.notify(1);
    }
}

/// Creates a scope for spawning borrowed-data tasks; returns `f`'s result
/// after every spawned task (transitively) completed. The first panic of
/// `f` or any task is rethrown here.
pub fn scope<'scope, R>(f: impl FnOnce(&Scope<'scope>) -> R) -> R {
    registry::with_current(|registry| {
        let shared = Box::into_raw(Box::new(ScopeShared {
            pending: AtomicUsize::new(0),
            refs: AtomicUsize::new(1),
            panic: PanicSlot::new(),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        }));
        let scope_handle = Scope {
            shared,
            registry,
            marker: PhantomData,
        };
        // Even if `f` itself panics, every already-spawned task must
        // finish before the scope returns (tasks borrow `'scope` data).
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope_handle)));
        // SAFETY: the caller's reference keeps `shared` alive through the
        // wait and the panic take; `release_scope` may free it after.
        let task_panic = unsafe {
            wait_pending(registry, &*shared);
            let task_panic = (*shared).panic.take();
            release_scope(shared);
            task_panic
        };
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = task_panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    })
}

/// Blocks until the scope latch clears, work-stealing on worker threads.
fn wait_pending(registry: &Registry, shared: &ScopeShared) {
    if shared.pending.load(Ordering::Acquire) == 0 {
        return;
    }
    match current_worker_of(registry) {
        Some(index) => loop {
            if shared.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(job) = registry.find_work(Some(index)) {
                execute_job(job);
            } else {
                let guard = shared.mutex.lock().unwrap();
                if shared.pending.load(Ordering::Acquire) == 0 {
                    return;
                }
                let _ = shared.cond.wait_timeout(guard, LATCH_PARK).unwrap();
            }
        },
        None => {
            let mut guard = shared.mutex.lock().unwrap();
            while shared.pending.load(Ordering::Acquire) != 0 {
                guard = shared.cond.wait_timeout(guard, LATCH_PARK).unwrap().0;
            }
        }
    }
}

/// `join`'s queued second closure + its completion latch (heap-allocated,
/// reference-counted — see the module docs on latch lifetime).
#[repr(C)]
struct JoinJob<F, R> {
    header: JobHeader,
    /// Live references: the blocked `join` caller plus the queued job.
    refs: AtomicUsize,
    func: Mutex<Option<F>>,
    result: Mutex<Option<R>>,
    panic: PanicSlot,
    done: AtomicUsize,
    mutex: Mutex<()>,
    cond: Condvar,
}

/// Drops one reference; the last one frees the job.
unsafe fn release_join<F, R>(job: *const JoinJob<F, R>) {
    if (*job).refs.fetch_sub(1, Ordering::AcqRel) == 1 {
        drop(Box::from_raw(job as *mut JoinJob<F, R>));
    }
}

unsafe fn join_job_exec<F, R>(job: *mut JobHeader)
where
    F: FnOnce() -> R,
{
    let ptr = job as *mut JoinJob<F, R>;
    {
        let job = &*ptr;
        if let Some(func) = job.func.lock().unwrap().take() {
            match catch_unwind(AssertUnwindSafe(func)) {
                Ok(value) => *job.result.lock().unwrap() = Some(value),
                Err(payload) => job.panic.record(payload),
            }
        }
        job.done.store(1, Ordering::Release);
        // The caller may observe `done` and return before we acquire this
        // lock; our reference keeps the latch alive (module docs).
        let _guard = job.mutex.lock().unwrap();
        job.cond.notify_all();
    }
    release_join(ptr);
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
/// Rayon semantics: if either closure panics, the first payload is
/// rethrown after both finished (a queued-but-unstarted `b` is executed by
/// the waiting caller itself, so it always runs).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    registry::with_current(|registry| {
        if registry.num_threads() <= 1 {
            let ra = a();
            return (ra, b());
        }
        let job = Box::into_raw(Box::new(JoinJob::<B, RB> {
            header: JobHeader {
                exec: join_job_exec::<B, RB>,
            },
            refs: AtomicUsize::new(2),
            func: Mutex::new(Some(b)),
            result: Mutex::new(None),
            panic: PanicSlot::new(),
            done: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cond: Condvar::new(),
        }));
        registry.submit(JobRef(job as *mut JobHeader));
        registry.notify(1);

        let ra = catch_unwind(AssertUnwindSafe(a));
        // SAFETY: the caller's reference keeps the job alive through the
        // wait and the result/panic extraction; `release_join` may free it.
        let (rb, rb_panic) = unsafe {
            // Wait for `b`: on a worker this pops our own deque first, so
            // an un-stolen `b` runs inline right here.
            wait_join_job(registry, &*job);
            let rb = (*job).result.lock().unwrap().take();
            let rb_panic = (*job).panic.take();
            release_join(job);
            (rb, rb_panic)
        };

        match (ra, rb_panic) {
            (Ok(ra), None) => (ra, rb.expect("join closure result")),
            (Err(payload), _) => resume_unwind(payload),
            (Ok(_), Some(payload)) => resume_unwind(payload),
        }
    })
}

fn wait_join_job<F, R>(registry: &Registry, job: &JoinJob<F, R>) {
    match current_worker_of(registry) {
        Some(index) => loop {
            if job.done.load(Ordering::Acquire) != 0 {
                return;
            }
            if let Some(found) = registry.find_work(Some(index)) {
                execute_job(found);
            } else {
                let guard = job.mutex.lock().unwrap();
                if job.done.load(Ordering::Acquire) != 0 {
                    return;
                }
                let _ = job.cond.wait_timeout(guard, LATCH_PARK).unwrap();
            }
        },
        None => {
            let mut guard = job.mutex.lock().unwrap();
            while job.done.load(Ordering::Acquire) == 0 {
                guard = job.cond.wait_timeout(guard, LATCH_PARK).unwrap().0;
            }
        }
    }
}
