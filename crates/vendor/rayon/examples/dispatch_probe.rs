//! Scratch probe: per-fan-out dispatch overhead and item throughput of the
//! shim at a fixed 4 workers (comparable across hosts and implementations;
//! the scoped-spawn "before" numbers in BENCH_pool.json were taken with the
//! old shim pinned to the same 4 workers).

use rayon::prelude::*;
use std::time::Instant;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

fn main() {
    let pool = rayon::ThreadPool::new(4);
    pool.install(run_probe);
}

fn run_probe() {
    // Warm up (first call may page in thread machinery).
    for _ in 0..50 {
        let _: Vec<()> = (0..4).into_par_iter().map(|_| ()).collect();
    }

    // Dispatch latency: empty 4-item fan-out, one item per worker.
    let reps = 2000;
    let samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let _: Vec<()> = (0..4).into_par_iter().map(|_| ()).collect();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    println!("dispatch_empty_4item_ns median {}", median(samples));

    // Small real fan-out: 64 items of ~1us spin work.
    let spin = |i: usize| -> u64 {
        let mut x = i as u64 | 1;
        for _ in 0..600 {
            x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(7);
        }
        x
    };
    let samples: Vec<f64> = (0..500)
        .map(|_| {
            let t0 = Instant::now();
            let v: Vec<u64> = (0..64).into_par_iter().map(spin).collect();
            std::hint::black_box(v);
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    println!("fanout_64x1us_ns median {}", median(samples));

    // Per-item overhead: 100k trivial items.
    let samples: Vec<f64> = (0..30)
        .map(|_| {
            let t0 = Instant::now();
            let v: Vec<u32> = (0..100_000).into_par_iter().map(|i| i as u32 ^ 7).collect();
            std::hint::black_box(v);
            t0.elapsed().as_nanos() as f64 / 1e5
        })
        .collect();
    println!("per_item_100k_ns median {}", median(samples));
}
