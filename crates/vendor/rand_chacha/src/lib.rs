//! Offline shim for `rand_chacha`: a ChaCha stream-cipher generator with 8
//! rounds. Deterministic per seed; **not** bit-compatible with the crates.io
//! implementation (see `crates/vendor/README.md`).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded from a `u64` via SplitMix64 key expansion.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream words of the current block.
    block: [u32; 16],
    /// Next unread index into `block` (16 = exhausted).
    cursor: usize,
}

const ROUNDS: usize = 8;
/// "expand 32-byte k", the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (o, i) in w.iter_mut().zip(&self.state) {
            *o = o.wrapping_add(*i);
        }
        self.block = w;
        self.cursor = 0;
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        for i in 0..4 {
            let k = splitmix64(&mut sm);
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter (12–13) and nonce (14–15) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn stream_advances_across_blocks() {
        // 16 words per block; draw enough u64s to cross several refills and
        // verify no window repeats (a stuck counter would loop the block).
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let draws: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        let first_block = &draws[0..8];
        for w in draws[8..].chunks(8) {
            assert_ne!(w, first_block);
        }
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&x));
        let n = rng.gen_range(0usize..10);
        assert!(n < 10);
    }

    #[test]
    fn mean_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
