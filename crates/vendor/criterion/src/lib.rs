//! Offline shim for `criterion`: the benchmarking surface this workspace
//! uses, measuring wall-clock time per iteration and emitting both a
//! human-readable summary and a machine-readable JSON file.
//!
//! Protocol per benchmark: a short warm-up, then `sample_size` samples; each
//! sample runs the routine enough times to cover a minimum window, and the
//! per-iteration median / mean / minimum across samples are reported. JSON
//! results go to `$CRITERION_JSON_OUT` (default
//! `target/criterion-results.json`).
//!
//! Extension beyond the real criterion API: [`Criterion::record_value`]
//! stores an arbitrary labelled metric in the same JSON output (used to pair
//! energies with runtimes in `BENCH_baseline.json`).

use std::fmt;
use std::time::{Duration, Instant};

/// Target duration of one measurement sample.
const SAMPLE_WINDOW: Duration = Duration::from_millis(10);
/// Warm-up budget before sampling starts.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// One finished measurement (or recorded metric) destined for the JSON dump.
#[derive(Debug, Clone)]
struct Record {
    name: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    /// For [`Criterion::record_value`] entries: the unit label.
    unit: Option<String>,
}

/// Top-level benchmark driver (create via `Default`, normally from
/// [`criterion_main!`]).
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
    /// Substring filter from the CLI (`cargo bench -- <filter>`); benches
    /// whose full name does not contain it are skipped.
    filter: Option<String>,
}

impl Criterion {
    /// Reads the benchmark-name filter from the command line, ignoring the
    /// flag-style arguments cargo forwards (e.g. `--bench`).
    pub fn with_cli_filter(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }
}

/// A named family of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    /// Mean ns/iter of each sample.
    sample_means: Vec<f64>,
}

impl Bencher {
    /// Measures `routine`, keeping its output alive to prevent the optimiser
    /// from deleting the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: at least one call, up to the warm-up window; estimates
        // the per-iteration cost for sample sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut est = Duration::ZERO;
        while warm_iters == 0 || warm_start.elapsed() < WARMUP_WINDOW {
            let t = Instant::now();
            std::hint::black_box(routine());
            est = t.elapsed();
            warm_iters += 1;
            if est >= WARMUP_WINDOW {
                break;
            }
        }
        let iters_per_sample = if est >= SAMPLE_WINDOW {
            1
        } else {
            (SAMPLE_WINDOW.as_nanos() / est.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        self.sample_means.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let total = t.elapsed().as_nanos() as f64;
            self.sample_means.push(total / iters_per_sample as f64);
        }
    }
}

fn summarize(name: String, samples: &[f64]) -> Record {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = if sorted.is_empty() {
        f64::NAN
    } else if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    Record {
        name,
        median_ns: median,
        mean_ns: sorted.iter().sum::<f64>() / sorted.len().max(1) as f64,
        min_ns: sorted.first().copied().unwrap_or(f64::NAN),
        samples: sorted.len(),
        unit: None,
    }
}

fn run_one(
    criterion: &mut Criterion,
    name: String,
    sample_size: usize,
    f: impl FnOnce(&mut Bencher),
) {
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        sample_size,
        sample_means: Vec::new(),
    };
    f(&mut b);
    let rec = summarize(name, &b.sample_means);
    eprintln!(
        "bench {:<50} median {:>12.1} ns/iter (mean {:.1}, min {:.1}, {} samples)",
        rec.name, rec.median_ns, rec.mean_ns, rec.min_ns, rec.samples
    );
    criterion.records.push(rec);
}

impl Criterion {
    /// Opens a named group; benchmarks inside are reported as
    /// `group/benchmark`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self, name.to_string(), 20, f);
        self
    }

    /// Records an arbitrary labelled metric into the JSON output (shim
    /// extension; not part of the real criterion API).
    pub fn record_value(&mut self, name: impl Into<String>, value: f64, unit: impl Into<String>) {
        self.records.push(Record {
            name: name.into(),
            median_ns: value,
            mean_ns: value,
            min_ns: value,
            samples: 1,
            unit: Some(unit.into()),
        });
    }

    /// Writes the JSON summary; called by [`criterion_main!`].
    pub fn final_summary(&self) {
        let path = std::env::var("CRITERION_JSON_OUT")
            .unwrap_or_else(|_| "target/criterion-results.json".to_string());
        let mut out = String::from("{\n  \"results\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 == self.records.len() { "" } else { "," };
            match &r.unit {
                Some(unit) => {
                    out.push_str(&format!(
                        "    {{\"name\": {:?}, \"value\": {}, \"unit\": {:?}}}{sep}\n",
                        r.name,
                        fmt_json_f64(r.median_ns),
                        unit
                    ));
                }
                None => {
                    out.push_str(&format!(
                        "    {{\"name\": {:?}, \"median_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"samples\": {}}}{sep}\n",
                        r.name,
                        fmt_json_f64(r.median_ns),
                        fmt_json_f64(r.mean_ns),
                        fmt_json_f64(r.min_ns),
                        r.samples
                    ));
                }
            }
        }
        out.push_str("  ]\n}\n");
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("criterion shim: could not write {path}: {e}");
        } else {
            eprintln!("criterion shim: results written to {path}");
        }
    }
}

/// JSON has no NaN/Inf; clamp to null.
fn fmt_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(self.criterion, name, self.sample_size, f);
        self
    }

    /// Benchmarks a closure that receives `input`, under `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(self.criterion, name, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; results are recorded eagerly).
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions under one name, like the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point running the given groups and writing the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().with_cli_filter();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_positive_timings() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("spin", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.finish();
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].name, "g/spin");
        assert!(c.records[0].median_ns > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn recorded_values_kept() {
        let mut c = Criterion::default();
        c.record_value("energy", 1.25, "J");
        assert_eq!(c.records[0].unit.as_deref(), Some("J"));
    }
}
