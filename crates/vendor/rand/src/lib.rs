//! Offline shim for the `rand` crate: the `Rng` / `SeedableRng` traits and
//! slice helpers this workspace uses, with unbiased bounded sampling.
//!
//! See `crates/vendor/README.md` for scope and caveats.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform draw from `0..span` (`span >= 1`) by rejection.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    // Reject the first `2^64 mod span` values so every residue is equally
    // likely.
    let threshold = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        if v >= threshold {
            return v % span;
        }
    }
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                (lo as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
        }
    )*};
}

signed_sample_range!(i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{bounded_u64, Rng};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly drawn element, or `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Common re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(1);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(5u32..=5);
            assert_eq!(b, 5);
            let c = rng.gen_range(-4i32..=3);
            assert!((-4..=3).contains(&c));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose_cover_all() {
        let mut rng = Lcg(3);
        let mut v: Vec<usize> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
