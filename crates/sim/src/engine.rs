//! The discrete-event engine.
//!
//! Resources are the cores and the directed links of the platform. Each
//! resource serves one job at a time from a priority queue (`(data-set,
//! topological index)` for cores, `(data-set, edge, hop)` for links);
//! completions release dependent jobs. Messages are store-and-forward:
//! edge `e`'s data set `k` occupies each link of `e`'s route in turn for
//! `volume / BW` seconds.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use cmp_mapping::Mapping;
use cmp_platform::{Platform, RouteTable};
use spg::{Spg, StageId};

use crate::report::SimReport;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of data sets pushed through the pipeline.
    pub datasets: usize,
    /// Data sets discarded from the front when estimating the steady-state
    /// period (pipeline fill).
    pub warmup: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            datasets: 200,
            warmup: 50,
        }
    }
}

/// One schedulable unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Job {
    /// Execute stage `s` for data set `k` (runs on the stage's core).
    Stage { s: u32, k: u32 },
    /// Move edge `e`'s data set `k` across hop `hop` of its route.
    Hop { e: u32, hop: u16, k: u32 },
}

/// Priority inside one resource's queue: lower = sooner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Prio(u32, u32, u16);

#[derive(Debug)]
struct Resource {
    busy: bool,
    ready: BinaryHeap<std::cmp::Reverse<(Prio, JobKey)>>,
}

/// Job wrapped with a total order for deterministic heaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct JobKey {
    kind: u8,
    a: u32,
    b: u32,
    c: u16,
}

impl JobKey {
    fn pack(j: Job) -> Self {
        match j {
            Job::Stage { s, k } => JobKey {
                kind: 0,
                a: k,
                b: s,
                c: 0,
            },
            Job::Hop { e, hop, k } => JobKey {
                kind: 1,
                a: k,
                b: e,
                c: hop,
            },
        }
    }
    fn unpack(self) -> Job {
        match self.kind {
            0 => Job::Stage {
                s: self.b,
                k: self.a,
            },
            _ => Job::Hop {
                e: self.b,
                hop: self.c,
                k: self.a,
            },
        }
    }
}

/// A completion event in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    resource: u32,
    job: JobKey,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via Reverse at the call-site; tiebreak deterministically.
        self.time
            .total_cmp(&other.time)
            .then(self.resource.cmp(&other.resource))
            .then(self.job.cmp(&other.job))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulates `cfg.datasets` data sets flowing through the mapped workflow.
///
/// Fails (with a description) on structurally broken mappings — missing
/// speeds or unroutable edges. Period feasibility is *not* required: the
/// simulator happily executes an overloaded mapping and reports the longer
/// achieved period, which is exactly what makes it a useful cross-check.
pub fn simulate(
    spg: &Spg,
    pf: &Platform,
    mapping: &Mapping,
    cfg: SimConfig,
) -> Result<SimReport, String> {
    simulate_with(spg, pf, mapping, cfg, None)
}

/// [`simulate`] with an optional precomputed [`RouteTable`]: when the table
/// matches the mapping's routing discipline, per-edge routes are taken
/// straight from its packed link-index spans instead of being regenerated —
/// campaign code passes the solver session's cached table
/// (`ea_core::Instance::route_table`). Link contention is driven off dense
/// link indices either way, for every topology backend.
pub fn simulate_with(
    spg: &Spg,
    pf: &Platform,
    mapping: &Mapping,
    cfg: SimConfig,
    table: Option<&RouteTable>,
) -> Result<SimReport, String> {
    let n = spg.n();
    let kk = cfg.datasets;
    assert!(kk >= 2, "need at least two data sets");
    assert!(
        cfg.warmup + 1 < kk,
        "warmup must leave at least two completions"
    );

    // Static per-stage data.
    let topo = spg.topo_order();
    let mut topo_idx = vec![0u32; n];
    for (i, s) in topo.iter().enumerate() {
        topo_idx[s.idx()] = i as u32;
    }
    let mut proc_time = vec![0.0f64; n];
    let mut core_of = vec![0usize; n];
    let mut core_power = vec![0.0f64; n];
    for s in spg.stages() {
        let c = mapping.alloc[s.idx()];
        let f = c.flat(pf.q);
        let k = mapping.speed[f].ok_or_else(|| format!("no speed on core {c:?}"))?;
        let sp = pf.power.speed(k);
        proc_time[s.idx()] = spg.weight(s) / sp.freq;
        core_power[s.idx()] = sp.power;
        core_of[s.idx()] = f;
    }

    // Static per-edge data: resolved route (as dense link indices) and
    // per-hop transfer time. A matching precomputed route table supplies
    // the link-index spans directly; otherwise routes are regenerated.
    let table =
        table.filter(|t| Some(t.policy()) == mapping.routes.policy() && t.matches_platform(pf));
    let n_edges = spg.n_edges();
    let mut routes: Vec<Vec<u32>> = Vec::with_capacity(n_edges);
    let mut hop_time = vec![0.0f64; n_edges];
    for (e, slot) in hop_time.iter_mut().enumerate() {
        let eid = spg::EdgeId(e as u32);
        let edge = spg.edge(eid);
        let route: Vec<u32> = match table {
            Some(t) => {
                let src = mapping.alloc[edge.src.idx()].flat(pf.q);
                let dst = mapping.alloc[edge.dst.idx()].flat(pf.q);
                t.links_between(src, dst).to_vec()
            }
            None => mapping
                .route_of(pf, spg, eid)?
                .into_iter()
                .map(|l| pf.link_index(l) as u32)
                .collect(),
        };
        *slot = pf.link_time(edge.volume);
        routes.push(route);
    }

    // Resources: cores first, then the used links (dense ids assigned in
    // first-encounter order over the routes).
    let n_cores = pf.n_cores();
    let mut link_res: Vec<u32> = vec![u32::MAX; pf.n_link_slots()];
    let mut n_links = 0u32;
    for route in &routes {
        for &li in route {
            if link_res[li as usize] == u32::MAX {
                link_res[li as usize] = n_cores as u32 + n_links;
                n_links += 1;
            }
        }
    }
    let n_res = n_cores + n_links as usize;
    let mut res: Vec<Resource> = (0..n_res)
        .map(|_| Resource {
            busy: false,
            ready: BinaryHeap::new(),
        })
        .collect();

    // Dependency counters: remaining inputs per (stage, data set).
    let indeg: Vec<u32> = (0..n)
        .map(|i| spg.in_degree(StageId(i as u32)) as u32)
        .collect();
    let mut remaining: Vec<Vec<u32>> = (0..n).map(|i| vec![indeg[i]; kk]).collect();

    let mut events: BinaryHeap<std::cmp::Reverse<Event>> = BinaryHeap::new();
    let mut report = SimReport {
        datasets: kk,
        sink_completions: vec![f64::NAN; kk],
        achieved_period: f64::NAN,
        makespan: 0.0,
        core_busy: vec![0.0; n_cores],
        compute_dynamic: 0.0,
        comm_dynamic: 0.0,
        messages_delivered: 0,
    };

    let prio_of = |job: Job| -> Prio {
        match job {
            Job::Stage { s, k } => Prio(k, topo_idx[s as usize], 0),
            Job::Hop { e, hop, k } => Prio(k, e, hop),
        }
    };
    let resource_of = |job: Job| -> u32 {
        match job {
            Job::Stage { s, .. } => core_of[s as usize] as u32,
            Job::Hop { e, hop, .. } => link_res[routes[e as usize][hop as usize] as usize],
        }
    };
    let duration_of = |job: Job| -> f64 {
        match job {
            Job::Stage { s, .. } => proc_time[s as usize],
            Job::Hop { e, .. } => hop_time[e as usize],
        }
    };

    // Dispatch helper: start the best ready job if the resource is idle.
    macro_rules! dispatch {
        ($r:expr, $now:expr) => {{
            let r = $r as usize;
            if !res[r].busy {
                if let Some(std::cmp::Reverse((_, jk))) = res[r].ready.pop() {
                    res[r].busy = true;
                    let job = jk.unpack();
                    let dur = duration_of(job);
                    if r < n_cores {
                        report.core_busy[r] += dur;
                    }
                    events.push(std::cmp::Reverse(Event {
                        time: $now + dur,
                        resource: r as u32,
                        job: jk,
                    }));
                }
            }
        }};
    }
    macro_rules! enqueue {
        ($job:expr, $now:expr) => {{
            let job = $job;
            let r = resource_of(job);
            res[r as usize]
                .ready
                .push(std::cmp::Reverse((prio_of(job), JobKey::pack(job))));
            dispatch!(r, $now);
        }};
    }

    // All data sets available at t = 0 (throughput measurement mode).
    let source = spg.source();
    for k in 0..kk as u32 {
        if indeg[source.idx()] == 0 {
            enqueue!(Job::Stage { s: source.0, k }, 0.0);
        }
    }

    let sink = spg.sink();
    let mut grants: Vec<(u32, u32)> = Vec::new();
    while let Some(std::cmp::Reverse(ev)) = events.pop() {
        let now = ev.time;
        report.makespan = now;
        let r = ev.resource as usize;
        res[r].busy = false;
        grants.clear();
        match ev.job.unpack() {
            Job::Stage { s, k } => {
                let sid = StageId(s);
                report.compute_dynamic += proc_time[s as usize] * core_power[s as usize];
                if sid == sink {
                    report.sink_completions[k as usize] = now;
                }
                for (eid, edge) in spg.out_edges(sid) {
                    if routes[eid.idx()].is_empty() {
                        grants.push((edge.dst.0, k));
                    } else {
                        enqueue!(
                            Job::Hop {
                                e: eid.0,
                                hop: 0,
                                k
                            },
                            now
                        );
                    }
                }
            }
            Job::Hop { e, hop, k } => {
                report.comm_dynamic += pf.hop_energy(spg.edge(spg::EdgeId(e)).volume);
                let route = &routes[e as usize];
                if (hop as usize + 1) < route.len() {
                    enqueue!(Job::Hop { e, hop: hop + 1, k }, now);
                } else {
                    report.messages_delivered += 1;
                    grants.push((spg.edge(spg::EdgeId(e)).dst.0, k));
                }
            }
        }
        for &(dst, k) in grants.clone().iter() {
            let rem = &mut remaining[dst as usize][k as usize];
            debug_assert!(*rem > 0, "over-granted stage {dst} dataset {k}");
            *rem -= 1;
            if *rem == 0 {
                enqueue!(Job::Stage { s: dst, k }, now);
            }
        }
        dispatch!(r, now);
    }

    // Everything must have completed.
    if report.sink_completions.iter().any(|t| t.is_nan()) {
        return Err("deadlock: some data sets never completed".into());
    }
    let w = cfg.warmup;
    report.achieved_period =
        (report.sink_completions[kk - 1] - report.sink_completions[w]) / (kk - 1 - w) as f64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_mapping::{assign_min_speeds, evaluate, RouteSpec};
    use cmp_platform::CoreId;
    use cmp_platform::RouteOrder;
    use spg::chain;

    fn mapped_chain(
        pf: &Platform,
        weights: &[f64],
        vols: &[f64],
        split: usize,
        t: f64,
    ) -> (Spg, Mapping) {
        let g = chain(weights, vols);
        let order = g.topo_order();
        let mut alloc = vec![CoreId { u: 0, v: 0 }; g.n()];
        for s in &order[split..] {
            alloc[s.idx()] = CoreId { u: 0, v: 1 };
        }
        let speed = assign_min_speeds(&g, pf, &alloc, t).unwrap();
        (
            g.clone(),
            Mapping {
                alloc,
                speed,
                routes: RouteSpec::Xy(RouteOrder::RowFirst),
            },
        )
    }

    #[test]
    fn single_core_period_is_total_work_over_speed() {
        let pf = Platform::paper(1, 1);
        let g = chain(&[0.3e9, 0.3e9], &[1e3]);
        let mapping = Mapping {
            alloc: vec![CoreId { u: 0, v: 0 }; 2],
            speed: vec![Some(4)], // 1 GHz
            routes: RouteSpec::Xy(RouteOrder::RowFirst),
        };
        let rep = simulate(
            &g,
            &pf,
            &mapping,
            SimConfig {
                datasets: 50,
                warmup: 10,
            },
        )
        .unwrap();
        assert!(
            (rep.achieved_period - 0.6).abs() < 1e-9,
            "period {} vs 0.6 s",
            rep.achieved_period
        );
    }

    #[test]
    fn split_chain_matches_analytic_cycle_time() {
        let pf = Platform::paper(1, 2);
        let t = 1.0;
        let (g, mapping) = mapped_chain(&pf, &[0.5e9, 0.3e9, 0.6e9], &[1e6, 1e6], 2, t);
        let analytic = evaluate(&g, &pf, &mapping, t).unwrap();
        let rep = simulate(&g, &pf, &mapping, SimConfig::default()).unwrap();
        let rel = (rep.achieved_period - analytic.max_cycle_time).abs() / analytic.max_cycle_time;
        assert!(
            rel < 0.02,
            "sim {} vs analytic {}",
            rep.achieved_period,
            analytic.max_cycle_time
        );
    }

    #[test]
    fn dynamic_energy_matches_analytic_per_dataset() {
        let pf = Platform::paper(1, 2);
        let t = 1.0;
        let (g, mapping) = mapped_chain(&pf, &[0.4e9, 0.4e9], &[5e6], 1, t);
        let analytic = evaluate(&g, &pf, &mapping, t).unwrap();
        let rep = simulate(
            &g,
            &pf,
            &mapping,
            SimConfig {
                datasets: 100,
                warmup: 10,
            },
        )
        .unwrap();
        let expect = analytic.compute_dynamic + analytic.comm_dynamic;
        let got = rep.dynamic_energy_per_dataset();
        assert!(
            (got - expect).abs() / expect < 1e-9,
            "sim {got} vs analytic {expect} J/dataset"
        );
    }

    #[test]
    fn overloaded_mapping_runs_slower_than_bound() {
        // A mapping that violates T still executes; its achieved period is
        // its true bottleneck.
        let pf = Platform::paper(1, 1);
        let g = chain(&[0.9e9, 0.9e9], &[1e3]);
        let mapping = Mapping {
            alloc: vec![CoreId { u: 0, v: 0 }; 2],
            speed: vec![Some(4)],
            routes: RouteSpec::Xy(RouteOrder::RowFirst),
        };
        let rep = simulate(
            &g,
            &pf,
            &mapping,
            SimConfig {
                datasets: 40,
                warmup: 10,
            },
        )
        .unwrap();
        assert!((rep.achieved_period - 1.8).abs() < 1e-9);
    }

    #[test]
    fn messages_counted() {
        let pf = Platform::paper(1, 2);
        let (g, mapping) = mapped_chain(&pf, &[0.1e9, 0.1e9], &[1e4], 1, 1.0);
        let rep = simulate(
            &g,
            &pf,
            &mapping,
            SimConfig {
                datasets: 30,
                warmup: 5,
            },
        )
        .unwrap();
        assert_eq!(
            rep.messages_delivered, 30,
            "one cross-core edge x 30 data sets"
        );
    }

    #[test]
    fn missing_speed_is_an_error() {
        let pf = Platform::paper(1, 1);
        let g = chain(&[1.0, 1.0], &[0.0]);
        let mapping = Mapping {
            alloc: vec![CoreId { u: 0, v: 0 }; 2],
            speed: vec![None],
            routes: RouteSpec::Xy(RouteOrder::RowFirst),
        };
        assert!(simulate(
            &g,
            &pf,
            &mapping,
            SimConfig {
                datasets: 5,
                warmup: 1
            }
        )
        .is_err());
    }

    use spg::Spg;
}
