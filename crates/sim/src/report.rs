//! Simulation output metrics.

/// Measured behaviour of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Number of data sets simulated.
    pub datasets: usize,
    /// Completion time of the sink stage for every data set, in seconds.
    pub sink_completions: Vec<f64>,
    /// Steady-state period estimate: mean inter-completion gap after the
    /// warm-up prefix.
    pub achieved_period: f64,
    /// End of the whole simulation (last event), in seconds.
    pub makespan: f64,
    /// Busy seconds per core (flat `u·q+v` order).
    pub core_busy: Vec<f64>,
    /// Total dynamic computation energy over the run, in joules.
    pub compute_dynamic: f64,
    /// Total dynamic communication energy over the run, in joules.
    pub comm_dynamic: f64,
    /// Messages delivered end-to-end (cross-core edges × data sets).
    pub messages_delivered: usize,
}

impl SimReport {
    /// Mean dynamic energy per data set (compute + communication), the
    /// quantity comparable to the analytic evaluator's dynamic terms.
    pub fn dynamic_energy_per_dataset(&self) -> f64 {
        (self.compute_dynamic + self.comm_dynamic) / self.datasets as f64
    }

    /// Utilisation of one core over the steady-state window.
    pub fn core_utilisation(&self, flat: usize) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.core_busy[flat] / self.makespan
        }
    }
}
