//! # stream-sim — discrete-event execution of mapped SPG pipelines
//!
//! The paper's cost model is *analytic*: a mapping is feasible when every
//! resource's cycle-time (core computation, per-direction link traffic) is
//! at most the period `T`, and in the steady state a new data set completes
//! every period (§3.4). This crate **executes** a mapped workflow in a
//! discrete-event simulation and measures the achieved steady-state period
//! and energy, validating the analytic model:
//!
//! * cores process one stage-instance at a time, at their configured DVFS
//!   speed, picking ready instances in `(data-set, topological)` priority
//!   order;
//! * inter-core messages traverse their route **store-and-forward**, one
//!   link at a time, FIFO per directed link at bandwidth `BW`;
//! * buffers are unbounded (the paper's dataflow model).
//!
//! For any valid mapping, the measured inter-completion gap at the sink
//! converges to the **maximum resource cycle-time** — the analytic period —
//! which the test-suite asserts across heuristics and workloads.

pub mod engine;
pub mod report;

pub use engine::{simulate, simulate_with, SimConfig};
pub use report::SimReport;
