//! CLI surface smoke test: `xp help` must mention every registered
//! command and every flag the argument parser accepts.
//!
//! The source of truth is `src/bin/xp.rs` itself — the test extracts the
//! `"<command>" =>` arms of the dispatch match and the `"--flag" =>`
//! arms of the option parser, so adding a command or flag without
//! documenting it in the usage text fails here, not in a user's shell.

use std::collections::BTreeSet;
use std::path::Path;
use std::process::Command;

/// Extracts the string literals used as `"<name>" =>` match arms.
fn match_arm_names(source: &str, filter: impl Fn(&str) -> bool) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in source.lines() {
        let trimmed = line.trim_start();
        let Some(rest) = trimmed.strip_prefix('"') else {
            continue;
        };
        let Some((name, after)) = rest.split_once('"') else {
            continue;
        };
        if after.trim_start().starts_with("=>") && filter(name) {
            names.insert(name.to_string());
        }
    }
    names
}

fn is_command(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('-')
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        // Campaign presets matched inside campaign_spec, not commands.
        && name != "nightly"
}

fn is_flag(name: &str) -> bool {
    name.starts_with("--") && name.len() > 2
}

#[test]
fn help_covers_every_command_and_flag() {
    let src_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin/xp.rs");
    let source = std::fs::read_to_string(&src_path).expect("read xp.rs source");

    let commands = match_arm_names(&source, is_command);
    let flags = match_arm_names(&source, is_flag);
    assert!(
        commands.contains("sweep") && commands.contains("bench-check"),
        "extraction must find the known commands, got: {commands:?}"
    );
    assert!(
        flags.contains("--seed") && flags.contains("--faults"),
        "extraction must find the known flags, got: {flags:?}"
    );

    let out = Command::new(env!("CARGO_BIN_EXE_xp"))
        .arg("help")
        .output()
        .expect("run xp help");
    assert!(out.status.success(), "xp help must exit 0");
    let help = String::from_utf8(out.stdout).expect("utf-8 help text");

    for cmd in &commands {
        assert!(
            help.contains(cmd),
            "xp help does not mention registered command '{cmd}'"
        );
    }
    for flag in &flags {
        assert!(
            help.contains(flag),
            "xp help does not mention accepted flag '{flag}'"
        );
    }
    // The `help` pseudo-command itself is listed.
    assert!(help.contains("help"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_xp"))
        .arg("definitely-not-a-command")
        .output()
        .expect("run xp");
    assert!(!out.status.success(), "unknown command must exit non-zero");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "error must carry the usage text");
}
