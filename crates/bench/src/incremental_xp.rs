//! Fault-injection remap campaign (`xp sweep --suite incremental`): how
//! fast does an **incremental re-solve** recover a mapping after a
//! platform fault or a workload retune, compared with rebuilding the
//! instance from scratch?
//!
//! For every StreamIt workflow the campaign warms one instance (paper 4×4
//! mesh, sweep-anchor period), then injects a seeded chain of events —
//! core faults, link faults, stage retunes, volume edits — drawn from a
//! `ChaCha8` stream. Each event is solved twice per sample:
//!
//! * **remap**: [`Instance::with_fault`]/[`Instance::with_edit`] patches
//!   the warm session and the portfolio re-solves on the surviving cached
//!   artifacts;
//! * **cold**: `Instance::new` rebuilds the equivalently faulted/edited
//!   instance from nothing and solves it.
//!
//! The two energies must be **bit-identical** per event — that is the
//! correctness contract of the delta-patch layer (`docs/fault-model.md`),
//! asserted here on every sample, not checked within a tolerance. Walls
//! are min-of-samples (remap latency is the cost a live re-solve pays, so
//! the best observed sample is the estimator). The committed
//! `BENCH_incremental.json` gates the deterministic energies, regrets and
//! event counts at the bench-check tolerance, keeps raw walls and
//! speedups advisory, and gates `incremental/streamit/speedup_median_ok`
//! — 1 iff the median remap-vs-cold speedup across all feasible events is
//! at least [`INCREMENTAL_SPEEDUP_GATE`]×.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use cmp_platform::{Fault, Platform, Topology};
use ea_core::json::fmt_f64;
use ea_core::{Instance, Solver, SolverRegistry};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spg::{streamit_workflow, EdgeId, Edit, Spg, StreamItSpec, STREAMIT_SPECS};

use crate::report::{fmt_table, median};
use crate::runner::{best_energy, run_portfolio};
use crate::sweep_xp::sweep_anchor_period;

/// Events injected per workflow in the committed benchmark.
pub const INCREMENTAL_BENCH_EVENTS: usize = 3;

/// Wall-clock samples per event and mode (min-of-samples).
const INCREMENTAL_BENCH_SAMPLES: usize = 2;

/// The remap-vs-cold median speedup the committed benchmark certifies.
pub const INCREMENTAL_SPEEDUP_GATE: f64 = 2.0;

/// One injected event and its measured remap-vs-cold outcome.
#[derive(Debug, Clone)]
pub struct RemapEvent {
    /// Canonical event label, e.g. `core(1,2)`, `link(0,0-0,1)`,
    /// `retune(s4)`, `volume(e7)`.
    pub label: String,
    /// Best portfolio energy after the event (`None` = infeasible); equal
    /// between the remap and cold solves by assertion.
    pub energy: Option<f64>,
    /// Energy regret vs the healthy baseline (`energy − base_energy`);
    /// negative when an edit lowered the workload's demand.
    pub regret: Option<f64>,
    /// Min-of-samples wall of patch + re-solve on the warm session, ms.
    pub remap_wall_ms: f64,
    /// Min-of-samples wall of rebuild + solve from scratch, ms.
    pub cold_wall_ms: f64,
}

impl RemapEvent {
    /// Cold wall over remap wall — how much the delta patch saved.
    pub fn speedup(&self) -> f64 {
        self.cold_wall_ms / self.remap_wall_ms.max(1e-9)
    }
}

/// One workflow's seeded fault/edit chain.
#[derive(Debug, Clone)]
pub struct RemapCampaign {
    /// Workflow name (Table 1).
    pub workflow: String,
    /// Best portfolio energy on the healthy instance.
    pub base_energy: Option<f64>,
    /// The injected events, in chain order (each applies on top of the
    /// previous one's platform/workload state).
    pub events: Vec<RemapEvent>,
}

impl RemapCampaign {
    /// Events that still admitted a mapping.
    pub fn feasible_events(&self) -> usize {
        self.events.iter().filter(|e| e.energy.is_some()).count()
    }

    /// Median post-event energy over the feasible events.
    pub fn median_energy(&self) -> Option<f64> {
        median(self.events.iter().filter_map(|e| e.energy).collect())
    }

    /// Median energy regret over the feasible events.
    pub fn median_regret(&self) -> Option<f64> {
        median(self.events.iter().filter_map(|e| e.regret).collect())
    }

    /// Median remap-vs-cold speedup over the feasible events.
    pub fn median_speedup(&self) -> Option<f64> {
        median(
            self.events
                .iter()
                .filter(|e| e.energy.is_some())
                .map(RemapEvent::speedup)
                .collect(),
        )
    }
}

/// The remap portfolio: the two fault-capable deterministic heuristics
/// (`DPA2D`/`DPA2D1D` decline faulted platforms by design).
fn remap_solvers() -> Vec<Arc<dyn Solver>> {
    SolverRegistry::with_defaults()
        .parse_list("greedy,dpa1d")
        .expect("default registry knows greedy and dpa1d")
}

/// An event to inject: a platform fault or a workload edit.
#[derive(Debug, Clone, Copy)]
enum Patch {
    Fault(Fault),
    Edit(Edit),
}

/// Draws the next event from the seeded stream: 50% core fault, 25% link
/// fault, 25% edit (retune/volume alternating by a further draw). Core
/// faults keep at least two cores alive; when that is impossible — or no
/// link candidate survives 64 draws — the draw degrades to a retune so
/// the chain never stalls.
fn draw_event(rng: &mut ChaCha8Rng, g: &Spg, pf: &Platform) -> (String, Patch) {
    let kind = rng.gen_range(0..4u32);
    if kind <= 1 {
        let alive: Vec<_> = pf.alive_cores().collect();
        if alive.len() > 2 {
            let c = alive[rng.gen_range(0..alive.len())];
            return (
                format!("core({},{})", c.u, c.v),
                Patch::Fault(Fault::Core(c)),
            );
        }
    } else if kind == 2 {
        let topo = pf.topo();
        for _ in 0..64 {
            let a = cmp_platform::CoreId {
                u: rng.gen_range(0..pf.p),
                v: rng.gen_range(0..pf.q),
            };
            let dir = rng.gen_range(0..4usize);
            if let Some(b) = topo.step(a, dir) {
                return (
                    format!("link({},{}-{},{})", a.u, a.v, b.u, b.v),
                    Patch::Fault(Fault::Link(a, b)),
                );
            }
        }
    } else if kind == 3 && rng.gen_range(0..2u32) == 0 && !g.edges().is_empty() {
        let e = EdgeId(rng.gen_range(0..g.edges().len() as u32));
        let volume = g.edge(e).volume * 1.25;
        return (
            format!("volume(e{})", e.idx()),
            Patch::Edit(Edit::SetVolume { edge: e, volume }),
        );
    }
    let stage = g.topo_order()[rng.gen_range(0..g.n())];
    let work = g.weight(stage) * 1.1;
    (
        format!("retune(s{})", stage.idx()),
        Patch::Edit(Edit::Retune { stage, work }),
    )
}

fn min_wall(walls: &[f64]) -> f64 {
    walls.iter().fold(f64::INFINITY, |a, &b| a.min(b))
}

/// Runs one workflow's chain. Panics if any remap energy differs from the
/// cold rebuild's — bit-identity is the contract, not a tolerance.
fn one_campaign(
    name: &str,
    g0: Spg,
    pf0: Platform,
    period: f64,
    seed: u64,
    event_seed: u64,
    n_events: usize,
) -> RemapCampaign {
    let solvers = remap_solvers();
    let mut rng = ChaCha8Rng::seed_from_u64(event_seed);

    // Warm base: one cold solve materialises the lattice, skeleton and
    // route table the remap side is allowed to keep.
    let mut warm = Instance::new(g0.clone(), pf0.clone(), period);
    let base_energy = best_energy(&run_portfolio(&warm, &solvers, seed));

    let mut g_cur = g0;
    let mut pf_cur = pf0;
    let mut events = Vec::new();
    for _ in 0..n_events {
        let (label, patch) = draw_event(&mut rng, &g_cur, &pf_cur);
        let (g_next, pf_next) = match &patch {
            Patch::Fault(f) => (g_cur.clone(), pf_cur.with_fault(*f)),
            Patch::Edit(e) => (g_cur.with_edit(e), pf_cur.clone()),
        };
        let mut remap_walls = Vec::new();
        let mut cold_walls = Vec::new();
        let mut energy = None;
        let mut next_warm = None;
        for _ in 0..INCREMENTAL_BENCH_SAMPLES {
            let started = Instant::now();
            let patched = match &patch {
                Patch::Fault(f) => warm.with_fault(*f),
                Patch::Edit(e) => warm.with_edit(e),
            };
            let remap_energy = best_energy(&run_portfolio(&patched, &solvers, seed));
            remap_walls.push(started.elapsed().as_secs_f64() * 1e3);

            let started = Instant::now();
            let cold = Instance::new(g_next.clone(), pf_next.clone(), period);
            let cold_energy = best_energy(&run_portfolio(&cold, &solvers, seed));
            cold_walls.push(started.elapsed().as_secs_f64() * 1e3);

            assert_eq!(
                remap_energy, cold_energy,
                "{name}/{label}: the patched solve must be bit-identical \
                 to a cold solve on the rebuilt instance"
            );
            energy = remap_energy;
            next_warm = Some(patched);
        }
        events.push(RemapEvent {
            label,
            energy,
            regret: match (energy, base_energy) {
                (Some(e), Some(b)) => Some(e - b),
                _ => None,
            },
            remap_wall_ms: min_wall(&remap_walls),
            cold_wall_ms: min_wall(&cold_walls),
        });
        warm = next_warm.expect("at least one sample ran");
        g_cur = g_next;
        pf_cur = pf_next;
    }
    RemapCampaign {
        workflow: name.to_string(),
        base_energy,
        events,
    }
}

/// Runs the seeded fault/edit chain over the given workflows on the
/// paper's 4×4 mesh at each workflow's sweep-anchor period.
pub fn incremental_campaign(
    specs: &[StreamItSpec],
    seed: u64,
    n_events: usize,
) -> Vec<RemapCampaign> {
    let pf = Platform::paper(4, 4);
    specs
        .iter()
        .map(|spec| {
            let g = streamit_workflow(spec, seed);
            let period = sweep_anchor_period(&g);
            let event_seed = seed.wrapping_add(spec.index as u64 * 0x9E37_79B9);
            one_campaign(spec.name, g, pf.clone(), period, seed, event_seed, n_events)
        })
        .collect()
}

/// The full committed benchmark: all 12 StreamIt workflows at
/// [`INCREMENTAL_BENCH_EVENTS`] events each.
pub fn incremental_bench(seed: u64) -> Vec<RemapCampaign> {
    incremental_campaign(&STREAMIT_SPECS, seed, INCREMENTAL_BENCH_EVENTS)
}

/// Median remap-vs-cold speedup over every feasible event of every
/// workflow — the quantity the committed gate certifies.
pub fn campaign_median_speedup(campaigns: &[RemapCampaign]) -> Option<f64> {
    median(
        campaigns
            .iter()
            .flat_map(|c| c.events.iter())
            .filter(|e| e.energy.is_some())
            .map(RemapEvent::speedup)
            .collect(),
    )
}

/// Canonical campaign record: one JSON line per event, deterministic
/// fields only (no walls), so equal fault seeds produce byte-identical
/// output — pinned by a test and usable as a regression artifact.
pub fn campaign_jsonl(campaigns: &[RemapCampaign]) -> String {
    let mut out = String::new();
    for c in campaigns {
        for (i, e) in c.events.iter().enumerate() {
            let energy = e.energy.map_or("null".to_string(), fmt_f64);
            let regret = e.regret.map_or("null".to_string(), fmt_f64);
            out.push_str(&format!(
                "{{\"workflow\": \"{}\", \"event\": {i}, \"patch\": \"{}\", \
                 \"energy\": {energy}, \"regret\": {regret}}}\n",
                c.workflow, e.label
            ));
        }
    }
    out
}

/// The `BENCH_incremental.json` document. Energies, regrets, event
/// counts, and the speedup-median gate bit gate (deterministic); walls
/// and speedups advise.
pub fn incremental_bench_json(campaigns: &[RemapCampaign]) -> String {
    let mut entries = Vec::new();
    for c in campaigns {
        let prefix = format!("incremental/{}", c.workflow);
        if let Some(b) = c.base_energy {
            entries.push(format!(
                "    {{\"name\": \"{prefix}/base_energy\", \"value\": {}, \"unit\": \"J\"}}",
                fmt_f64(b)
            ));
        }
        if let Some(med) = c.median_energy() {
            entries.push(format!(
                "    {{\"name\": \"{prefix}/remap_energy_median\", \"value\": {}, \"unit\": \"J\"}}",
                fmt_f64(med)
            ));
        }
        if let Some(med) = c.median_regret() {
            entries.push(format!(
                "    {{\"name\": \"{prefix}/regret_median\", \"value\": {}, \"unit\": \"J\"}}",
                fmt_f64(med)
            ));
        }
        entries.push(format!(
            "    {{\"name\": \"{prefix}/feasible_events\", \"value\": {}, \"unit\": \"count\"}}",
            c.feasible_events()
        ));
        let remap_med = median(c.events.iter().map(|e| e.remap_wall_ms).collect());
        let cold_med = median(c.events.iter().map(|e| e.cold_wall_ms).collect());
        if let Some(w) = remap_med {
            entries.push(format!(
                "    {{\"name\": \"{prefix}/remap_wall\", \"value\": {}, \"unit\": \"ms\"}}",
                fmt_f64(w)
            ));
        }
        if let Some(w) = cold_med {
            entries.push(format!(
                "    {{\"name\": \"{prefix}/cold_wall\", \"value\": {}, \"unit\": \"ms\"}}",
                fmt_f64(w)
            ));
        }
        if let Some(s) = c.median_speedup() {
            entries.push(format!(
                "    {{\"name\": \"{prefix}/speedup\", \"value\": {}, \"unit\": \"speedup\"}}",
                fmt_f64(s)
            ));
        }
    }
    let events_total: usize = campaigns.iter().map(|c| c.events.len()).sum();
    entries.push(format!(
        "    {{\"name\": \"incremental/streamit/events_total\", \"value\": {events_total}, \
         \"unit\": \"count\"}}"
    ));
    let ok =
        campaign_median_speedup(campaigns).is_some_and(|s| s >= INCREMENTAL_SPEEDUP_GATE) as u32;
    entries.push(format!(
        "    {{\"name\": \"incremental/streamit/speedup_median_ok\", \"value\": {ok}, \
         \"unit\": \"count\"}}"
    ));
    format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
}

/// Text report: one row per workflow, campaign-wide gate verdict last.
pub fn incremental_bench_text(campaigns: &[RemapCampaign]) -> String {
    let rows: Vec<Vec<String>> = campaigns
        .iter()
        .map(|c| {
            vec![
                c.workflow.clone(),
                c.base_energy.map_or("-".into(), |e| format!("{e:.4e}")),
                format!("{}/{}", c.feasible_events(), c.events.len()),
                c.median_regret()
                    .map_or("-".into(), |r| format!("{r:+.3e}")),
                median(c.events.iter().map(|e| e.remap_wall_ms).collect())
                    .map_or("-".into(), |w| format!("{w:.2}")),
                median(c.events.iter().map(|e| e.cold_wall_ms).collect())
                    .map_or("-".into(), |w| format!("{w:.2}")),
                c.median_speedup()
                    .map_or("-".into(), |s| format!("{s:.1}x")),
            ]
        })
        .collect();
    let mut out = fmt_table(
        "incremental remap-vs-cold (StreamIt fault campaign, 4x4 mesh)",
        &[
            "workflow",
            "E_base (J)",
            "feasible",
            "regret (J)",
            "remap (ms)",
            "cold (ms)",
            "speedup",
        ],
        &rows,
    );
    match campaign_median_speedup(campaigns) {
        Some(s) => out.push_str(&format!(
            "median remap speedup: {s:.1}x (gate: >= {INCREMENTAL_SPEEDUP_GATE:.0}x)\n"
        )),
        None => out.push_str("median remap speedup: - (no feasible events)\n"),
    }
    out
}

/// Injects the benchmark's metrics into a bench-check fresh map under the
/// exact names `incremental_bench_json` commits.
pub fn fresh_incremental_metrics(campaigns: &[RemapCampaign], fresh: &mut HashMap<String, f64>) {
    if let Ok(metrics) = crate::bench_check::parse_bench_metrics(&incremental_bench_json(campaigns))
    {
        for m in metrics {
            fresh.insert(m.name, m.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three smallest Table 1 workflows — enough to exercise core,
    /// link, and edit events without enumerating the monster lattices.
    fn small_specs() -> Vec<StreamItSpec> {
        let mut specs: Vec<StreamItSpec> = STREAMIT_SPECS.to_vec();
        specs.sort_by_key(|s| s.n);
        specs.truncate(3);
        specs
    }

    #[test]
    fn fault_seed_determinism_and_remap_equivalence() {
        // The per-sample assert_eq! inside one_campaign is the
        // patched-vs-cold equivalence pin; running the campaign twice
        // pins byte-identical JSONL for equal fault seeds.
        let a = incremental_campaign(&small_specs(), 2011, 2);
        let b = incremental_campaign(&small_specs(), 2011, 2);
        assert!(
            a.iter().any(|c| c.feasible_events() > 0),
            "campaign must produce feasible events"
        );
        assert_eq!(
            campaign_jsonl(&a),
            campaign_jsonl(&b),
            "same fault seed must reproduce the campaign record byte for byte"
        );
        let c = incremental_campaign(&small_specs(), 2012, 2);
        assert_ne!(
            campaign_jsonl(&a),
            campaign_jsonl(&c),
            "a different seed must draw a different chain"
        );
    }

    #[test]
    fn incremental_bench_json_shape_parses() {
        let campaigns = vec![RemapCampaign {
            workflow: "Fake".into(),
            base_energy: Some(2.0),
            events: vec![
                RemapEvent {
                    label: "core(0,0)".into(),
                    energy: Some(2.5),
                    regret: Some(0.5),
                    remap_wall_ms: 1.0,
                    cold_wall_ms: 5.0,
                },
                RemapEvent {
                    label: "retune(s1)".into(),
                    energy: None,
                    regret: None,
                    remap_wall_ms: 1.0,
                    cold_wall_ms: 2.0,
                },
            ],
        }];
        let doc = incremental_bench_json(&campaigns);
        let metrics = crate::bench_check::parse_bench_metrics(&doc).unwrap();
        let get = |name: &str| metrics.iter().find(|m| m.name == name).unwrap();
        assert_eq!(get("incremental/Fake/base_energy").value, 2.0);
        assert_eq!(get("incremental/Fake/remap_energy_median").value, 2.5);
        assert_eq!(get("incremental/Fake/regret_median").value, 0.5);
        assert_eq!(get("incremental/Fake/feasible_events").value, 1.0);
        assert_eq!(get("incremental/streamit/events_total").value, 2.0);
        assert_eq!(
            get("incremental/Fake/speedup").unit,
            "speedup",
            "raw speedups must stay advisory"
        );
        // One feasible event at 5x: the median gate bit is set.
        assert_eq!(get("incremental/streamit/speedup_median_ok").value, 1.0);
        let mut fresh = HashMap::new();
        fresh_incremental_metrics(&campaigns, &mut fresh);
        assert_eq!(fresh["incremental/Fake/remap_energy_median"], 2.5);
        assert!(incremental_bench_text(&campaigns).contains("median remap speedup"));
    }

    #[test]
    fn speedup_gate_trips_below_threshold() {
        let slow = vec![RemapCampaign {
            workflow: "Fake".into(),
            base_energy: Some(1.0),
            events: vec![RemapEvent {
                label: "core(0,0)".into(),
                energy: Some(1.0),
                regret: Some(0.0),
                remap_wall_ms: 4.0,
                cold_wall_ms: 5.0,
            }],
        }];
        let doc = incremental_bench_json(&slow);
        let metrics = crate::bench_check::parse_bench_metrics(&doc).unwrap();
        let ok = metrics
            .iter()
            .find(|m| m.name == "incremental/streamit/speedup_median_ok")
            .unwrap();
        assert_eq!(ok.value, 0.0, "1.25x median must not certify the 2x gate");
    }

    #[test]
    fn jsonl_is_one_record_per_event() {
        let campaigns = incremental_campaign(&small_specs()[..1], 7, 2);
        let doc = campaign_jsonl(&campaigns);
        assert_eq!(doc.lines().count(), 2);
        for line in doc.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"workflow\""));
            assert!(!line.contains("wall"), "walls must stay out of the record");
        }
    }
}
