//! `xp` — regenerates every table and figure of the paper.
//!
//! ```text
//! xp <command> [--seed N] [--apps-per-point N] [--exact-count N] [--out DIR]
//!
//! commands:
//!   table1        Table 1  (StreamIt characteristics)
//!   fig8          Figure 8 (StreamIt, 4x4, normalised energy)
//!   fig9          Figure 9 (StreamIt, 6x6, normalised energy)
//!   table2        Table 2  (StreamIt failures; runs fig8+fig9 campaigns)
//!   fig10         Figure 10 (random SPGs, n=50,  4x4)
//!   fig11         Figure 11 (random SPGs, n=50,  6x6)
//!   fig12         Figure 12 (random SPGs, n=150, 4x4)
//!   fig13         Figure 13 (random SPGs, n=150, 6x6)
//!   table3        Table 3  (random-SPG failures; fig10's campaign)
//!   exact         Exact-vs-heuristics on 2x2 (ILP substitute, §4.4)
//!   ablation-routing | ablation-downgrade | ablation-ebit
//!   all           Everything above, in order
//! ```
//!
//! Text reports go to stdout; CSV data lands in `--out` (default
//! `results/`).

use std::path::PathBuf;
use std::time::Instant;

use ea_bench::random_xp::{self, RandomXpConfig};
use ea_bench::streamit_xp::{self, CAMPAIGN_CSV_HEADERS};
use ea_bench::{ablation, exact_xp, report};

struct Opts {
    seed: u64,
    apps_per_point: usize,
    exact_count: usize,
    out: PathBuf,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!(
            "usage: xp <command> [--seed N] [--apps-per-point N] [--exact-count N] [--out DIR]"
        );
        std::process::exit(2);
    };
    let mut opts = Opts {
        seed: 2011,
        apps_per_point: 100,
        exact_count: 30,
        out: PathBuf::from("results"),
    };
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--seed" => {
                opts.seed = rest[i + 1].parse().expect("--seed N");
                i += 2;
            }
            "--apps-per-point" => {
                opts.apps_per_point = rest[i + 1].parse().expect("--apps-per-point N");
                i += 2;
            }
            "--exact-count" => {
                opts.exact_count = rest[i + 1].parse().expect("--exact-count N");
                i += 2;
            }
            "--out" => {
                opts.out = PathBuf::from(&rest[i + 1]);
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let started = Instant::now();
    match cmd.as_str() {
        "table1" => table1(&opts),
        "fig8" => fig_streamit(&opts, 4, 4, "fig8", "Figure 8: normalised energy, 4x4 CMP"),
        "fig9" => fig_streamit(&opts, 6, 6, "fig9", "Figure 9: normalised energy, 6x6 CMP"),
        "table2" => table2(&opts),
        "fig10" => fig_random(
            &opts,
            50,
            4,
            4,
            "fig10",
            "Figure 10: random SPGs, 50 nodes, 4x4",
        ),
        "fig11" => fig_random(
            &opts,
            50,
            6,
            6,
            "fig11",
            "Figure 11: random SPGs, 50 nodes, 6x6",
        ),
        "fig12" => fig_random(
            &opts,
            150,
            4,
            4,
            "fig12",
            "Figure 12: random SPGs, 150 nodes, 4x4",
        ),
        "fig13" => fig_random(
            &opts,
            150,
            6,
            6,
            "fig13",
            "Figure 13: random SPGs, 150 nodes, 6x6",
        ),
        "table3" => table3(&opts),
        "exact" => exact_cmd(&opts),
        "ablation-routing" => println!("{}", ablation::routing_text(12, opts.seed)),
        "ablation-downgrade" => println!("{}", ablation::downgrade_text(12, opts.seed)),
        "ablation-ebit" => println!("{}", ablation::ebit_text(12, opts.seed)),
        "ablation-speedrule" => println!("{}", ablation::speedrule_text(12, opts.seed)),
        "ablation-refine" => println!("{}", ablation::refine_text(8, opts.seed)),
        "all" => {
            table1(&opts);
            fig_streamit(&opts, 4, 4, "fig8", "Figure 8: normalised energy, 4x4 CMP");
            fig_streamit(&opts, 6, 6, "fig9", "Figure 9: normalised energy, 6x6 CMP");
            table2(&opts);
            fig_random(
                &opts,
                50,
                4,
                4,
                "fig10",
                "Figure 10: random SPGs, 50 nodes, 4x4",
            );
            fig_random(
                &opts,
                50,
                6,
                6,
                "fig11",
                "Figure 11: random SPGs, 50 nodes, 6x6",
            );
            fig_random(
                &opts,
                150,
                4,
                4,
                "fig12",
                "Figure 12: random SPGs, 150 nodes, 4x4",
            );
            fig_random(
                &opts,
                150,
                6,
                6,
                "fig13",
                "Figure 13: random SPGs, 150 nodes, 6x6",
            );
            table3(&opts);
            exact_cmd(&opts);
            println!("{}", ablation::routing_text(12, opts.seed));
            println!("{}", ablation::downgrade_text(12, opts.seed));
            println!("{}", ablation::ebit_text(12, opts.seed));
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
    eprintln!("[xp] {cmd} done in {:.1}s", started.elapsed().as_secs_f64());
}

fn table1(opts: &Opts) {
    println!("{}", streamit_xp::table1_text(opts.seed));
}

fn fig_streamit(opts: &Opts, p: u32, q: u32, name: &str, title: &str) {
    let campaign = streamit_xp::streamit_campaign(p, q, opts.seed);
    println!("{}", streamit_xp::figure_text(&campaign, title));
    let rows = streamit_xp::campaign_csv_rows(&campaign, &format!("{p}x{q}"));
    if let Err(e) = report::write_csv(&opts.out, name, &CAMPAIGN_CSV_HEADERS, &rows) {
        eprintln!("[xp] csv write failed: {e}");
    }
}

fn table2(opts: &Opts) {
    let c44 = streamit_xp::streamit_campaign(4, 4, opts.seed);
    let c66 = streamit_xp::streamit_campaign(6, 6, opts.seed);
    println!("{}", streamit_xp::table2_text(&c44, &c66));
}

fn fig_random(opts: &Opts, n: usize, p: u32, q: u32, name: &str, title: &str) {
    let cfg = RandomXpConfig::paper(n, p, q, opts.apps_per_point, opts.seed);
    let data = random_xp::random_campaign(&cfg);
    println!("{}", random_xp::figure_text(&data, title));
    if name == "fig10" {
        // Table 3 is the failure count of exactly this campaign
        // (n = 50, 4x4 grid).
        println!("{}", random_xp::table3_text(&data));
    }
    if let Err(e) = report::write_csv(
        &opts.out,
        name,
        &random_xp::CSV_HEADERS,
        &random_xp::csv_rows(&data),
    ) {
        eprintln!("[xp] csv write failed: {e}");
    }
}

fn table3(opts: &Opts) {
    let cfg = RandomXpConfig::paper(50, 4, 4, opts.apps_per_point, opts.seed);
    let data = random_xp::random_campaign(&cfg);
    println!("{}", random_xp::table3_text(&data));
}

fn exact_cmd(opts: &Opts) {
    let instances = exact_xp::exact_campaign(opts.exact_count, opts.seed);
    println!("{}", exact_xp::exact_text(&instances));
}
