//! `xp` — regenerates every table and figure of the paper.
//!
//! ```text
//! xp <command> [--seed N] [--apps-per-point N] [--exact-count N]
//!              [--solvers a,b,c] [--topology mesh|torus|ring]
//!              [--routing xy|yx|shortest] [--out DIR]
//!              [--campaign smoke|nightly|FILE.json] [--shard I/M]
//!              [--input FILE]... [--bench FILE]... [--tolerance F]
//!              [--points N] [--size N] [--suite streamit|prune|incremental]
//!              [--faults N]
//!
//! commands:
//!   table1        Table 1  (StreamIt characteristics)
//!   fig8          Figure 8 (StreamIt, 4x4, normalised energy)
//!   fig9          Figure 9 (StreamIt, 6x6, normalised energy)
//!   table2        Table 2  (StreamIt failures; runs fig8+fig9 campaigns)
//!   fig10         Figure 10 (random SPGs, n=50,  4x4)
//!   fig11         Figure 11 (random SPGs, n=50,  6x6)
//!   fig12         Figure 12 (random SPGs, n=150, 4x4)
//!   fig13         Figure 13 (random SPGs, n=150, 6x6)
//!   table3        Table 3  (random-SPG failures; fig10's campaign)
//!   exact         Exact-vs-heuristics on 2x2 (ILP substitute, §4.4)
//!   ablation-routing | ablation-downgrade | ablation-ebit
//!   ablation-speedrule | ablation-refine
//!   topology      Mesh vs torus vs ring on the StreamIt suite (4x4)
//!   smoke         One small instance end-to-end on --topology/--routing
//!   sweep         Utilisation sweeps per workload family (--points,
//!                 --size; curves as CSV in --out), or the StreamIt decade
//!                 benchmark with --suite streamit (writes BENCH_sweep.json
//!                 to --out: amortized-vs-naive walls + per-point energies),
//!                 or the dominance-pruning benchmark with --suite prune
//!                 (pruned vs complete DPA1D over StreamIt + a ≥256-stage
//!                 generated workload; writes BENCH_prune.json to --out),
//!                 or the fault-injection remap campaign with --suite
//!                 incremental (--faults events per workflow; incremental
//!                 re-solve vs cold rebuild, bit-identity asserted; writes
//!                 BENCH_incremental.json + incremental_events.jsonl)
//!   campaign      Sharded resumable synthetic-family campaign (--campaign
//!                 names a preset or a spec .json file, --shard; results as
//!                 JSONL + BENCH summary in --out)
//!   campaign-merge  Merge shard .jsonl artifacts (--input, repeatable)
//!                 into the canonical key-sorted final file in --out,
//!                 verifying exact key coverage against --campaign; exits 1
//!                 on overlapping, missing, or foreign keys
//!   bench-check   Perf-regression gate: recompute and compare against the
//!                 committed BENCH_*.json (--bench, --tolerance); exits
//!                 non-zero on a deterministic-metric regression
//!   pool-bench    Work-stealing pool microbenchmark at a pinned worker
//!                 count (dispatch latency, fan-out throughput,
//!                 scheduling-independence checksums); writes
//!                 BENCH_pool.json to --out
//!   serve         Solve-as-a-service daemon on --socket PATH (Unix,
//!                 default xp-serve.sock) or --tcp ADDR; --cache-bytes
//!                 bounds the artifact cache, --deadline-ms sets the
//!                 default per-request budget, --cache-dir DIR persists
//!                 artifacts across restarts (spilled write-behind,
//!                 reloaded at boot), --no-batch disables the batched
//!                 scheduler (per-request dispatch); blocks until a
//!                 client sends {"op":"shutdown"}
//!                 (see docs/serve-protocol.md)
//!   client        Scripted serve-protocol session: connects to --socket/
//!                 --tcp and sends each --request JSON in order, printing
//!                 one response per line; error responses exit 1
//!   serve-bench   Warm-vs-cold daemon benchmark plus the batched-vs-
//!                 per-request throughput comparison over the StreamIt
//!                 suite (boots loopback servers in-process); writes
//!                 BENCH_serve.json to --out. With --clients N it turns
//!                 into a closed-loop load generator against an
//!                 *external* daemon on --socket/--tcp (N concurrent
//!                 clients, --requests M each), printing throughput and
//!                 client-side latency percentiles and writing
//!                 serve-load.json to --out
//!   help          This usage text
//!   all           The paper artifacts above, in order
//! ```
//!
//! `xp campaign` expands `--campaign smoke` (per-PR scale) or `nightly`
//! (cron scale) into a deterministic job list, runs the shard selected by
//! `--shard I/M` (default `0/1`, everything) over the rayon pool, and
//! appends one JSON line per job to `--out/<name>.jsonl` as jobs finish.
//! Rerunning after a kill skips every key already recorded and produces a
//! byte-identical `<name>.final.jsonl`. `--solvers`, `--topology`, and
//! `--routing` narrow the corresponding axes of the sweep (the presets
//! default to all solvers and all backends at default routing).
//!
//! `--topology` selects the interconnect backend for the figure/table
//! campaigns (default `mesh`, the paper's platform; a ring flattens the
//! grid to `p·q` cores), and `--routing` overrides the backend's default
//! routing policy (mesh → `xy`, torus/ring → `shortest`). The `topology`
//! command ignores both (it sweeps all backends at their defaults) and
//! writes `--out/BENCH_topology.json` next to its CSV;
//! `smoke` honours both and exits non-zero on any end-to-end failure.
//!
//! `--solvers` filters the portfolio through `ea_core::SolverRegistry`
//! (names are case-insensitive; `refined:<name>` wraps a solver in the
//! hill-climbing combinator). It applies to every portfolio-driven command
//! (the figures, tables 2–3, `exact`, `ablation-ebit`,
//! `ablation-refine`); `table1` and the solver-specific ablations
//! (`ablation-routing`/`-downgrade`/`-speedrule` study `Random`/`Greedy`
//! by construction) do not consume it. Unknown commands, flags, or solver
//! names exit with a usage error instead of being silently ignored.
//!
//! Text reports go to stdout; CSV data lands in `--out` (default
//! `results/`).

use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use cmp_platform::{Platform, RoutePolicy, TopologyKind};
use ea_bench::campaign::{outcome_text, run_campaign, CampaignSpec, Shard};
use ea_bench::random_xp::{self, RandomXpConfig};
use ea_bench::streamit_xp::{self, CAMPAIGN_CSV_HEADERS};
use ea_bench::{
    ablation, bench_check, exact_xp, incremental_xp, prune_xp, report, sweep_xp, topology_xp,
};
use ea_core::{Solver, SolverRegistry};

const USAGE: &str = "usage: xp <command> [--seed N] [--apps-per-point N] [--exact-count N] \
                     [--solvers a,b,c] [--topology mesh|torus|ring] \
                     [--routing xy|yx|shortest] [--out DIR] \
                     [--campaign smoke|nightly|FILE.json] [--shard I/M] \
                     [--input FILE]... [--bench FILE]... [--tolerance F] \
                     [--points N] [--size N] [--suite streamit|prune|incremental] \
                     [--faults N] [--socket PATH] [--tcp ADDR] [--cache-bytes N] \
                     [--cache-dir DIR] [--no-batch] [--deadline-ms N] \
                     [--clients N] [--requests N] [--request JSON]...
commands: table1 fig8 fig9 table2 fig10 fig11 fig12 fig13 table3 exact
          ablation-routing ablation-downgrade ablation-ebit
          ablation-speedrule ablation-refine topology smoke sweep
          campaign campaign-merge bench-check pool-bench
          serve client serve-bench help all";

struct Opts {
    seed: u64,
    apps_per_point: usize,
    exact_count: usize,
    solvers: Vec<Arc<dyn Solver>>,
    /// Raw `--solvers` value, for commands that need *names* (campaign).
    solvers_raw: Option<String>,
    topology: TopologyKind,
    /// Whether `--topology` was given explicitly (campaign narrows its
    /// sweep only on an explicit flag; the default is all backends).
    topology_explicit: bool,
    routing: Option<RoutePolicy>,
    out: PathBuf,
    campaign: String,
    shard: Shard,
    bench: Vec<PathBuf>,
    input: Vec<PathBuf>,
    tolerance: f64,
    /// Sweep grid resolution (`xp sweep --points`).
    points: usize,
    /// Workload stage count for family sweeps (`xp sweep --size`).
    size: usize,
    /// Named suite selector (`xp sweep --suite streamit|prune|incremental`).
    suite: Option<String>,
    /// Fault/edit events per workflow in the incremental remap campaign
    /// (`xp sweep --suite incremental --faults N`).
    faults: usize,
    /// Unix socket path for `serve`/`client` (`--socket`).
    socket: Option<PathBuf>,
    /// TCP address for `serve`/`client` (`--tcp`, e.g. `127.0.0.1:7411`).
    tcp: Option<String>,
    /// Artifact-cache byte bound for `serve` (`--cache-bytes`).
    cache_bytes: Option<usize>,
    /// Cache-persistence directory for `serve` (`--cache-dir`).
    cache_dir: Option<PathBuf>,
    /// Disable the batched scheduler in `serve` (`--no-batch`).
    no_batch: bool,
    /// Default per-request deadline for `serve` (`--deadline-ms`).
    deadline_ms: Option<u64>,
    /// Concurrent load-generator clients for `serve-bench` (`--clients`;
    /// 0 means the in-process warm/cold + throughput benchmark).
    clients: usize,
    /// Requests per load-generator client (`--requests`).
    requests: usize,
    /// Request frames for `client` (`--request`, repeatable, in order).
    request: Vec<String>,
}

impl Opts {
    /// The campaign platform: the paper's parameters on the selected
    /// topology/routing backend.
    fn platform(&self, p: u32, q: u32) -> Platform {
        topology_xp::make_platform(self.topology, p, q, self.routing)
    }

    /// Grid label for CSV/table output, e.g. `4x4` or `ring16`.
    fn grid_label(&self, p: u32, q: u32) -> String {
        match self.topology {
            TopologyKind::Mesh => format!("{p}x{q}"),
            TopologyKind::Torus => format!("torus{p}x{q}"),
            TopologyKind::Ring => format!("ring{}", p * q),
        }
    }
}

/// Exits with a usage error. Every argument problem funnels through here:
/// usage goes to stderr and the exit code is 2, never 0.
fn usage_error(msg: &str) -> ! {
    eprintln!("xp: {msg}\n{USAGE}");
    exit(2)
}

/// Sticky failure flag: report-writing errors (CSV/JSONL) don't abort the
/// run mid-campaign, but they must not exit 0 either.
static SOFT_FAILED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Reports a non-fatal error and arranges for a non-zero exit.
fn soft_fail(msg: &str) {
    eprintln!("xp: {msg}");
    SOFT_FAILED.store(true, std::sync::atomic::Ordering::Relaxed);
}

fn parse_opts(rest: &[String]) -> Opts {
    let mut opts = Opts {
        seed: 2011,
        apps_per_point: 100,
        exact_count: 30,
        solvers: ea_bench::default_solvers(),
        solvers_raw: None,
        topology: TopologyKind::Mesh,
        topology_explicit: false,
        routing: None,
        out: PathBuf::from("results"),
        campaign: "smoke".into(),
        shard: Shard::default(),
        bench: Vec::new(),
        input: Vec::new(),
        tolerance: 0.05,
        points: 8,
        size: 24,
        suite: None,
        faults: incremental_xp::INCREMENTAL_BENCH_EVENTS,
        socket: None,
        tcp: None,
        cache_bytes: None,
        cache_dir: None,
        no_batch: false,
        deadline_ms: None,
        clients: 0,
        requests: 32,
        request: Vec::new(),
    };
    let registry = SolverRegistry::with_defaults();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        match rest.get(*i) {
            Some(v) => v.clone(),
            None => usage_error(&format!("{flag} requires a value")),
        }
    };
    while i < rest.len() {
        let flag = rest[i].as_str();
        match flag {
            "--seed" => {
                opts.seed = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--seed expects an integer"));
            }
            "--apps-per-point" => {
                opts.apps_per_point = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--apps-per-point expects an integer"));
            }
            "--exact-count" => {
                opts.exact_count = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--exact-count expects an integer"));
            }
            "--solvers" => {
                let raw = value(&mut i, flag);
                opts.solvers = registry
                    .parse_list(&raw)
                    .unwrap_or_else(|e| usage_error(&e));
                opts.solvers_raw = Some(raw);
            }
            "--campaign" => {
                let name = value(&mut i, flag);
                if !matches!(name.as_str(), "smoke" | "nightly") && !name.ends_with(".json") {
                    usage_error(&format!(
                        "unknown campaign '{name}' (expected smoke|nightly or a spec .json file)"
                    ));
                }
                opts.campaign = name;
            }
            "--shard" => {
                opts.shard = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|e: String| usage_error(&e));
            }
            "--bench" => {
                opts.bench.push(PathBuf::from(value(&mut i, flag)));
            }
            "--input" => {
                opts.input.push(PathBuf::from(value(&mut i, flag)));
            }
            "--points" => {
                opts.points = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--points expects an integer"));
                if opts.points == 0 {
                    usage_error("--points must be at least 1");
                }
            }
            "--size" => {
                opts.size = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--size expects an integer"));
                if opts.size < 2 {
                    usage_error("--size must be at least 2");
                }
            }
            "--suite" => {
                let name = value(&mut i, flag);
                if name != "streamit" && name != "prune" && name != "incremental" {
                    usage_error(&format!(
                        "unknown suite '{name}' (expected streamit, prune, or incremental)"
                    ));
                }
                opts.suite = Some(name);
            }
            "--faults" => {
                opts.faults = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--faults expects an integer"));
                if opts.faults == 0 {
                    usage_error("--faults must be at least 1");
                }
            }
            "--tolerance" => {
                let t: f64 = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--tolerance expects a number"));
                if !(t >= 0.0 && t.is_finite()) {
                    usage_error("--tolerance must be a finite non-negative number");
                }
                opts.tolerance = t;
            }
            "--topology" => {
                opts.topology = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|e: String| usage_error(&e));
                opts.topology_explicit = true;
            }
            "--routing" => {
                opts.routing = Some(
                    value(&mut i, flag)
                        .parse()
                        .unwrap_or_else(|e: String| usage_error(&e)),
                );
            }
            "--out" => {
                opts.out = PathBuf::from(value(&mut i, flag));
            }
            "--socket" => {
                opts.socket = Some(PathBuf::from(value(&mut i, flag)));
            }
            "--tcp" => {
                opts.tcp = Some(value(&mut i, flag));
            }
            "--cache-bytes" => {
                let n: usize = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--cache-bytes expects an integer"));
                if n == 0 {
                    usage_error("--cache-bytes must be at least 1");
                }
                opts.cache_bytes = Some(n);
            }
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(value(&mut i, flag)));
            }
            "--no-batch" => {
                opts.no_batch = true;
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    value(&mut i, flag)
                        .parse()
                        .unwrap_or_else(|_| usage_error("--deadline-ms expects an integer")),
                );
            }
            "--clients" => {
                opts.clients = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--clients expects an integer"));
                if opts.clients == 0 {
                    usage_error("--clients must be at least 1");
                }
            }
            "--requests" => {
                opts.requests = value(&mut i, flag)
                    .parse()
                    .unwrap_or_else(|_| usage_error("--requests expects an integer"));
                if opts.requests == 0 {
                    usage_error("--requests must be at least 1");
                }
            }
            "--request" => {
                opts.request.push(value(&mut i, flag));
            }
            other => usage_error(&format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    opts
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage_error("missing command");
    };
    if cmd == "help" || cmd == "--help" || cmd == "-h" {
        println!("{USAGE}");
        return;
    }
    if cmd.starts_with('-') {
        usage_error(&format!("expected a command before '{cmd}'"));
    }
    let opts = parse_opts(rest);

    let started = Instant::now();
    match cmd.as_str() {
        "table1" => table1(&opts),
        "fig8" => fig_streamit(&opts, 4, 4, "fig8", "Figure 8: normalised energy, 4x4 CMP"),
        "fig9" => fig_streamit(&opts, 6, 6, "fig9", "Figure 9: normalised energy, 6x6 CMP"),
        "table2" => table2(&opts),
        "fig10" => fig_random(
            &opts,
            50,
            4,
            4,
            "fig10",
            "Figure 10: random SPGs, 50 nodes, 4x4",
        ),
        "fig11" => fig_random(
            &opts,
            50,
            6,
            6,
            "fig11",
            "Figure 11: random SPGs, 50 nodes, 6x6",
        ),
        "fig12" => fig_random(
            &opts,
            150,
            4,
            4,
            "fig12",
            "Figure 12: random SPGs, 150 nodes, 4x4",
        ),
        "fig13" => fig_random(
            &opts,
            150,
            6,
            6,
            "fig13",
            "Figure 13: random SPGs, 150 nodes, 6x6",
        ),
        "table3" => table3(&opts),
        "exact" => exact_cmd(&opts),
        "topology" => topology_cmd(&opts),
        "smoke" => smoke_cmd(&opts),
        "sweep" => sweep_cmd(&opts),
        "campaign" => campaign_cmd(&opts),
        "campaign-merge" => campaign_merge_cmd(&opts),
        "bench-check" => bench_check_cmd(&opts),
        "pool-bench" => pool_bench_cmd(&opts),
        "serve" => serve_cmd(&opts),
        "client" => client_cmd(&opts),
        "serve-bench" => serve_bench_cmd(&opts),
        "ablation-routing" => println!("{}", ablation::routing_text(12, opts.seed)),
        "ablation-downgrade" => println!("{}", ablation::downgrade_text(12, opts.seed)),
        "ablation-ebit" => println!("{}", ablation::ebit_text(12, opts.seed, &opts.solvers)),
        "ablation-speedrule" => println!("{}", ablation::speedrule_text(12, opts.seed)),
        "ablation-refine" => println!("{}", ablation::refine_text(8, opts.seed, &opts.solvers)),
        "all" => {
            table1(&opts);
            fig_streamit(&opts, 4, 4, "fig8", "Figure 8: normalised energy, 4x4 CMP");
            fig_streamit(&opts, 6, 6, "fig9", "Figure 9: normalised energy, 6x6 CMP");
            table2(&opts);
            fig_random(
                &opts,
                50,
                4,
                4,
                "fig10",
                "Figure 10: random SPGs, 50 nodes, 4x4",
            );
            fig_random(
                &opts,
                50,
                6,
                6,
                "fig11",
                "Figure 11: random SPGs, 50 nodes, 6x6",
            );
            fig_random(
                &opts,
                150,
                4,
                4,
                "fig12",
                "Figure 12: random SPGs, 150 nodes, 4x4",
            );
            fig_random(
                &opts,
                150,
                6,
                6,
                "fig13",
                "Figure 13: random SPGs, 150 nodes, 6x6",
            );
            table3(&opts);
            exact_cmd(&opts);
            println!("{}", ablation::routing_text(12, opts.seed));
            println!("{}", ablation::downgrade_text(12, opts.seed));
            println!("{}", ablation::ebit_text(12, opts.seed, &opts.solvers));
            topology_cmd(&opts);
        }
        other => usage_error(&format!("unknown command '{other}'")),
    }
    eprintln!("[xp] {cmd} done in {:.1}s", started.elapsed().as_secs_f64());
    if SOFT_FAILED.load(std::sync::atomic::Ordering::Relaxed) {
        exit(1);
    }
}

fn table1(opts: &Opts) {
    println!("{}", streamit_xp::table1_text(opts.seed));
}

fn fig_streamit(opts: &Opts, p: u32, q: u32, name: &str, title: &str) {
    let campaign = streamit_xp::streamit_campaign_on(opts.platform(p, q), opts.seed, &opts.solvers);
    println!("{}", streamit_xp::figure_text(&campaign, title));
    let rows = streamit_xp::campaign_csv_rows(&campaign, &opts.grid_label(p, q));
    if let Err(e) = report::write_csv(&opts.out, name, &CAMPAIGN_CSV_HEADERS, &rows) {
        soft_fail(&format!("csv write failed: {e}"));
    }
}

fn table2(opts: &Opts) {
    let c44 = streamit_xp::streamit_campaign_on(opts.platform(4, 4), opts.seed, &opts.solvers);
    let c66 = streamit_xp::streamit_campaign_on(opts.platform(6, 6), opts.seed, &opts.solvers);
    println!("{}", streamit_xp::table2_text(&c44, &c66));
}

fn fig_random(opts: &Opts, n: usize, p: u32, q: u32, name: &str, title: &str) {
    let mut cfg = RandomXpConfig::paper(n, p, q, opts.apps_per_point, opts.seed);
    cfg.topology = opts.topology;
    cfg.routing = opts.routing;
    let data = random_xp::random_campaign(&cfg, &opts.solvers);
    println!("{}", random_xp::figure_text(&data, title));
    if name == "fig10" {
        // Table 3 is the failure count of exactly this campaign
        // (n = 50, 4x4 grid).
        println!("{}", random_xp::table3_text(&data));
    }
    if let Err(e) = report::write_csv(
        &opts.out,
        name,
        &random_xp::CSV_HEADERS,
        &random_xp::csv_rows(&data),
    ) {
        soft_fail(&format!("csv write failed: {e}"));
    }
}

fn table3(opts: &Opts) {
    let cfg = RandomXpConfig::paper(50, 4, 4, opts.apps_per_point, opts.seed);
    let data = random_xp::random_campaign(&cfg, &opts.solvers);
    println!("{}", random_xp::table3_text(&data));
}

fn exact_cmd(opts: &Opts) {
    let campaign = exact_xp::exact_campaign(opts.exact_count, opts.seed, &opts.solvers);
    println!("{}", exact_xp::exact_text(&campaign));
}

fn topology_cmd(opts: &Opts) {
    let campaign = topology_xp::topology_campaign(4, 4, opts.seed, &opts.solvers);
    println!("{}", topology_xp::topology_text(&campaign));
    if let Err(e) = report::write_csv(
        &opts.out,
        "topology",
        &topology_xp::TOPOLOGY_CSV_HEADERS,
        &topology_xp::topology_csv_rows(&campaign),
    ) {
        soft_fail(&format!("csv write failed: {e}"));
    }
    // The topology/* gate entries. The committed BENCH_topology.json also
    // carries the criterion evaluate_* timing entries — re-baselining
    // merges those in from `cargo bench -p ea-bench` output.
    let path = opts.out.join("BENCH_topology.json");
    if let Err(e) = std::fs::create_dir_all(&opts.out)
        .and_then(|_| std::fs::write(&path, topology_xp::topology_bench_json(&campaign)))
    {
        soft_fail(&format!("writing {}: {e}", path.display()));
    } else {
        println!("wrote {}", path.display());
    }
}

fn smoke_cmd(opts: &Opts) {
    match topology_xp::smoke_text(opts.topology, opts.routing, opts.seed, &opts.solvers) {
        Ok(line) => println!("{line}"),
        Err(e) => {
            eprintln!("xp: {e}");
            exit(1);
        }
    }
}

fn sweep_cmd(opts: &Opts) {
    if opts.suite.as_deref() == Some("streamit") {
        // The decade benchmark: amortized-vs-naive DPA1D sweeps, and the
        // BENCH_sweep.json document the perf gate compares against.
        let sweeps = sweep_xp::streamit_sweep_bench(opts.seed);
        print!("{}", sweep_xp::sweep_bench_text(&sweeps));
        let path = opts.out.join("BENCH_sweep.json");
        if let Err(e) = std::fs::create_dir_all(&opts.out)
            .and_then(|_| std::fs::write(&path, sweep_xp::sweep_bench_json(&sweeps)))
        {
            soft_fail(&format!("writing {}: {e}", path.display()));
        } else {
            eprintln!("[sweep] wrote {}", path.display());
        }
        return;
    }
    if opts.suite.as_deref() == Some("incremental") {
        // The seeded fault-injection remap campaign: incremental re-solve
        // on delta-patched instances vs cold rebuilds, and the
        // BENCH_incremental.json document the perf gate compares against.
        // The canonical per-event record (deterministic fields only)
        // lands next to it for regression diffing.
        let campaigns =
            incremental_xp::incremental_campaign(&spg::STREAMIT_SPECS, opts.seed, opts.faults);
        print!("{}", incremental_xp::incremental_bench_text(&campaigns));
        let path = opts.out.join("BENCH_incremental.json");
        if let Err(e) = std::fs::create_dir_all(&opts.out)
            .and_then(|_| std::fs::write(&path, incremental_xp::incremental_bench_json(&campaigns)))
        {
            soft_fail(&format!("writing {}: {e}", path.display()));
        } else {
            eprintln!("[sweep] wrote {}", path.display());
        }
        let jsonl = opts.out.join("incremental_events.jsonl");
        if let Err(e) = std::fs::write(&jsonl, incremental_xp::campaign_jsonl(&campaigns)) {
            soft_fail(&format!("writing {}: {e}", jsonl.display()));
        } else {
            eprintln!("[sweep] wrote {}", jsonl.display());
        }
        return;
    }
    if opts.suite.as_deref() == Some("prune") {
        // Dominance on vs off over StreamIt + the ≥256-stage generated
        // workload; the BENCH_prune.json document the perf gate compares
        // against.
        let sweeps = prune_xp::prune_bench(opts.seed);
        print!("{}", prune_xp::prune_bench_text(&sweeps));
        let path = opts.out.join("BENCH_prune.json");
        if let Err(e) = std::fs::create_dir_all(&opts.out)
            .and_then(|_| std::fs::write(&path, prune_xp::prune_bench_json(&sweeps)))
        {
            soft_fail(&format!("writing {}: {e}", path.display()));
        } else {
            eprintln!("[sweep] wrote {}", path.display());
        }
        return;
    }
    let pf = opts.platform(2, 3);
    let sweeps = sweep_xp::family_sweeps(opts.size, opts.points, opts.seed, &pf, &opts.solvers);
    print!("{}", sweep_xp::family_sweep_text(&sweeps));
    let rows = sweep_xp::family_sweep_csv_rows(&sweeps);
    if let Err(e) = report::write_csv(
        &opts.out,
        "sweep_families",
        &sweep_xp::SWEEP_CSV_HEADERS,
        &rows,
    ) {
        soft_fail(&format!("csv write failed: {e}"));
    }
}

/// Resolves `--campaign`: a preset name, or a spec `.json` file parsed by
/// the minimal loader.
fn campaign_spec(opts: &Opts) -> CampaignSpec {
    if opts.campaign.ends_with(".json") {
        let text = std::fs::read_to_string(&opts.campaign).unwrap_or_else(|e| {
            eprintln!("xp: reading {}: {e}", opts.campaign);
            exit(1);
        });
        CampaignSpec::from_json(&text).unwrap_or_else(|e| {
            eprintln!("xp: {}: {e}", opts.campaign);
            exit(1);
        })
    } else {
        match opts.campaign.as_str() {
            "nightly" => CampaignSpec::nightly(opts.seed),
            _ => CampaignSpec::smoke(opts.seed),
        }
    }
}

fn campaign_merge_cmd(opts: &Opts) {
    let spec = campaign_spec(opts);
    if opts.input.is_empty() {
        usage_error("campaign-merge needs at least one --input FILE");
    }
    match ea_bench::campaign::merge_shards(&spec, &opts.input, &opts.out) {
        Ok(outcome) => {
            for (path, fresh) in opts.input.iter().zip(&outcome.per_input) {
                println!("[merge] {}: {} records", path.display(), fresh);
            }
            println!(
                "[merge] {} records -> {}\n[merge] summary {}",
                outcome.records,
                outcome.final_path.display(),
                outcome.summary_path.display()
            );
        }
        Err(e) => {
            eprintln!("xp: campaign-merge failed: {e}");
            exit(1);
        }
    }
}

fn campaign_cmd(opts: &Opts) {
    let mut spec = campaign_spec(opts);
    if let Some(raw) = &opts.solvers_raw {
        spec.solvers = raw.split(',').map(|s| s.trim().to_string()).collect();
    }
    // Explicit --topology / --routing narrow the sweep to that backend /
    // policy (the presets default to all backends at default routing).
    if opts.topology_explicit {
        spec.topologies = vec![opts.topology];
    }
    if let Some(routing) = opts.routing {
        spec.routings = vec![Some(routing)];
    }
    match run_campaign(&spec, &opts.out, opts.shard) {
        Ok(outcome) => println!("{}", outcome_text(&spec, opts.shard, &outcome)),
        Err(e) => {
            eprintln!("xp: campaign failed: {e}");
            exit(1);
        }
    }
}

fn pool_bench_cmd(opts: &Opts) {
    let b = ea_bench::pool_xp::pool_bench();
    print!("{}", ea_bench::pool_xp::pool_bench_text(&b));
    let path = opts.out.join("BENCH_pool.json");
    if let Err(e) = std::fs::create_dir_all(&opts.out)
        .and_then(|_| std::fs::write(&path, ea_bench::pool_xp::pool_bench_json(&b)))
    {
        soft_fail(&format!("writing {}: {e}", path.display()));
    } else {
        eprintln!("[pool-bench] wrote {}", path.display());
    }
}

/// Default Unix socket path when neither `--socket` nor `--tcp` is given.
const DEFAULT_SOCKET: &str = "xp-serve.sock";

/// Builds the daemon config from the serve flags.
fn serve_config(opts: &Opts) -> ea_core::ServeConfig {
    let mut cfg = ea_core::ServeConfig {
        default_seed: opts.seed,
        ..Default::default()
    };
    if let Some(bytes) = opts.cache_bytes {
        cfg.cache_bytes = bytes;
    }
    cfg.default_deadline_ms = opts.deadline_ms;
    cfg.cache_dir = opts.cache_dir.clone();
    cfg.batching = !opts.no_batch;
    cfg
}

fn serve_cmd(opts: &Opts) {
    if opts.socket.is_some() && opts.tcp.is_some() {
        usage_error("serve takes --socket or --tcp, not both");
    }
    let cfg = serve_config(opts);
    let server = if let Some(addr) = &opts.tcp {
        match ea_core::Server::bind_tcp(addr, cfg) {
            Ok(s) => {
                eprintln!(
                    "[serve] listening on tcp {}",
                    s.local_addr()
                        .map_or_else(|| addr.clone(), |a| a.to_string())
                );
                s
            }
            Err(e) => {
                eprintln!("xp: serve: binding {addr}: {e}");
                exit(1);
            }
        }
    } else {
        let path = opts
            .socket
            .clone()
            .unwrap_or_else(|| PathBuf::from(DEFAULT_SOCKET));
        match ea_core::Server::bind_unix(&path, cfg) {
            Ok(s) => {
                eprintln!("[serve] listening on unix {}", path.display());
                s
            }
            Err(e) => {
                eprintln!("xp: serve: binding {}: {e}", path.display());
                exit(1);
            }
        }
    };
    if let Err(e) = server.run() {
        eprintln!("xp: serve: {e}");
        exit(1);
    }
    eprintln!("[serve] shut down cleanly");
}

fn client_cmd(opts: &Opts) {
    if opts.socket.is_some() && opts.tcp.is_some() {
        usage_error("client takes --socket or --tcp, not both");
    }
    if opts.request.is_empty() {
        usage_error("client needs at least one --request JSON");
    }
    // Parse every frame up front: a malformed --request is a usage error
    // (exit 2) before anything goes over the wire.
    let frames: Vec<ea_core::json::Json> = opts
        .request
        .iter()
        .map(|raw| {
            ea_core::json::Json::parse(raw)
                .unwrap_or_else(|e| usage_error(&format!("--request is not valid JSON: {e}")))
        })
        .collect();
    let mut client = if let Some(addr) = &opts.tcp {
        ea_core::serve::Client::connect_tcp(addr.as_str())
    } else {
        let path = opts
            .socket
            .clone()
            .unwrap_or_else(|| PathBuf::from(DEFAULT_SOCKET));
        ea_core::serve::Client::connect_unix(&path)
    }
    .unwrap_or_else(|e| {
        eprintln!("xp: client: connect: {e}");
        exit(1);
    });
    for frame in &frames {
        match client.request(frame) {
            Ok(resp) => {
                println!("{resp}");
                if resp.get("error").is_some() {
                    soft_fail("server returned an error response");
                }
            }
            Err(e) => {
                eprintln!("xp: client: {e}");
                exit(1);
            }
        }
    }
}

fn serve_bench_cmd(opts: &Opts) {
    if opts.clients > 0 {
        return serve_load_cmd(opts);
    }
    let b = match ea_bench::serve_xp::serve_bench(opts.seed) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xp: serve-bench: {e}");
            exit(1);
        }
    };
    print!("{}", ea_bench::serve_xp::serve_bench_text(&b));
    // The generator asserts the acceptance bar itself: per-flow energies
    // already matched bit-for-bit (serve_bench errors out otherwise), and
    // the batched daemon must clear the target speedup.
    if !b.throughput.meets_target() {
        soft_fail(&format!(
            "batched throughput {:.2}x is below the {:.1}x target",
            b.throughput.speedup(),
            ea_bench::serve_xp::THROUGHPUT_TARGET,
        ));
    }
    let path = opts.out.join("BENCH_serve.json");
    if let Err(e) = std::fs::create_dir_all(&opts.out)
        .and_then(|_| std::fs::write(&path, ea_bench::serve_xp::serve_bench_json(&b)))
    {
        soft_fail(&format!("writing {}: {e}", path.display()));
    } else {
        eprintln!("[serve-bench] wrote {}", path.display());
    }
}

/// `serve-bench --clients N --requests M`: the closed-loop load generator
/// against an external daemon on `--socket`/`--tcp`. The daemon is left
/// running — the caller owns its lifecycle (CI restarts it to check the
/// warm-start path).
fn serve_load_cmd(opts: &Opts) {
    if opts.socket.is_some() && opts.tcp.is_some() {
        usage_error("serve-bench takes --socket or --tcp, not both");
    }
    let connect: Box<dyn Fn() -> std::io::Result<ea_core::serve::Client> + Sync> =
        if let Some(addr) = opts.tcp.clone() {
            Box::new(move || ea_core::serve::Client::connect_tcp(addr.as_str()))
        } else {
            let path = opts
                .socket
                .clone()
                .unwrap_or_else(|| PathBuf::from(DEFAULT_SOCKET));
            Box::new(move || ea_core::serve::Client::connect_unix(&path))
        };
    let report =
        match ea_bench::serve_xp::load_gen(&*connect, opts.clients, opts.requests, opts.seed) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("xp: serve-bench: {e}");
                exit(1);
            }
        };
    print!("{}", ea_bench::serve_xp::load_text(&report));
    let path = opts.out.join("serve-load.json");
    if let Err(e) = std::fs::create_dir_all(&opts.out)
        .and_then(|_| std::fs::write(&path, ea_bench::serve_xp::load_json(&report)))
    {
        soft_fail(&format!("writing {}: {e}", path.display()));
    } else {
        eprintln!("[serve-bench] wrote {}", path.display());
    }
}

fn bench_check_cmd(opts: &Opts) {
    let files = if opts.bench.is_empty() {
        let found = bench_check::default_bench_files(std::path::Path::new("."));
        if found.is_empty() {
            eprintln!("xp: bench-check: no BENCH_*.json found (pass --bench FILE)");
            exit(1);
        }
        found
    } else {
        opts.bench.clone()
    };
    match bench_check::bench_check_files(&files, opts.tolerance, opts.seed, &opts.solvers) {
        Ok((checks, ok)) => {
            print!("{}", bench_check::check_text(&checks, opts.tolerance));
            if !ok {
                eprintln!("xp: bench-check: deterministic metrics regressed beyond tolerance");
                exit(1);
            }
        }
        Err(e) => {
            eprintln!("xp: bench-check failed: {e}");
            exit(1);
        }
    }
}
