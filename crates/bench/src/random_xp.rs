//! Random-SPG experiments: Figures 10–13 and Table 3 (paper §6.2.2).
//!
//! For each CCR in `{10, 1, 0.1}` and each elevation value, `apps_per_point`
//! random SPGs of exactly `n` stages are generated; each gets its own probed
//! period, then the solver portfolio runs. The figures plot, per solver,
//! the mean of `E_best / E_h` (the paper's "inverse of the energy …
//! normalized to the minimum value …, so that the best heuristic returns 1
//! and the other ones return smaller values"); a failed run contributes 0 —
//! which is what makes `DPA1D`'s curve collapse past elevation ≈ 4 in the
//! paper. Table 3 counts raw failures from the same campaign.

use std::sync::Arc;

use cmp_platform::{Platform, RoutePolicy, TopologyKind};
use ea_core::{Instance, Solver};
use rayon::prelude::*;
use spg::{random_spg, SpgGenConfig};

use crate::probe::probe_instance;
use crate::report::fmt_table;
use crate::runner::{run_portfolio, solver_names};

/// Configuration of one random campaign (one of Figures 10–13).
#[derive(Debug, Clone)]
pub struct RandomXpConfig {
    /// Number of stages per SPG (50 or 150 in the paper).
    pub n: usize,
    /// Grid rows.
    pub p: u32,
    /// Grid columns.
    pub q: u32,
    /// Elevations swept (x-axis).
    pub elevations: Vec<u32>,
    /// CCR values (one sub-figure each; the paper uses 10, 1, 0.1).
    pub ccrs: Vec<f64>,
    /// Random applications per (ccr, elevation) point (paper: 100).
    pub apps_per_point: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Interconnect backend (the paper's figures use the mesh).
    pub topology: TopologyKind,
    /// Routing-policy override (`None` = the topology's default).
    pub routing: Option<RoutePolicy>,
}

impl RandomXpConfig {
    /// The paper's configuration for a figure: elevations `1..=20` for
    /// `n = 50`, `1..=30` for `n = 150`, on the mesh.
    pub fn paper(n: usize, p: u32, q: u32, apps_per_point: usize, seed: u64) -> Self {
        let max_elev = if n >= 150 { 30 } else { 20 };
        RandomXpConfig {
            n,
            p,
            q,
            elevations: (1..=max_elev).collect(),
            ccrs: vec![10.0, 1.0, 0.1],
            apps_per_point,
            seed,
            topology: TopologyKind::Mesh,
            routing: None,
        }
    }

    /// The configured platform: the paper's electrical parameters on this
    /// campaign's topology/routing backend.
    pub fn platform(&self) -> Platform {
        crate::topology_xp::make_platform(self.topology, self.p, self.q, self.routing)
    }
}

/// Aggregated statistics of one (ccr, elevation) point.
#[derive(Debug, Clone)]
pub struct PointStats {
    /// Mean of `E_best / E_h` per solver (0 contribution on failure).
    pub mean_inv_norm: Vec<f64>,
    /// Failure count per solver.
    pub failures: Vec<usize>,
    /// Number of instances at this point.
    pub instances: usize,
}

/// Results of one campaign: `points[ccr_index][elevation_index]`.
#[derive(Debug, Clone)]
pub struct RandomXpData {
    /// The configuration that produced this data.
    pub cfg: RandomXpConfig,
    /// Solver display names, in portfolio order (column headers).
    pub names: Vec<String>,
    /// Per-CCR, per-elevation aggregated stats.
    pub points: Vec<Vec<PointStats>>,
}

/// Runs one campaign with the given solver portfolio.
pub fn random_campaign(cfg: &RandomXpConfig, solvers: &[Arc<dyn Solver>]) -> RandomXpData {
    let pf = Arc::new(cfg.platform());
    let points: Vec<Vec<PointStats>> = cfg
        .ccrs
        .iter()
        .enumerate()
        .map(|(ci, &ccr)| {
            cfg.elevations
                .iter()
                .enumerate()
                .map(|(ei, &elev)| {
                    let results: Vec<Vec<Option<f64>>> = (0..cfg.apps_per_point)
                        .into_par_iter()
                        .map(|app| {
                            let seed = instance_seed(cfg.seed, ci, ei, app);
                            run_instance(cfg, &pf, ccr, elev, seed, solvers)
                        })
                        .collect();
                    aggregate(&results, solvers.len())
                })
                .collect()
        })
        .collect();
    RandomXpData {
        cfg: cfg.clone(),
        names: solver_names(solvers),
        points,
    }
}

/// Deterministic per-instance seed.
fn instance_seed(base: u64, ci: usize, ei: usize, app: usize) -> u64 {
    base ^ (ci as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((ei as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((app as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
}

/// One instance: generate, probe, run. Returns per-solver energies
/// (`None` = failure; all-`None` when even the probe fails).
fn run_instance(
    cfg: &RandomXpConfig,
    pf: &Arc<Platform>,
    ccr: f64,
    elevation: u32,
    seed: u64,
    solvers: &[Arc<dyn Solver>],
) -> Vec<Option<f64>> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let gen_cfg = SpgGenConfig {
        n: cfg.n,
        elevation,
        ccr: Some(ccr),
        ..Default::default()
    };
    let g = random_spg(&gen_cfg, &mut rng);
    let base = Instance::from_shared(Arc::new(g), Arc::clone(pf), 1.0);
    match probe_instance(&base, seed) {
        Some(inst) => run_portfolio(&inst, solvers, seed)
            .iter()
            .map(|o| o.energy())
            .collect(),
        None => vec![None; solvers.len()],
    }
}

fn aggregate(results: &[Vec<Option<f64>>], h: usize) -> PointStats {
    let mut sum_inv = vec![0.0f64; h];
    let mut failures = vec![0usize; h];
    for energies in results {
        let best = energies
            .iter()
            .flatten()
            .copied()
            .min_by(|a, b| a.total_cmp(b));
        for (k, e) in energies.iter().enumerate() {
            match (e, best) {
                (Some(e), Some(b)) => sum_inv[k] += b / e,
                _ => failures[k] += 1,
            }
        }
    }
    let n = results.len().max(1) as f64;
    PointStats {
        mean_inv_norm: sum_inv.iter().map(|s| s / n).collect(),
        failures,
        instances: results.len(),
    }
}

/// Figure text: one block per CCR, rows = elevation, columns = solvers.
pub fn figure_text(data: &RandomXpData, title: &str) -> String {
    let mut out = String::new();
    for (ci, &ccr) in data.cfg.ccrs.iter().enumerate() {
        let rows: Vec<Vec<String>> = data
            .cfg
            .elevations
            .iter()
            .enumerate()
            .map(|(ei, &elev)| {
                let p = &data.points[ci][ei];
                let mut row = vec![elev.to_string()];
                row.extend(p.mean_inv_norm.iter().map(|v| format!("{v:.3}")));
                row
            })
            .collect();
        let headers: Vec<&str> = ["elev"]
            .into_iter()
            .chain(data.names.iter().map(String::as_str))
            .collect();
        out.push_str(&fmt_table(
            &format!(
                "{title} — CCR = {ccr} (mean 1/E normalised, {} apps/point)",
                data.cfg.apps_per_point
            ),
            &headers,
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Table 3 text: failure counts per solver per CCR, summed over all
/// elevations of the campaign.
pub fn table3_text(data: &RandomXpData) -> String {
    let headers: Vec<&str> = ["CCR"]
        .into_iter()
        .chain(data.names.iter().map(String::as_str))
        .collect();
    let total: usize = data.points[0].iter().map(|p| p.instances).sum();
    let rows: Vec<Vec<String>> = data
        .cfg
        .ccrs
        .iter()
        .enumerate()
        .map(|(ci, &ccr)| {
            let mut fails = vec![0usize; data.names.len()];
            for p in &data.points[ci] {
                for (k, f) in p.failures.iter().enumerate() {
                    fails[k] += f;
                }
            }
            let mut row = vec![format!("{ccr}")];
            row.extend(fails.iter().map(|f| f.to_string()));
            row
        })
        .collect();
    fmt_table(
        &format!("Table 3: Number of failures (out of {total} instances per CCR)"),
        &headers,
        &rows,
    )
}

/// CSV rows: one per (ccr, elevation, solver).
pub fn csv_rows(data: &RandomXpData) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for (ci, &ccr) in data.cfg.ccrs.iter().enumerate() {
        for (ei, &elev) in data.cfg.elevations.iter().enumerate() {
            let p = &data.points[ci][ei];
            for (k, h) in data.names.iter().enumerate() {
                rows.push(vec![
                    format!("{ccr}"),
                    elev.to_string(),
                    h.clone(),
                    format!("{:.5}", p.mean_inv_norm[k]),
                    p.failures[k].to_string(),
                    p.instances.to_string(),
                ]);
            }
        }
    }
    rows
}

/// CSV header matching [`csv_rows`].
pub const CSV_HEADERS: [&str; 6] = [
    "ccr",
    "elevation",
    "heuristic",
    "mean_inv_norm",
    "failures",
    "instances",
];
