//! Runs a solver portfolio on one instance and flattens the report into
//! the per-solver outcome rows the campaign tables consume.
//!
//! The heavy lifting lives in `ea_core::Portfolio`: the solvers fan out
//! over the available cores (they are independent, and the dynamic
//! programs dominate the wall time, so the portfolio finishes in roughly
//! the time of its slowest member), and the instance's shared
//! precomputation — most importantly `DPA1D`'s interned ideal lattice — is
//! computed once per instance instead of once per solver call.

use std::sync::Arc;
use std::time::Duration;

use ea_core::solvers::default_heuristics;
use ea_core::{Failure, Instance, Portfolio, Solver};

/// Outcome of one solver on one instance.
#[derive(Debug, Clone)]
pub struct SolverOutcome {
    /// The solver's display name (paper figure name).
    pub name: String,
    /// Its energy, or the failure reason.
    pub result: Result<f64, Failure>,
    /// Wall time of the solve call.
    pub wall: Duration,
}

impl SolverOutcome {
    /// The energy if the solver succeeded.
    pub fn energy(&self) -> Option<f64> {
        self.result.as_ref().ok().copied()
    }
}

/// The five paper heuristics at default configuration, in plot order — the
/// default solver set of every campaign.
pub fn default_solvers() -> Vec<Arc<dyn Solver>> {
    default_heuristics()
}

/// The display names of a solver set, in order (table headers).
pub fn solver_names(solvers: &[Arc<dyn Solver>]) -> Vec<String> {
    solvers.iter().map(|s| s.name().to_string()).collect()
}

/// Runs the given solvers on one instance in parallel; returns one outcome
/// per solver, in the given order.
pub fn run_portfolio(
    inst: &Instance,
    solvers: &[Arc<dyn Solver>],
    seed: u64,
) -> Vec<SolverOutcome> {
    Portfolio::new(solvers.to_vec())
        .seeded(seed)
        .run(inst)
        .runs
        .into_iter()
        .map(|r| SolverOutcome {
            name: r.name,
            result: r.result.map(|s| s.energy()),
            wall: r.wall,
        })
        .collect()
}

/// The minimum energy over the successful solvers, if any. NaN-safe: a
/// solver reporting a NaN energy loses to every finite value instead of
/// panicking the campaign.
pub fn best_energy(outcomes: &[SolverOutcome]) -> Option<f64> {
    outcomes
        .iter()
        .filter_map(SolverOutcome::energy)
        .min_by(|a, b| a.total_cmp(b))
}

/// Legacy per-heuristic outcome, kept for the deprecated
/// [`run_all_heuristics`] shim.
#[doc(hidden)]
#[deprecated(since = "0.2.0", note = "use `SolverOutcome` via `run_portfolio`")]
#[derive(Debug, Clone)]
pub struct HeuristicOutcome {
    /// Which heuristic ran.
    pub kind: ea_core::HeuristicKind,
    /// Its energy, or the failure reason.
    pub result: Result<f64, Failure>,
}

/// Runs all five heuristics at the given period; legacy shim preserving the
/// pre-0.2 behaviour (every heuristic receives `seed` unmixed).
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "build an `Instance` and use `run_portfolio` (or `ea_core::Portfolio`) instead"
)]
#[allow(deprecated)]
pub fn run_all_heuristics(
    spg: &spg::Spg,
    pf: &cmp_platform::Platform,
    period: f64,
    seed: u64,
) -> Vec<HeuristicOutcome> {
    let inst = Instance::new(spg.clone(), pf.clone(), period);
    let ctx = ea_core::SolveCtx::new(seed);
    ea_core::ALL_HEURISTICS
        .iter()
        .map(|&kind| HeuristicOutcome {
            kind,
            result: kind.solver().solve(&inst, &ctx).map(|s| s.energy()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_platform::Platform;
    use spg::chain;

    #[test]
    fn portfolio_runs_all_five() {
        let inst = Instance::new(chain(&[1e6; 5], &[1e3; 4]), Platform::paper(2, 2), 1.0);
        let solvers = default_solvers();
        let out = run_portfolio(&inst, &solvers, 0);
        assert_eq!(out.len(), 5);
        assert_eq!(
            out.iter().map(|o| o.name.as_str()).collect::<Vec<_>>(),
            ["Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D"]
        );
        // Loose period: every heuristic should succeed on a small chain.
        for o in &out {
            assert!(o.result.is_ok(), "{} failed: {:?}", o.name, o.result);
        }
        assert!(best_energy(&out).unwrap() > 0.0);
    }

    #[test]
    fn best_energy_is_nan_safe() {
        let mk = |e: f64| SolverOutcome {
            name: "x".into(),
            result: Ok(e),
            wall: Duration::ZERO,
        };
        // A NaN outcome must not panic, and must lose to the finite value.
        assert_eq!(best_energy(&[mk(f64::NAN), mk(2.0)]), Some(2.0));
        assert!(best_energy(&[mk(f64::NAN)]).unwrap().is_nan());
        assert_eq!(best_energy(&[]), None);
    }
}
