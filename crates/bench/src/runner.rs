//! Runs the heuristic portfolio on one instance, fanning the five
//! heuristics out over the available cores (they are independent, and the
//! dynamic programs dominate the wall time, so the portfolio finishes in
//! roughly the time of its slowest member).

use cmp_platform::Platform;
use ea_core::{run_heuristic, Failure, HeuristicKind, Solution, ALL_HEURISTICS};
use rayon::prelude::*;
use spg::Spg;

/// Outcome of one heuristic on one instance.
#[derive(Debug, Clone)]
pub struct HeuristicOutcome {
    /// Which heuristic ran.
    pub kind: HeuristicKind,
    /// Its energy, or the failure reason.
    pub result: Result<f64, Failure>,
}

impl HeuristicOutcome {
    /// The energy if the heuristic succeeded.
    pub fn energy(&self) -> Option<f64> {
        self.result.as_ref().ok().copied()
    }
}

/// Runs all five heuristics at the given period in parallel; returns one
/// outcome per heuristic, in the paper's plot order.
pub fn run_all_heuristics(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    seed: u64,
) -> Vec<HeuristicOutcome> {
    ALL_HEURISTICS
        .par_iter()
        .map(|&kind| HeuristicOutcome {
            kind,
            result: run_heuristic(kind, spg, pf, period, seed).map(|s: Solution| s.energy()),
        })
        .collect()
}

/// The minimum energy over the successful heuristics, if any.
pub fn best_energy(outcomes: &[HeuristicOutcome]) -> Option<f64> {
    outcomes
        .iter()
        .filter_map(HeuristicOutcome::energy)
        .min_by(|a, b| a.partial_cmp(b).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg::chain;

    #[test]
    fn portfolio_runs_all_five() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[1e6; 5], &[1e3; 4]);
        let out = run_all_heuristics(&g, &pf, 1.0, 0);
        assert_eq!(out.len(), 5);
        // Loose period: every heuristic should succeed on a small chain.
        for o in &out {
            assert!(o.result.is_ok(), "{:?} failed: {:?}", o.kind, o.result);
        }
        assert!(best_energy(&out).unwrap() > 0.0);
    }
}
