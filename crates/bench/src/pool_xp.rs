//! Pool microbenchmark (`xp pool-bench` → `BENCH_pool.json`): dispatch
//! latency and fan-out throughput of the vendored work-stealing rayon
//! shim, plus deterministic checksums that pin the scheduling down as a
//! pure optimisation.
//!
//! All measurements run on an explicit [`POOL_BENCH_WORKERS`]-worker pool
//! (`ThreadPool::install`), so the numbers are comparable across machines
//! and across shim implementations — the committed
//! `pool/scoped_spawn/...` entries are the same probes recorded against
//! the previous scoped-thread-spawn shim at the same worker count, frozen
//! as the "before" column (`bench-check` reports them as skipped: the old
//! implementation is gone, they exist as the documented baseline the
//! `pool/...` walls are read against).
//!
//! Metric classes follow the repository convention:
//! * `checksum` / `workers` entries are **deterministic** and gate in
//!   `bench-check` — identical inputs must produce bit-identical parallel
//!   results whatever the stealing interleaving;
//! * `ns` walls are **advisory** (machine-dependent), like every other
//!   time metric.

use std::time::Instant;

use rayon::prelude::*;

use crate::report::{fmt_table, median};
use ea_core::json::fmt_f64;

/// Worker count every probe is pinned to (and the count the frozen
/// scoped-spawn baseline was recorded at).
pub const POOL_BENCH_WORKERS: usize = 4;

/// Modulus keeping the checksums exactly representable as JSON doubles.
const CHECKSUM_MOD: u64 = 1_000_000_007;

/// One shim measurement: medians of the three probes + the checksums.
#[derive(Debug, Clone)]
pub struct PoolBench {
    /// Median wall of an empty 4-item fan-out (pure dispatch overhead).
    pub dispatch_empty_4item_ns: f64,
    /// Median wall of a 64-item fan-out of ~1 µs spin items.
    pub fanout_64x1us_ns: f64,
    /// Median per-item wall of a 100 000-item trivial map.
    pub per_item_100k_ns: f64,
    /// Deterministic fold of the 64-item spin results.
    pub fanout_checksum_64: u64,
    /// Deterministic fold of the 100 000-item map results.
    pub map_checksum_100k: u64,
    /// Worker count the probes ran on (always [`POOL_BENCH_WORKERS`]).
    pub workers: usize,
}

/// ~1 µs of register-only spin work per item; the checksum input.
fn spin(i: usize) -> u64 {
    let mut x = i as u64 | 1;
    for _ in 0..600 {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(7);
    }
    x
}

/// The 100k-map item function (trivial on purpose: measures per-item
/// scheduling overhead, not compute).
fn tiny(i: usize) -> u32 {
    (i as u32 ^ 7).wrapping_mul(2_654_435_761)
}

/// Order-sensitive fold: also catches a result landing in the wrong slot,
/// not just a wrong multiset of results.
fn fold(values: impl IntoIterator<Item = u64>) -> u64 {
    values.into_iter().fold(0u64, |acc, v| {
        (acc.wrapping_mul(31).wrapping_add(v % CHECKSUM_MOD)) % CHECKSUM_MOD
    })
}

/// Runs the three probes and the checksums on a fresh
/// [`POOL_BENCH_WORKERS`]-worker pool.
pub fn pool_bench() -> PoolBench {
    let pool = rayon::ThreadPool::new(POOL_BENCH_WORKERS);
    pool.install(|| {
        // Warm up the pool (first fan-out pays thread start-up).
        for _ in 0..50 {
            let _: Vec<()> = (0..4).into_par_iter().map(|_| ()).collect();
        }

        let dispatch: Vec<f64> = (0..2000)
            .map(|_| {
                let t0 = Instant::now();
                let _: Vec<()> = (0..4).into_par_iter().map(|_| ()).collect();
                t0.elapsed().as_nanos() as f64
            })
            .collect();

        let fanout: Vec<f64> = (0..500)
            .map(|_| {
                let t0 = Instant::now();
                let v: Vec<u64> = (0..64).into_par_iter().map(spin).collect();
                std::hint::black_box(v);
                t0.elapsed().as_nanos() as f64
            })
            .collect();

        let per_item: Vec<f64> = (0..30)
            .map(|_| {
                let t0 = Instant::now();
                let v: Vec<u32> = (0..100_000).into_par_iter().map(tiny).collect();
                std::hint::black_box(v);
                t0.elapsed().as_nanos() as f64 / 1e5
            })
            .collect();

        let spin_results: Vec<u64> = (0..64).into_par_iter().map(spin).collect();
        let tiny_results: Vec<u32> = (0..100_000).into_par_iter().map(tiny).collect();

        PoolBench {
            dispatch_empty_4item_ns: median(dispatch).unwrap_or(f64::NAN),
            fanout_64x1us_ns: median(fanout).unwrap_or(f64::NAN),
            per_item_100k_ns: median(per_item).unwrap_or(f64::NAN),
            fanout_checksum_64: fold(spin_results),
            map_checksum_100k: fold(tiny_results.into_iter().map(u64::from)),
            workers: rayon::current_num_threads(),
        }
    })
}

/// The frozen "before" medians: the previous scoped-thread-spawn shim,
/// same probes, same 4 workers (recorded once; the implementation no
/// longer exists to re-measure).
pub const SCOPED_SPAWN_BASELINE: [(&str, f64); 3] = [
    ("pool/scoped_spawn/dispatch_empty_4item", 52_174.0),
    ("pool/scoped_spawn/fanout_64x1us", 100_427.0),
    ("pool/scoped_spawn/per_item_100k", 21.54),
];

/// The `BENCH_pool.json` document.
pub fn pool_bench_json(b: &PoolBench) -> String {
    let mut entries = vec![
        format!(
            "    {{\"name\": \"pool/dispatch_empty_4item\", \"value\": {}, \"unit\": \"ns\"}}",
            fmt_f64(b.dispatch_empty_4item_ns)
        ),
        format!(
            "    {{\"name\": \"pool/fanout_64x1us\", \"value\": {}, \"unit\": \"ns\"}}",
            fmt_f64(b.fanout_64x1us_ns)
        ),
        format!(
            "    {{\"name\": \"pool/per_item_100k\", \"value\": {}, \"unit\": \"ns\"}}",
            fmt_f64(b.per_item_100k_ns)
        ),
        format!(
            "    {{\"name\": \"pool/fanout_checksum_64\", \"value\": {}, \"unit\": \"checksum\"}}",
            b.fanout_checksum_64
        ),
        format!(
            "    {{\"name\": \"pool/map_checksum_100k\", \"value\": {}, \"unit\": \"checksum\"}}",
            b.map_checksum_100k
        ),
        format!(
            "    {{\"name\": \"pool/workers\", \"value\": {}, \"unit\": \"workers\"}}",
            b.workers
        ),
    ];
    for (name, value) in SCOPED_SPAWN_BASELINE {
        entries.push(format!(
            "    {{\"name\": \"{name}\", \"value\": {}, \"unit\": \"ns\"}}",
            fmt_f64(value)
        ));
    }
    format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
}

/// Text table: current shim beside the frozen scoped-spawn baseline.
pub fn pool_bench_text(b: &PoolBench) -> String {
    let before: Vec<f64> = SCOPED_SPAWN_BASELINE.iter().map(|&(_, v)| v).collect();
    let current = [
        b.dispatch_empty_4item_ns,
        b.fanout_64x1us_ns,
        b.per_item_100k_ns,
    ];
    let labels = [
        "dispatch empty 4-item",
        "fan-out 64 x ~1us",
        "per item, 100k map",
    ];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(current.iter().zip(&before))
        .map(|(label, (&now, &then))| {
            vec![
                label.to_string(),
                format!("{now:.1}"),
                format!("{then:.1}"),
                format!("{:.1}x", then / now),
            ]
        })
        .collect();
    let mut out = fmt_table(
        &format!(
            "pool microbenchmark, {} workers (work-stealing pool vs frozen \
             scoped-spawn shim)",
            b.workers
        ),
        &["probe", "pool ns", "scoped-spawn ns", "speedup"],
        &rows,
    );
    out.push_str(&format!(
        "checksums: fanout_64 {} / map_100k {}\n",
        b.fanout_checksum_64, b.map_checksum_100k
    ));
    out
}

/// Fresh values for `pool/...` metric names (`bench-check` source). The
/// `pool/scoped_spawn/...` names get no fresh value on purpose — the old
/// implementation cannot be re-measured, so the checker reports them as
/// skipped (frozen baseline).
pub fn fresh_pool_metrics(fresh: &mut std::collections::HashMap<String, f64>) {
    let b = pool_bench();
    fresh.insert(
        "pool/dispatch_empty_4item".into(),
        b.dispatch_empty_4item_ns,
    );
    fresh.insert("pool/fanout_64x1us".into(), b.fanout_64x1us_ns);
    fresh.insert("pool/per_item_100k".into(), b.per_item_100k_ns);
    fresh.insert(
        "pool/fanout_checksum_64".into(),
        b.fanout_checksum_64 as f64,
    );
    fresh.insert("pool/map_checksum_100k".into(), b.map_checksum_100k as f64);
    fresh.insert("pool/workers".into(), b.workers as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gating metrics must be reproducible run to run: checksums are
    /// scheduling-independent, the worker count is pinned.
    #[test]
    fn checksums_are_deterministic() {
        let a = pool_bench();
        let b = pool_bench();
        assert_eq!(a.fanout_checksum_64, b.fanout_checksum_64);
        assert_eq!(a.map_checksum_100k, b.map_checksum_100k);
        assert_eq!(a.workers, POOL_BENCH_WORKERS);
        assert_eq!(b.workers, POOL_BENCH_WORKERS);
        // And they must equal the sequential fold of the same functions —
        // parallelism as a pure optimisation.
        assert_eq!(a.fanout_checksum_64, fold((0..64).map(spin)));
        assert_eq!(
            a.map_checksum_100k,
            fold((0..100_000).map(|i| u64::from(tiny(i))))
        );
    }

    #[test]
    fn bench_json_parses_and_covers_the_baseline() {
        let b = pool_bench();
        let text = pool_bench_json(&b);
        let metrics = crate::bench_check::parse_bench_metrics(&text).unwrap();
        assert_eq!(metrics.len(), 6 + SCOPED_SPAWN_BASELINE.len());
        assert!(metrics
            .iter()
            .any(|m| m.name == "pool/fanout_checksum_64" && m.unit == "checksum"));
        assert!(metrics
            .iter()
            .any(|m| m.name == "pool/scoped_spawn/dispatch_empty_4item" && m.unit == "ns"));
    }
}
