//! Exact-vs-heuristics comparison on a 2×2 CMP (paper §4.4).
//!
//! The paper reports that its CPLEX formulation "was unable to obtain
//! results on a platform larger than a 2×2 CMP"; this experiment runs our
//! exhaustive solver at that same scale and reports each heuristic's energy
//! as a ratio to the optimum, giving the "absolute measure of the quality
//! of the various heuristics" the paper asks for in its conclusion.

use std::sync::Arc;

use cmp_platform::Platform;
use ea_core::solvers::Exact;
use ea_core::{Instance, SolveCtx, Solver};
use rayon::prelude::*;
use spg::{random_spg, SpgGenConfig};

use crate::probe::probe_instance;
use crate::report::{fmt_norm, fmt_table};
use crate::runner::{run_portfolio, solver_names};

/// One instance's optimal energy and per-solver ratios to it.
#[derive(Debug, Clone)]
pub struct ExactInstance {
    /// Instance index.
    pub idx: usize,
    /// Stage count.
    pub n: usize,
    /// Elevation.
    pub elevation: u32,
    /// Probed period.
    pub period: f64,
    /// Optimal energy from the exhaustive solver.
    pub optimal: f64,
    /// Per-solver `E_h / E_opt` (portfolio order), `None` on failure.
    pub ratios: Vec<Option<f64>>,
}

/// The campaign results plus the solver names (table headers).
#[derive(Debug, Clone)]
pub struct ExactCampaign {
    /// Solver display names, in portfolio order.
    pub names: Vec<String>,
    /// Instances the exact solver could close.
    pub instances: Vec<ExactInstance>,
}

/// Runs the comparison: `count` random SPGs of 6–9 stages on a 2×2 CMP.
pub fn exact_campaign(count: usize, seed: u64, solvers: &[Arc<dyn Solver>]) -> ExactCampaign {
    let pf = Arc::new(Platform::paper(2, 2));
    let exact = Exact::default();
    let instances = (0..count)
        .into_par_iter()
        .filter_map(|idx| {
            use rand::{Rng, SeedableRng};
            let mut rng =
                rand_chacha::ChaCha8Rng::seed_from_u64(seed.wrapping_add(idx as u64 * 7919));
            let n = rng.gen_range(6..=9);
            let elevation = rng.gen_range(1..=3u32);
            let cfg = SpgGenConfig {
                n,
                elevation,
                ccr: Some([10.0, 1.0, 0.1][idx % 3]),
                ..Default::default()
            };
            let g = random_spg(&cfg, &mut rng);
            let base = Instance::from_shared(Arc::new(g), Arc::clone(&pf), 1.0);
            let inst = probe_instance(&base, seed)?;
            let opt = exact.solve(&inst, &SolveCtx::new(seed)).ok()?;
            let outcomes = run_portfolio(&inst, solvers, seed);
            let ratios = outcomes
                .iter()
                .map(|o| o.energy().map(|e| e / opt.energy()))
                .collect();
            Some(ExactInstance {
                idx,
                n,
                elevation,
                period: inst.period(),
                optimal: opt.energy(),
                ratios,
            })
        })
        .collect();
    ExactCampaign {
        names: solver_names(solvers),
        instances,
    }
}

/// Text report: one row per instance plus a mean row.
pub fn exact_text(campaign: &ExactCampaign) -> String {
    let headers: Vec<&str> = ["#", "n", "ymax", "T(s)", "E_opt(J)"]
        .into_iter()
        .chain(campaign.names.iter().map(String::as_str))
        .collect();
    let mut rows: Vec<Vec<String>> = campaign
        .instances
        .iter()
        .map(|i| {
            let mut row = vec![
                i.idx.to_string(),
                i.n.to_string(),
                i.elevation.to_string(),
                format!("{:.0e}", i.period),
                format!("{:.3e}", i.optimal),
            ];
            row.extend(i.ratios.iter().map(|r| fmt_norm(*r)));
            row
        })
        .collect();
    // Mean ratio over successes per solver.
    let mut mean = vec!["mean".into(), "".into(), "".into(), "".into(), "".into()];
    for k in 0..campaign.names.len() {
        let vals: Vec<f64> = campaign
            .instances
            .iter()
            .filter_map(|i| i.ratios[k])
            .collect();
        mean.push(if vals.is_empty() {
            "-".into()
        } else {
            format!("{:.3}", vals.iter().sum::<f64>() / vals.len() as f64)
        });
    }
    rows.push(mean);
    fmt_table(
        "Exact (ILP substitute) vs heuristics on a 2x2 CMP — E_h / E_opt",
        &headers,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::default_solvers;

    #[test]
    fn no_heuristic_beats_exact() {
        let campaign = exact_campaign(6, 2011, &default_solvers());
        assert!(!campaign.instances.is_empty());
        for i in &campaign.instances {
            for r in i.ratios.iter().flatten() {
                assert!(
                    *r >= 1.0 - 1e-9,
                    "heuristic beat the exact solver: ratio {r} on instance {}",
                    i.idx
                );
            }
        }
    }
}
