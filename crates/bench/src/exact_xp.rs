//! Exact-vs-heuristics comparison on a 2×2 CMP (paper §4.4).
//!
//! The paper reports that its CPLEX formulation "was unable to obtain
//! results on a platform larger than a 2×2 CMP"; this experiment runs our
//! exhaustive solver at that same scale and reports each heuristic's energy
//! as a ratio to the optimum, giving the "absolute measure of the quality
//! of the various heuristics" the paper asks for in its conclusion.

use cmp_platform::Platform;
use ea_core::{exact, ExactConfig, ALL_HEURISTICS};
use rayon::prelude::*;
use spg::{random_spg, SpgGenConfig};

use crate::probe::probe_period;
use crate::report::{fmt_norm, fmt_table};
use crate::runner::run_all_heuristics;

/// One instance's optimal energy and per-heuristic ratios to it.
#[derive(Debug, Clone)]
pub struct ExactInstance {
    /// Instance index.
    pub idx: usize,
    /// Stage count.
    pub n: usize,
    /// Elevation.
    pub elevation: u32,
    /// Probed period.
    pub period: f64,
    /// Optimal energy from the exhaustive solver.
    pub optimal: f64,
    /// Per-heuristic `E_h / E_opt` (plot order), `None` on failure.
    pub ratios: Vec<Option<f64>>,
}

/// Runs the comparison: `count` random SPGs of 6–9 stages on a 2×2 CMP.
pub fn exact_campaign(count: usize, seed: u64) -> Vec<ExactInstance> {
    let pf = Platform::paper(2, 2);
    (0..count)
        .into_par_iter()
        .filter_map(|idx| {
            use rand::{Rng, SeedableRng};
            let mut rng =
                rand_chacha::ChaCha8Rng::seed_from_u64(seed.wrapping_add(idx as u64 * 7919));
            let n = rng.gen_range(6..=9);
            let elevation = rng.gen_range(1..=3u32);
            let cfg = SpgGenConfig {
                n,
                elevation,
                ccr: Some([10.0, 1.0, 0.1][idx % 3]),
                ..Default::default()
            };
            let g = random_spg(&cfg, &mut rng);
            let t = probe_period(&g, &pf, seed)?;
            let opt = exact(&g, &pf, t, &ExactConfig::default()).ok()?;
            let outcomes = run_all_heuristics(&g, &pf, t, seed);
            let ratios = outcomes
                .iter()
                .map(|o| o.energy().map(|e| e / opt.energy()))
                .collect();
            Some(ExactInstance {
                idx,
                n,
                elevation,
                period: t,
                optimal: opt.energy(),
                ratios,
            })
        })
        .collect()
}

/// Text report: one row per instance plus a mean row.
pub fn exact_text(instances: &[ExactInstance]) -> String {
    let headers: Vec<&str> = ["#", "n", "ymax", "T(s)", "E_opt(J)"]
        .into_iter()
        .chain(ALL_HEURISTICS.iter().map(|h| h.name()))
        .collect();
    let mut rows: Vec<Vec<String>> = instances
        .iter()
        .map(|i| {
            let mut row = vec![
                i.idx.to_string(),
                i.n.to_string(),
                i.elevation.to_string(),
                format!("{:.0e}", i.period),
                format!("{:.3e}", i.optimal),
            ];
            row.extend(i.ratios.iter().map(|r| fmt_norm(*r)));
            row
        })
        .collect();
    // Mean ratio over successes per heuristic.
    let mut mean = vec!["mean".into(), "".into(), "".into(), "".into(), "".into()];
    for k in 0..ALL_HEURISTICS.len() {
        let vals: Vec<f64> = instances.iter().filter_map(|i| i.ratios[k]).collect();
        mean.push(if vals.is_empty() {
            "-".into()
        } else {
            format!("{:.3}", vals.iter().sum::<f64>() / vals.len() as f64)
        });
    }
    rows.push(mean);
    fmt_table(
        "Exact (ILP substitute) vs heuristics on a 2x2 CMP — E_h / E_opt",
        &headers,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_heuristic_beats_exact() {
        let instances = exact_campaign(6, 2011);
        assert!(!instances.is_empty());
        for i in &instances {
            for r in i.ratios.iter().flatten() {
                assert!(
                    *r >= 1.0 - 1e-9,
                    "heuristic beat the exact solver: ratio {r} on instance {}",
                    i.idx
                );
            }
        }
    }
}
