//! Dominance-pruning benchmark (`xp sweep --suite prune`).
//!
//! Runs the decade sweep of [`crate::sweep_xp`] twice per workload:
//! **pruned** (the 0.8 default — dominance frontier on, streaming
//! fallback past the edge cap) and **complete** (`dominance: false`, the
//! exact 0.7 semantics where an overflowing transition system is a hard
//! `TooExpensive` failure). Coverage is the full StreamIt table plus a
//! ≥256-stage generated workload whose complete transition system
//! overflows the default 1M edge cap — the workload class the dominance
//! layer unlocks.
//!
//! Correctness contract, asserted per point: wherever the complete mode
//! produces an energy, the pruned mode's energy is **bit-identical** —
//! within-row dominance only drops states no optimal completion extends,
//! and ties are kept, so the argmin chain is untouched.
//!
//! `BENCH_prune.json` records, per workload: feasible points and median
//! energy of the pruned mode, the scan ratio (admitted transitions
//! relaxed over admitted transitions total — the deterministic
//! state-reduction figure), the maximum certified bound gap (0 unless a
//! `frontier_cap` truncates), and the complete mode's feasible points
//! (the unlock: fewer than pruned wherever the edge cap used to abort).
//! Deterministic metrics gate in `xp bench-check`; wall times and their
//! ratio advise.

use std::sync::Arc;
use std::time::Instant;

use cmp_platform::Platform;
use ea_core::solvers::Dpa1d;
use ea_core::sweep::PeriodSweep;
use ea_core::{Dpa1dConfig, Instance, PruneStats, Solver};
use spg::generate::families::{FamilyKind, FamilyParams, WorkloadSpec};
use spg::{streamit_workflow, Spg, STREAMIT_SPECS};

use crate::report::{fmt_table, median};
use crate::sweep_xp::sweep_anchor_period;
use ea_core::json::fmt_f64;

/// Points in the prune benchmark's decade sweep (same resolution as the
/// committed `BENCH_sweep.json` decade).
pub const PRUNE_BENCH_POINTS: usize = 16;

/// Wall-clock samples per mode (medians).
const PRUNE_BENCH_SAMPLES: usize = 2;

/// The ≥256-stage generated workload of the suite: a TGFF-style mixed
/// SPG whose interned lattice fits the default ideal cap while its
/// complete transition system overflows the default 1M edge cap — under
/// 0.7 semantics every sweep point aborts `TooExpensive`; the dominance
/// layer solves the whole decade.
pub fn huge_workload(seed: u64) -> (String, Spg) {
    let params = FamilyParams {
        n: 256,
        width: 5,
        depth: 3,
        ..FamilyParams::default()
    };
    let spec = WorkloadSpec::new(FamilyKind::TgffMixed, params, seed);
    (spec.id(), spec.instantiate())
}

/// One workload's pruned-vs-complete decade sweep.
#[derive(Debug, Clone)]
pub struct PruneSweep {
    /// Workload name (Table 1 workflow or generated-workload id).
    pub workload: String,
    /// Stage count.
    pub stages: usize,
    /// Swept periods, loose to tight.
    pub periods: Vec<f64>,
    /// Per-point energy with dominance on (`None` = infeasible).
    pub pruned_energies: Vec<Option<f64>>,
    /// Per-point energy with `dominance: false` (`None` = infeasible or
    /// `TooExpensive`).
    pub complete_energies: Vec<Option<f64>>,
    /// Per-point prune telemetry of the pruned mode (`None` where the
    /// point failed).
    pub stats: Vec<Option<PruneStats>>,
    /// Complete-mode points lost to a budget abort (the failures the
    /// dominance layer converts into answers).
    pub complete_capped: usize,
    /// Median wall of the pruned sweep, ms.
    pub pruned_wall_ms: f64,
    /// Median wall of the complete sweep, ms.
    pub complete_wall_ms: f64,
}

impl PruneSweep {
    /// Feasible points of the pruned mode.
    pub fn feasible_points(&self) -> usize {
        self.pruned_energies.iter().flatten().count()
    }

    /// Feasible points of the complete mode.
    pub fn complete_feasible_points(&self) -> usize {
        self.complete_energies.iter().flatten().count()
    }

    /// Share of admitted transitions the pruned relaxation actually
    /// scanned, summed over the decade: `kept / (kept + pruned)`.
    /// Deterministic in the seed — the counters are order-independent
    /// sums — so it gates.
    pub fn scan_ratio(&self) -> Option<f64> {
        let (kept, pruned) = self.stats.iter().flatten().fold((0u64, 0u64), |(k, p), s| {
            (k + s.transitions_kept, p + s.transitions_pruned)
        });
        let total = kept + pruned;
        (total > 0).then(|| kept as f64 / total as f64)
    }

    /// Largest certified bound gap over the decade (0 unless a
    /// `frontier_cap` truncated an exact frontier — the default cap is
    /// unbounded, so the committed value pins this at exactly 0).
    pub fn bound_gap_max(&self) -> f64 {
        self.stats
            .iter()
            .flatten()
            .map(|s| s.bound_gap)
            .fold(0.0, f64::max)
    }

    /// Complete-over-pruned wall ratio (advisory).
    pub fn wall_ratio(&self) -> f64 {
        self.complete_wall_ms / self.pruned_wall_ms
    }
}

fn dpa1d_with_dominance(dominance: bool) -> Vec<Arc<dyn Solver>> {
    vec![Arc::new(Dpa1d {
        cfg: Dpa1dConfig {
            dominance,
            ..Dpa1dConfig::default()
        },
    })]
}

/// One decade sweep in one mode: median wall over the samples, plus the
/// last sample's per-point energies and prune telemetry (deterministic
/// across samples).
#[allow(clippy::type_complexity)]
fn mode_sweep(
    g: &Spg,
    pf: &Platform,
    grid: &[f64],
    seed: u64,
    dominance: bool,
) -> (f64, Vec<Option<f64>>, Vec<Option<PruneStats>>) {
    let mut walls = Vec::with_capacity(PRUNE_BENCH_SAMPLES);
    let mut energies = Vec::new();
    let mut stats = Vec::new();
    for _ in 0..PRUNE_BENCH_SAMPLES {
        // A fresh instance per sample: each sample pays the lattice and
        // skeleton builds once, like a real sweep session.
        let base = Instance::new(g.clone(), pf.clone(), grid[0]);
        let started = Instant::now();
        let report = PeriodSweep::over_periods(dpa1d_with_dominance(dominance), grid.to_vec())
            .seeded(seed)
            .parallel(false)
            .run(&base);
        walls.push(started.elapsed().as_secs_f64() * 1e3);
        energies = report.points.iter().map(|p| p.best_energy()).collect();
        stats = report
            .points
            .iter()
            .map(|p| p.runs[0].result.as_ref().ok().and_then(|s| s.prune))
            .collect();
    }
    (median(walls).unwrap_or(0.0), energies, stats)
}

/// Runs the full prune benchmark. Panics if any per-point energy the
/// complete mode produces differs from the pruned mode's — bit-identity
/// is the correctness contract of the dominance layer, not a tolerance.
pub fn prune_bench(seed: u64) -> Vec<PruneSweep> {
    let pf = Platform::paper(4, 4);
    let mut targets: Vec<(String, Spg)> = STREAMIT_SPECS
        .iter()
        .map(|spec| (spec.name.to_string(), streamit_workflow(spec, seed)))
        .collect();
    targets.push(huge_workload(seed));
    targets
        .into_iter()
        .map(|(name, g)| {
            let hi = sweep_anchor_period(&g);
            let grid = PeriodSweep::geometric(hi, hi / 10.0, PRUNE_BENCH_POINTS);
            let (pruned_wall_ms, pruned_energies, stats) = mode_sweep(&g, &pf, &grid, seed, true);
            let (complete_wall_ms, complete_energies, _) = mode_sweep(&g, &pf, &grid, seed, false);
            for (i, (p, c)) in pruned_energies.iter().zip(&complete_energies).enumerate() {
                if let Some(c) = c {
                    assert_eq!(
                        p.as_ref(),
                        Some(c),
                        "{name}: pruned energy must be bit-identical to the \
                         complete solve at point {i}"
                    );
                }
            }
            let complete_capped = complete_energies
                .iter()
                .zip(&pruned_energies)
                .filter(|(c, p)| c.is_none() && p.is_some())
                .count();
            PruneSweep {
                workload: name,
                stages: g.n(),
                periods: grid,
                pruned_energies,
                complete_energies,
                stats,
                complete_capped,
                pruned_wall_ms,
                complete_wall_ms,
            }
        })
        .collect()
}

/// The `BENCH_prune.json` document. Energies, point counts, scan ratios,
/// and bound gaps gate (deterministic); walls and their ratio advise.
pub fn prune_bench_json(sweeps: &[PruneSweep]) -> String {
    let mut entries = Vec::new();
    for s in sweeps {
        let prefix = format!("prune/{}", s.workload);
        entries.push(format!(
            "    {{\"name\": \"{prefix}/feasible_points\", \"value\": {}, \"unit\": \"points\"}}",
            s.feasible_points()
        ));
        entries.push(format!(
            "    {{\"name\": \"{prefix}/complete_feasible_points\", \"value\": {}, \"unit\": \"points\"}}",
            s.complete_feasible_points()
        ));
        if let Some(med) = median(s.pruned_energies.iter().flatten().copied().collect()) {
            entries.push(format!(
                "    {{\"name\": \"{prefix}/median_energy\", \"value\": {}, \"unit\": \"J\"}}",
                fmt_f64(med)
            ));
        }
        if let Some(ratio) = s.scan_ratio() {
            entries.push(format!(
                "    {{\"name\": \"{prefix}/scan_ratio\", \"value\": {}, \"unit\": \"ratio\"}}",
                fmt_f64(ratio)
            ));
        }
        entries.push(format!(
            "    {{\"name\": \"{prefix}/bound_gap_max\", \"value\": {}, \"unit\": \"J\"}}",
            fmt_f64(s.bound_gap_max())
        ));
        entries.push(format!(
            "    {{\"name\": \"{prefix}/pruned_wall\", \"value\": {}, \"unit\": \"ms\"}}",
            fmt_f64(s.pruned_wall_ms)
        ));
        entries.push(format!(
            "    {{\"name\": \"{prefix}/complete_wall\", \"value\": {}, \"unit\": \"ms\"}}",
            fmt_f64(s.complete_wall_ms)
        ));
        entries.push(format!(
            "    {{\"name\": \"{prefix}/wall_ratio\", \"value\": {}, \"unit\": \"speedup\"}}",
            fmt_f64(s.wall_ratio())
        ));
    }
    let unlocked: usize = sweeps.iter().map(|s| s.complete_capped).sum();
    entries.push(format!(
        "    {{\"name\": \"prune/unlocked_points\", \"value\": {unlocked}, \"unit\": \"points\"}}"
    ));
    format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
}

/// Text table for the prune benchmark.
pub fn prune_bench_text(sweeps: &[PruneSweep]) -> String {
    let rows: Vec<Vec<String>> = sweeps
        .iter()
        .map(|s| {
            vec![
                s.workload.clone(),
                s.stages.to_string(),
                format!("{}/{}", s.feasible_points(), s.periods.len()),
                format!("{}/{}", s.complete_feasible_points(), s.periods.len()),
                s.scan_ratio()
                    .map_or("-".into(), |r| format!("{:.1}%", r * 1e2)),
                format!("{:.2}", s.pruned_wall_ms),
                format!("{:.2}", s.complete_wall_ms),
            ]
        })
        .collect();
    let mut out = fmt_table(
        &format!(
            "dominance-pruning decade sweep, {PRUNE_BENCH_POINTS} points, DPA1D \
             (pruned = dominance on, complete = 0.7 semantics)"
        ),
        &[
            "workload",
            "stages",
            "pruned ok",
            "complete ok",
            "scanned",
            "pruned ms",
            "complete ms",
        ],
        &rows,
    );
    let unlocked: usize = sweeps.iter().map(|s| s.complete_capped).sum();
    out.push_str(&format!("points unlocked past the edge cap: {unlocked}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_bench_json_shape_parses() {
        let sweeps = vec![PruneSweep {
            workload: "Fake".into(),
            stages: 16,
            periods: vec![1.0, 0.1],
            pruned_energies: vec![Some(2.5), Some(3.5)],
            complete_energies: vec![Some(2.5), None],
            stats: vec![
                Some(PruneStats {
                    transitions_kept: 90,
                    transitions_pruned: 10,
                    frontier_max: 4,
                    bound_gap: 0.0,
                }),
                None,
            ],
            complete_capped: 1,
            pruned_wall_ms: 2.0,
            complete_wall_ms: 6.0,
        }];
        let doc = prune_bench_json(&sweeps);
        let metrics = crate::bench_check::parse_bench_metrics(&doc).unwrap();
        let get = |name: &str| metrics.iter().find(|m| m.name == name).unwrap();
        assert_eq!(get("prune/Fake/feasible_points").value, 2.0);
        assert_eq!(get("prune/Fake/complete_feasible_points").value, 1.0);
        assert_eq!(get("prune/Fake/scan_ratio").value, 0.9);
        assert_eq!(get("prune/Fake/bound_gap_max").value, 0.0);
        assert_eq!(get("prune/unlocked_points").value, 1.0);
        let ratio = get("prune/Fake/wall_ratio");
        assert_eq!(ratio.unit, "speedup", "wall ratios must stay advisory");
        assert!(prune_bench_text(&sweeps).contains("unlocked"));
    }

    #[test]
    fn huge_workload_is_huge() {
        let (name, g) = huge_workload(2011);
        assert!(g.n() >= 256, "{name} must be a ≥256-stage workload");
    }
}
