//! Period-bound selection (paper §6.1.3).
//!
//! > "We choose T as follows: for each workflow, we start with T = 1 s.
//! > With such a period, we observe that at least one heuristic succeeds.
//! > Then we iteratively divide the period by a factor of 10 and run all
//! > heuristics under this new value until all heuristics fail. We retain
//! > the period as the penultimate value."
//!
//! A defensive upward search (multiplying by 10, a few steps) covers
//! workloads where even `T = 1 s` is infeasible — the paper never hits this
//! case, and with the XScale platform neither do our workloads.
//!
//! Implementation: a sequential [`Race::FirstFeasible`] portfolio ordered
//! cheapest-first, so a decade is settled as soon as one solver succeeds,
//! and all probed periods share one [`Instance`]'s caches — in particular
//! `DPA1D`'s interned ideal lattice is enumerated **once** for the whole
//! decade sweep (it is period-independent), where the pre-0.2 probe
//! re-enumerated it at every probed period.

use std::sync::Arc;

use cmp_platform::Platform;
use ea_core::solvers::{Dpa1d, Dpa2d, Dpa2d1d, Greedy, Random};
use ea_core::{Instance, Portfolio, Race, Solver};
use spg::Spg;

/// Maximum upward decades tried when `T = 1 s` already fails everywhere.
const MAX_UP_DECADES: u32 = 6;
/// Maximum downward decades (safety stop; never reached in practice).
const MAX_DOWN_DECADES: u32 = 12;

/// Solvers ordered cheapest-first for the probe's short-circuit
/// evaluation: the probe only needs "at least one succeeds", so the
/// expensive dynamic programs (whose budget-exhaustion failure paths are
/// the costly case at loose periods) run only when the cheap ones fail.
pub fn probe_solvers() -> Vec<Arc<dyn Solver>> {
    vec![
        Arc::new(Greedy::default()),
        Arc::new(Random::default()),
        Arc::new(Dpa2d1d),
        Arc::new(Dpa2d),
        Arc::new(Dpa1d::default()),
    ]
}

/// Probes the period bound starting from `inst` (whatever its period is,
/// the sweep starts at `T = 1 s` per §6.1.3) and returns an instance at the
/// probed period **sharing `inst`'s caches**, or `None` when no solver
/// succeeds at any probed period.
pub fn probe_instance(inst: &Instance, seed: u64) -> Option<Instance> {
    let portfolio = Portfolio::new(probe_solvers())
        .seeded(seed)
        .parallel(false)
        .race(Race::FirstFeasible);
    let succeeds = |t: f64| portfolio.run(&inst.with_period(t)).best.is_some();

    let mut t = 1.0f64;
    if !succeeds(t) {
        // Defensive upward search.
        for _ in 0..MAX_UP_DECADES {
            t *= 10.0;
            if succeeds(t) {
                break;
            }
        }
        if !succeeds(t) {
            return None;
        }
    }
    // Downward decade search: keep the last value where somebody succeeds.
    for _ in 0..MAX_DOWN_DECADES {
        let next = t / 10.0;
        if succeeds(next) {
            t = next;
        } else {
            break;
        }
    }
    Some(inst.with_period(t))
}

/// Probes the period bound for one workload: the smallest decade value of
/// `T` at which at least one solver still succeeds. Returns `None` when
/// no solver succeeds at any probed period.
///
/// Convenience wrapper cloning the inputs into a throwaway [`Instance`];
/// campaign code should build the instance itself and call
/// [`probe_instance`] so the solvers that follow reuse its caches.
pub fn probe_period(spg: &Spg, pf: &Platform, seed: u64) -> Option<f64> {
    probe_instance(&Instance::new(spg.clone(), pf.clone(), 1.0), seed).map(|i| i.period())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg::chain;

    #[test]
    fn probe_finds_tight_decade_for_chain() {
        let pf = Platform::paper(2, 2);
        // 4 stages of 1e8 cycles: at T = 1 everything fits one slow core;
        // the binding constraint is 4e8 cycles over at most 4 cores at
        // 1 GHz -> T >= 0.1 s succeeds, T = 0.01 s needs 1e8 cycles in
        // 1e-2 s = 10 GHz per stage -> fails.
        let g = chain(&[1e8; 4], &[1e3; 3]);
        let t = probe_period(&g, &pf, 0).unwrap();
        assert!((t - 0.1).abs() < 1e-12, "probed {t}");
    }

    #[test]
    fn probe_none_when_hopeless() {
        // A stage heavier than fastest-speed capacity at the largest probed
        // period.
        let pf = Platform::paper(1, 1);
        let g = chain(&[1e17, 1.0], &[0.0]);
        assert!(probe_period(&g, &pf, 0).is_none());
    }

    #[test]
    fn probe_upward_search() {
        // 4e9 cycles on one core: T = 1 fails (needs 4 GHz), T = 10 works.
        let pf = Platform::paper(1, 1);
        let g = chain(&[2e9, 2e9], &[0.0]);
        let t = probe_period(&g, &pf, 0).unwrap();
        assert!((t - 10.0).abs() < 1e-9, "probed {t}");
    }

    #[test]
    fn probe_instance_shares_caches() {
        let g = chain(&[1e8; 4], &[1e3; 3]);
        let base = Instance::new(g, Platform::paper(2, 2), 1.0);
        // Warm the lattice, probe, and check the probed instance reuses it.
        let before = base.lattice(60_000).unwrap();
        let probed = probe_instance(&base, 0).unwrap();
        let after = probed.lattice(60_000).unwrap();
        assert!(Arc::ptr_eq(&before, &after));
        assert!((probed.period() - 0.1).abs() < 1e-12);
    }
}
