//! # ea-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6):
//!
//! | Artifact | Module | `xp` subcommand |
//! |---|---|---|
//! | Table 1 — StreamIt characteristics | [`streamit_xp`] | `table1` |
//! | Figure 8 — normalised energy, StreamIt, 4×4 | [`streamit_xp`] | `fig8` |
//! | Figure 9 — normalised energy, StreamIt, 6×6 | [`streamit_xp`] | `fig9` |
//! | Table 2 — StreamIt failure counts | [`streamit_xp`] | `table2` |
//! | Figures 10–13 — 1/E vs elevation, random SPGs | [`random_xp`] | `fig10..fig13` |
//! | Table 3 — random-SPG failure counts | [`random_xp`] | `table3` |
//! | §4.4 exact-vs-heuristics check on 2×2 | [`exact_xp`] | `exact` |
//! | Ablations (routing, downgrade, E_bit) | [`ablation`] | `ablation-*` |
//! | Mesh vs torus vs ring comparison | [`topology_xp`] | `topology` |
//! | Per-backend end-to-end smoke (CI gate) | [`topology_xp`] | `smoke` |
//! | Synthetic-family campaign engine | [`campaign`] | `campaign` |
//! | Dominance-pruning decade benchmark | [`prune_xp`] | `sweep --suite prune` |
//! | Perf-regression gate vs `BENCH_*.json` | [`bench_check`] | `bench-check` |
//!
//! The period bound per workload follows §6.1.3 exactly ([`probe`]): start
//! at `T = 1 s`, divide by ten until every heuristic fails, keep the
//! penultimate value.
//!
//! Campaigns run on `ea_core`'s solver-session API: one
//! [`ea_core::Instance`] per workload shares the interned ideal lattice
//! (and the other derived structures) between the period probe and the
//! final portfolio run, and an `xp --solvers a,b,c` filter selects any
//! subset of the registered solvers via [`ea_core::SolverRegistry`].

pub mod ablation;
pub mod bench_check;
pub mod campaign;
pub mod exact_xp;
pub mod incremental_xp;
pub mod json;
pub mod pool_xp;
pub mod probe;
pub mod prune_xp;
pub mod random_xp;
pub mod report;
pub mod runner;
pub mod serve_xp;
pub mod streamit_xp;
pub mod sweep_xp;
pub mod topology_xp;

pub use bench_check::{bench_check_files, compare, parse_bench_metrics, Check, Metric, Status};
pub use campaign::{
    merge_shards, run_campaign, CampaignOutcome, CampaignSpec, JobRecord, MergeOutcome, Shard,
};
pub use probe::{probe_instance, probe_period};
pub use runner::{best_energy, default_solvers, run_portfolio, solver_names, SolverOutcome};
pub use topology_xp::{make_platform, smoke_text, topology_campaign};
