//! Deprecated alias: the minimal JSON module moved to [`ea_core::json`]
//! in 0.7 so the serve daemon can speak the wire protocol without
//! depending on the benchmark crate. This module re-exports the moved
//! items for downstream compatibility; new code should import
//! `ea_core::json` (or `spg_cmp::json` through the facade).

#[deprecated(since = "0.7.0", note = "moved to `ea_core::json`")]
pub use ea_core::json::{escape, fmt_f64, obj, Json};
