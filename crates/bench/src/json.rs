//! Minimal JSON support for the campaign engine and the benchmark gate.
//!
//! The workspace is dependency-free by policy (see `crates/vendor/`), so
//! the small amount of JSON this crate needs — append-only campaign
//! records, and the committed `BENCH_*.json` files — is handled by a
//! ~150-line recursive-descent parser and a couple of writers instead of
//! `serde`. Numbers format through Rust's shortest-roundtrip `Display`,
//! which is deterministic — the property the campaign's byte-identical
//! resume guarantee rests on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects keep insertion order out of scope — the
/// consumers here look fields up by name.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => keyword(b, pos, "false", Json::Bool(false)),
        Some(b'n') => keyword(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn keyword(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not needed for our own files;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = utf8_len(c);
                let s = std::str::from_utf8(&b[*pos..*pos + ch_len])
                    .map_err(|_| format!("bad utf-8 at byte {}", *pos))?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Escapes a string for embedding in JSON output (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number: shortest-roundtrip, with non-finite
/// values mapped to `null` (JSON has no NaN/inf). Deterministic — equal
/// bits always produce equal bytes.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` prints integral floats without a dot; keep them valid
        // JSON numbers as-is (1e30 etc. are fine too).
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_file_shape() {
        let doc = r#"{ "results": [
            {"name": "a/b", "value": 1.5e-2, "unit": "J"},
            {"name": "c", "median_ns": 123.25, "samples": 10}
        ] }"#;
        let v = Json::parse(doc).unwrap();
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("name").unwrap().as_str(), Some("a/b"));
        assert_eq!(results[0].get("value").unwrap().as_f64(), Some(1.5e-2));
        assert_eq!(results[1].get("median_ns").unwrap().as_f64(), Some(123.25));
    }

    #[test]
    fn round_trips_escapes_and_numbers() {
        let v = Json::parse(r#"{"s": "a\"b\\c\nd", "n": -1.25e-3, "t": true, "z": null}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-1.25e-3));
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("z"), Some(&Json::Null));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": 1").is_err()); // truncated
        assert!(Json::parse("{} x").is_err()); // trailing
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn f64_formatting_is_deterministic() {
        assert_eq!(fmt_f64(0.017915296047672412), "0.017915296047672412");
        assert_eq!(fmt_f64(2.0), "2");
        assert_eq!(fmt_f64(f64::NAN), "null");
        // Round-trip: parse(format(x)) == x bit-for-bit.
        for &x in &[1.0 / 3.0, 1e-300, 123456.789, -0.0] {
            let s = fmt_f64(x);
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
    }
}
