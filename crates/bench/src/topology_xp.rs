//! Topology comparison campaign (`xp topology`) and the per-backend smoke
//! runner (`xp smoke`, the CI gate).
//!
//! The ROADMAP's scenario-diversity goal needs interconnect topology as an
//! experimental axis, not a constant: this module runs the StreamIt suite
//! end-to-end (probe → portfolio → evaluate → simulate) on every shipped
//! topology backend at the *same* period bound (probed once, on the paper's
//! mesh), so the per-topology best energies are directly comparable. On
//! every instance where both are feasible, the torus can only shorten
//! routes relative to the mesh (wrap links are extra options and the
//! shortest router only takes one when it is strictly shorter), so its
//! best energy is at most the mesh's — recorded in `BENCH_topology.json`
//! and pinned by the cross-topology integration tests.

use std::sync::Arc;
use std::time::Instant;

use cmp_platform::{Platform, RoutePolicy, TopologyKind};
use ea_core::{Instance, Portfolio, Solver};
use rayon::prelude::*;
use spg::{streamit_workflow, STREAMIT_SPECS};
use stream_sim::{simulate_with, SimConfig};

use crate::probe::probe_instance;
use crate::report::fmt_table;

/// The paper's electrical parameters on one topology backend, with an
/// optional routing-policy override (`None` = the backend's default:
/// XY on the mesh, shortest on torus/ring).
pub fn make_platform(kind: TopologyKind, p: u32, q: u32, routing: Option<RoutePolicy>) -> Platform {
    let pf = Platform::paper_topology(kind, p, q);
    match routing {
        Some(policy) => pf.with_policy(policy),
        None => pf,
    }
}

/// Best-of-portfolio outcome of one workflow on one topology backend.
#[derive(Debug, Clone)]
pub struct TopologyOutcome {
    /// Lowest energy over the portfolio, joules.
    pub energy: f64,
    /// Which solver produced it.
    pub solver: String,
    /// Wall time of the whole portfolio run, seconds.
    pub wall_s: f64,
    /// Steady-state period achieved by the discrete-event simulation of
    /// the best mapping (the end-to-end cross-check).
    pub sim_period: f64,
}

/// One workflow row of the topology campaign.
#[derive(Debug, Clone)]
pub struct TopologyRow {
    /// Workflow name (Table 1).
    pub workflow: String,
    /// Period bound, probed once on the mesh (§6.1.3); `None` when no
    /// solver succeeds at any probed decade.
    pub period: Option<f64>,
    /// One outcome per backend, in [`TopologyKind::ALL`] order; `None`
    /// when every solver failed on that backend.
    pub outcomes: Vec<Option<TopologyOutcome>>,
}

/// The full campaign: 12 StreamIt workflows × the three topology backends.
#[derive(Debug, Clone)]
pub struct TopologyCampaign {
    /// Grid label, e.g. `4x4`.
    pub grid: String,
    /// Per-workflow rows, in Table 1 order.
    pub rows: Vec<TopologyRow>,
}

/// Runs the StreamIt suite (original CCR) across mesh, torus, and ring at
/// the mesh-probed period per workflow. Rayon fans out over workflows; the
/// per-topology portfolio runs sequentially inside a workflow so the wall
/// times stay comparable.
pub fn topology_campaign(
    p: u32,
    q: u32,
    seed: u64,
    solvers: &[Arc<dyn Solver>],
) -> TopologyCampaign {
    let rows = STREAMIT_SPECS
        .par_iter()
        .map(|spec| {
            let g = Arc::new(streamit_workflow(spec, seed));
            let inst_seed = seed ^ (spec.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mesh = Arc::new(Platform::paper(p, q));
            let base = Instance::from_shared(Arc::clone(&g), mesh, 1.0);
            let Some(probed) = probe_instance(&base, inst_seed) else {
                return TopologyRow {
                    workflow: spec.name.to_string(),
                    period: None,
                    outcomes: vec![None; TopologyKind::ALL.len()],
                };
            };
            let period = probed.period();
            let outcomes = TopologyKind::ALL
                .iter()
                .map(|&kind| {
                    // Deliberately a cold instance per backend (the probe's
                    // warm caches are NOT reused, even for the mesh): the
                    // recorded wall times compare backends fairly when all
                    // three pay their lattice/route-table precomputation.
                    let pf = Arc::new(make_platform(kind, p, q, None));
                    let inst = Instance::from_shared(Arc::clone(&g), pf, period);
                    let started = Instant::now();
                    let report = Portfolio::new(solvers.to_vec())
                        .seeded(inst_seed)
                        .run(&inst);
                    let wall_s = started.elapsed().as_secs_f64();
                    let best = report.best_solution()?;
                    let table = inst.route_table_for(&best.mapping);
                    let sim = simulate_with(
                        inst.spg(),
                        inst.platform(),
                        &best.mapping,
                        SimConfig::default(),
                        table.as_deref(),
                    )
                    .expect("best mapping must simulate");
                    Some(TopologyOutcome {
                        energy: best.energy(),
                        solver: report.best_run().expect("has a best").name.clone(),
                        wall_s,
                        sim_period: sim.achieved_period,
                    })
                })
                .collect();
            TopologyRow {
                workflow: spec.name.to_string(),
                period: Some(period),
                outcomes,
            }
        })
        .collect();
    TopologyCampaign {
        grid: format!("{p}x{q}"),
        rows,
    }
}

/// The `topology/...` entries of `BENCH_topology.json`: per-backend
/// suite medians (best energy gates, portfolio wall advises) and the
/// per-workflow gating energies — the exact names `bench-check`
/// recomputes. The committed file also carries the criterion
/// `evaluate_*` timing entries from `cargo bench -p ea-bench`; appending
/// those is the re-baselining script's job (see README), not this
/// function's.
pub fn topology_bench_json(campaign: &TopologyCampaign) -> String {
    use crate::report::median;
    use ea_core::json::fmt_f64;

    let mut entries = Vec::new();
    let mut workflow_energies: Vec<Vec<(String, f64)>> = Vec::new();
    for (k, kind) in TopologyKind::ALL.iter().enumerate() {
        let mut energies = Vec::new();
        let mut walls = Vec::new();
        let mut per_wf = Vec::new();
        for row in &campaign.rows {
            if let Some(o) = &row.outcomes[k] {
                per_wf.push((row.workflow.clone(), o.energy));
                energies.push(o.energy);
                walls.push(o.wall_s * 1e3);
            }
        }
        workflow_energies.push(per_wf);
        if let Some(med) = median(energies) {
            entries.push(format!(
                "    {{\n      \"name\": \"topology/streamit_median_best_energy/{kind}\",\n      \
                 \"value\": {},\n      \"unit\": \"J\"\n    }}",
                fmt_f64(med)
            ));
        }
        if let Some(med) = median(walls) {
            entries.push(format!(
                "    {{\n      \"name\": \"topology/streamit_median_portfolio_wall/{kind}\",\n      \
                 \"value\": {},\n      \"unit\": \"ms\"\n    }}",
                fmt_f64(med)
            ));
        }
    }
    // Grouped by workflow, backends inner — the committed file's order.
    for row in &campaign.rows {
        for (k, kind) in TopologyKind::ALL.iter().enumerate() {
            if let Some((wf, e)) = workflow_energies[k]
                .iter()
                .find(|(wf, _)| *wf == row.workflow)
            {
                entries.push(format!(
                    "    {{\"name\": \"topology/energy/{wf}/{kind}\", \"value\": {}, \
                     \"unit\": \"J\"}}",
                    fmt_f64(*e)
                ));
            }
        }
    }
    format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
}

/// Text table: per-workflow best energy (and winning solver) per backend,
/// plus the torus/mesh energy ratio.
pub fn topology_text(campaign: &TopologyCampaign) -> String {
    let mut rows = Vec::new();
    for row in &campaign.rows {
        let mut r = vec![
            row.workflow.clone(),
            row.period.map_or("-".into(), |t| format!("{t:.0e}")),
        ];
        for o in &row.outcomes {
            match o {
                Some(o) => {
                    r.push(format!("{:.4e}", o.energy));
                    r.push(o.solver.clone());
                }
                None => {
                    r.push("fail".into());
                    r.push("-".into());
                }
            }
        }
        let ratio = match (&row.outcomes[0], &row.outcomes[1]) {
            (Some(mesh), Some(torus)) => format!("{:.4}", torus.energy / mesh.energy),
            _ => "-".into(),
        };
        r.push(ratio);
        rows.push(r);
    }
    fmt_table(
        &format!(
            "Topology comparison ({} grid, StreamIt suite, mesh-probed periods)",
            campaign.grid
        ),
        &[
            "Workflow",
            "T(s)",
            "E(mesh)",
            "by",
            "E(torus)",
            "by",
            "E(ring)",
            "by",
            "torus/mesh",
        ],
        &rows,
    )
}

/// CSV rows matching [`TOPOLOGY_CSV_HEADERS`].
pub fn topology_csv_rows(campaign: &TopologyCampaign) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for row in &campaign.rows {
        for (kind, o) in TopologyKind::ALL.iter().zip(&row.outcomes) {
            rows.push(vec![
                campaign.grid.clone(),
                row.workflow.clone(),
                kind.to_string(),
                row.period.map_or("-".into(), |t| format!("{t:e}")),
                o.as_ref()
                    .map_or("fail".into(), |o| format!("{:e}", o.energy)),
                o.as_ref().map_or("-".into(), |o| o.solver.clone()),
                o.as_ref()
                    .map_or("-".into(), |o| format!("{:.6}", o.wall_s)),
                o.as_ref()
                    .map_or("-".into(), |o| format!("{:e}", o.sim_period)),
            ]);
        }
    }
    rows
}

/// CSV header matching [`topology_csv_rows`].
pub const TOPOLOGY_CSV_HEADERS: [&str; 8] = [
    "grid",
    "workflow",
    "topology",
    "period_s",
    "best_energy_j",
    "best_solver",
    "portfolio_wall_s",
    "sim_period_s",
];

/// One small instance end-to-end on one `(topology, routing)` combination:
/// probe → portfolio → evaluate → simulate. Returns a one-line summary, or
/// an error when any step fails — the CI smoke gate runs this once per
/// combination.
pub fn smoke_text(
    kind: TopologyKind,
    routing: Option<RoutePolicy>,
    seed: u64,
    solvers: &[Arc<dyn Solver>],
) -> Result<String, String> {
    let pf = make_platform(kind, 2, 3, routing);
    let policy = pf.policy;
    // A small pipeline every solver can handle on 6 cores.
    let g = spg::chain(&[2e8; 6], &[1e5; 5]);
    let inst = Instance::new(g, pf, 1.0);
    let probed = probe_instance(&inst, seed)
        .ok_or_else(|| format!("smoke: probe failed on {kind}/{policy}"))?;
    let report = Portfolio::new(solvers.to_vec()).seeded(seed).run(&probed);
    let best = report
        .best_solution()
        .ok_or_else(|| format!("smoke: every solver failed on {kind}/{policy}"))?;
    let table = probed.route_table_for(&best.mapping);
    let sim = simulate_with(
        probed.spg(),
        probed.platform(),
        &best.mapping,
        SimConfig::default(),
        table.as_deref(),
    )
    .map_err(|e| format!("smoke: simulation failed on {kind}/{policy}: {e}"))?;
    if sim.achieved_period > probed.period() * 1.02 {
        return Err(format!(
            "smoke: simulated period {:.3e}s exceeds the bound {:.3e}s on {kind}/{policy}",
            sim.achieved_period,
            probed.period()
        ));
    }
    Ok(format!(
        "[smoke] {kind}/{policy}: T={:.1e}s best={} E={:.4e}J sim_period={:.3e}s ok",
        probed.period(),
        report.best_run().expect("has a best").name,
        best.energy(),
        sim.achieved_period,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::default_solvers;

    #[test]
    fn smoke_passes_on_every_backend_and_policy() {
        let solvers = default_solvers();
        for kind in TopologyKind::ALL {
            for routing in [None, Some(RoutePolicy::Yx)] {
                smoke_text(kind, routing, 7, &solvers).unwrap();
            }
        }
    }

    #[test]
    fn make_platform_applies_overrides() {
        let pf = make_platform(TopologyKind::Torus, 3, 3, Some(RoutePolicy::Xy));
        assert_eq!(pf.topology, TopologyKind::Torus);
        assert_eq!(pf.policy, RoutePolicy::Xy);
        assert_eq!(
            make_platform(TopologyKind::Torus, 3, 3, None).policy,
            RoutePolicy::Shortest
        );
    }
}
