//! Ablation studies for the design choices called out in DESIGN.md §9.
//!
//! * **Routing order** — the paper's §5.1 XY description is ambiguous; this
//!   quantifies row-first vs column-first XY on `Random`'s mappings.
//! * **Speed downgrade** — `Greedy`'s §5.2 post-pass ("downgrading the
//!   speed of each core, if possible … cores which are not used are turned
//!   off").
//! * **Link energy `E_bit`** — the paper fixes 6 pJ/bit inside the
//!   published 1–10 pJ range \[9\]; this sweeps the range and reports how the
//!   heuristic ranking responds (a hook for the paper's communication-power
//!   future work).

use cmp_mapping::{assign_optimal_speeds, evaluate, RouteSpec};
use cmp_platform::{Platform, RouteOrder};
use ea_core::solvers::{Greedy, Random};
use ea_core::{greedy_opts, refine, Instance, RefineConfig, SolveCtx, Solver};
use rayon::prelude::*;
use spg::{random_spg, SpgGenConfig};

use std::sync::Arc;

use crate::probe::probe_instance;
use crate::report::fmt_table;
use crate::runner::run_portfolio;

fn instances(count: usize, seed: u64) -> Vec<(spg::Spg, u64)> {
    use rand::{Rng, SeedableRng};
    (0..count)
        .map(|i| {
            let s = seed.wrapping_add(i as u64 * 6007);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(s);
            let cfg = SpgGenConfig {
                n: 40,
                elevation: rng.gen_range(2..=8),
                ccr: Some([10.0, 1.0, 0.1][i % 3]),
                ..Default::default()
            };
            (random_spg(&cfg, &mut rng), s)
        })
        .collect()
}

/// Builds and probes a session for one ablation workload.
fn probed(g: &spg::Spg, pf: &Platform, seed: u64) -> Option<Instance> {
    probe_instance(&Instance::new(g.clone(), pf.clone(), 1.0), seed)
}

/// Routing ablation: re-evaluate `Random`'s mappings under the transposed
/// XY order.
pub fn routing_text(count: usize, seed: u64) -> String {
    let pf = Platform::paper(4, 4);
    let rows: Vec<Vec<String>> = instances(count, seed)
        .par_iter()
        .enumerate()
        .filter_map(|(i, (g, s))| {
            let inst = probed(g, &pf, *s)?;
            let sol = Random::default().solve(&inst, &SolveCtx::new(*s)).ok()?;
            let row_first = sol.energy();
            let mut m = sol.mapping.clone();
            m.routes = RouteSpec::Xy(RouteOrder::ColFirst);
            let col_first = evaluate(g, &pf, &m, inst.period());
            Some(vec![
                i.to_string(),
                format!("{:.3e}", row_first),
                match &col_first {
                    Ok(e) => format!("{:.3e}", e.energy),
                    Err(_) => "invalid".into(),
                },
                match &col_first {
                    Ok(e) => format!("{:+.2}%", (e.energy / row_first - 1.0) * 100.0),
                    Err(_) => "-".into(),
                },
            ])
        })
        .collect();
    fmt_table(
        "Ablation: XY route order on Random's mappings (row-first vs col-first)",
        &["#", "E(row-first)", "E(col-first)", "delta"],
        &rows,
    )
}

/// Downgrade ablation: `Greedy` with and without the §5.2 speed-downgrade
/// post-pass.
pub fn downgrade_text(count: usize, seed: u64) -> String {
    let pf = Platform::paper(4, 4);
    let rows: Vec<Vec<String>> = instances(count, seed)
        .par_iter()
        .enumerate()
        .filter_map(|(i, (g, s))| {
            let inst = probed(g, &pf, *s)?;
            let t = inst.period();
            let with = greedy_opts(g, &pf, t, true).ok()?;
            let without = greedy_opts(g, &pf, t, false).ok()?;
            Some(vec![
                i.to_string(),
                format!("{:.3e}", with.energy()),
                format!("{:.3e}", without.energy()),
                format!("{:.2}x", without.energy() / with.energy()),
            ])
        })
        .collect();
    fmt_table(
        "Ablation: Greedy speed-downgrade post-pass (paper §5.2)",
        &["#", "E(downgrade)", "E(uniform)", "saving"],
        &rows,
    )
}

/// Speed-rule ablation: the paper's slowest-feasible speed rule vs the
/// energy-optimal rule (argmin `P(s)/s`). They differ because the XScale
/// table's `P(s)/s` is not monotone (0.4 GHz is cheaper per cycle than
/// 0.15 GHz).
pub fn speedrule_text(count: usize, seed: u64) -> String {
    let pf = Platform::paper(4, 4);
    let rows: Vec<Vec<String>> = instances(count, seed)
        .par_iter()
        .enumerate()
        .filter_map(|(i, (g, s))| {
            let inst = probed(g, &pf, *s)?;
            let t = inst.period();
            let sol = Greedy::default().solve(&inst, &SolveCtx::new(*s)).ok()?;
            let paper_rule = sol.energy();
            let speeds = assign_optimal_speeds(g, &pf, &sol.mapping.alloc, t)?;
            let mut m = sol.mapping.clone();
            m.speed = speeds;
            let optimal_rule = evaluate(g, &pf, &m, t).ok()?.energy;
            Some(vec![
                i.to_string(),
                format!("{:.4e}", paper_rule),
                format!("{:.4e}", optimal_rule),
                format!("{:+.2}%", (optimal_rule / paper_rule - 1.0) * 100.0),
            ])
        })
        .collect();
    fmt_table(
        "Ablation: slowest-feasible (paper) vs energy-optimal speed rule, on Greedy's allocations",
        &["#", "E(min-speed)", "E(opt-speed)", "delta"],
        &rows,
    )
}

/// Refinement headroom: how much a stage-migration hill-climb improves
/// each solver's mapping (a relative quality measure at scales the
/// exact solver cannot reach).
pub fn refine_text(count: usize, seed: u64, solvers: &[Arc<dyn Solver>]) -> String {
    let pf = Platform::paper(4, 4);
    let mut rows = Vec::new();
    for solver in solvers {
        let gains: Vec<f64> = instances(count, seed)
            .par_iter()
            .filter_map(|(g, s)| {
                let inst = probed(g, &pf, *s)?;
                let sol = solver.solve(&inst, &SolveCtx::new(*s)).ok()?;
                let refined = refine(g, &pf, &sol, inst.period(), &RefineConfig::default());
                Some(1.0 - refined.energy() / sol.energy())
            })
            .collect();
        let mean = if gains.is_empty() {
            f64::NAN
        } else {
            gains.iter().sum::<f64>() / gains.len() as f64
        };
        let max = gains.iter().copied().fold(0.0f64, f64::max);
        rows.push(vec![
            solver.name().to_string(),
            gains.len().to_string(),
            if mean.is_nan() {
                "-".into()
            } else {
                format!("{:.2}%", mean * 100.0)
            },
            format!("{:.2}%", max * 100.0),
        ]);
    }
    fmt_table(
        "Ablation: local-search headroom left by each heuristic (energy saved by hill-climb)",
        &["heuristic", "instances", "mean saving", "max saving"],
        &rows,
    )
}

/// `E_bit` sweep: mean normalised energy per solver at 1 / 6 / 10 pJ.
pub fn ebit_text(count: usize, seed: u64, solvers: &[Arc<dyn Solver>]) -> String {
    let h = solvers.len();
    let mut rows = Vec::new();
    for ebit_pj in [1.0, 6.0, 10.0] {
        let mut pf = Platform::paper(4, 4);
        pf.e_bit = ebit_pj * 1e-12;
        let sums: Vec<(Vec<f64>, Vec<usize>)> = instances(count, seed)
            .par_iter()
            .filter_map(|(g, s)| {
                let inst = probed(g, &pf, *s)?;
                let outcomes = run_portfolio(&inst, solvers, *s);
                let best = outcomes
                    .iter()
                    .filter_map(|o| o.energy())
                    .min_by(|a, b| a.total_cmp(b))?;
                let mut norm = vec![0.0; h];
                let mut ok = vec![0usize; h];
                for (k, o) in outcomes.iter().enumerate() {
                    if let Some(e) = o.energy() {
                        norm[k] = e / best;
                        ok[k] = 1;
                    }
                }
                Some((norm, ok))
            })
            .collect();
        let mut row = vec![format!("{ebit_pj} pJ")];
        for k in 0..h {
            let (sum, cnt) = sums
                .iter()
                .fold((0.0, 0usize), |(s, c), (norm, ok)| (s + norm[k], c + ok[k]));
            row.push(if cnt == 0 {
                "-".into()
            } else {
                format!("{:.3}", sum / cnt as f64)
            });
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("E_bit".to_string())
        .chain(solvers.iter().map(|s| s.name().to_string()))
        .collect();
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    fmt_table(
        "Ablation: link energy sweep (mean normalised energy over successes)",
        &headers,
        &rows,
    )
}
