//! The perf-regression gate (`xp bench-check`).
//!
//! Compares *fresh* measurements against the benchmark numbers committed
//! in `BENCH_*.json` files and fails (non-zero exit) on regression — the
//! CI step that keeps the recorded baselines honest.
//!
//! Two classes of metric, told apart by their unit:
//!
//! * **energy metrics** (unit `J`, and ratios) are *deterministic* in the
//!   committed seed, so any drift is a real behaviour change. These
//!   **gate**: a relative deviation beyond the tolerance fails the check.
//! * **time metrics** (`ns` / `ms` / `s`) depend on the machine and on
//!   scheduler noise; on shared CI runners they would make the gate
//!   flaky. These are **advisory**: the drift is reported, never fatal.
//!
//! A metric the checker does not know how to recompute (e.g. the criterion
//! micro-benchmarks of `BENCH_baseline.json`) is reported as *skipped*.
//! Fresh values are recomputed lazily, once per source: the topology
//! campaign for `topology/...` names, the campaign-realistic warm StreamIt
//! portfolio for `energy/<workflow>/<solver>` and
//! `streamit_portfolio/<workflow>` names, the decade sweep for
//! `sweep/...` names, the pool microbenchmark for `pool/...` names
//! (whose checksums gate — parallel scheduling must stay a pure
//! optimisation), the loopback serve benchmark for `serve/...` names,
//! the dominance-pruning benchmark for `prune/...` names (pruned-vs-
//! complete `DPA1D` decade sweeps; scan ratios and bound gaps gate), and
//! the fault-injection remap campaign for `incremental/...` names
//! (delta-patched re-solve vs cold rebuild; energies, regrets and the
//! speedup-median gate bit gate).

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use cmp_platform::{Platform, TopologyKind};
use ea_core::{Instance, Portfolio, Solver};
use spg::{streamit_workflow, Spg, STREAMIT_SPECS};

use crate::report::{fmt_table, median};
use crate::topology_xp::topology_campaign;
use ea_core::json::Json;

/// One committed benchmark entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (e.g. `topology/energy/DES/mesh`).
    pub name: String,
    /// Committed value.
    pub value: f64,
    /// Unit (`J`, `ms`, `ns`, `ratio`, …).
    pub unit: String,
}

/// Loads the metrics of one `BENCH_*.json` document. Accepts both shapes
/// used in this repository: `{name, value, unit}` entries and criterion
/// `{name, median_ns, ...}` timing entries (unit `ns`).
pub fn parse_bench_metrics(text: &str) -> Result<Vec<Metric>, String> {
    let doc = Json::parse(text)?;
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing 'results' array")?;
    let mut metrics = Vec::with_capacity(results.len());
    for entry in results {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .ok_or("entry without a name")?
            .to_string();
        if let Some(value) = entry.get("value").and_then(Json::as_f64) {
            let unit = entry
                .get("unit")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            metrics.push(Metric { name, value, unit });
        } else if let Some(value) = entry.get("median_ns").and_then(Json::as_f64) {
            metrics.push(Metric {
                name,
                value,
                unit: "ns".into(),
            });
        } else {
            return Err(format!("entry '{name}' has neither value nor median_ns"));
        }
    }
    Ok(metrics)
}

/// Whether a unit denotes wall-clock time (advisory-only metrics).
pub fn is_time_unit(unit: &str) -> bool {
    matches!(unit, "ns" | "us" | "µs" | "ms" | "s")
}

/// Whether a metric is advisory (never gates): wall-clock times, and
/// quantities *derived* from wall-clock times — a `speedup` is a ratio of
/// two walls, so it inherits their machine dependence.
pub fn is_advisory_unit(unit: &str) -> bool {
    is_time_unit(unit) || unit == "speedup"
}

/// Verdict for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Deterministic metric within tolerance.
    Pass,
    /// Deterministic metric out of tolerance — fails the gate.
    Fail,
    /// Time metric: drift reported, never fatal.
    Advisory,
    /// No recomputer for this metric.
    Skipped,
}

impl Status {
    fn label(self) -> &'static str {
        match self {
            Status::Pass => "pass",
            Status::Fail => "FAIL",
            Status::Advisory => "advisory",
            Status::Skipped => "skipped",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Check {
    /// Metric name.
    pub name: String,
    /// Unit from the committed file.
    pub unit: String,
    /// Committed value.
    pub committed: f64,
    /// Freshly recomputed value, when a recomputer exists.
    pub fresh: Option<f64>,
    /// Relative deviation `(fresh - committed) / |committed|`.
    pub rel: Option<f64>,
    /// The verdict.
    pub status: Status,
}

/// Pure comparison: committed metrics against a fresh-value source.
/// Deterministic (non-time) metrics gate at `tolerance` relative
/// deviation; time metrics are advisory; metrics without a fresh value are
/// skipped.
pub fn compare(
    metrics: &[Metric],
    fresh_of: impl Fn(&str) -> Option<f64>,
    tolerance: f64,
) -> Vec<Check> {
    metrics
        .iter()
        .map(|m| {
            let fresh = fresh_of(&m.name);
            let rel = fresh.map(|f| {
                if m.value == 0.0 {
                    if f == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (f - m.value) / m.value.abs()
                }
            });
            let status = match (fresh, rel) {
                (None, _) => Status::Skipped,
                _ if is_advisory_unit(&m.unit) => Status::Advisory,
                (_, Some(r)) if r.abs() <= tolerance => Status::Pass,
                _ => Status::Fail,
            };
            Check {
                name: m.name.clone(),
                unit: m.unit.clone(),
                committed: m.value,
                fresh,
                rel,
                status,
            }
        })
        .collect()
}

/// The paper-campaign period the committed StreamIt energies were recorded
/// at (`BENCH_portfolio.json`, PR 2): total work over the aggregate cycle
/// capacity of the 4×4 grid at 2× the XScale top frequency.
fn bench_period(g: &Spg) -> f64 {
    g.total_work() / (8.0 * 1e9)
}

/// Freshly recomputed values for every metric name the checker knows,
/// computed lazily per source so `bench-check` only pays for what the
/// committed files actually contain.
pub fn compute_fresh_metrics(
    needed: &[Metric],
    seed: u64,
    solvers: &[Arc<dyn Solver>],
) -> HashMap<String, f64> {
    let mut fresh = HashMap::new();

    // Source 1: the topology campaign (topology/... names).
    if needed.iter().any(|m| m.name.starts_with("topology/")) {
        let campaign = topology_campaign(4, 4, seed, solvers);
        for (k, kind) in TopologyKind::ALL.iter().enumerate() {
            let mut energies = Vec::new();
            let mut walls = Vec::new();
            for row in &campaign.rows {
                if let Some(o) = &row.outcomes[k] {
                    fresh.insert(format!("topology/energy/{}/{kind}", row.workflow), o.energy);
                    energies.push(o.energy);
                    walls.push(o.wall_s * 1e3);
                }
            }
            if let Some(med) = median(energies) {
                fresh.insert(format!("topology/streamit_median_best_energy/{kind}"), med);
            }
            if let Some(med) = median(walls) {
                fresh.insert(
                    format!("topology/streamit_median_portfolio_wall/{kind}"),
                    med,
                );
            }
        }
    }

    // Source 2: the campaign-realistic warm StreamIt portfolio on the
    // paper's 4×4 mesh (energy/<workflow>/<solver> and
    // streamit_portfolio/<workflow> names).
    let energy_wfs: HashSet<&str> = needed
        .iter()
        .filter_map(|m| {
            let rest = m.name.strip_prefix("energy/")?;
            rest.split('/').next()
        })
        .collect();
    let timed_wfs: HashSet<&str> = needed
        .iter()
        .filter_map(|m| m.name.strip_prefix("streamit_portfolio/"))
        .collect();
    if !energy_wfs.is_empty() || !timed_wfs.is_empty() {
        let pf = Platform::paper(4, 4);
        for spec in STREAMIT_SPECS.iter() {
            let timed = timed_wfs.contains(spec.name);
            if !timed && !energy_wfs.contains(spec.name) {
                continue;
            }
            let g = streamit_workflow(spec, seed);
            let inst = Instance::new(g.clone(), pf.clone(), bench_period(&g));
            let portfolio = Portfolio::new(solvers.to_vec()).seeded(seed);
            // Warm run: populates the instance caches (and is the energy
            // source — energies are deterministic, one run suffices).
            let report = portfolio.run(&inst);
            for run in &report.runs {
                if let Some(e) = run.energy() {
                    fresh.insert(format!("energy/{}/{}", spec.name, run.name), e);
                }
            }
            if timed {
                let samples: Vec<f64> = (0..3)
                    .map(|_| {
                        let started = Instant::now();
                        let _ = portfolio.run(&inst);
                        started.elapsed().as_nanos() as f64
                    })
                    .collect();
                if let Some(med) = median(samples) {
                    fresh.insert(format!("streamit_portfolio/{}", spec.name), med);
                }
            }
        }
    }

    // Source 3: the StreamIt decade sweep (sweep/... names) — both modes,
    // so the advisory wall/speedup drifts are reported alongside the
    // gating energy and feasible-point metrics.
    if needed.iter().any(|m| m.name.starts_with("sweep/")) {
        let sweeps = crate::sweep_xp::streamit_sweep_bench(seed);
        for s in &sweeps {
            let prefix = format!("sweep/{}", s.workflow);
            fresh.insert(
                format!("{prefix}/feasible_points"),
                s.feasible_points() as f64,
            );
            if let Some(med) = median(s.energies.iter().flatten().copied().collect()) {
                fresh.insert(format!("{prefix}/median_energy"), med);
            }
            fresh.insert(format!("{prefix}/amortized_wall"), s.amortized_wall_ms);
            fresh.insert(format!("{prefix}/naive_wall"), s.naive_wall_ms);
            fresh.insert(format!("{prefix}/speedup"), s.speedup());
        }
        if let Some(med) = median(
            sweeps
                .iter()
                .map(crate::sweep_xp::WorkflowSweep::speedup)
                .collect(),
        ) {
            fresh.insert("sweep/median_speedup".into(), med);
        }
    }

    // Source 4: the pool microbenchmark (pool/... names). Checksums and
    // the worker count gate; walls advise; the frozen pool/scoped_spawn/*
    // baseline entries stay skipped (nothing can re-measure a removed
    // implementation).
    if needed.iter().any(|m| m.name.starts_with("pool/")) {
        crate::pool_xp::fresh_pool_metrics(&mut fresh);
    }

    // Source 5: the serve benchmark (serve/... names) — a live daemon on a
    // TCP loopback socket driven over the StreamIt suite. Energies, the
    // warm/cold equality count, and cache counters gate (the serialized
    // request order makes them deterministic); latencies advise; the byte
    // figure carries an unknown unit and stays skipped. A socket failure
    // leaves the metrics unmatched rather than aborting the whole check.
    if needed.iter().any(|m| m.name.starts_with("serve/")) {
        match crate::serve_xp::serve_bench(seed) {
            Ok(b) => crate::serve_xp::fresh_serve_metrics(&b, &mut fresh),
            Err(e) => eprintln!("bench-check: serve benchmark unavailable: {e}"),
        }
    }

    // Source 6: the dominance-pruning benchmark (prune/... names).
    // Energies, feasible-point counts, scan ratios, and bound gaps gate —
    // the prune counters are deterministic order-independent sums — while
    // the pruned/complete walls and their ratio advise.
    if needed.iter().any(|m| m.name.starts_with("prune/")) {
        let sweeps = crate::prune_xp::prune_bench(seed);
        let mut unlocked = 0usize;
        for s in &sweeps {
            let prefix = format!("prune/{}", s.workload);
            fresh.insert(
                format!("{prefix}/feasible_points"),
                s.feasible_points() as f64,
            );
            fresh.insert(
                format!("{prefix}/complete_feasible_points"),
                s.complete_feasible_points() as f64,
            );
            if let Some(med) = median(s.pruned_energies.iter().flatten().copied().collect()) {
                fresh.insert(format!("{prefix}/median_energy"), med);
            }
            if let Some(ratio) = s.scan_ratio() {
                fresh.insert(format!("{prefix}/scan_ratio"), ratio);
            }
            fresh.insert(format!("{prefix}/bound_gap_max"), s.bound_gap_max());
            fresh.insert(format!("{prefix}/pruned_wall"), s.pruned_wall_ms);
            fresh.insert(format!("{prefix}/complete_wall"), s.complete_wall_ms);
            fresh.insert(format!("{prefix}/wall_ratio"), s.wall_ratio());
            unlocked += s.complete_capped;
        }
        fresh.insert("prune/unlocked_points".into(), unlocked as f64);
    }

    // Source 7: the fault-injection remap campaign (incremental/...
    // names). Energies, regrets, event counts, and the speedup-median
    // gate bit gate (the seeded fault chain and the solvers are
    // deterministic, and every remap solve is asserted bit-identical to
    // its cold rebuild while the campaign runs); raw walls and per-
    // workflow speedups advise.
    if needed.iter().any(|m| m.name.starts_with("incremental/")) {
        let campaigns = crate::incremental_xp::incremental_bench(seed);
        crate::incremental_xp::fresh_incremental_metrics(&campaigns, &mut fresh);
    }

    fresh
}

/// Loads the given `BENCH_*.json` files, recomputes what it can, and
/// compares. Returns the per-metric checks and whether the gate passed
/// (no deterministic metric out of tolerance).
pub fn bench_check_files(
    paths: &[std::path::PathBuf],
    tolerance: f64,
    seed: u64,
    solvers: &[Arc<dyn Solver>],
) -> Result<(Vec<Check>, bool), String> {
    let mut metrics = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        metrics.extend(parse_bench_metrics(&text).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    let fresh = compute_fresh_metrics(&metrics, seed, solvers);
    let checks = compare(&metrics, |name| fresh.get(name).copied(), tolerance);
    let ok = checks.iter().all(|c| c.status != Status::Fail);
    Ok((checks, ok))
}

/// Text report: one row per metric, gate verdict last.
pub fn check_text(checks: &[Check], tolerance: f64) -> String {
    let rows: Vec<Vec<String>> = checks
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.unit.clone(),
                format!("{:.6e}", c.committed),
                c.fresh.map_or("-".into(), |f| format!("{f:.6e}")),
                c.rel.map_or("-".into(), |r| format!("{:+.2}%", r * 1e2)),
                c.status.label().to_string(),
            ]
        })
        .collect();
    let gated = checks
        .iter()
        .filter(|c| matches!(c.status, Status::Pass | Status::Fail))
        .count();
    let failed = checks.iter().filter(|c| c.status == Status::Fail).count();
    let mut out = fmt_table(
        &format!(
            "bench-check (tolerance {:.1}% on deterministic metrics)",
            tolerance * 1e2
        ),
        &["metric", "unit", "committed", "fresh", "drift", "status"],
        &rows,
    );
    out.push_str(&format!(
        "gate: {gated} deterministic metrics checked, {failed} failed\n"
    ));
    out
}

/// Default gate files: the committed benchmarks this repository records.
pub fn default_bench_files(repo_root: &Path) -> Vec<std::path::PathBuf> {
    [
        "BENCH_topology.json",
        "BENCH_portfolio.json",
        "BENCH_sweep.json",
        "BENCH_pool.json",
        "BENCH_serve.json",
        "BENCH_prune.json",
        "BENCH_incremental.json",
    ]
    .iter()
    .map(|f| repo_root.join(f))
    .filter(|p| p.exists())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &str, value: f64, unit: &str) -> Metric {
        Metric {
            name: name.into(),
            value,
            unit: unit.into(),
        }
    }

    #[test]
    fn parses_both_bench_shapes() {
        let text = r#"{"results": [
            {"name": "a", "value": 2.0, "unit": "J"},
            {"name": "b", "median_ns": 150.0, "mean_ns": 160.0, "samples": 10}
        ]}"#;
        let m = parse_bench_metrics(text).unwrap();
        assert_eq!(m[0], metric("a", 2.0, "J"));
        assert_eq!(m[1], metric("b", 150.0, "ns"));
        assert!(parse_bench_metrics("{}").is_err());
    }

    #[test]
    fn deterministic_metrics_gate_time_metrics_advise() {
        let metrics = vec![
            metric("e/ok", 1.0, "J"),
            metric("e/regressed", 1.0, "J"),
            metric("t/slow", 100.0, "ms"),
            metric("unknown", 5.0, "J"),
        ];
        let fresh = |name: &str| match name {
            "e/ok" => Some(1.004),      // within 5%
            "e/regressed" => Some(2.0), // 2x regression
            "t/slow" => Some(1000.0),   // 10x slower, but time => advisory
            _ => None,
        };
        let checks = compare(&metrics, fresh, 0.05);
        assert_eq!(checks[0].status, Status::Pass);
        assert_eq!(checks[1].status, Status::Fail);
        assert_eq!(checks[2].status, Status::Advisory);
        assert_eq!(checks[3].status, Status::Skipped);
        assert!(checks.iter().any(|c| c.status == Status::Fail));
        // The exact acceptance shape: a committed median artificially
        // regressed by 2x must fail, identical values must pass.
        let identical = compare(&[metric("e/x", 3.0, "J")], |_| Some(3.0), 0.05);
        assert_eq!(identical[0].status, Status::Pass);
        let doubled = compare(&[metric("e/x", 6.0, "J")], |_| Some(3.0), 0.05);
        assert_eq!(doubled[0].status, Status::Fail);
        // Speedups are ratios of wall times, so they advise too — a slow
        // CI runner must not fail the gate on them.
        let sp = compare(&[metric("s/x", 4.0, "speedup")], |_| Some(1.0), 0.05);
        assert_eq!(sp[0].status, Status::Advisory);
    }

    #[test]
    fn zero_committed_values_do_not_divide_by_zero() {
        let checks = compare(&[metric("z", 0.0, "J")], |_| Some(0.0), 0.05);
        assert_eq!(checks[0].status, Status::Pass);
        let checks = compare(&[metric("z", 0.0, "J")], |_| Some(1.0), 0.05);
        assert_eq!(checks[0].status, Status::Fail);
    }

    #[test]
    fn report_counts_the_gate() {
        let checks = compare(
            &[metric("a", 1.0, "J"), metric("b", 1.0, "ns")],
            |_| Some(1.0),
            0.05,
        );
        let text = check_text(&checks, 0.05);
        assert!(text.contains("1 deterministic metrics checked, 0 failed"));
    }
}
