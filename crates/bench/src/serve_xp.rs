//! The serve benchmark: warm-vs-cold latency through a live daemon.
//!
//! Boots an `ea_core::serve::Server` on a TCP loopback socket, then drives
//! it with one serialized client over the full StreamIt suite (Table 1):
//! for each flow, one **cold** solve (artifact cache empty for its
//! fingerprints) followed by [`WARM_ROUNDS`] **warm** repeats of the very
//! same request. The serialized, fixed request order makes every cache
//! counter deterministic, so `BENCH_serve.json` can gate on energies,
//! warm/cold equality, cache hit/miss/eviction counts, and the scheduler
//! counters while latencies stay advisory (time units are
//! machine-dependent).
//!
//! A second phase measures the batched scheduler against per-request
//! dispatch: [`THROUGHPUT_CLIENTS`] concurrent closed-loop clients replay
//! the suite against a batching daemon and a `batching: false` daemon.
//! Identical concurrent requests are deduplicated single-flight by the
//! scheduler, so the batched daemon does a fraction of the solve work for
//! the same answers — per-flow energies are asserted bit-identical across
//! clients, rounds, *and* modes before the speedup is reported. The
//! speedup itself advises (walls are machine-dependent); the
//! `serve/batched_throughput_ok` bit (speedup ≥ [`THROUGHPUT_TARGET`])
//! and the energy-equality count gate.
//!
//! The energies double as an end-to-end check that the service reproduces
//! the library: each flow solves at utilisation 0.5 on the paper's 4×4
//! platform, i.e. the same `W / (0.5 · 16 · f_max)` period the offline
//! `energy/` benchmarks use.
//!
//! [`load_gen`] is the reusable closed-loop load generator behind
//! `xp serve-bench --clients N --requests M`: it drives an *external*
//! daemon (Unix socket or TCP), measures client-side latency percentiles
//! and throughput, tolerates `overloaded` shed frames, and snapshots the
//! daemon's `stats` for the artifact CI uploads.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use ea_core::json::{fmt_f64, obj, Json};
use ea_core::serve::{Client, LatencyHistogram, ServeConfig, Server};
use spg::STREAMIT_SPECS;

use crate::report::{fmt_table, median};

/// Warm repeats per flow after the cold solve.
pub const WARM_ROUNDS: usize = 3;

/// Utilisation every request solves at (matches the offline `energy/`
/// benchmarks' `W / 8e9` period on the paper's 4×4 platform).
pub const UTILISATION: f64 = 0.5;

/// Concurrent closed-loop clients in the throughput phase.
pub const THROUGHPUT_CLIENTS: usize = 8;

/// Suite replays per client in the throughput phase. Each round uses a
/// distinct seed, so every `(flow, round)` pair is a fresh cold solve —
/// the honest setting for measuring single-flight deduplication (warm
/// repeats would be cheap in *both* modes).
pub const THROUGHPUT_ROUNDS: u64 = 2;

/// The acceptance bar: batched throughput over per-request dispatch.
pub const THROUGHPUT_TARGET: f64 = 2.0;

/// One flow's trip through the daemon.
pub struct FlowServe {
    /// StreamIt flow name (Table 1).
    pub workflow: &'static str,
    /// Best energy of the cold solve (`None` when no heuristic found a
    /// valid mapping).
    pub cold_energy: Option<f64>,
    /// Best energy of the warm repeats (all repeats agree by
    /// construction; asserted during the run).
    pub warm_energy: Option<f64>,
    /// Whether the final repeat reported `warm: true` (all three artifact
    /// fingerprints hit; flows whose lattice overflows the ideal cap
    /// legitimately stay cold).
    pub warm_flag: bool,
    /// Server-side wall time of the cold solve, milliseconds.
    pub cold_ms: f64,
    /// Median server-side wall time of the warm repeats, milliseconds.
    pub warm_ms: f64,
}

impl FlowServe {
    /// Warm and cold agree bit-for-bit (including agreeing to fail).
    pub fn equal(&self) -> bool {
        self.cold_energy == self.warm_energy
    }
}

/// A latency summary parsed back out of the daemon's `stats` response.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Recorded requests.
    pub count: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// 50th percentile, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile, milliseconds.
    pub p999_ms: f64,
    /// Exact maximum, milliseconds.
    pub max_ms: f64,
}

/// Scheduler counters parsed back out of the daemon's `stats` response.
/// Under the serialized request stream of the warm/cold phase these are
/// fully deterministic (every solve is its own batch of one), so they
/// gate alongside the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SchedCounters {
    /// Batches the scheduler thread drained.
    pub batches: f64,
    /// Solve requests routed through those batches.
    pub batched_requests: f64,
    /// Requests answered by another request's solve (single-flight).
    pub deduped: f64,
    /// Requests shed at enqueue by admission control.
    pub shed: f64,
}

/// The batched-vs-per-request throughput comparison:
/// [`THROUGHPUT_CLIENTS`] concurrent closed-loop clients replaying the
/// StreamIt suite for [`THROUGHPUT_ROUNDS`] cold rounds against each
/// daemon mode. Walls are machine-dependent (advisory); the energy
/// equality count and the `speedup ≥` [`THROUGHPUT_TARGET`] bit gate.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThroughputBench {
    /// Concurrent clients per mode.
    pub clients: usize,
    /// Suite replays per client.
    pub rounds: usize,
    /// Total requests per mode (`clients · rounds · suite`).
    pub requests: usize,
    /// Wall time of the batching daemon, seconds.
    pub batched_wall_s: f64,
    /// Wall time of the `batching: false` daemon, seconds.
    pub unbatched_wall_s: f64,
    /// Requests the batched daemon answered single-flight.
    pub deduped: f64,
    /// Batches the batched daemon's scheduler drained.
    pub batches: f64,
    /// `(flow, round)` keys whose energies were bit-identical across all
    /// clients and both modes (the run errors out otherwise, so on
    /// success this equals `rounds · suite`).
    pub flows_equal: usize,
}

impl ThroughputBench {
    /// Requests per second through the batching daemon.
    pub fn batched_rps(&self) -> f64 {
        if self.batched_wall_s > 0.0 {
            self.requests as f64 / self.batched_wall_s
        } else {
            0.0
        }
    }

    /// Requests per second through the per-request daemon.
    pub fn unbatched_rps(&self) -> f64 {
        if self.unbatched_wall_s > 0.0 {
            self.requests as f64 / self.unbatched_wall_s
        } else {
            0.0
        }
    }

    /// Batched throughput over per-request throughput (1.0 when
    /// degenerate).
    pub fn speedup(&self) -> f64 {
        if self.batched_wall_s > 0.0 && self.unbatched_wall_s > 0.0 {
            self.unbatched_wall_s / self.batched_wall_s
        } else {
            1.0
        }
    }

    /// Whether the run cleared [`THROUGHPUT_TARGET`].
    pub fn meets_target(&self) -> bool {
        self.speedup() >= THROUGHPUT_TARGET
    }
}

/// Everything the serve benchmark measures.
pub struct ServeBench {
    /// Per-flow cold/warm results, suite order.
    pub flows: Vec<FlowServe>,
    /// Daemon-side distribution over solves whose artifacts all hit.
    pub warm: LatencySummary,
    /// Daemon-side distribution over every other solve.
    pub cold: LatencySummary,
    /// Artifact-cache lookup hits.
    pub cache_hits: f64,
    /// Artifact-cache lookup misses.
    pub cache_misses: f64,
    /// Artifacts evicted to respect the byte bound.
    pub cache_evictions: f64,
    /// Live cache entries at shutdown.
    pub cache_entries: f64,
    /// Live cache bytes at shutdown.
    pub cache_bytes: f64,
    /// Scheduler counters of the serialized warm/cold phase.
    pub sched: SchedCounters,
    /// The concurrent batched-vs-per-request comparison.
    pub throughput: ThroughputBench,
}

impl ServeBench {
    /// How many flows solved warm with bit-identical energy.
    pub fn warm_cold_equal(&self) -> usize {
        self.flows.iter().filter(|f| f.equal()).count()
    }

    /// Mean cold latency over mean warm latency (1.0 when degenerate).
    pub fn warm_speedup(&self) -> f64 {
        if self.warm.mean_ms > 0.0 && self.cold.mean_ms > 0.0 {
            self.cold.mean_ms / self.warm.mean_ms
        } else {
            1.0
        }
    }
}

fn num(j: &Json, outer: &str, inner: &str) -> Result<f64, String> {
    j.get(outer)
        .and_then(|o| o.get(inner))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("stats response missing {outer}.{inner}"))
}

fn summary(stats: &Json, which: &str) -> Result<LatencySummary, String> {
    Ok(LatencySummary {
        count: num(stats, which, "count")?,
        mean_ms: num(stats, which, "mean_ms")?,
        p50_ms: num(stats, which, "p50_ms")?,
        p99_ms: num(stats, which, "p99_ms")?,
        p999_ms: num(stats, which, "p999_ms")?,
        max_ms: num(stats, which, "max_ms")?,
    })
}

fn sched_counters(stats: &Json) -> Result<SchedCounters, String> {
    Ok(SchedCounters {
        batches: num(stats, "scheduler", "batches")?,
        batched_requests: num(stats, "scheduler", "batched_requests")?,
        deduped: num(stats, "scheduler", "deduped")?,
        shed: num(stats, "scheduler", "shed")?,
    })
}

fn solve_request(workflow: &str, seed: u64) -> Json {
    obj([
        ("op", Json::from("solve")),
        (
            "workload",
            obj([
                ("streamit", Json::from(workflow)),
                ("seed", Json::from(seed)),
            ]),
        ),
        ("utilisation", Json::from(UTILISATION)),
        ("seed", Json::from(seed)),
    ])
}

/// Runs the daemon benchmark: the serialized warm/cold phase, then the
/// concurrent batched-vs-per-request throughput phase. Errors are strings
/// (socket failures, protocol surprises, an energy divergence across
/// clients or modes) — the caller decides whether they are soft or fatal.
pub fn serve_bench(seed: u64) -> Result<ServeBench, String> {
    let mut bench = serialized_phase(seed)?;
    bench.throughput = throughput_bench(seed)?;
    Ok(bench)
}

/// The serialized warm/cold phase: boot, drive the suite with one client,
/// read `stats`, shut down, join.
fn serialized_phase(seed: u64) -> Result<ServeBench, String> {
    let server = Server::bind_tcp("127.0.0.1:0", ServeConfig::default())
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .ok_or_else(|| "server has no local address".to_string())?;
    let service = server.service();
    let handle = std::thread::spawn(move || server.run());
    let run = (|| -> Result<ServeBench, String> {
        let mut client = Client::connect_tcp(addr).map_err(|e| format!("connect: {e}"))?;
        let mut flows = Vec::with_capacity(STREAMIT_SPECS.len());
        for spec in &STREAMIT_SPECS {
            let req = solve_request(spec.name, seed);
            let ask = |client: &mut Client| -> Result<(Option<f64>, bool, f64), String> {
                let resp = client
                    .request(&req)
                    .map_err(|e| format!("{}: {e}", spec.name))?;
                if let Some(err) = resp.get("error") {
                    let kind = err.get("kind").and_then(Json::as_str).unwrap_or("?");
                    if kind != "no_valid_mapping" {
                        return Err(format!("{}: unexpected error kind {kind}", spec.name));
                    }
                    return Ok((None, false, 0.0));
                }
                let r = resp
                    .get("result")
                    .ok_or_else(|| format!("{}: response has no result", spec.name))?;
                let energy = r.get("energy").and_then(Json::as_f64);
                let warm = r.get("warm").and_then(Json::as_bool).unwrap_or(false);
                let wall = r.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
                Ok((energy, warm, wall))
            };
            let (cold_energy, cold_warm, cold_ms) = ask(&mut client)?;
            if cold_warm {
                return Err(format!("{}: first solve claimed to be warm", spec.name));
            }
            let mut warm_energy = None;
            let mut warm_flag = false;
            let mut warm_walls = Vec::with_capacity(WARM_ROUNDS);
            for round in 0..WARM_ROUNDS {
                let (energy, warm, wall) = ask(&mut client)?;
                if round > 0 && energy != warm_energy {
                    return Err(format!("{}: warm repeats disagree", spec.name));
                }
                warm_energy = energy;
                warm_flag = warm;
                warm_walls.push(wall);
            }
            flows.push(FlowServe {
                workflow: spec.name,
                cold_energy,
                warm_energy,
                warm_flag,
                cold_ms,
                warm_ms: median(warm_walls).unwrap_or(0.0),
            });
        }
        let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
        let stats = stats
            .get("result")
            .cloned()
            .ok_or_else(|| "stats response has no result".to_string())?;
        let bench = ServeBench {
            flows,
            warm: summary(&stats, "warm")?,
            cold: summary(&stats, "cold")?,
            cache_hits: num(&stats, "cache", "hits")?,
            cache_misses: num(&stats, "cache", "misses")?,
            cache_evictions: num(&stats, "cache", "evictions")?,
            cache_entries: num(&stats, "cache", "entries")?,
            cache_bytes: num(&stats, "cache", "bytes")?,
            sched: sched_counters(&stats)?,
            throughput: ThroughputBench::default(),
        };
        client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        Ok(bench)
    })();
    // The wire `shutdown` only fires on the success path; flip the flag
    // unconditionally so a connect/request/stats error still stops the
    // daemon instead of leaving join() blocked forever.
    service.request_shutdown();
    match handle.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(format!("server exited with error: {e}")),
        Err(_) => return Err("server thread panicked".to_string()),
    }
    run
}

/// One daemon mode's throughput run: per-`(flow, round)` energy bits
/// (asserted identical across clients while merging), wall time, and the
/// scheduler counters.
struct ModeRun {
    energies: BTreeMap<(String, u64), Option<u64>>,
    wall_s: f64,
    sched: SchedCounters,
}

fn throughput_mode(seed: u64, batching: bool) -> Result<ModeRun, String> {
    let cfg = ServeConfig {
        batching,
        ..ServeConfig::default()
    };
    let server = Server::bind_tcp("127.0.0.1:0", cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .ok_or_else(|| "server has no local address".to_string())?;
    let service = server.service();
    let handle = std::thread::spawn(move || server.run());
    let run = (|| -> Result<ModeRun, String> {
        let barrier = Arc::new(Barrier::new(THROUGHPUT_CLIENTS + 1));
        type ClientRows = Result<Vec<((String, u64), Option<u64>)>, String>;
        let workers: Vec<_> = (0..THROUGHPUT_CLIENTS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || -> ClientRows {
                    // Connect *before* the barrier, but keep the error for
                    // after it: a failed connect must not strand the other
                    // parties in the rendezvous.
                    let client = Client::connect_tcp(addr);
                    barrier.wait();
                    let mut client = client.map_err(|e| format!("connect: {e}"))?;
                    let mut rows = Vec::new();
                    for round in 0..THROUGHPUT_ROUNDS {
                        for spec in &STREAMIT_SPECS {
                            let req = solve_request(spec.name, seed.wrapping_add(round));
                            let resp = client
                                .request(&req)
                                .map_err(|e| format!("{}: {e}", spec.name))?;
                            let energy = if let Some(err) = resp.get("error") {
                                let kind = err.get("kind").and_then(Json::as_str).unwrap_or("?");
                                if kind != "no_valid_mapping" {
                                    return Err(format!(
                                        "{}: unexpected error kind {kind}",
                                        spec.name
                                    ));
                                }
                                None
                            } else {
                                resp.get("result")
                                    .and_then(|r| r.get("energy"))
                                    .and_then(Json::as_f64)
                            };
                            rows.push(((spec.name.to_string(), round), energy.map(f64::to_bits)));
                        }
                    }
                    Ok(rows)
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        let mut energies: BTreeMap<(String, u64), Option<u64>> = BTreeMap::new();
        // Join *every* worker before propagating the first error, so a
        // failing client never leaves the others running against a daemon
        // we are about to tear down.
        let mut first_error: Option<String> = None;
        for w in workers {
            match w.join() {
                Ok(Ok(rows)) => {
                    for (key, bits) in rows {
                        match energies.entry(key) {
                            Entry::Vacant(v) => {
                                v.insert(bits);
                            }
                            Entry::Occupied(o) => {
                                if *o.get() != bits {
                                    let (flow, round) = o.key();
                                    first_error.get_or_insert(format!(
                                        "{flow}/round {round}: clients disagree on energy bits"
                                    ));
                                }
                            }
                        }
                    }
                }
                Ok(Err(e)) => {
                    first_error.get_or_insert(e);
                }
                Err(_) => {
                    first_error.get_or_insert("client thread panicked".to_string());
                }
            }
        }
        let wall_s = started.elapsed().as_secs_f64();
        if let Some(e) = first_error {
            return Err(e);
        }
        let mut control = Client::connect_tcp(addr).map_err(|e| format!("connect: {e}"))?;
        let stats = control.stats().map_err(|e| format!("stats: {e}"))?;
        let stats = stats
            .get("result")
            .cloned()
            .ok_or_else(|| "stats response has no result".to_string())?;
        let sched = sched_counters(&stats)?;
        control.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        Ok(ModeRun {
            energies,
            wall_s,
            sched,
        })
    })();
    service.request_shutdown();
    match handle.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(format!("server exited with error: {e}")),
        Err(_) => return Err("server thread panicked".to_string()),
    }
    run
}

/// The concurrent comparison: the same client fleet against a batching
/// daemon and a `batching: false` daemon. Errors out (rather than
/// reporting a number) if any `(flow, round)` energy diverges across
/// clients or between the modes — the speedup is only meaningful when the
/// answers are bit-identical.
pub fn throughput_bench(seed: u64) -> Result<ThroughputBench, String> {
    let batched = throughput_mode(seed, true)?;
    let unbatched = throughput_mode(seed, false)?;
    if batched.energies != unbatched.energies {
        for (key, bits) in &batched.energies {
            if unbatched.energies.get(key) != Some(bits) {
                let (flow, round) = key;
                return Err(format!(
                    "{flow}/round {round}: batched and per-request energies diverge"
                ));
            }
        }
        return Err("batched and per-request energy key sets diverge".to_string());
    }
    Ok(ThroughputBench {
        clients: THROUGHPUT_CLIENTS,
        rounds: THROUGHPUT_ROUNDS as usize,
        requests: THROUGHPUT_CLIENTS * THROUGHPUT_ROUNDS as usize * STREAMIT_SPECS.len(),
        batched_wall_s: batched.wall_s,
        unbatched_wall_s: unbatched.wall_s,
        deduped: batched.sched.deduped,
        batches: batched.sched.batches,
        flows_equal: batched.energies.len(),
    })
}

/// What the closed-loop load generator measured against an external
/// daemon (`xp serve-bench --clients N --requests M`).
pub struct LoadReport {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests each client issued.
    pub requests_per_client: usize,
    /// Answered solves (including deterministic `no_valid_mapping`).
    pub ok: u64,
    /// Requests shed by admission control (`overloaded` frames).
    pub overloaded: u64,
    /// Other structured error responses (e.g. `too_expensive`).
    pub failed: u64,
    /// Wall time over the whole closed loop, seconds.
    pub wall_s: f64,
    /// Client-side latency distribution over every response.
    pub latency: LatencySummary,
    /// The daemon's `stats` result after the run (queue depth, scheduler
    /// and spill counters, cache state) — snapshotted into the artifact.
    pub server: Json,
}

impl LoadReport {
    /// Answered requests per second (shed requests included: a shed is a
    /// served response, just not a solve).
    pub fn rps(&self) -> f64 {
        let total = (self.ok + self.overloaded + self.failed) as f64;
        if self.wall_s > 0.0 {
            total / self.wall_s
        } else {
            0.0
        }
    }
}

/// Drives an external daemon with `clients` concurrent closed-loop
/// connections, `requests` requests each, round-robin over the StreamIt
/// suite (per-client stagger so cold misses spread). `overloaded` sheds
/// and other structured errors are counted, not fatal — transport errors
/// are. The daemon is left running (the caller owns its lifecycle);
/// `stats` is fetched over a final control connection.
pub fn load_gen(
    connect: &(dyn Fn() -> std::io::Result<Client> + Sync),
    clients: usize,
    requests: usize,
    seed: u64,
) -> Result<LoadReport, String> {
    if clients == 0 || requests == 0 {
        return Err("load_gen needs at least one client and one request".to_string());
    }
    let barrier = Barrier::new(clients + 1);
    let histogram = Mutex::new(LatencyHistogram::new());
    struct Counts {
        ok: u64,
        overloaded: u64,
        failed: u64,
    }
    let run = std::thread::scope(|scope| -> Result<(u64, u64, u64, f64), String> {
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = &barrier;
                let histogram = &histogram;
                scope.spawn(move || -> Result<Counts, String> {
                    let client = connect();
                    barrier.wait();
                    let mut client = client.map_err(|e| format!("connect: {e}"))?;
                    let mut counts = Counts {
                        ok: 0,
                        overloaded: 0,
                        failed: 0,
                    };
                    for i in 0..requests {
                        let spec = &STREAMIT_SPECS[(c + i) % STREAMIT_SPECS.len()];
                        let req = solve_request(spec.name, seed);
                        let started = Instant::now();
                        let resp = client
                            .request(&req)
                            .map_err(|e| format!("{}: {e}", spec.name))?;
                        let nanos = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        histogram.lock().unwrap().record(nanos);
                        match resp
                            .get("error")
                            .and_then(|e| e.get("kind"))
                            .and_then(Json::as_str)
                        {
                            None | Some("no_valid_mapping") => counts.ok += 1,
                            Some("overloaded") => counts.overloaded += 1,
                            Some(_) => counts.failed += 1,
                        }
                    }
                    Ok(counts)
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        let (mut ok, mut overloaded, mut failed) = (0u64, 0u64, 0u64);
        let mut first_error: Option<String> = None;
        for w in workers {
            match w.join() {
                Ok(Ok(c)) => {
                    ok += c.ok;
                    overloaded += c.overloaded;
                    failed += c.failed;
                }
                Ok(Err(e)) => {
                    first_error.get_or_insert(e);
                }
                Err(_) => {
                    first_error.get_or_insert("client thread panicked".to_string());
                }
            }
        }
        let wall_s = started.elapsed().as_secs_f64();
        match first_error {
            Some(e) => Err(e),
            None => Ok((ok, overloaded, failed, wall_s)),
        }
    });
    let (ok, overloaded, failed, wall_s) = run?;
    let mut control = connect().map_err(|e| format!("connect: {e}"))?;
    let stats = control.stats().map_err(|e| format!("stats: {e}"))?;
    let server = stats
        .get("result")
        .cloned()
        .ok_or_else(|| "stats response has no result".to_string())?;
    let h = histogram.into_inner().unwrap();
    let latency = LatencySummary {
        count: h.count() as f64,
        mean_ms: h.mean() / 1e6,
        p50_ms: h.percentile(0.50) as f64 / 1e6,
        p99_ms: h.percentile(0.99) as f64 / 1e6,
        p999_ms: h.percentile(0.999) as f64 / 1e6,
        max_ms: h.max() as f64 / 1e6,
    };
    Ok(LoadReport {
        clients,
        requests_per_client: requests,
        ok,
        overloaded,
        failed,
        wall_s,
        latency,
        server,
    })
}

/// Human-readable load-generator report.
pub fn load_text(r: &LoadReport) -> String {
    let mut out = format!(
        "xp serve-bench — closed loop: {} clients x {} requests in {:.2} s ({:.1} req/s)\n",
        r.clients,
        r.requests_per_client,
        r.wall_s,
        r.rps(),
    );
    out.push_str(&format!(
        "responses: {} ok, {} overloaded, {} failed\n",
        r.ok, r.overloaded, r.failed,
    ));
    out.push_str(&format!(
        "client latency: mean {:.2} ms, p50/p99/p999 {:.2}/{:.2}/{:.2} ms, max {:.2} ms\n",
        r.latency.mean_ms, r.latency.p50_ms, r.latency.p99_ms, r.latency.p999_ms, r.latency.max_ms,
    ));
    let sched = |k: &str| {
        r.server
            .get("scheduler")
            .and_then(|s| s.get(k))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    out.push_str(&format!(
        "daemon scheduler: {} batches, {} batched requests, {} deduped, {} shed\n",
        sched("batches"),
        sched("batched_requests"),
        sched("deduped"),
        sched("shed"),
    ));
    out
}

/// The JSON artifact CI uploads (`results/serve-load.json`).
pub fn load_json(r: &LoadReport) -> String {
    let doc = obj([
        ("clients", Json::from(r.clients as u64)),
        (
            "requests_per_client",
            Json::from(r.requests_per_client as u64),
        ),
        ("ok", Json::from(r.ok)),
        ("overloaded", Json::from(r.overloaded)),
        ("failed", Json::from(r.failed)),
        ("wall_s", Json::from(r.wall_s)),
        ("throughput_rps", Json::from(r.rps())),
        (
            "latency_ms",
            obj([
                ("count", Json::from(r.latency.count)),
                ("mean", Json::from(r.latency.mean_ms)),
                ("p50", Json::from(r.latency.p50_ms)),
                ("p99", Json::from(r.latency.p99_ms)),
                ("p999", Json::from(r.latency.p999_ms)),
                ("max", Json::from(r.latency.max_ms)),
            ]),
        ),
        ("server", r.server.clone()),
    ]);
    format!("{doc}\n")
}

/// Human-readable report.
pub fn serve_bench_text(b: &ServeBench) -> String {
    let rows: Vec<Vec<String>> = b
        .flows
        .iter()
        .map(|f| {
            vec![
                f.workflow.to_string(),
                f.cold_energy.map_or("fail".into(), |e| format!("{e:.4}")),
                f.warm_energy.map_or("fail".into(), |e| format!("{e:.4}")),
                if f.equal() { "yes" } else { "NO" }.to_string(),
                if f.warm_flag { "yes" } else { "no" }.to_string(),
                format!("{:.2}", f.cold_ms),
                format!("{:.2}", f.warm_ms),
            ]
        })
        .collect();
    let mut out = fmt_table(
        &format!(
            "xp serve-bench — StreamIt suite through the daemon (u = {UTILISATION}, \
             {WARM_ROUNDS} warm rounds)"
        ),
        &[
            "workflow", "cold J", "warm J", "equal", "warm hit", "cold ms", "warm ms",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\nwarm == cold on {}/{} flows; warm speedup {:.2}x (cold mean {:.2} ms, warm mean {:.2} ms)\n",
        b.warm_cold_equal(),
        b.flows.len(),
        b.warm_speedup(),
        b.cold.mean_ms,
        b.warm.mean_ms,
    ));
    out.push_str(&format!(
        "cold p50/p99/p999 {:.2}/{:.2}/{:.2} ms over {} solves; warm {:.2}/{:.2}/{:.2} ms over {}\n",
        b.cold.p50_ms,
        b.cold.p99_ms,
        b.cold.p999_ms,
        b.cold.count,
        b.warm.p50_ms,
        b.warm.p99_ms,
        b.warm.p999_ms,
        b.warm.count,
    ));
    out.push_str(&format!(
        "cache: {} hits, {} misses, {} evictions, {} entries / {} bytes live\n",
        b.cache_hits, b.cache_misses, b.cache_evictions, b.cache_entries, b.cache_bytes,
    ));
    out.push_str(&format!(
        "scheduler: {} batches / {} requests, {} deduped, {} shed\n",
        b.sched.batches, b.sched.batched_requests, b.sched.deduped, b.sched.shed,
    ));
    let t = &b.throughput;
    out.push_str(&format!(
        "throughput ({} clients x {} cold rounds): batched {:.1} req/s ({:.2} s), \
         per-request {:.1} req/s ({:.2} s) -> {:.2}x speedup [target {:.1}x: {}]\n",
        t.clients,
        t.rounds,
        t.batched_rps(),
        t.batched_wall_s,
        t.unbatched_rps(),
        t.unbatched_wall_s,
        t.speedup(),
        THROUGHPUT_TARGET,
        if t.meets_target() { "ok" } else { "MISSED" },
    ));
    out.push_str(&format!(
        "  single-flight: {} of {} requests deduped across {} batches; \
         {} flow-round energies bit-identical across clients and modes\n",
        t.deduped, t.requests, t.batches, t.flows_equal,
    ));
    out
}

/// `BENCH_serve.json` payload. Energies, equality, and cache counters are
/// deterministic (units `J`/`count` — gated); latencies and the byte
/// figure are machine- or allocator-dependent (units `ms`/`speedup`/
/// `bytes` — advisory or skipped by `bench-check`).
pub fn serve_bench_json(b: &ServeBench) -> String {
    let mut entries = Vec::new();
    let mut push = |name: &str, value: String, unit: &str| {
        entries.push(format!(
            "    {{\"name\": \"{name}\", \"value\": {value}, \"unit\": \"{unit}\"}}"
        ));
    };
    for f in &b.flows {
        if let Some(e) = f.cold_energy {
            push(&format!("serve/energy/{}", f.workflow), fmt_f64(e), "J");
        }
    }
    push(
        "serve/warm_cold_equal",
        b.warm_cold_equal().to_string(),
        "count",
    );
    push("serve/cache_hits", fmt_f64(b.cache_hits), "count");
    push("serve/cache_misses", fmt_f64(b.cache_misses), "count");
    push("serve/cache_evictions", fmt_f64(b.cache_evictions), "count");
    push("serve/cache_entries", fmt_f64(b.cache_entries), "count");
    push("serve/cache_bytes", fmt_f64(b.cache_bytes), "bytes");
    push("serve/cold/p50", fmt_f64(b.cold.p50_ms), "ms");
    push("serve/cold/p99", fmt_f64(b.cold.p99_ms), "ms");
    push("serve/cold/p999", fmt_f64(b.cold.p999_ms), "ms");
    push("serve/warm/p50", fmt_f64(b.warm.p50_ms), "ms");
    push("serve/warm/p99", fmt_f64(b.warm.p99_ms), "ms");
    push("serve/warm/p999", fmt_f64(b.warm.p999_ms), "ms");
    push("serve/warm_speedup", fmt_f64(b.warm_speedup()), "speedup");
    push("serve/sched_batches", fmt_f64(b.sched.batches), "count");
    push(
        "serve/sched_batched_requests",
        fmt_f64(b.sched.batched_requests),
        "count",
    );
    push("serve/sched_deduped", fmt_f64(b.sched.deduped), "count");
    push("serve/sched_shed", fmt_f64(b.sched.shed), "count");
    push(
        "serve/batched_energy_equal",
        b.throughput.flows_equal.to_string(),
        "count",
    );
    push(
        "serve/batched_throughput",
        fmt_f64(b.throughput.speedup()),
        "speedup",
    );
    push(
        "serve/batched_throughput_ok",
        if b.throughput.meets_target() {
            "1"
        } else {
            "0"
        }
        .to_string(),
        "count",
    );
    push(
        "serve/batched_wall",
        fmt_f64(b.throughput.batched_wall_s * 1e3),
        "ms",
    );
    push(
        "serve/unbatched_wall",
        fmt_f64(b.throughput.unbatched_wall_s * 1e3),
        "ms",
    );
    format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
}

/// Feeds serve metrics into `bench-check`'s fresh map (same names as
/// [`serve_bench_json`]). Latency metrics are included — the checker
/// classifies them advisory by their `ms`/`speedup` units. The byte
/// figure is deliberately *omitted*: `Vec` capacities vary with allocator
/// behaviour, and a metric with no fresh value stays skipped.
pub fn fresh_serve_metrics(b: &ServeBench, fresh: &mut HashMap<String, f64>) {
    for f in &b.flows {
        if let Some(e) = f.cold_energy {
            fresh.insert(format!("serve/energy/{}", f.workflow), e);
        }
    }
    fresh.insert("serve/warm_cold_equal".into(), b.warm_cold_equal() as f64);
    fresh.insert("serve/cache_hits".into(), b.cache_hits);
    fresh.insert("serve/cache_misses".into(), b.cache_misses);
    fresh.insert("serve/cache_evictions".into(), b.cache_evictions);
    fresh.insert("serve/cache_entries".into(), b.cache_entries);
    fresh.insert("serve/cold/p50".into(), b.cold.p50_ms);
    fresh.insert("serve/cold/p99".into(), b.cold.p99_ms);
    fresh.insert("serve/cold/p999".into(), b.cold.p999_ms);
    fresh.insert("serve/warm/p50".into(), b.warm.p50_ms);
    fresh.insert("serve/warm/p99".into(), b.warm.p99_ms);
    fresh.insert("serve/warm/p999".into(), b.warm.p999_ms);
    fresh.insert("serve/warm_speedup".into(), b.warm_speedup());
    fresh.insert("serve/sched_batches".into(), b.sched.batches);
    fresh.insert(
        "serve/sched_batched_requests".into(),
        b.sched.batched_requests,
    );
    fresh.insert("serve/sched_deduped".into(), b.sched.deduped);
    fresh.insert("serve/sched_shed".into(), b.sched.shed);
    fresh.insert(
        "serve/batched_energy_equal".into(),
        b.throughput.flows_equal as f64,
    );
    fresh.insert("serve/batched_throughput".into(), b.throughput.speedup());
    fresh.insert(
        "serve/batched_throughput_ok".into(),
        if b.throughput.meets_target() {
            1.0
        } else {
            0.0
        },
    );
    fresh.insert(
        "serve/batched_wall".into(),
        b.throughput.batched_wall_s * 1e3,
    );
    fresh.insert(
        "serve/unbatched_wall".into(),
        b.throughput.unbatched_wall_s * 1e3,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_wellformed() {
        let b = ServeBench {
            flows: vec![FlowServe {
                workflow: "Beamformer",
                cold_energy: Some(1.5),
                warm_energy: Some(1.5),
                warm_flag: true,
                cold_ms: 2.0,
                warm_ms: 1.0,
            }],
            warm: LatencySummary {
                count: 3.0,
                mean_ms: 1.0,
                ..Default::default()
            },
            cold: LatencySummary {
                count: 1.0,
                mean_ms: 2.0,
                ..Default::default()
            },
            cache_hits: 9.0,
            cache_misses: 3.0,
            cache_evictions: 0.0,
            cache_entries: 3.0,
            cache_bytes: 1024.0,
            sched: SchedCounters {
                batches: 4.0,
                batched_requests: 4.0,
                deduped: 0.0,
                shed: 0.0,
            },
            throughput: ThroughputBench {
                clients: 8,
                rounds: 2,
                requests: 8 * 2 * 12,
                batched_wall_s: 1.0,
                unbatched_wall_s: 3.0,
                deduped: 100.0,
                batches: 30.0,
                flows_equal: 24,
            },
        };
        let text = serve_bench_json(&b);
        let parsed = Json::parse(&text).expect("serve bench json must parse");
        let results = parsed
            .get("results")
            .and_then(Json::as_arr)
            .expect("results array");
        assert!(results
            .iter()
            .any(|r| r.get("name").and_then(Json::as_str) == Some("serve/energy/Beamformer")));
        // The throughput gate entry: a count (gated), 1 when the batched
        // daemon cleared the target speedup.
        let ok = results
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some("serve/batched_throughput_ok"))
            .expect("throughput gate entry");
        assert_eq!(ok.get("unit").and_then(Json::as_str), Some("count"));
        assert_eq!(ok.get("value").and_then(Json::as_f64), Some(1.0));
        assert!((b.warm_speedup() - 2.0).abs() < 1e-12);
        assert!((b.throughput.speedup() - 3.0).abs() < 1e-12);
        assert!(b.throughput.meets_target());
        assert_eq!(b.warm_cold_equal(), 1);
        let mut fresh = HashMap::new();
        fresh_serve_metrics(&b, &mut fresh);
        assert_eq!(fresh["serve/warm_cold_equal"], 1.0);
        assert_eq!(fresh["serve/energy/Beamformer"], 1.5);
        assert_eq!(fresh["serve/sched_batches"], 4.0);
        assert_eq!(fresh["serve/batched_throughput_ok"], 1.0);
        assert_eq!(fresh["serve/batched_energy_equal"], 24.0);
    }

    #[test]
    fn load_report_shapes_are_wellformed() {
        let r = LoadReport {
            clients: 4,
            requests_per_client: 16,
            ok: 60,
            overloaded: 3,
            failed: 1,
            wall_s: 2.0,
            latency: LatencySummary {
                count: 64.0,
                mean_ms: 1.5,
                p50_ms: 1.0,
                p99_ms: 4.0,
                p999_ms: 6.0,
                max_ms: 7.0,
            },
            server: obj([(
                "scheduler",
                obj([("batches", Json::from(10u64)), ("shed", Json::from(3u64))]),
            )]),
        };
        assert!((r.rps() - 32.0).abs() < 1e-12);
        let doc = Json::parse(&load_json(&r)).expect("load json must parse");
        assert_eq!(doc.get("ok").and_then(Json::as_f64), Some(60.0));
        assert_eq!(doc.get("throughput_rps").and_then(Json::as_f64), Some(32.0));
        assert!(doc.get("server").and_then(|s| s.get("scheduler")).is_some());
        let text = load_text(&r);
        assert!(text.contains("3 overloaded"));
        assert!(text.contains("32.0 req/s"));
    }
}
