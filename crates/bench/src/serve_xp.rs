//! The serve benchmark: warm-vs-cold latency through a live daemon.
//!
//! Boots an `ea_core::serve::Server` on a TCP loopback socket, then drives
//! it with one serialized client over the full StreamIt suite (Table 1):
//! for each flow, one **cold** solve (artifact cache empty for its
//! fingerprints) followed by [`WARM_ROUNDS`] **warm** repeats of the very
//! same request. The serialized, fixed request order makes every cache
//! counter deterministic, so `BENCH_serve.json` can gate on energies,
//! warm/cold equality, and hit/miss/eviction counts while latencies stay
//! advisory (time units are machine-dependent).
//!
//! The energies double as an end-to-end check that the service reproduces
//! the library: each flow solves at utilisation 0.5 on the paper's 4×4
//! platform, i.e. the same `W / (0.5 · 16 · f_max)` period the offline
//! `energy/` benchmarks use.

use std::collections::HashMap;

use ea_core::json::{fmt_f64, obj, Json};
use ea_core::serve::{Client, ServeConfig, Server};
use spg::STREAMIT_SPECS;

use crate::report::{fmt_table, median};

/// Warm repeats per flow after the cold solve.
pub const WARM_ROUNDS: usize = 3;

/// Utilisation every request solves at (matches the offline `energy/`
/// benchmarks' `W / 8e9` period on the paper's 4×4 platform).
pub const UTILISATION: f64 = 0.5;

/// One flow's trip through the daemon.
pub struct FlowServe {
    /// StreamIt flow name (Table 1).
    pub workflow: &'static str,
    /// Best energy of the cold solve (`None` when no heuristic found a
    /// valid mapping).
    pub cold_energy: Option<f64>,
    /// Best energy of the warm repeats (all repeats agree by
    /// construction; asserted during the run).
    pub warm_energy: Option<f64>,
    /// Whether the final repeat reported `warm: true` (all three artifact
    /// fingerprints hit; flows whose lattice overflows the ideal cap
    /// legitimately stay cold).
    pub warm_flag: bool,
    /// Server-side wall time of the cold solve, milliseconds.
    pub cold_ms: f64,
    /// Median server-side wall time of the warm repeats, milliseconds.
    pub warm_ms: f64,
}

impl FlowServe {
    /// Warm and cold agree bit-for-bit (including agreeing to fail).
    pub fn equal(&self) -> bool {
        self.cold_energy == self.warm_energy
    }
}

/// A latency summary parsed back out of the daemon's `stats` response.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Recorded requests.
    pub count: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// 50th percentile, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile, milliseconds.
    pub p999_ms: f64,
    /// Exact maximum, milliseconds.
    pub max_ms: f64,
}

/// Everything the serve benchmark measures.
pub struct ServeBench {
    /// Per-flow cold/warm results, suite order.
    pub flows: Vec<FlowServe>,
    /// Daemon-side distribution over solves whose artifacts all hit.
    pub warm: LatencySummary,
    /// Daemon-side distribution over every other solve.
    pub cold: LatencySummary,
    /// Artifact-cache lookup hits.
    pub cache_hits: f64,
    /// Artifact-cache lookup misses.
    pub cache_misses: f64,
    /// Artifacts evicted to respect the byte bound.
    pub cache_evictions: f64,
    /// Live cache entries at shutdown.
    pub cache_entries: f64,
    /// Live cache bytes at shutdown.
    pub cache_bytes: f64,
}

impl ServeBench {
    /// How many flows solved warm with bit-identical energy.
    pub fn warm_cold_equal(&self) -> usize {
        self.flows.iter().filter(|f| f.equal()).count()
    }

    /// Mean cold latency over mean warm latency (1.0 when degenerate).
    pub fn warm_speedup(&self) -> f64 {
        if self.warm.mean_ms > 0.0 && self.cold.mean_ms > 0.0 {
            self.cold.mean_ms / self.warm.mean_ms
        } else {
            1.0
        }
    }
}

fn num(j: &Json, outer: &str, inner: &str) -> Result<f64, String> {
    j.get(outer)
        .and_then(|o| o.get(inner))
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("stats response missing {outer}.{inner}"))
}

fn summary(stats: &Json, which: &str) -> Result<LatencySummary, String> {
    Ok(LatencySummary {
        count: num(stats, which, "count")?,
        mean_ms: num(stats, which, "mean_ms")?,
        p50_ms: num(stats, which, "p50_ms")?,
        p99_ms: num(stats, which, "p99_ms")?,
        p999_ms: num(stats, which, "p999_ms")?,
        max_ms: num(stats, which, "max_ms")?,
    })
}

fn solve_request(workflow: &str, seed: u64) -> Json {
    obj([
        ("op", Json::from("solve")),
        (
            "workload",
            obj([
                ("streamit", Json::from(workflow)),
                ("seed", Json::from(seed)),
            ]),
        ),
        ("utilisation", Json::from(UTILISATION)),
        ("seed", Json::from(seed)),
    ])
}

/// Runs the daemon benchmark: boot, drive the suite, read `stats`, shut
/// down, join. Errors are strings (socket failures, protocol surprises) —
/// the caller decides whether they are soft or fatal.
pub fn serve_bench(seed: u64) -> Result<ServeBench, String> {
    let server = Server::bind_tcp("127.0.0.1:0", ServeConfig::default())
        .map_err(|e| format!("bind: {e}"))?;
    let addr = server
        .local_addr()
        .ok_or_else(|| "server has no local address".to_string())?;
    let service = server.service();
    let handle = std::thread::spawn(move || server.run());
    let run = (|| -> Result<ServeBench, String> {
        let mut client = Client::connect_tcp(addr).map_err(|e| format!("connect: {e}"))?;
        let mut flows = Vec::with_capacity(STREAMIT_SPECS.len());
        for spec in &STREAMIT_SPECS {
            let req = solve_request(spec.name, seed);
            let ask = |client: &mut Client| -> Result<(Option<f64>, bool, f64), String> {
                let resp = client
                    .request(&req)
                    .map_err(|e| format!("{}: {e}", spec.name))?;
                if let Some(err) = resp.get("error") {
                    let kind = err.get("kind").and_then(Json::as_str).unwrap_or("?");
                    if kind != "no_valid_mapping" {
                        return Err(format!("{}: unexpected error kind {kind}", spec.name));
                    }
                    return Ok((None, false, 0.0));
                }
                let r = resp
                    .get("result")
                    .ok_or_else(|| format!("{}: response has no result", spec.name))?;
                let energy = r.get("energy").and_then(Json::as_f64);
                let warm = r.get("warm").and_then(Json::as_bool).unwrap_or(false);
                let wall = r.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
                Ok((energy, warm, wall))
            };
            let (cold_energy, cold_warm, cold_ms) = ask(&mut client)?;
            if cold_warm {
                return Err(format!("{}: first solve claimed to be warm", spec.name));
            }
            let mut warm_energy = None;
            let mut warm_flag = false;
            let mut warm_walls = Vec::with_capacity(WARM_ROUNDS);
            for round in 0..WARM_ROUNDS {
                let (energy, warm, wall) = ask(&mut client)?;
                if round > 0 && energy != warm_energy {
                    return Err(format!("{}: warm repeats disagree", spec.name));
                }
                warm_energy = energy;
                warm_flag = warm;
                warm_walls.push(wall);
            }
            flows.push(FlowServe {
                workflow: spec.name,
                cold_energy,
                warm_energy,
                warm_flag,
                cold_ms,
                warm_ms: median(warm_walls).unwrap_or(0.0),
            });
        }
        let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
        let stats = stats
            .get("result")
            .cloned()
            .ok_or_else(|| "stats response has no result".to_string())?;
        let bench = ServeBench {
            flows,
            warm: summary(&stats, "warm")?,
            cold: summary(&stats, "cold")?,
            cache_hits: num(&stats, "cache", "hits")?,
            cache_misses: num(&stats, "cache", "misses")?,
            cache_evictions: num(&stats, "cache", "evictions")?,
            cache_entries: num(&stats, "cache", "entries")?,
            cache_bytes: num(&stats, "cache", "bytes")?,
        };
        client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        Ok(bench)
    })();
    // The wire `shutdown` only fires on the success path; flip the flag
    // unconditionally so a connect/request/stats error still stops the
    // daemon instead of leaving join() blocked forever.
    service.request_shutdown();
    match handle.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(format!("server exited with error: {e}")),
        Err(_) => return Err("server thread panicked".to_string()),
    }
    run
}

/// Human-readable report.
pub fn serve_bench_text(b: &ServeBench) -> String {
    let rows: Vec<Vec<String>> = b
        .flows
        .iter()
        .map(|f| {
            vec![
                f.workflow.to_string(),
                f.cold_energy.map_or("fail".into(), |e| format!("{e:.4}")),
                f.warm_energy.map_or("fail".into(), |e| format!("{e:.4}")),
                if f.equal() { "yes" } else { "NO" }.to_string(),
                if f.warm_flag { "yes" } else { "no" }.to_string(),
                format!("{:.2}", f.cold_ms),
                format!("{:.2}", f.warm_ms),
            ]
        })
        .collect();
    let mut out = fmt_table(
        &format!(
            "xp serve-bench — StreamIt suite through the daemon (u = {UTILISATION}, \
             {WARM_ROUNDS} warm rounds)"
        ),
        &[
            "workflow", "cold J", "warm J", "equal", "warm hit", "cold ms", "warm ms",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\nwarm == cold on {}/{} flows; warm speedup {:.2}x (cold mean {:.2} ms, warm mean {:.2} ms)\n",
        b.warm_cold_equal(),
        b.flows.len(),
        b.warm_speedup(),
        b.cold.mean_ms,
        b.warm.mean_ms,
    ));
    out.push_str(&format!(
        "cold p50/p99/p999 {:.2}/{:.2}/{:.2} ms over {} solves; warm {:.2}/{:.2}/{:.2} ms over {}\n",
        b.cold.p50_ms,
        b.cold.p99_ms,
        b.cold.p999_ms,
        b.cold.count,
        b.warm.p50_ms,
        b.warm.p99_ms,
        b.warm.p999_ms,
        b.warm.count,
    ));
    out.push_str(&format!(
        "cache: {} hits, {} misses, {} evictions, {} entries / {} bytes live\n",
        b.cache_hits, b.cache_misses, b.cache_evictions, b.cache_entries, b.cache_bytes,
    ));
    out
}

/// `BENCH_serve.json` payload. Energies, equality, and cache counters are
/// deterministic (units `J`/`count` — gated); latencies and the byte
/// figure are machine- or allocator-dependent (units `ms`/`speedup`/
/// `bytes` — advisory or skipped by `bench-check`).
pub fn serve_bench_json(b: &ServeBench) -> String {
    let mut entries = Vec::new();
    let mut push = |name: &str, value: String, unit: &str| {
        entries.push(format!(
            "    {{\"name\": \"{name}\", \"value\": {value}, \"unit\": \"{unit}\"}}"
        ));
    };
    for f in &b.flows {
        if let Some(e) = f.cold_energy {
            push(&format!("serve/energy/{}", f.workflow), fmt_f64(e), "J");
        }
    }
    push(
        "serve/warm_cold_equal",
        b.warm_cold_equal().to_string(),
        "count",
    );
    push("serve/cache_hits", fmt_f64(b.cache_hits), "count");
    push("serve/cache_misses", fmt_f64(b.cache_misses), "count");
    push("serve/cache_evictions", fmt_f64(b.cache_evictions), "count");
    push("serve/cache_entries", fmt_f64(b.cache_entries), "count");
    push("serve/cache_bytes", fmt_f64(b.cache_bytes), "bytes");
    push("serve/cold/p50", fmt_f64(b.cold.p50_ms), "ms");
    push("serve/cold/p99", fmt_f64(b.cold.p99_ms), "ms");
    push("serve/cold/p999", fmt_f64(b.cold.p999_ms), "ms");
    push("serve/warm/p50", fmt_f64(b.warm.p50_ms), "ms");
    push("serve/warm/p99", fmt_f64(b.warm.p99_ms), "ms");
    push("serve/warm/p999", fmt_f64(b.warm.p999_ms), "ms");
    push("serve/warm_speedup", fmt_f64(b.warm_speedup()), "speedup");
    format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
}

/// Feeds serve metrics into `bench-check`'s fresh map (same names as
/// [`serve_bench_json`]). Latency metrics are included — the checker
/// classifies them advisory by their `ms`/`speedup` units. The byte
/// figure is deliberately *omitted*: `Vec` capacities vary with allocator
/// behaviour, and a metric with no fresh value stays skipped.
pub fn fresh_serve_metrics(b: &ServeBench, fresh: &mut HashMap<String, f64>) {
    for f in &b.flows {
        if let Some(e) = f.cold_energy {
            fresh.insert(format!("serve/energy/{}", f.workflow), e);
        }
    }
    fresh.insert("serve/warm_cold_equal".into(), b.warm_cold_equal() as f64);
    fresh.insert("serve/cache_hits".into(), b.cache_hits);
    fresh.insert("serve/cache_misses".into(), b.cache_misses);
    fresh.insert("serve/cache_evictions".into(), b.cache_evictions);
    fresh.insert("serve/cache_entries".into(), b.cache_entries);
    fresh.insert("serve/cold/p50".into(), b.cold.p50_ms);
    fresh.insert("serve/cold/p99".into(), b.cold.p99_ms);
    fresh.insert("serve/cold/p999".into(), b.cold.p999_ms);
    fresh.insert("serve/warm/p50".into(), b.warm.p50_ms);
    fresh.insert("serve/warm/p99".into(), b.warm.p99_ms);
    fresh.insert("serve/warm/p999".into(), b.warm.p999_ms);
    fresh.insert("serve/warm_speedup".into(), b.warm_speedup());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_wellformed() {
        let b = ServeBench {
            flows: vec![FlowServe {
                workflow: "Beamformer",
                cold_energy: Some(1.5),
                warm_energy: Some(1.5),
                warm_flag: true,
                cold_ms: 2.0,
                warm_ms: 1.0,
            }],
            warm: LatencySummary {
                count: 3.0,
                mean_ms: 1.0,
                ..Default::default()
            },
            cold: LatencySummary {
                count: 1.0,
                mean_ms: 2.0,
                ..Default::default()
            },
            cache_hits: 9.0,
            cache_misses: 3.0,
            cache_evictions: 0.0,
            cache_entries: 3.0,
            cache_bytes: 1024.0,
        };
        let text = serve_bench_json(&b);
        let parsed = Json::parse(&text).expect("serve bench json must parse");
        let results = parsed
            .get("results")
            .and_then(Json::as_arr)
            .expect("results array");
        assert!(results
            .iter()
            .any(|r| r.get("name").and_then(Json::as_str) == Some("serve/energy/Beamformer")));
        assert!((b.warm_speedup() - 2.0).abs() < 1e-12);
        assert_eq!(b.warm_cold_equal(), 1);
        let mut fresh = HashMap::new();
        fresh_serve_metrics(&b, &mut fresh);
        assert_eq!(fresh["serve/warm_cold_equal"], 1.0);
        assert_eq!(fresh["serve/energy/Beamformer"], 1.5);
    }
}
