//! Plain-text table formatting and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Formats a fixed-width text table with a header rule.
pub fn fmt_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        debug_assert_eq!(row.len(), ncols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Writes rows as CSV under `dir/name.csv`, creating `dir` if needed.
pub fn write_csv(dir: &Path, name: &str, headers: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(dir.join(format!("{name}.csv")), out)
}

/// The median of a set of values (mean of the two middle elements for even
/// counts), or `None` when empty. NaN-safe via total ordering.
pub fn median(mut values: Vec<f64>) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let mid = values.len() / 2;
    Some(if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    })
}

/// Formats an energy value normalised to the best heuristic, or a failure
/// marker.
pub fn fmt_norm(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.3}"),
        None => "fail".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = fmt_table(
            "demo",
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("== demo =="));
        let lines: Vec<&str> = t.lines().collect();
        // All data lines share the header line's width bound.
        assert!(lines[3].len() <= lines[1].len() + 2);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("ea-bench-test-csv");
        write_csv(&dir, "t", &["x", "y"], &[vec!["1".into(), "2".into()]]).unwrap();
        let s = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(s, "x,y\n1,2\n");
    }

    #[test]
    fn norm_formatting() {
        assert_eq!(fmt_norm(Some(1.0)), "1.000");
        assert_eq!(fmt_norm(None), "fail");
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(vec![]), None);
        assert_eq!(median(vec![3.0]), Some(3.0));
        assert_eq!(median(vec![3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }
}
