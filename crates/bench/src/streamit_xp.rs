//! StreamIt experiments: Table 1, Figures 8–9, Table 2 (paper §6.2.1).
//!
//! For each of the 12 workflows and each CCR variant (original, 10, 1, 0.1)
//! the harness probes the period bound (§6.1.3) and runs the solver
//! portfolio. Figures 8 and 9 report per-solver energy normalised by
//! the best solver on each instance (best = 1.000, larger is worse,
//! `fail` where a solver finds no mapping); Table 2 counts failures over
//! the 48 instances of each grid size.
//!
//! Probe and portfolio share one [`Instance`] per (workflow, CCR) pair, so
//! `DPA1D`'s interned ideal lattice is enumerated once per instance across
//! the whole decade sweep and the final portfolio run.

use std::sync::Arc;

use cmp_platform::Platform;
use ea_core::{Instance, Solver};
use rayon::prelude::*;
use spg::{streamit_workflow, StreamItSpec, STREAMIT_SPECS};

use crate::probe::probe_instance;
use crate::report::{fmt_norm, fmt_table};
use crate::runner::{best_energy, run_portfolio, solver_names, SolverOutcome};

/// The four CCR variants of §6.1.1, in plot order.
pub const CCR_VARIANTS: [(&str, Option<f64>); 4] = [
    ("original", None),
    ("10", Some(10.0)),
    ("1", Some(1.0)),
    ("0.1", Some(0.1)),
];

/// One (workflow, CCR) instance's results.
#[derive(Debug, Clone)]
pub struct StreamItInstance {
    /// The workflow's published characteristics.
    pub spec: StreamItSpec,
    /// CCR variant label ("original", "10", "1", "0.1").
    pub ccr_label: &'static str,
    /// Probed period bound, when any solver succeeded at any decade.
    pub period: Option<f64>,
    /// One outcome per solver (portfolio order); empty if `period` is None.
    pub outcomes: Vec<SolverOutcome>,
}

/// A full campaign: the solver names (table headers) and the per-instance
/// results.
#[derive(Debug, Clone)]
pub struct StreamItCampaign {
    /// Solver display names, in portfolio order.
    pub names: Vec<String>,
    /// 12 workflows × 4 CCR variants.
    pub instances: Vec<StreamItInstance>,
}

/// Runs the full StreamIt campaign on the paper's `p × q` mesh with the
/// given solver portfolio: 12 workflows × 4 CCR variants = 48 instances.
pub fn streamit_campaign(
    p: u32,
    q: u32,
    seed: u64,
    solvers: &[Arc<dyn Solver>],
) -> StreamItCampaign {
    streamit_campaign_on(Platform::paper(p, q), seed, solvers)
}

/// [`streamit_campaign`] on an arbitrary platform (any topology/routing
/// backend) — what `xp --topology/--routing` drives.
pub fn streamit_campaign_on(
    pf: Platform,
    seed: u64,
    solvers: &[Arc<dyn Solver>],
) -> StreamItCampaign {
    let pf = Arc::new(pf);
    let cases: Vec<(&StreamItSpec, usize)> = STREAMIT_SPECS
        .iter()
        .flat_map(|spec| (0..CCR_VARIANTS.len()).map(move |ci| (spec, ci)))
        .collect();
    let instances = cases
        .into_par_iter()
        .map(|(spec, ci)| {
            let (ccr_label, ccr) = CCR_VARIANTS[ci];
            let mut g = streamit_workflow(spec, seed);
            if let Some(c) = ccr {
                g.scale_to_ccr(c);
            }
            // Deterministic per-instance seed, so `Random`'s draws differ
            // across the 48 instances but reruns reproduce exactly.
            let inst_seed = seed
                ^ (spec.index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (ci as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let base = Instance::from_shared(Arc::new(g), Arc::clone(&pf), 1.0);
            let probed = probe_instance(&base, inst_seed);
            let (period, outcomes) = match probed {
                Some(inst) => (
                    Some(inst.period()),
                    run_portfolio(&inst, solvers, inst_seed),
                ),
                None => (None, Vec::new()),
            };
            StreamItInstance {
                spec: *spec,
                ccr_label,
                period,
                outcomes,
            }
        })
        .collect();
    StreamItCampaign {
        names: solver_names(solvers),
        instances,
    }
}

/// Table 1: the characteristics of the (synthetic) StreamIt workflows.
pub fn table1_text(seed: u64) -> String {
    let rows: Vec<Vec<String>> = STREAMIT_SPECS
        .iter()
        .map(|spec| {
            let g = streamit_workflow(spec, seed);
            vec![
                spec.index.to_string(),
                spec.name.to_string(),
                g.n().to_string(),
                g.elevation().to_string(),
                g.xmax().to_string(),
                format!("{:.0}", g.ccr()),
            ]
        })
        .collect();
    fmt_table(
        "Table 1: Characteristics of the StreamIt workflows (synthetic suite)",
        &["Index", "Name", "n", "ymax", "xmax", "CCR"],
        &rows,
    )
}

/// Figures 8/9: normalised energy per workflow, one block per CCR variant.
pub fn figure_text(campaign: &StreamItCampaign, title: &str) -> String {
    let mut out = String::new();
    for (label, _) in CCR_VARIANTS {
        let mut rows = Vec::new();
        for inst in campaign.instances.iter().filter(|i| i.ccr_label == label) {
            let mut row = vec![inst.spec.index.to_string(), inst.spec.name.to_string()];
            match inst.period {
                Some(t) => {
                    row.push(format!("{t:.0e}"));
                    let best = best_energy(&inst.outcomes);
                    for o in &inst.outcomes {
                        row.push(fmt_norm(o.energy().zip(best).map(|(e, b)| e / b)));
                    }
                }
                None => {
                    row.push("-".into());
                    row.extend(std::iter::repeat_n(
                        "fail".to_string(),
                        campaign.names.len(),
                    ));
                }
            }
            rows.push(row);
        }
        rows.sort_by_key(|r| r[0].parse::<usize>().unwrap());
        let headers: Vec<&str> = ["#", "Workflow", "T(s)"]
            .into_iter()
            .chain(campaign.names.iter().map(String::as_str))
            .collect();
        out.push_str(&fmt_table(
            &format!("{title} — CCR = {label}"),
            &headers,
            &rows,
        ));
        out.push('\n');
    }
    out
}

/// Table 2: per-solver failure counts over one campaign's 48 instances.
pub fn count_failures(campaign: &StreamItCampaign) -> Vec<usize> {
    let mut fails = vec![0usize; campaign.names.len()];
    for inst in &campaign.instances {
        if inst.outcomes.is_empty() {
            for f in fails.iter_mut() {
                *f += 1;
            }
            continue;
        }
        for (k, o) in inst.outcomes.iter().enumerate() {
            if o.result.is_err() {
                fails[k] += 1;
            }
        }
    }
    fails
}

/// Table 2 text from the two grid campaigns.
pub fn table2_text(c44: &StreamItCampaign, c66: &StreamItCampaign) -> String {
    let headers: Vec<&str> = ["Platform"]
        .into_iter()
        .chain(c44.names.iter().map(String::as_str))
        .collect();
    let row = |label: &str, c: &StreamItCampaign| {
        let mut r = vec![label.to_string()];
        r.extend(count_failures(c).iter().map(|f| f.to_string()));
        r
    };
    fmt_table(
        "Table 2: Number of failures per heuristic (48 instances per grid size)",
        &headers,
        &[row("4x4", c44), row("6x6", c66)],
    )
}

/// CSV rows for a campaign (one row per instance × solver).
pub fn campaign_csv_rows(campaign: &StreamItCampaign, grid: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for inst in &campaign.instances {
        let best = best_energy(&inst.outcomes);
        for o in &inst.outcomes {
            rows.push(vec![
                grid.to_string(),
                inst.spec.index.to_string(),
                inst.spec.name.to_string(),
                inst.ccr_label.to_string(),
                inst.period.map_or("-".into(), |t| format!("{t:e}")),
                o.name.clone(),
                o.energy().map_or("fail".into(), |e| format!("{e:e}")),
                o.energy()
                    .zip(best)
                    .map_or("-".into(), |(e, b)| format!("{:.4}", e / b)),
            ]);
        }
    }
    rows
}

/// CSV header matching [`campaign_csv_rows`].
pub const CAMPAIGN_CSV_HEADERS: [&str; 8] = [
    "grid",
    "index",
    "workflow",
    "ccr",
    "period_s",
    "heuristic",
    "energy_j",
    "normalized",
];
