//! Sharded, resumable campaign engine (`xp campaign`).
//!
//! A [`CampaignSpec`] declares a cartesian sweep — workload families ×
//! sizes × seeds × topologies × routing policies × solvers — and expands
//! into a **deterministic job list**: job `i` is the same `(workload,
//! platform, solver)` triple on every machine and every rerun, and its
//! string *key* alone reproduces the input (the workload is a seeded
//! [`WorkloadSpec`], the period a fixed platform utilisation — see
//! [`Instance::for_utilisation`]).
//!
//! Execution is:
//!
//! * **sharded** — `--shard i/m` selects jobs with `index % m == i`, so a
//!   campaign spreads over CI machines with no coordination beyond the
//!   spec itself;
//! * **streamed** — each finished job appends one JSON line (with its key)
//!   to the shard's `.jsonl` file and flushes, so a killed run loses at
//!   most the in-flight jobs;
//! * **resumable** — on restart the runner parses the existing stream,
//!   skips every key already recorded (a truncated trailing line is
//!   ignored and recomputed), and only runs the remainder;
//! * **canonical** — after the shard completes, the runner rewrites the
//!   deterministic fields of all records, key-sorted, as `.final.jsonl`.
//!   Solver energies are deterministic in the job key and wall-clock
//!   times are excluded, so *kill → rerun → byte-identical final file*,
//!   and the concatenation of all shards' final files equals (after a
//!   line sort) the final file of an unsharded run.
//!
//! Each shard also emits a `BENCH_*.json`-compatible summary (median
//! energy, feasibility ratio, and advisory median wall time per
//! family × solver), the format `xp bench-check` gates on.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cmp_platform::{RoutePolicy, TopologyKind};
use ea_core::{Instance, SolveCtx, Solver, SolverRegistry};
use rayon::prelude::*;
use spg::generate::families::{FamilyKind, FamilyParams, WorkloadSpec};

use crate::json::{escape, fmt_f64, Json};
use crate::report::median;
use crate::topology_xp::make_platform;

/// A declarative campaign: the cartesian sweep the engine expands.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (file names, summary metric names).
    pub name: String,
    /// Workload families to sweep.
    pub families: Vec<FamilyKind>,
    /// Exact stage counts per family.
    pub sizes: Vec<usize>,
    /// Instance seeds per `(family, size)` point.
    pub seeds: Vec<u64>,
    /// Interconnect backends.
    pub topologies: Vec<TopologyKind>,
    /// Routing policies (`None` = the backend's default).
    pub routings: Vec<Option<RoutePolicy>>,
    /// Solver names, resolved through [`SolverRegistry`].
    pub solvers: Vec<String>,
    /// Grid dimensions `(p, q)`.
    pub grid: (u32, u32),
    /// Platform utilisation deriving each job's period bound
    /// ([`Instance::for_utilisation`]).
    pub utilisation: f64,
    /// Family width knob ([`FamilyParams::width`]).
    pub width: u32,
    /// Family depth knob ([`FamilyParams::depth`]).
    pub depth: u32,
}

impl CampaignSpec {
    /// The per-PR CI smoke campaign: every family and every topology at
    /// small sizes on a 2×3 grid — broad coverage, seconds of wall time.
    pub fn smoke(seed: u64) -> Self {
        CampaignSpec {
            name: "smoke".into(),
            families: FamilyKind::ALL.to_vec(),
            sizes: vec![12, 24],
            seeds: vec![seed],
            topologies: TopologyKind::ALL.to_vec(),
            routings: vec![None],
            solvers: vec![
                "random".into(),
                "greedy".into(),
                "dpa2d".into(),
                "dpa1d".into(),
                "dpa2d1d".into(),
            ],
            grid: (2, 3),
            utilisation: 0.35,
            width: 4,
            depth: 3,
        }
    }

    /// The nightly campaign: paper-scale sizes on the paper's 4×4 grid,
    /// two seeds per point, every topology, default + YX routing.
    pub fn nightly(seed: u64) -> Self {
        CampaignSpec {
            name: "nightly".into(),
            sizes: vec![50, 100, 150],
            seeds: vec![seed, seed + 1],
            routings: vec![None, Some(RoutePolicy::Yx)],
            grid: (4, 4),
            width: 6,
            depth: 4,
            ..CampaignSpec::smoke(seed)
        }
    }

    /// Fingerprint of every result-affecting parameter that is *not*
    /// encoded in the job keys (grid, utilisation, cost distributions).
    /// Written as a header line into each stream file; a resume against a
    /// stream recorded under a different fingerprint is refused, because
    /// matching keys would silently mix results computed under different
    /// periods or platforms.
    pub fn fingerprint(&self) -> String {
        let d = FamilyParams::default();
        format!(
            "grid={}x{};u={};work={}..{};comm={}..{};ccr={:?}",
            self.grid.0,
            self.grid.1,
            fmt_f64(self.utilisation),
            fmt_f64(d.work_range.0),
            fmt_f64(d.work_range.1),
            fmt_f64(d.comm_range.0),
            fmt_f64(d.comm_range.1),
            d.ccr
        )
    }

    /// Expands the spec into its deterministic job list. Fails on an
    /// unknown solver name.
    pub fn jobs(&self) -> Result<Vec<CampaignJob>, String> {
        let registry = SolverRegistry::with_defaults();
        let mut solvers = registry.parse_list(&self.solvers.join(","))?;
        // Dedupe by display name (keeping first occurrence): a repeated
        // solver would produce duplicate job keys, and the resume path
        // dedupes by key — the final file would then differ between an
        // uninterrupted run and a resumed one.
        let mut seen_names = std::collections::HashSet::new();
        solvers.retain(|s| seen_names.insert(s.name().to_string()));
        if self.families.is_empty()
            || self.sizes.is_empty()
            || self.seeds.is_empty()
            || self.topologies.is_empty()
            || self.routings.is_empty()
            || solvers.is_empty()
        {
            return Err("campaign spec has an empty axis".into());
        }
        let mut jobs = Vec::new();
        for &family in &self.families {
            for &n in &self.sizes {
                for &seed in &self.seeds {
                    let params = FamilyParams {
                        n,
                        width: self.width,
                        depth: self.depth,
                        ..FamilyParams::default()
                    };
                    let workload = WorkloadSpec::new(family, params, seed);
                    for &topology in &self.topologies {
                        for &routing in &self.routings {
                            for solver in &solvers {
                                let key = format!(
                                    "{}/{}/{}/{}",
                                    workload.id(),
                                    topology,
                                    routing_label(routing),
                                    solver.name()
                                );
                                jobs.push(CampaignJob {
                                    index: jobs.len(),
                                    key,
                                    workload: workload.clone(),
                                    topology,
                                    routing,
                                    solver: Arc::clone(solver),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(jobs)
    }
}

fn routing_label(routing: Option<RoutePolicy>) -> String {
    routing.map_or_else(|| "default".to_string(), |p| p.to_string())
}

/// One expanded campaign job: a solver on a generated workload on one
/// platform configuration.
pub struct CampaignJob {
    /// Position in the deterministic job list (the sharding index).
    pub index: usize,
    /// Unique, stable key: `<workload-id>/<topology>/<routing>/<solver>`.
    pub key: String,
    /// The seeded workload name.
    pub workload: WorkloadSpec,
    /// Interconnect backend.
    pub topology: TopologyKind,
    /// Routing override (`None` = backend default).
    pub routing: Option<RoutePolicy>,
    /// The solver to run.
    pub solver: Arc<dyn Solver>,
}

/// One finished job, as recorded in the stream file.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job key ([`CampaignJob::key`]).
    pub key: String,
    /// Workload family name.
    pub family: String,
    /// Stage count.
    pub n: usize,
    /// Workload seed.
    pub seed: u64,
    /// Topology backend name.
    pub topology: String,
    /// Routing label (`default` or a policy name).
    pub routing: String,
    /// Solver display name.
    pub solver: String,
    /// Elevation of the generated graph (scenario descriptor).
    pub elevation: u32,
    /// The derived period bound, seconds.
    pub period_s: f64,
    /// Energy of the solver's mapping, joules (`None` = failed).
    pub energy_j: Option<f64>,
    /// Failure reason when the solver failed.
    pub failure: Option<String>,
    /// Wall time of the solve call, milliseconds. Volatile: recorded in
    /// the stream file and the summary, **excluded** from the canonical
    /// final file (it would break byte-identical resume).
    pub wall_ms: f64,
}

impl JobRecord {
    /// The deterministic fields, as one canonical JSON line (no trailing
    /// newline). Byte-identical across reruns of the same job.
    pub fn canonical_line(&self) -> String {
        let mut s = String::with_capacity(192);
        s.push_str(&format!(
            "{{\"key\":\"{}\",\"family\":\"{}\",\"n\":{},\"seed\":{},\"topology\":\"{}\",\"routing\":\"{}\",\"solver\":\"{}\",\"elevation\":{},\"period_s\":{}",
            escape(&self.key),
            escape(&self.family),
            self.n,
            self.seed,
            escape(&self.topology),
            escape(&self.routing),
            escape(&self.solver),
            self.elevation,
            fmt_f64(self.period_s),
        ));
        match self.energy_j {
            Some(e) => s.push_str(&format!(",\"energy_j\":{}", fmt_f64(e))),
            None => s.push_str(",\"energy_j\":null"),
        }
        match &self.failure {
            Some(f) => s.push_str(&format!(",\"failure\":\"{}\"", escape(f))),
            None => s.push_str(",\"failure\":null"),
        }
        s.push('}');
        s
    }

    /// The stream-file line: canonical fields plus the volatile wall time.
    pub fn stream_line(&self) -> String {
        let mut s = self.canonical_line();
        s.pop(); // strip '}'
        s.push_str(&format!(",\"wall_ms\":{}}}", fmt_f64(self.wall_ms)));
        s
    }

    /// Parses one stream line; `None` for truncated/foreign lines (the
    /// resume path treats those as not-yet-done).
    pub fn parse(line: &str) -> Option<JobRecord> {
        let v = Json::parse(line.trim()).ok()?;
        let s = |k: &str| v.get(k)?.as_str().map(str::to_string);
        let opt_f = |k: &str| match v.get(k) {
            Some(Json::Null) | None => None,
            Some(j) => j.as_f64(),
        };
        Some(JobRecord {
            key: s("key")?,
            family: s("family")?,
            n: v.get("n")?.as_f64()? as usize,
            seed: v.get("seed")?.as_f64()? as u64,
            topology: s("topology")?,
            routing: s("routing")?,
            solver: s("solver")?,
            elevation: v.get("elevation")?.as_f64()? as u32,
            period_s: v.get("period_s")?.as_f64()?,
            energy_j: opt_f("energy_j"),
            failure: match v.get("failure") {
                Some(Json::Str(f)) => Some(f.clone()),
                _ => None,
            },
            wall_ms: opt_f("wall_ms").unwrap_or(0.0),
        })
    }
}

/// Which slice of the job list this process runs: jobs with
/// `index % count == index_of_shard`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Default for Shard {
    fn default() -> Self {
        Shard { index: 0, count: 1 }
    }
}

impl Shard {
    /// Whether this shard owns job `job_index`.
    pub fn owns(&self, job_index: usize) -> bool {
        job_index % self.count == self.index
    }

    /// File-name suffix: empty for the full run, `.shard0of4` otherwise.
    fn suffix(&self) -> String {
        if self.count == 1 {
            String::new()
        } else {
            format!(".shard{}of{}", self.index, self.count)
        }
    }
}

impl FromStr for Shard {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("bad shard '{s}' (expected I/M with 0 <= I < M)");
        let (i, m) = s.split_once('/').ok_or_else(err)?;
        let index: usize = i.trim().parse().map_err(|_| err())?;
        let count: usize = m.trim().parse().map_err(|_| err())?;
        if count == 0 || index >= count {
            return Err(err());
        }
        Ok(Shard { index, count })
    }
}

/// Outcome of one [`run_campaign`] call.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// All records in this shard's scope, key-sorted (resumed + fresh).
    pub records: Vec<JobRecord>,
    /// Jobs skipped because the stream file already had their key.
    pub resumed: usize,
    /// Jobs executed by this call.
    pub fresh: usize,
    /// The append-only stream file.
    pub stream_path: PathBuf,
    /// The canonical key-sorted result file.
    pub final_path: PathBuf,
    /// The `BENCH_*.json`-compatible summary file.
    pub summary_path: PathBuf,
}

/// Runs (or resumes) one shard of a campaign, writing into `dir`.
///
/// Jobs fan out over the rayon pool; each finished job appends one line to
/// the stream file and flushes. On return the canonical final file and the
/// benchmark summary cover the shard's whole scope.
pub fn run_campaign(
    spec: &CampaignSpec,
    dir: &Path,
    shard: Shard,
) -> Result<CampaignOutcome, String> {
    let jobs = spec.jobs()?;
    let scope: Vec<&CampaignJob> = jobs.iter().filter(|j| shard.owns(j.index)).collect();
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let stream_path = dir.join(format!("{}{}.jsonl", spec.name, shard.suffix()));
    let final_path = dir.join(format!("{}{}.final.jsonl", spec.name, shard.suffix()));
    let summary_path = dir.join(format!(
        "BENCH_campaign_{}{}.json",
        spec.name,
        shard.suffix()
    ));

    // Resume: collect the keys already completed in a previous run. A
    // truncated trailing line (killed mid-write) fails to parse and is
    // simply recomputed. The header line guards against resuming a stream
    // recorded under different non-key parameters (period, grid, cost
    // distributions): matching keys would silently mix incompatible runs.
    let fingerprint = spec.fingerprint();
    let mut done: Vec<JobRecord> = Vec::new();
    let mut needs_newline = false;
    let mut needs_header = true;
    if let Ok(mut f) = File::open(&stream_path) {
        let mut text = String::new();
        f.read_to_string(&mut text)
            .map_err(|e| format!("reading {}: {e}", stream_path.display()))?;
        needs_newline = !text.is_empty() && !text.ends_with('\n');
        needs_header = text.is_empty();
        if !text.is_empty() {
            let recorded = text
                .lines()
                .next()
                .and_then(|l| Json::parse(l).ok())
                .and_then(|h| h.get("spec").and_then(Json::as_str).map(str::to_string));
            match recorded {
                Some(recorded) if recorded == fingerprint => {}
                Some(recorded) => {
                    return Err(format!(
                        "{} was recorded under a different campaign spec \
                         (recorded '{recorded}', current '{fingerprint}'); \
                         refusing to resume — use a fresh --out directory",
                        stream_path.display()
                    ));
                }
                // A non-empty stream without a valid header (torn header
                // write, or a foreign file) cannot be trusted to match
                // this spec; silently resuming could mix incompatible
                // results, so refuse.
                None => {
                    return Err(format!(
                        "{} has no valid campaign header (torn write or \
                         foreign file); delete it or use a fresh --out \
                         directory",
                        stream_path.display()
                    ));
                }
            }
        }
        let scope_keys: std::collections::HashSet<&str> =
            scope.iter().map(|j| j.key.as_str()).collect();
        let mut seen = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rec) = JobRecord::parse(line) {
                if scope_keys.contains(rec.key.as_str()) && seen.insert(rec.key.clone()) {
                    done.push(rec);
                }
            }
        }
    }
    let done_keys: std::collections::HashSet<&str> = done.iter().map(|r| r.key.as_str()).collect();
    let pending: Vec<&CampaignJob> = scope
        .iter()
        .copied()
        .filter(|j| !done_keys.contains(j.key.as_str()))
        .collect();
    let resumed = done.len();
    let fresh = pending.len();

    // Append-only stream: every record is one write + flush, so a kill
    // loses at most the in-flight jobs.
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&stream_path)
        .map_err(|e| format!("opening {}: {e}", stream_path.display()))?;
    let sink = Mutex::new(file);
    if needs_header {
        let mut f = sink.lock().unwrap();
        writeln!(
            f,
            "{{\"campaign\":\"{}\",\"spec\":\"{}\"}}",
            escape(&spec.name),
            escape(&fingerprint)
        )
        .map_err(|e| format!("writing {}: {e}", stream_path.display()))?;
    }
    if needs_newline {
        // Heal a truncated trailing line so the next append starts clean.
        let mut f = sink.lock().unwrap();
        writeln!(f).map_err(|e| format!("writing {}: {e}", stream_path.display()))?;
    }

    let p = spec.grid.0;
    let q = spec.grid.1;
    let utilisation = spec.utilisation;
    // A lost stream line silently breaks the resume contract (the job
    // would be recomputed as if it never ran, and CI would stay green on
    // a half-durable campaign), so any write failure fails the run.
    let write_err: Mutex<Option<String>> = Mutex::new(None);
    let fresh_records: Vec<JobRecord> = pending
        .into_par_iter()
        .map(|job| {
            let rec = run_job(job, p, q, utilisation);
            let mut f = sink.lock().unwrap();
            if let Err(e) = writeln!(f, "{}", rec.stream_line()).and_then(|_| f.flush()) {
                eprintln!("[campaign] stream write failed: {e}");
                write_err
                    .lock()
                    .unwrap()
                    .get_or_insert_with(|| e.to_string());
            }
            rec
        })
        .collect();
    if let Some(e) = write_err.into_inner().unwrap() {
        return Err(format!(
            "stream write to {} failed ({e}); results of this run are not \
             durable — fix the output volume and rerun to resume",
            stream_path.display()
        ));
    }

    let mut records = done;
    records.extend(fresh_records);
    records.sort_by(|a, b| a.key.cmp(&b.key));

    // Canonical final file: deterministic fields only, key-sorted —
    // byte-identical however the jobs were interleaved or resumed.
    let mut final_text = String::new();
    for r in &records {
        final_text.push_str(&r.canonical_line());
        final_text.push('\n');
    }
    std::fs::write(&final_path, final_text)
        .map_err(|e| format!("writing {}: {e}", final_path.display()))?;

    std::fs::write(&summary_path, summary_json(spec, &records))
        .map_err(|e| format!("writing {}: {e}", summary_path.display()))?;

    Ok(CampaignOutcome {
        records,
        resumed,
        fresh,
        stream_path,
        final_path,
        summary_path,
    })
}

/// Executes one job: generate the workload, derive the period, run the
/// solver. Never panics on solver failure — failures are campaign data.
fn run_job(job: &CampaignJob, p: u32, q: u32, utilisation: f64) -> JobRecord {
    let g = job.workload.instantiate();
    let elevation = g.elevation();
    let pf = make_platform(job.topology, p, q, job.routing);
    let inst = Instance::for_utilisation(g, pf, utilisation);
    let started = Instant::now();
    let result = job.solver.solve(&inst, &SolveCtx::new(job.workload.seed));
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (energy_j, failure) = match result {
        Ok(sol) => (Some(sol.energy()), None),
        Err(f) => (None, Some(f.to_string())),
    };
    JobRecord {
        key: job.key.clone(),
        family: job.workload.family.to_string(),
        n: job.workload.params.n,
        seed: job.workload.seed,
        topology: job.topology.to_string(),
        routing: routing_label(job.routing),
        solver: job.solver.name().to_string(),
        elevation,
        period_s: inst.period(),
        energy_j,
        failure,
        wall_ms,
    }
}

/// The `BENCH_*.json`-compatible summary: per `(family, solver)` across
/// the whole sweep, the median energy (gateable, deterministic), the
/// feasibility ratio (gateable), and the median wall time (advisory —
/// time metrics never gate, see `xp bench-check`).
pub fn summary_json(spec: &CampaignSpec, records: &[JobRecord]) -> String {
    let mut families: Vec<&str> = Vec::new();
    let mut solvers: Vec<&str> = Vec::new();
    for r in records {
        if !families.contains(&r.family.as_str()) {
            families.push(&r.family);
        }
        if !solvers.contains(&r.solver.as_str()) {
            solvers.push(&r.solver);
        }
    }
    let mut entries = Vec::new();
    for family in &families {
        for solver in &solvers {
            let group: Vec<&JobRecord> = records
                .iter()
                .filter(|r| r.family == *family && r.solver == *solver)
                .collect();
            if group.is_empty() {
                continue;
            }
            let energies: Vec<f64> = group.iter().filter_map(|r| r.energy_j).collect();
            let ratio = energies.len() as f64 / group.len() as f64;
            let prefix = format!("campaign/{}/{family}/{solver}", spec.name);
            entries.push(format!(
                "    {{\"name\": \"{prefix}/feasible_ratio\", \"value\": {}, \"unit\": \"ratio\"}}",
                fmt_f64(ratio)
            ));
            if let Some(med) = median(energies) {
                entries.push(format!(
                    "    {{\"name\": \"{prefix}/median_energy\", \"value\": {}, \"unit\": \"J\"}}",
                    fmt_f64(med)
                ));
            }
            if let Some(med) = median(group.iter().map(|r| r.wall_ms).collect()) {
                entries.push(format!(
                    "    {{\"name\": \"{prefix}/median_wall\", \"value\": {}, \"unit\": \"ms\"}}",
                    fmt_f64(med)
                ));
            }
        }
    }
    format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
}

/// One-paragraph text summary for the CLI.
pub fn outcome_text(spec: &CampaignSpec, shard: Shard, outcome: &CampaignOutcome) -> String {
    let failed = outcome
        .records
        .iter()
        .filter(|r| r.energy_j.is_none())
        .count();
    format!(
        "[campaign {}] shard {}/{}: {} jobs ({} resumed, {} fresh), {} infeasible\n\
         [campaign {}] stream  {}\n\
         [campaign {}] final   {}\n\
         [campaign {}] summary {}",
        spec.name,
        shard.index,
        shard.count,
        outcome.records.len(),
        outcome.resumed,
        outcome.fresh,
        failed,
        spec.name,
        outcome.stream_path.display(),
        spec.name,
        outcome.final_path.display(),
        spec.name,
        outcome.summary_path.display(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(name: &str) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            families: vec![FamilyKind::DeepChain, FamilyKind::WideForkJoin],
            sizes: vec![8],
            seeds: vec![3],
            topologies: vec![TopologyKind::Mesh],
            routings: vec![None],
            solvers: vec!["greedy".into(), "random".into()],
            grid: (2, 2),
            utilisation: 0.3,
            width: 3,
            depth: 2,
        }
    }

    #[test]
    fn job_list_is_deterministic_with_unique_keys() {
        let spec = tiny_spec("t");
        let a = spec.jobs().unwrap();
        let b = spec.jobs().unwrap();
        assert_eq!(a.len(), 4);
        let keys: Vec<&str> = a.iter().map(|j| j.key.as_str()).collect();
        assert_eq!(keys, b.iter().map(|j| j.key.as_str()).collect::<Vec<_>>());
        let unique: std::collections::HashSet<&&str> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "keys must be unique");
        assert_eq!(keys[0], "deep-chain-n8-w3-d2-s3/mesh/default/Greedy");
    }

    #[test]
    fn unknown_solver_is_rejected() {
        let mut spec = tiny_spec("t");
        spec.solvers = vec!["nope".into()];
        assert!(spec.jobs().is_err());
    }

    #[test]
    fn duplicate_solvers_collapse_to_unique_keys() {
        // A repeated solver would duplicate job keys, and the resume path
        // dedupes by key — final files would then differ between a fresh
        // and a resumed run.
        let mut spec = tiny_spec("t");
        spec.solvers = vec!["greedy".into(), "greedy".into(), "Greedy".into()];
        let jobs = spec.jobs().unwrap();
        assert_eq!(jobs.len(), 2, "one per family, not per repetition");
        let keys: std::collections::HashSet<&str> = jobs.iter().map(|j| j.key.as_str()).collect();
        assert_eq!(keys.len(), jobs.len());
    }

    #[test]
    fn record_lines_round_trip() {
        let rec = JobRecord {
            key: "k/mesh/default/Greedy".into(),
            family: "deep-chain".into(),
            n: 8,
            seed: 3,
            topology: "mesh".into(),
            routing: "default".into(),
            solver: "Greedy".into(),
            elevation: 1,
            period_s: 0.0125,
            energy_j: Some(1.0 / 3.0),
            failure: None,
            wall_ms: 4.25,
        };
        let parsed = JobRecord::parse(&rec.stream_line()).unwrap();
        assert_eq!(parsed, rec);
        // Canonical line drops the volatile wall time.
        let canon = JobRecord::parse(&rec.canonical_line()).unwrap();
        assert_eq!(canon.wall_ms, 0.0);
        assert_eq!(canon.energy_j, rec.energy_j);
        // A failure record round-trips too.
        let fail = JobRecord {
            energy_j: None,
            failure: Some("no valid mapping: x".into()),
            ..rec
        };
        assert_eq!(JobRecord::parse(&fail.stream_line()).unwrap(), fail);
        // Truncated lines are rejected, not mis-parsed.
        let line = fail.stream_line();
        assert!(JobRecord::parse(&line[..line.len() - 5]).is_none());
    }

    #[test]
    fn shard_parsing_and_ownership() {
        let s: Shard = "1/3".parse().unwrap();
        assert!(!s.owns(0) && s.owns(1) && !s.owns(2) && s.owns(4));
        assert!("3/3".parse::<Shard>().is_err());
        assert!("0/0".parse::<Shard>().is_err());
        assert!("x".parse::<Shard>().is_err());
        assert_eq!(Shard::default(), Shard { index: 0, count: 1 });
    }
}
