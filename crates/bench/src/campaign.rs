//! Sharded, resumable campaign engine (`xp campaign`).
//!
//! A [`CampaignSpec`] declares a cartesian sweep — workload families ×
//! sizes × seeds × topologies × routing policies × solvers — and expands
//! into a **deterministic job list**: job `i` is the same `(workload,
//! platform, solver)` triple on every machine and every rerun, and its
//! string *key* alone reproduces the input (the workload is a seeded
//! [`WorkloadSpec`], the period a fixed platform utilisation — see
//! [`Instance::for_utilisation`]).
//!
//! Execution is:
//!
//! * **sharded** — `--shard i/m` selects jobs with `index % m == i`, so a
//!   campaign spreads over CI machines with no coordination beyond the
//!   spec itself;
//! * **streamed** — each finished job appends one JSON line (with its key)
//!   to the shard's `.jsonl` file and flushes, so a killed run loses at
//!   most the in-flight jobs;
//! * **resumable** — on restart the runner parses the existing stream,
//!   skips every key already recorded (a truncated trailing line is
//!   ignored and recomputed), and only runs the remainder;
//! * **canonical** — after the shard completes, the runner rewrites the
//!   deterministic fields of all records, key-sorted, as `.final.jsonl`.
//!   Solver energies are deterministic in the job key and wall-clock
//!   times are excluded, so *kill → rerun → byte-identical final file*,
//!   and the concatenation of all shards' final files equals (after a
//!   line sort) the final file of an unsharded run.
//!
//! Each shard also emits a `BENCH_*.json`-compatible summary (median
//! energy, feasibility ratio, and advisory median wall time per
//! family × solver), the format `xp bench-check` gates on.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cmp_platform::{RoutePolicy, TopologyKind};
use ea_core::{Instance, SolveCtx, Solver, SolverRegistry};
use rayon::prelude::*;
use spg::generate::families::{FamilyKind, FamilyParams, WorkloadSpec};

use crate::report::median;
use crate::topology_xp::make_platform;
use ea_core::json::{escape, fmt_f64, Json};

/// A declarative campaign: the cartesian sweep the engine expands.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (file names, summary metric names).
    pub name: String,
    /// Workload families to sweep.
    pub families: Vec<FamilyKind>,
    /// Exact stage counts per family.
    pub sizes: Vec<usize>,
    /// Instance seeds per `(family, size)` point.
    pub seeds: Vec<u64>,
    /// Interconnect backends.
    pub topologies: Vec<TopologyKind>,
    /// Routing policies (`None` = the backend's default).
    pub routings: Vec<Option<RoutePolicy>>,
    /// Solver names, resolved through [`SolverRegistry`].
    pub solvers: Vec<String>,
    /// Grid dimensions `(p, q)`.
    pub grid: (u32, u32),
    /// Platform utilisations deriving each job's period bound
    /// ([`Instance::for_utilisation`]) — a sweep axis like the others, so
    /// one campaign can trace a feasibility-vs-tightness curve per family.
    /// Each utilisation is part of the job key (`u<value>`).
    pub utilisations: Vec<f64>,
    /// Family width knob ([`FamilyParams::width`]).
    pub width: u32,
    /// Family depth knob ([`FamilyParams::depth`]).
    pub depth: u32,
}

impl CampaignSpec {
    /// The per-PR CI smoke campaign: every family and every topology at
    /// small sizes on a 2×3 grid — broad coverage, seconds of wall time.
    pub fn smoke(seed: u64) -> Self {
        CampaignSpec {
            name: "smoke".into(),
            families: FamilyKind::ALL.to_vec(),
            sizes: vec![12, 24],
            seeds: vec![seed],
            topologies: TopologyKind::ALL.to_vec(),
            routings: vec![None],
            solvers: vec![
                "random".into(),
                "greedy".into(),
                "dpa2d".into(),
                "dpa1d".into(),
                "dpa2d1d".into(),
            ],
            grid: (2, 3),
            utilisations: vec![0.35],
            width: 4,
            depth: 3,
        }
    }

    /// The nightly campaign: paper-scale sizes on the paper's 4×4 grid,
    /// two seeds per point, every topology, default + YX routing.
    pub fn nightly(seed: u64) -> Self {
        CampaignSpec {
            name: "nightly".into(),
            sizes: vec![50, 100, 150],
            seeds: vec![seed, seed + 1],
            routings: vec![None, Some(RoutePolicy::Yx)],
            grid: (4, 4),
            width: 6,
            depth: 4,
            ..CampaignSpec::smoke(seed)
        }
    }

    /// Fingerprint of every result-affecting parameter that is *not*
    /// encoded in the job keys (grid, cost distributions; the utilisation
    /// moved *into* the keys when it became a sweep axis). Written as a
    /// header line into each stream file; a resume against a stream
    /// recorded under a different fingerprint is refused, because matching
    /// keys would silently mix results computed under different periods or
    /// platforms.
    pub fn fingerprint(&self) -> String {
        let d = FamilyParams::default();
        format!(
            "grid={}x{};work={}..{};comm={}..{};ccr={:?}",
            self.grid.0,
            self.grid.1,
            fmt_f64(d.work_range.0),
            fmt_f64(d.work_range.1),
            fmt_f64(d.comm_range.0),
            fmt_f64(d.comm_range.1),
            d.ccr
        )
    }

    /// Serialises the spec as the `--campaign <file>.json` document (the
    /// inverse of [`CampaignSpec::from_json`], round-trip exact: numbers
    /// go through the shortest-roundtrip writer).
    pub fn to_json(&self) -> String {
        let strs = |v: Vec<String>| -> String {
            v.iter()
                .map(|s| format!("\"{}\"", escape(s)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let nums = |v: Vec<f64>| -> String {
            v.iter().map(|&x| fmt_f64(x)).collect::<Vec<_>>().join(", ")
        };
        format!(
            "{{\n  \"name\": \"{}\",\n  \"families\": [{}],\n  \"sizes\": [{}],\n  \
             \"seeds\": [{}],\n  \"utilisations\": [{}],\n  \"topologies\": [{}],\n  \
             \"routings\": [{}],\n  \"solvers\": [{}],\n  \"grid\": [{}, {}],\n  \
             \"width\": {},\n  \"depth\": {}\n}}\n",
            escape(&self.name),
            strs(self.families.iter().map(|f| f.to_string()).collect()),
            nums(self.sizes.iter().map(|&n| n as f64).collect()),
            nums(self.seeds.iter().map(|&s| s as f64).collect()),
            nums(self.utilisations.clone()),
            strs(self.topologies.iter().map(|t| t.to_string()).collect()),
            strs(self.routings.iter().map(|&r| routing_label(r)).collect()),
            strs(self.solvers.clone()),
            self.grid.0,
            self.grid.1,
            self.width,
            self.depth,
        )
    }

    /// Parses a spec from its JSON document — the minimal loader behind
    /// `xp campaign --campaign <file>.json`, so CI matrices and users can
    /// define sweeps without recompiling the presets. Every field is
    /// required; axis values are validated the same way [`Self::jobs`]
    /// validates the presets (solver names are checked at expansion).
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        let doc = Json::parse(text).map_err(|e| format!("campaign spec: {e}"))?;
        let arr = |k: &str| -> Result<&[Json], String> {
            doc.get(k)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("campaign spec: missing array '{k}'"))
        };
        let str_list = |k: &str| -> Result<Vec<String>, String> {
            arr(k)?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("campaign spec: '{k}' must hold strings"))
                })
                .collect()
        };
        let num_list = |k: &str| -> Result<Vec<f64>, String> {
            arr(k)?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| format!("campaign spec: '{k}' must hold numbers"))
                })
                .collect()
        };
        // JSON numbers arrive as f64; sizes/seeds/grid/width/depth must be
        // exact integers. Anything fractional or beyond f64's exact-integer
        // range (2^53) would silently round to *different* job keys than
        // the authoring run, so it is an error, not a cast.
        let as_int = |k: &str, x: f64| -> Result<u64, String> {
            const EXACT_MAX: f64 = 9_007_199_254_740_992.0; // 2^53
            if x.fract() != 0.0 || !(0.0..=EXACT_MAX).contains(&x) {
                return Err(format!(
                    "campaign spec: '{k}' must hold integers in 0..=2^53, got {x}"
                ));
            }
            Ok(x as u64)
        };
        let int_list = |k: &str| -> Result<Vec<u64>, String> {
            num_list(k)?.iter().map(|&x| as_int(k, x)).collect()
        };
        let num = |k: &str| -> Result<f64, String> {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("campaign spec: missing number '{k}'"))
        };
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("campaign spec: missing string 'name'")?
            .to_string();
        let families = str_list("families")?
            .iter()
            .map(|s| s.parse::<FamilyKind>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("campaign spec: {e}"))?;
        let topologies = str_list("topologies")?
            .iter()
            .map(|s| s.parse::<TopologyKind>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("campaign spec: {e}"))?;
        let routings = str_list("routings")?
            .iter()
            .map(|s| {
                if s.eq_ignore_ascii_case("default") {
                    Ok(None)
                } else {
                    s.parse::<RoutePolicy>().map(Some)
                }
            })
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("campaign spec: {e}"))?;
        let grid = arr("grid")?;
        let [p, q] = grid else {
            return Err("campaign spec: 'grid' must be [p, q]".into());
        };
        let (Some(p), Some(q)) = (p.as_f64(), q.as_f64()) else {
            return Err("campaign spec: 'grid' must hold numbers".into());
        };
        let (p, q) = (as_int("grid", p)?, as_int("grid", q)?);
        if !(1..=u32::MAX as u64).contains(&p) || !(1..=u32::MAX as u64).contains(&q) {
            return Err("campaign spec: grid dimensions must be at least 1".into());
        }
        Ok(CampaignSpec {
            name,
            families,
            sizes: int_list("sizes")?.iter().map(|&x| x as usize).collect(),
            seeds: int_list("seeds")?,
            utilisations: num_list("utilisations")?,
            topologies,
            routings,
            solvers: str_list("solvers")?,
            grid: (p as u32, q as u32),
            width: as_int("width", num("width")?)?.min(u32::MAX as u64) as u32,
            depth: as_int("depth", num("depth")?)?.min(u32::MAX as u64) as u32,
        })
    }

    /// Expands the spec into its deterministic job list. Fails on an
    /// unknown solver name.
    pub fn jobs(&self) -> Result<Vec<CampaignJob>, String> {
        let registry = SolverRegistry::with_defaults();
        let mut solvers = registry.parse_list(&self.solvers.join(","))?;
        // Dedupe by display name (keeping first occurrence): a repeated
        // solver would produce duplicate job keys, and the resume path
        // dedupes by key — the final file would then differ between an
        // uninterrupted run and a resumed one.
        let mut seen_names = std::collections::HashSet::new();
        solvers.retain(|s| seen_names.insert(s.name().to_string()));
        if self.families.is_empty()
            || self.sizes.is_empty()
            || self.seeds.is_empty()
            || self.utilisations.is_empty()
            || self.topologies.is_empty()
            || self.routings.is_empty()
            || solvers.is_empty()
        {
            return Err("campaign spec has an empty axis".into());
        }
        if self
            .utilisations
            .iter()
            .any(|&u| !(u > 0.0 && u.is_finite()))
        {
            return Err("campaign utilisations must be positive and finite".into());
        }
        let mut jobs = Vec::new();
        for &family in &self.families {
            for &n in &self.sizes {
                for &seed in &self.seeds {
                    let params = FamilyParams {
                        n,
                        width: self.width,
                        depth: self.depth,
                        ..FamilyParams::default()
                    };
                    let workload = WorkloadSpec::new(family, params, seed);
                    for &utilisation in &self.utilisations {
                        for &topology in &self.topologies {
                            for &routing in &self.routings {
                                for solver in &solvers {
                                    let key = format!(
                                        "{}/u{}/{}/{}/{}",
                                        workload.id(),
                                        fmt_f64(utilisation),
                                        topology,
                                        routing_label(routing),
                                        solver.name()
                                    );
                                    jobs.push(CampaignJob {
                                        index: jobs.len(),
                                        key,
                                        workload: workload.clone(),
                                        utilisation,
                                        topology,
                                        routing,
                                        solver: Arc::clone(solver),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(jobs)
    }
}

fn routing_label(routing: Option<RoutePolicy>) -> String {
    routing.map_or_else(|| "default".to_string(), |p| p.to_string())
}

/// One expanded campaign job: a solver on a generated workload on one
/// platform configuration.
pub struct CampaignJob {
    /// Position in the deterministic job list (the sharding index).
    pub index: usize,
    /// Unique, stable key:
    /// `<workload-id>/u<utilisation>/<topology>/<routing>/<solver>`.
    pub key: String,
    /// The seeded workload name.
    pub workload: WorkloadSpec,
    /// Platform utilisation deriving this job's period bound.
    pub utilisation: f64,
    /// Interconnect backend.
    pub topology: TopologyKind,
    /// Routing override (`None` = backend default).
    pub routing: Option<RoutePolicy>,
    /// The solver to run.
    pub solver: Arc<dyn Solver>,
}

/// One finished job, as recorded in the stream file.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job key ([`CampaignJob::key`]).
    pub key: String,
    /// Workload family name.
    pub family: String,
    /// Stage count.
    pub n: usize,
    /// Workload seed.
    pub seed: u64,
    /// Topology backend name.
    pub topology: String,
    /// Routing label (`default` or a policy name).
    pub routing: String,
    /// Solver display name.
    pub solver: String,
    /// Elevation of the generated graph (scenario descriptor).
    pub elevation: u32,
    /// Platform utilisation the period was derived from (0 when parsing a
    /// pre-u-axis stream line, which no current fingerprint accepts).
    pub utilisation: f64,
    /// The derived period bound, seconds.
    pub period_s: f64,
    /// Energy of the solver's mapping, joules (`None` = failed).
    pub energy_j: Option<f64>,
    /// Failure reason when the solver failed.
    pub failure: Option<String>,
    /// Structured budget telemetry when the failure was a budget abort
    /// ([`ea_core::BudgetExceeded`]): the phase name, the cap, and the
    /// count at abort — the fields the elevation-vs-cost wall (§6.2.1)
    /// plots straight from campaign JSONL. Absent for feasibility
    /// failures and for successes.
    pub fail_phase: Option<String>,
    /// The cap of the aborting phase.
    pub fail_cap: Option<u64>,
    /// The count observed at abort.
    pub fail_count: Option<u64>,
    /// `DPA1D` dominance telemetry ([`ea_core::PruneStats`]), recorded
    /// verbatim when the winning solution carried it. All four fields are
    /// deterministic in the job key (the counters are order-independent
    /// sums), so they live in the canonical final file. Absent for other
    /// solvers and for failures.
    pub transitions_kept: Option<u64>,
    /// Admitted transitions skipped by dominance pruning.
    pub transitions_pruned: Option<u64>,
    /// Largest per-ideal energy frontier observed.
    pub frontier_max: Option<u64>,
    /// Certified optimality gap ([`ea_core::PruneStats::bound_gap`]).
    pub bound_gap: Option<f64>,
    /// Wall time of the solve call, milliseconds. Volatile: recorded in
    /// the stream file and the summary, **excluded** from the canonical
    /// final file (it would break byte-identical resume).
    pub wall_ms: f64,
}

impl JobRecord {
    /// The deterministic fields, as one canonical JSON line (no trailing
    /// newline). Byte-identical across reruns of the same job.
    pub fn canonical_line(&self) -> String {
        let mut s = String::with_capacity(224);
        s.push_str(&format!(
            "{{\"key\":\"{}\",\"family\":\"{}\",\"n\":{},\"seed\":{},\"topology\":\"{}\",\"routing\":\"{}\",\"solver\":\"{}\",\"elevation\":{},\"utilisation\":{},\"period_s\":{}",
            escape(&self.key),
            escape(&self.family),
            self.n,
            self.seed,
            escape(&self.topology),
            escape(&self.routing),
            escape(&self.solver),
            self.elevation,
            fmt_f64(self.utilisation),
            fmt_f64(self.period_s),
        ));
        match self.energy_j {
            Some(e) => s.push_str(&format!(",\"energy_j\":{}", fmt_f64(e))),
            None => s.push_str(",\"energy_j\":null"),
        }
        match &self.failure {
            Some(f) => s.push_str(&format!(",\"failure\":\"{}\"", escape(f))),
            None => s.push_str(",\"failure\":null"),
        }
        // Structured budget telemetry rides along only when present, so
        // feasibility failures and successes keep their compact shape
        // (schema bump is additive — old parsers ignore unknown fields,
        // this parser treats them as optional).
        if let (Some(phase), Some(cap), Some(count)) =
            (&self.fail_phase, self.fail_cap, self.fail_count)
        {
            s.push_str(&format!(
                ",\"fail_phase\":\"{}\",\"fail_cap\":{cap},\"fail_count\":{count}",
                escape(phase)
            ));
        }
        // DPA1D prune telemetry rides along the same way: additive, only
        // when the winning solution carried it.
        if let (Some(kept), Some(pruned), Some(frontier), Some(gap)) = (
            self.transitions_kept,
            self.transitions_pruned,
            self.frontier_max,
            self.bound_gap,
        ) {
            s.push_str(&format!(
                ",\"transitions_kept\":{kept},\"transitions_pruned\":{pruned},\
                 \"frontier_max\":{frontier},\"bound_gap\":{}",
                fmt_f64(gap)
            ));
        }
        s.push('}');
        s
    }

    /// The stream-file line: canonical fields plus the volatile wall time.
    pub fn stream_line(&self) -> String {
        let mut s = self.canonical_line();
        s.pop(); // strip '}'
        s.push_str(&format!(",\"wall_ms\":{}}}", fmt_f64(self.wall_ms)));
        s
    }

    /// Parses one stream line; `None` for truncated/foreign lines (the
    /// resume path treats those as not-yet-done).
    pub fn parse(line: &str) -> Option<JobRecord> {
        let v = Json::parse(line.trim()).ok()?;
        let s = |k: &str| v.get(k)?.as_str().map(str::to_string);
        let opt_f = |k: &str| match v.get(k) {
            Some(Json::Null) | None => None,
            Some(j) => j.as_f64(),
        };
        Some(JobRecord {
            key: s("key")?,
            family: s("family")?,
            n: v.get("n")?.as_f64()? as usize,
            seed: v.get("seed")?.as_f64()? as u64,
            topology: s("topology")?,
            routing: s("routing")?,
            solver: s("solver")?,
            elevation: v.get("elevation")?.as_f64()? as u32,
            // Optional for pre-u-axis lines (schema bumped compatibly).
            utilisation: opt_f("utilisation").unwrap_or(0.0),
            period_s: v.get("period_s")?.as_f64()?,
            energy_j: opt_f("energy_j"),
            failure: match v.get("failure") {
                Some(Json::Str(f)) => Some(f.clone()),
                _ => None,
            },
            fail_phase: s("fail_phase"),
            fail_cap: opt_f("fail_cap").map(|x| x as u64),
            fail_count: opt_f("fail_count").map(|x| x as u64),
            transitions_kept: opt_f("transitions_kept").map(|x| x as u64),
            transitions_pruned: opt_f("transitions_pruned").map(|x| x as u64),
            frontier_max: opt_f("frontier_max").map(|x| x as u64),
            bound_gap: opt_f("bound_gap"),
            wall_ms: opt_f("wall_ms").unwrap_or(0.0),
        })
    }
}

/// Which slice of the job list this process runs: jobs with
/// `index % count == index_of_shard`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Default for Shard {
    fn default() -> Self {
        Shard { index: 0, count: 1 }
    }
}

impl Shard {
    /// Whether this shard owns job `job_index`.
    pub fn owns(&self, job_index: usize) -> bool {
        job_index % self.count == self.index
    }

    /// File-name suffix: empty for the full run, `.shard0of4` otherwise.
    fn suffix(&self) -> String {
        if self.count == 1 {
            String::new()
        } else {
            format!(".shard{}of{}", self.index, self.count)
        }
    }
}

impl FromStr for Shard {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || format!("bad shard '{s}' (expected I/M with 0 <= I < M)");
        let (i, m) = s.split_once('/').ok_or_else(err)?;
        let index: usize = i.trim().parse().map_err(|_| err())?;
        let count: usize = m.trim().parse().map_err(|_| err())?;
        if count == 0 || index >= count {
            return Err(err());
        }
        Ok(Shard { index, count })
    }
}

/// Outcome of one [`run_campaign`] call.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// All records in this shard's scope, key-sorted (resumed + fresh).
    pub records: Vec<JobRecord>,
    /// Jobs skipped because the stream file already had their key.
    pub resumed: usize,
    /// Jobs executed by this call.
    pub fresh: usize,
    /// The append-only stream file.
    pub stream_path: PathBuf,
    /// The canonical key-sorted result file.
    pub final_path: PathBuf,
    /// The `BENCH_*.json`-compatible summary file.
    pub summary_path: PathBuf,
    /// Worker-pool size the fresh jobs fanned out over
    /// ([`rayon::current_num_threads`]) — recorded so a shard's wall time
    /// can be interpreted, and so operators sizing `--shard I/M` splits
    /// can see what one machine actually ran with.
    pub workers: usize,
}

/// Runs (or resumes) one shard of a campaign, writing into `dir`.
///
/// Jobs fan out over the rayon pool; each finished job appends one line to
/// the stream file and flushes. On return the canonical final file and the
/// benchmark summary cover the shard's whole scope.
pub fn run_campaign(
    spec: &CampaignSpec,
    dir: &Path,
    shard: Shard,
) -> Result<CampaignOutcome, String> {
    let jobs = spec.jobs()?;
    let scope: Vec<&CampaignJob> = jobs.iter().filter(|j| shard.owns(j.index)).collect();
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let stream_path = dir.join(format!("{}{}.jsonl", spec.name, shard.suffix()));
    let final_path = dir.join(format!("{}{}.final.jsonl", spec.name, shard.suffix()));
    let summary_path = dir.join(format!(
        "BENCH_campaign_{}{}.json",
        spec.name,
        shard.suffix()
    ));

    // Resume: collect the keys already completed in a previous run. A
    // truncated trailing line (killed mid-write) fails to parse and is
    // simply recomputed. The header line guards against resuming a stream
    // recorded under different non-key parameters (period, grid, cost
    // distributions): matching keys would silently mix incompatible runs.
    let fingerprint = spec.fingerprint();
    let mut done: Vec<JobRecord> = Vec::new();
    let mut needs_newline = false;
    let mut needs_header = true;
    if let Ok(mut f) = File::open(&stream_path) {
        let mut text = String::new();
        f.read_to_string(&mut text)
            .map_err(|e| format!("reading {}: {e}", stream_path.display()))?;
        needs_newline = !text.is_empty() && !text.ends_with('\n');
        needs_header = text.is_empty();
        if !text.is_empty() {
            let recorded = text
                .lines()
                .next()
                .and_then(|l| Json::parse(l).ok())
                .and_then(|h| h.get("spec").and_then(Json::as_str).map(str::to_string));
            match recorded {
                Some(recorded) if recorded == fingerprint => {}
                Some(recorded) => {
                    return Err(format!(
                        "{} was recorded under a different campaign spec \
                         (recorded '{recorded}', current '{fingerprint}'); \
                         refusing to resume — use a fresh --out directory",
                        stream_path.display()
                    ));
                }
                // A non-empty stream without a valid header (torn header
                // write, or a foreign file) cannot be trusted to match
                // this spec; silently resuming could mix incompatible
                // results, so refuse.
                None => {
                    return Err(format!(
                        "{} has no valid campaign header (torn write or \
                         foreign file); delete it or use a fresh --out \
                         directory",
                        stream_path.display()
                    ));
                }
            }
        }
        let scope_keys: std::collections::HashSet<&str> =
            scope.iter().map(|j| j.key.as_str()).collect();
        let mut seen = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rec) = JobRecord::parse(line) {
                if scope_keys.contains(rec.key.as_str()) && seen.insert(rec.key.clone()) {
                    done.push(rec);
                }
            }
        }
    }
    let done_keys: std::collections::HashSet<&str> = done.iter().map(|r| r.key.as_str()).collect();
    let pending: Vec<&CampaignJob> = scope
        .iter()
        .copied()
        .filter(|j| !done_keys.contains(j.key.as_str()))
        .collect();
    let resumed = done.len();
    let fresh = pending.len();

    // Append-only stream: every record is one write + flush, so a kill
    // loses at most the in-flight jobs.
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&stream_path)
        .map_err(|e| format!("opening {}: {e}", stream_path.display()))?;
    let sink = Mutex::new(file);
    if needs_header {
        let mut f = sink.lock().unwrap();
        writeln!(
            f,
            "{{\"campaign\":\"{}\",\"spec\":\"{}\"}}",
            escape(&spec.name),
            escape(&fingerprint)
        )
        .map_err(|e| format!("writing {}: {e}", stream_path.display()))?;
    }
    if needs_newline {
        // Heal a truncated trailing line so the next append starts clean.
        let mut f = sink.lock().unwrap();
        writeln!(f).map_err(|e| format!("writing {}: {e}", stream_path.display()))?;
    }

    let p = spec.grid.0;
    let q = spec.grid.1;
    // A lost stream line silently breaks the resume contract (the job
    // would be recomputed as if it never ran, and CI would stay green on
    // a half-durable campaign), so any write failure fails the run.
    let write_err: Mutex<Option<String>> = Mutex::new(None);
    let fresh_records: Vec<JobRecord> = pending
        .into_par_iter()
        .map(|job| {
            let rec = run_job(job, p, q);
            let mut f = sink.lock().unwrap();
            if let Err(e) = writeln!(f, "{}", rec.stream_line()).and_then(|_| f.flush()) {
                eprintln!("[campaign] stream write failed: {e}");
                write_err
                    .lock()
                    .unwrap()
                    .get_or_insert_with(|| e.to_string());
            }
            rec
        })
        .collect();
    if let Some(e) = write_err.into_inner().unwrap() {
        return Err(format!(
            "stream write to {} failed ({e}); results of this run are not \
             durable — fix the output volume and rerun to resume",
            stream_path.display()
        ));
    }

    let mut records = done;
    records.extend(fresh_records);
    records.sort_by(|a, b| a.key.cmp(&b.key));

    // Canonical final file: deterministic fields only, key-sorted —
    // byte-identical however the jobs were interleaved or resumed.
    let mut final_text = String::new();
    for r in &records {
        final_text.push_str(&r.canonical_line());
        final_text.push('\n');
    }
    std::fs::write(&final_path, final_text)
        .map_err(|e| format!("writing {}: {e}", final_path.display()))?;

    std::fs::write(&summary_path, summary_json(spec, &records))
        .map_err(|e| format!("writing {}: {e}", summary_path.display()))?;

    Ok(CampaignOutcome {
        records,
        resumed,
        fresh,
        stream_path,
        final_path,
        summary_path,
        workers: rayon::current_num_threads(),
    })
}

/// Outcome of one [`merge_shards`] call.
#[derive(Debug)]
pub struct MergeOutcome {
    /// Total records in the merged canonical file.
    pub records: usize,
    /// Records contributed per input file, in input order.
    pub per_input: Vec<usize>,
    /// The merged canonical key-sorted result file.
    pub final_path: PathBuf,
    /// The merged `BENCH_*.json`-compatible summary file.
    pub summary_path: PathBuf,
}

/// Merges shard artifacts (`.jsonl` stream or `.final.jsonl` files, from
/// any mix of runners) of **one** campaign into the canonical key-sorted
/// `<name>.final.jsonl`, verifying exact key coverage against the spec's
/// job list:
///
/// * a key appearing in two different inputs is an **overlap** error (the
///   shard partition is disjoint by construction, so an overlap means two
///   inputs came from the same shard, or from different specs);
/// * a key the spec expects but no input provides is a **missing** error
///   (an incomplete shard set must not masquerade as a full campaign);
/// * a key the spec does not know is a **foreign** error (wrong spec or
///   wrong files).
///
/// Within a single input, repeated keys keep the first record — exactly
/// the dedup rule the resume path applies to its own stream. The merged
/// final file is byte-identical to the one an unsharded run writes.
pub fn merge_shards(
    spec: &CampaignSpec,
    inputs: &[PathBuf],
    dir: &Path,
) -> Result<MergeOutcome, String> {
    if inputs.is_empty() {
        return Err("campaign-merge needs at least one --input file".into());
    }
    let jobs = spec.jobs()?;
    let expected: std::collections::HashMap<&str, usize> =
        jobs.iter().map(|j| (j.key.as_str(), j.index)).collect();
    let mut merged: std::collections::HashMap<String, (JobRecord, usize)> =
        std::collections::HashMap::with_capacity(jobs.len());
    let mut per_input = vec![0usize; inputs.len()];
    let fingerprint = spec.fingerprint();
    for (i, path) in inputs.iter().enumerate() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        // Keys do not encode the grid or cost distributions — only the
        // stream header's fingerprint does. A stream recorded under a
        // different fingerprint must be refused exactly like the resume
        // path refuses it, or the merge would silently mix results
        // computed on different platforms. Canonical `.final.jsonl`
        // inputs have no header and pass through.
        let header = text
            .lines()
            .next()
            .and_then(|l| Json::parse(l).ok())
            .and_then(|h| h.get("spec").and_then(Json::as_str).map(str::to_string));
        if let Some(recorded) = header {
            if recorded != fingerprint {
                return Err(format!(
                    "{}: recorded under a different campaign spec \
                     (recorded '{recorded}', current '{fingerprint}'); \
                     refusing to merge",
                    path.display()
                ));
            }
        }
        let mut fresh = 0usize;
        for line in text.lines() {
            // Header and torn lines fail to parse and are skipped — only
            // keys count, exactly like the resume path.
            let Some(rec) = JobRecord::parse(line) else {
                continue;
            };
            if !expected.contains_key(rec.key.as_str()) {
                return Err(format!(
                    "{}: key '{}' is not in campaign '{}' ({} jobs) — wrong \
                     spec or foreign file",
                    path.display(),
                    rec.key,
                    spec.name,
                    jobs.len()
                ));
            }
            match merged.entry(rec.key.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let (_, owner) = e.get();
                    if *owner != i {
                        return Err(format!(
                            "key '{}' appears in both {} and {} — overlapping \
                             shards, refusing to merge",
                            rec.key,
                            inputs[*owner].display(),
                            path.display()
                        ));
                    }
                    // Same-file duplicate (resume append): first wins.
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert((rec, i));
                    fresh += 1;
                }
            }
        }
        per_input[i] = fresh;
    }
    if merged.len() < jobs.len() {
        let mut missing: Vec<&str> = jobs
            .iter()
            .map(|j| j.key.as_str())
            .filter(|k| !merged.contains_key(*k))
            .collect();
        missing.sort_unstable();
        let shown = missing.iter().take(5).cloned().collect::<Vec<_>>();
        return Err(format!(
            "{} of {} campaign keys missing from the inputs (e.g. {}) — \
             incomplete shard set",
            missing.len(),
            jobs.len(),
            shown.join(", ")
        ));
    }
    let mut records: Vec<JobRecord> = merged.into_values().map(|(r, _)| r).collect();
    records.sort_by(|a, b| a.key.cmp(&b.key));

    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let final_path = dir.join(format!("{}.final.jsonl", spec.name));
    let mut final_text = String::new();
    for r in &records {
        final_text.push_str(&r.canonical_line());
        final_text.push('\n');
    }
    std::fs::write(&final_path, final_text)
        .map_err(|e| format!("writing {}: {e}", final_path.display()))?;
    let summary_path = dir.join(format!("BENCH_campaign_{}.json", spec.name));
    std::fs::write(&summary_path, summary_json(spec, &records))
        .map_err(|e| format!("writing {}: {e}", summary_path.display()))?;
    Ok(MergeOutcome {
        records: records.len(),
        per_input,
        final_path,
        summary_path,
    })
}

/// Executes one job: generate the workload, derive the period, run the
/// solver. Never panics on solver failure — failures are campaign data
/// (budget failures additionally record their structured phase/cap/count).
fn run_job(job: &CampaignJob, p: u32, q: u32) -> JobRecord {
    let g = job.workload.instantiate();
    let elevation = g.elevation();
    let pf = make_platform(job.topology, p, q, job.routing);
    let inst = Instance::for_utilisation(g, pf, job.utilisation);
    let started = Instant::now();
    let result = job.solver.solve(&inst, &SolveCtx::new(job.workload.seed));
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (energy_j, failure, budget, prune) = match result {
        Ok(sol) => (Some(sol.energy()), None, None, sol.prune),
        Err(f) => {
            let budget = f.budget_exceeded().copied();
            (None, Some(f.to_string()), budget, None)
        }
    };
    JobRecord {
        key: job.key.clone(),
        family: job.workload.family.to_string(),
        n: job.workload.params.n,
        seed: job.workload.seed,
        topology: job.topology.to_string(),
        routing: routing_label(job.routing),
        solver: job.solver.name().to_string(),
        elevation,
        utilisation: job.utilisation,
        period_s: inst.period(),
        energy_j,
        failure,
        fail_phase: budget.map(|b| b.phase.name().to_string()),
        fail_cap: budget.map(|b| b.cap),
        fail_count: budget.map(|b| b.count),
        transitions_kept: prune.map(|p| p.transitions_kept),
        transitions_pruned: prune.map(|p| p.transitions_pruned),
        frontier_max: prune.map(|p| u64::from(p.frontier_max)),
        bound_gap: prune.map(|p| p.bound_gap),
        wall_ms,
    }
}

/// The `BENCH_*.json`-compatible summary: per `(family, solver)` across
/// the whole sweep, the median energy (gateable, deterministic), the
/// feasibility ratio (gateable), and the median wall time (advisory —
/// time metrics never gate, see `xp bench-check`).
pub fn summary_json(spec: &CampaignSpec, records: &[JobRecord]) -> String {
    let mut families: Vec<&str> = Vec::new();
    let mut solvers: Vec<&str> = Vec::new();
    for r in records {
        if !families.contains(&r.family.as_str()) {
            families.push(&r.family);
        }
        if !solvers.contains(&r.solver.as_str()) {
            solvers.push(&r.solver);
        }
    }
    let mut entries = Vec::new();
    for family in &families {
        for solver in &solvers {
            let group: Vec<&JobRecord> = records
                .iter()
                .filter(|r| r.family == *family && r.solver == *solver)
                .collect();
            if group.is_empty() {
                continue;
            }
            let energies: Vec<f64> = group.iter().filter_map(|r| r.energy_j).collect();
            let ratio = energies.len() as f64 / group.len() as f64;
            let prefix = format!("campaign/{}/{family}/{solver}", spec.name);
            entries.push(format!(
                "    {{\"name\": \"{prefix}/feasible_ratio\", \"value\": {}, \"unit\": \"ratio\"}}",
                fmt_f64(ratio)
            ));
            if let Some(med) = median(energies) {
                entries.push(format!(
                    "    {{\"name\": \"{prefix}/median_energy\", \"value\": {}, \"unit\": \"J\"}}",
                    fmt_f64(med)
                ));
            }
            if let Some(med) = median(group.iter().map(|r| r.wall_ms).collect()) {
                entries.push(format!(
                    "    {{\"name\": \"{prefix}/median_wall\", \"value\": {}, \"unit\": \"ms\"}}",
                    fmt_f64(med)
                ));
            }
        }
    }
    format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
}

/// One-paragraph text summary for the CLI.
pub fn outcome_text(spec: &CampaignSpec, shard: Shard, outcome: &CampaignOutcome) -> String {
    let failed = outcome
        .records
        .iter()
        .filter(|r| r.energy_j.is_none())
        .count();
    format!(
        "[campaign {}] shard {}/{}: {} jobs ({} resumed, {} fresh), {} infeasible, \
         {} workers\n\
         [campaign {}] stream  {}\n\
         [campaign {}] final   {}\n\
         [campaign {}] summary {}",
        spec.name,
        shard.index,
        shard.count,
        outcome.records.len(),
        outcome.resumed,
        outcome.fresh,
        failed,
        outcome.workers,
        spec.name,
        outcome.stream_path.display(),
        spec.name,
        outcome.final_path.display(),
        spec.name,
        outcome.summary_path.display(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(name: &str) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            families: vec![FamilyKind::DeepChain, FamilyKind::WideForkJoin],
            sizes: vec![8],
            seeds: vec![3],
            topologies: vec![TopologyKind::Mesh],
            routings: vec![None],
            solvers: vec!["greedy".into(), "random".into()],
            grid: (2, 2),
            utilisations: vec![0.3],
            width: 3,
            depth: 2,
        }
    }

    #[test]
    fn job_list_is_deterministic_with_unique_keys() {
        let spec = tiny_spec("t");
        let a = spec.jobs().unwrap();
        let b = spec.jobs().unwrap();
        assert_eq!(a.len(), 4);
        let keys: Vec<&str> = a.iter().map(|j| j.key.as_str()).collect();
        assert_eq!(keys, b.iter().map(|j| j.key.as_str()).collect::<Vec<_>>());
        let unique: std::collections::HashSet<&&str> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "keys must be unique");
        assert_eq!(keys[0], "deep-chain-n8-w3-d2-s3/u0.3/mesh/default/Greedy");
    }

    #[test]
    fn unknown_solver_is_rejected() {
        let mut spec = tiny_spec("t");
        spec.solvers = vec!["nope".into()];
        assert!(spec.jobs().is_err());
    }

    #[test]
    fn duplicate_solvers_collapse_to_unique_keys() {
        // A repeated solver would duplicate job keys, and the resume path
        // dedupes by key — final files would then differ between a fresh
        // and a resumed run.
        let mut spec = tiny_spec("t");
        spec.solvers = vec!["greedy".into(), "greedy".into(), "Greedy".into()];
        let jobs = spec.jobs().unwrap();
        assert_eq!(jobs.len(), 2, "one per family, not per repetition");
        let keys: std::collections::HashSet<&str> = jobs.iter().map(|j| j.key.as_str()).collect();
        assert_eq!(keys.len(), jobs.len());
    }

    #[test]
    fn record_lines_round_trip() {
        let rec = JobRecord {
            key: "k/u0.3/mesh/default/Greedy".into(),
            family: "deep-chain".into(),
            n: 8,
            seed: 3,
            topology: "mesh".into(),
            routing: "default".into(),
            solver: "Greedy".into(),
            elevation: 1,
            utilisation: 0.3,
            period_s: 0.0125,
            energy_j: Some(1.0 / 3.0),
            failure: None,
            fail_phase: None,
            fail_cap: None,
            fail_count: None,
            transitions_kept: None,
            transitions_pruned: None,
            frontier_max: None,
            bound_gap: None,
            wall_ms: 4.25,
        };
        let parsed = JobRecord::parse(&rec.stream_line()).unwrap();
        assert_eq!(parsed, rec);
        // Canonical line drops the volatile wall time.
        let canon = JobRecord::parse(&rec.canonical_line()).unwrap();
        assert_eq!(canon.wall_ms, 0.0);
        assert_eq!(canon.energy_j, rec.energy_j);
        // A failure record round-trips too, including the structured
        // budget telemetry fields.
        let fail = JobRecord {
            energy_j: None,
            failure: Some("budget exceeded: ideal lattice exceeds the cap of 7 ideals".into()),
            fail_phase: Some("enumerate".into()),
            fail_cap: Some(7),
            fail_count: Some(8),
            ..rec.clone()
        };
        assert_eq!(JobRecord::parse(&fail.stream_line()).unwrap(), fail);
        assert_eq!(
            JobRecord::parse(&fail.canonical_line()).unwrap().fail_cap,
            Some(7)
        );
        // A DPA1D success with prune telemetry round-trips verbatim.
        let pruned = JobRecord {
            solver: "DPA1D".into(),
            transitions_kept: Some(1200),
            transitions_pruned: Some(300),
            frontier_max: Some(5),
            bound_gap: Some(0.0),
            ..rec.clone()
        };
        assert_eq!(JobRecord::parse(&pruned.stream_line()).unwrap(), pruned);
        assert_eq!(
            JobRecord::parse(&pruned.canonical_line())
                .unwrap()
                .transitions_pruned,
            Some(300)
        );
        // A pre-u-axis line (no utilisation, no telemetry) still parses.
        let old = rec.canonical_line().replace(",\"utilisation\":0.3", "");
        let parsed_old = JobRecord::parse(&old).unwrap();
        assert_eq!(parsed_old.utilisation, 0.0);
        assert_eq!(parsed_old.energy_j, rec.energy_j);
        // Truncated lines are rejected, not mis-parsed.
        let line = fail.stream_line();
        assert!(JobRecord::parse(&line[..line.len() - 5]).is_none());
    }

    #[test]
    fn spec_json_round_trips() {
        let mut spec = tiny_spec("file-spec");
        spec.routings = vec![None, Some(RoutePolicy::Yx)];
        spec.utilisations = vec![0.2, 0.35];
        let text = spec.to_json();
        let back = CampaignSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text, "writer is a fixed point");
        // The parsed spec expands to the same job keys.
        let keys = |s: &CampaignSpec| -> Vec<String> {
            s.jobs().unwrap().iter().map(|j| j.key.clone()).collect()
        };
        assert_eq!(keys(&back), keys(&spec));
        // Missing and malformed fields are rejected with context.
        assert!(CampaignSpec::from_json("{}").unwrap_err().contains("name"));
        let bad = text.replace("\"grid\": [2, 2]", "\"grid\": [2]");
        assert!(CampaignSpec::from_json(&bad).unwrap_err().contains("grid"));
        let bad = text.replace("deep-chain", "no-such-family");
        assert!(CampaignSpec::from_json(&bad).is_err());
        // Integer fields reject fractional, negative, and beyond-2^53
        // values instead of silently casting to different job keys.
        for bad in [
            text.replace("\"sizes\": [8]", "\"sizes\": [8.5]"),
            text.replace("\"seeds\": [3]", "\"seeds\": [-1]"),
            text.replace("\"seeds\": [3]", "\"seeds\": [9007199254740994]"),
            text.replace("\"grid\": [2, 2]", "\"grid\": [2.7, 2]"),
        ] {
            let err = CampaignSpec::from_json(&bad).unwrap_err();
            assert!(err.contains("integers"), "{err}");
        }
    }

    #[test]
    fn shard_parsing_and_ownership() {
        let s: Shard = "1/3".parse().unwrap();
        assert!(!s.owns(0) && s.owns(1) && !s.owns(2) && s.owns(4));
        assert!("3/3".parse::<Shard>().is_err());
        assert!("0/0".parse::<Shard>().is_err());
        assert!("x".parse::<Shard>().is_err());
        assert_eq!(Shard::default(), Shard { index: 0, count: 1 });
    }
}
