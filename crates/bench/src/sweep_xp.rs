//! Period/utilisation sweeps (`xp sweep`).
//!
//! Two experiments share the [`ea_core::PeriodSweep`] engine:
//!
//! * **Family sweeps** (the default `xp sweep` mode): for each workload
//!   family, sweep a utilisation grid and report the per-solver
//!   feasibility frontier — the campaign-engine analogue of the paper's
//!   period-tightness curves, with `u` as the comparable x-axis across
//!   families whose total work spans orders of magnitude.
//! * **The StreamIt decade benchmark** (`xp sweep --suite streamit`): a
//!   [`SWEEP_BENCH_POINTS`]-point geometric decade sweep of `DPA1D` over
//!   every Table 1 workflow, run twice — *amortized* (one
//!   [`ea_core::Instance`], the lattice/skeleton caches shared across the
//!   whole curve) and *naive* (a fresh instance per point, the pre-sweep
//!   cost model). Per-point energies are asserted bit-identical; the wall
//!   ratio is the headline number of `BENCH_sweep.json`, and the
//!   deterministic energy/feasibility metrics are what `xp bench-check`
//!   gates on.

use std::sync::Arc;
use std::time::Instant;

use cmp_platform::Platform;
use ea_core::solvers::Dpa1d;
use ea_core::sweep::{PeriodSweep, SweepReport};
use ea_core::{Instance, Solver};
use spg::generate::families::{FamilyKind, FamilyParams, WorkloadSpec};
use spg::{streamit_workflow, Spg, STREAMIT_SPECS};

use crate::report::{fmt_table, median};
use ea_core::json::fmt_f64;

/// Points in the StreamIt decade benchmark sweep. Fixed — the committed
/// `BENCH_sweep.json` metrics are defined at this resolution, and the
/// `bench-check` recomputer must reproduce them exactly.
pub const SWEEP_BENCH_POINTS: usize = 16;

/// Wall-clock samples per mode in the StreamIt benchmark (medians).
const SWEEP_BENCH_SAMPLES: usize = 3;

/// The decade's loose end per workflow: anchored like the committed
/// portfolio baselines (total work over the 4×4 grid's aggregate capacity
/// at 2× the XScale top frequency), doubled so the loose end is feasible
/// for `DPA1D` wherever the lattice is tractable and the tight end crosses
/// its feasibility frontier.
pub(crate) fn sweep_anchor_period(g: &Spg) -> f64 {
    2.0 * g.total_work() / (8.0 * 1e9)
}

/// One workflow's amortized-vs-naive decade sweep.
#[derive(Debug, Clone)]
pub struct WorkflowSweep {
    /// Workflow name (Table 1).
    pub workflow: String,
    /// Swept periods, loose to tight.
    pub periods: Vec<f64>,
    /// Per-point `DPA1D` energy (`None` = failed at that tightness);
    /// identical between the amortized and naive runs (asserted).
    pub energies: Vec<Option<f64>>,
    /// Median wall time of the amortized sweep (one shared instance), ms.
    pub amortized_wall_ms: f64,
    /// Median wall time of the naive sweep (fresh instance per point), ms.
    pub naive_wall_ms: f64,
}

impl WorkflowSweep {
    /// Naive-over-amortized wall ratio.
    pub fn speedup(&self) -> f64 {
        self.naive_wall_ms / self.amortized_wall_ms
    }

    /// Number of feasible points.
    pub fn feasible_points(&self) -> usize {
        self.energies.iter().flatten().count()
    }
}

fn dpa1d_solvers() -> Vec<Arc<dyn Solver>> {
    vec![Arc::new(Dpa1d::default())]
}

/// Runs one decade sweep through the shared-instance engine (sequential:
/// the benchmark compares single-threaded pipeline cost, not fan-out).
fn amortized_sweep(base: &Instance, grid: Vec<f64>, seed: u64) -> SweepReport {
    PeriodSweep::over_periods(dpa1d_solvers(), grid)
        .seeded(seed)
        .parallel(false)
        .run(base)
}

/// The naive baseline: a fresh [`Instance`] per point, so every point pays
/// enumeration + materialisation again. Same solver, same seeds.
fn naive_sweep(g: &Spg, pf: &Platform, grid: &[f64], seed: u64) -> Vec<Option<f64>> {
    grid.iter()
        .map(|&t| {
            let inst = Instance::new(g.clone(), pf.clone(), t);
            PeriodSweep::over_periods(dpa1d_solvers(), vec![t])
                .seeded(seed)
                .parallel(false)
                .run(&inst)
                .points
                .remove(0)
                .best_energy()
        })
        .collect()
}

/// Runs the full StreamIt decade benchmark. Panics if any per-point energy
/// differs between the amortized and the naive run — bit-identity is the
/// correctness contract of the skeleton split, not a tolerance.
pub fn streamit_sweep_bench(seed: u64) -> Vec<WorkflowSweep> {
    let pf = Platform::paper(4, 4);
    STREAMIT_SPECS
        .iter()
        .map(|spec| {
            let g = streamit_workflow(spec, seed);
            let hi = sweep_anchor_period(&g);
            let grid = PeriodSweep::geometric(hi, hi / 10.0, SWEEP_BENCH_POINTS);

            let mut amortized_walls = Vec::with_capacity(SWEEP_BENCH_SAMPLES);
            let mut energies: Vec<Option<f64>> = Vec::new();
            let mut periods: Vec<f64> = Vec::new();
            for _ in 0..SWEEP_BENCH_SAMPLES {
                // A fresh instance per sample: each sample pays the
                // enumeration + skeleton build once, like a real sweep.
                let base = Instance::new(g.clone(), pf.clone(), grid[0]);
                let started = Instant::now();
                let report = amortized_sweep(&base, grid.clone(), seed);
                amortized_walls.push(started.elapsed().as_secs_f64() * 1e3);
                energies = report.points.iter().map(|p| p.best_energy()).collect();
                periods = report.points.iter().map(|p| p.period).collect();
            }
            let mut naive_walls = Vec::with_capacity(SWEEP_BENCH_SAMPLES);
            let mut naive_energies: Vec<Option<f64>> = Vec::new();
            for _ in 0..SWEEP_BENCH_SAMPLES {
                let started = Instant::now();
                naive_energies = naive_sweep(&g, &pf, &grid, seed);
                naive_walls.push(started.elapsed().as_secs_f64() * 1e3);
            }
            assert_eq!(
                energies, naive_energies,
                "{}: amortized sweep energies must be bit-identical to \
                 per-point re-solves",
                spec.name
            );
            WorkflowSweep {
                workflow: spec.name.to_string(),
                periods,
                energies,
                amortized_wall_ms: median(amortized_walls).unwrap_or(0.0),
                naive_wall_ms: median(naive_walls).unwrap_or(0.0),
            }
        })
        .collect()
}

/// The `BENCH_sweep.json` document. Deterministic metrics (`J` energies,
/// feasible-point counts) gate in `bench-check`; wall times and the
/// derived speedups are advisory (machine-dependent), like every other
/// time metric.
pub fn sweep_bench_json(sweeps: &[WorkflowSweep]) -> String {
    let mut entries = Vec::new();
    for s in sweeps {
        let prefix = format!("sweep/{}", s.workflow);
        entries.push(format!(
            "    {{\"name\": \"{prefix}/feasible_points\", \"value\": {}, \"unit\": \"points\"}}",
            s.feasible_points()
        ));
        if let Some(med) = median(s.energies.iter().flatten().copied().collect()) {
            entries.push(format!(
                "    {{\"name\": \"{prefix}/median_energy\", \"value\": {}, \"unit\": \"J\"}}",
                fmt_f64(med)
            ));
        }
        entries.push(format!(
            "    {{\"name\": \"{prefix}/amortized_wall\", \"value\": {}, \"unit\": \"ms\"}}",
            fmt_f64(s.amortized_wall_ms)
        ));
        entries.push(format!(
            "    {{\"name\": \"{prefix}/naive_wall\", \"value\": {}, \"unit\": \"ms\"}}",
            fmt_f64(s.naive_wall_ms)
        ));
        entries.push(format!(
            "    {{\"name\": \"{prefix}/speedup\", \"value\": {}, \"unit\": \"speedup\"}}",
            fmt_f64(s.speedup())
        ));
    }
    if let Some(med) = median(sweeps.iter().map(WorkflowSweep::speedup).collect()) {
        entries.push(format!(
            "    {{\"name\": \"sweep/median_speedup\", \"value\": {}, \"unit\": \"speedup\"}}",
            fmt_f64(med)
        ));
    }
    format!("{{\n  \"results\": [\n{}\n  ]\n}}\n", entries.join(",\n"))
}

/// Text table for the StreamIt decade benchmark.
pub fn sweep_bench_text(sweeps: &[WorkflowSweep]) -> String {
    let rows: Vec<Vec<String>> = sweeps
        .iter()
        .map(|s| {
            vec![
                s.workflow.clone(),
                format!("{}/{}", s.feasible_points(), s.periods.len()),
                format!("{:.2}", s.amortized_wall_ms),
                format!("{:.2}", s.naive_wall_ms),
                format!("{:.2}x", s.speedup()),
            ]
        })
        .collect();
    let mut out = fmt_table(
        &format!(
            "StreamIt decade sweep, {SWEEP_BENCH_POINTS} points, DPA1D \
             (amortized skeleton vs naive per-point re-solve)"
        ),
        &[
            "workflow",
            "feasible",
            "amortized ms",
            "naive ms",
            "speedup",
        ],
        &rows,
    );
    if let Some(med) = median(sweeps.iter().map(WorkflowSweep::speedup).collect()) {
        out.push_str(&format!("median speedup: {med:.2}x\n"));
    }
    out
}

/// One family's utilisation sweep.
pub struct FamilySweep {
    /// Family name.
    pub family: String,
    /// Stage count of the swept member.
    pub n: usize,
    /// The sweep report (utilisation axis).
    pub report: SweepReport,
}

/// CSV headers for `xp sweep`'s family curves. Failures are recorded
/// structurally — the phase/cap/count triple of a budget abort
/// ([`ea_core::BudgetExceeded`], the same fields campaign JSONL carries),
/// with `infeasible` in `fail_phase` for plain no-valid-mapping failures —
/// so capped points are machine-readable instead of free-text.
pub const SWEEP_CSV_HEADERS: [&str; 9] = [
    "family",
    "n",
    "utilisation",
    "period_s",
    "solver",
    "energy_j",
    "fail_phase",
    "fail_cap",
    "fail_count",
];

/// Sweeps a utilisation grid for one seeded member of every workload
/// family: the feasibility-vs-utilisation curve data behind `xp sweep`.
pub fn family_sweeps(
    n: usize,
    points: usize,
    seed: u64,
    pf: &Platform,
    solvers: &[Arc<dyn Solver>],
) -> Vec<FamilySweep> {
    // `u` from lightly loaded to near the platform's capacity; geometric
    // so the tight end gets the resolution (feasibility walls live there).
    let grid = PeriodSweep::geometric(0.05, 0.9, points);
    FamilyKind::ALL
        .iter()
        .map(|&family| {
            let params = FamilyParams {
                n,
                ..FamilyParams::default()
            };
            let g = WorkloadSpec::new(family, params, seed).instantiate();
            let base = Instance::for_utilisation(g, pf.clone(), grid[0]);
            let report = PeriodSweep::over_utilisations(solvers.to_vec(), grid.clone())
                .seeded(seed)
                .run(&base);
            FamilySweep {
                family: family.to_string(),
                n,
                report,
            }
        })
        .collect()
}

/// The family curves as CSV rows (one row per family × point × solver).
pub fn family_sweep_csv_rows(sweeps: &[FamilySweep]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for fs in sweeps {
        for p in &fs.report.points {
            for r in &p.runs {
                let (fail_phase, fail_cap, fail_count) = match &r.result {
                    Ok(_) => (String::new(), String::new(), String::new()),
                    Err(f) => match f.budget_exceeded() {
                        Some(b) => (
                            b.phase.name().to_string(),
                            b.cap.to_string(),
                            b.count.to_string(),
                        ),
                        None => ("infeasible".into(), String::new(), String::new()),
                    },
                };
                rows.push(vec![
                    fs.family.clone(),
                    fs.n.to_string(),
                    fmt_f64(p.value),
                    fmt_f64(p.period),
                    r.name.clone(),
                    r.energy().map_or("".into(), fmt_f64),
                    fail_phase,
                    fail_cap,
                    fail_count,
                ]);
            }
        }
    }
    rows
}

/// Feasibility-frontier table: per family × solver, the largest
/// utilisation (tightest period) the solver still solves.
pub fn family_sweep_text(sweeps: &[FamilySweep]) -> String {
    let mut out = String::new();
    for fs in sweeps {
        let rows: Vec<Vec<String>> = fs
            .report
            .frontier()
            .iter()
            .map(|f| {
                vec![
                    f.solver.clone(),
                    format!("{}/{}", f.feasible_points, fs.report.points.len()),
                    f.tightest_value.map_or("-".into(), |u| format!("{u:.3}")),
                    f.tightest_period.map_or("-".into(), |t| format!("{t:.3e}")),
                ]
            })
            .collect();
        out.push_str(&fmt_table(
            &format!(
                "feasibility frontier: {} (n = {}, u swept over {} points)",
                fs.family,
                fs.n,
                fs.report.points.len()
            ),
            &["solver", "feasible", "max u", "tightest T (s)"],
            &rows,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_sweep_produces_full_curves() {
        let pf = Platform::paper(2, 2);
        let solvers: Vec<Arc<dyn Solver>> = vec![
            Arc::new(ea_core::solvers::Greedy::default()),
            Arc::new(Dpa1d::default()),
        ];
        let sweeps = family_sweeps(8, 3, 11, &pf, &solvers);
        assert_eq!(sweeps.len(), FamilyKind::ALL.len());
        for fs in &sweeps {
            assert_eq!(fs.report.points.len(), 3);
            for p in &fs.report.points {
                assert_eq!(p.runs.len(), 2);
            }
        }
        let rows = family_sweep_csv_rows(&sweeps);
        assert_eq!(rows.len(), FamilyKind::ALL.len() * 3 * 2);
        let text = family_sweep_text(&sweeps);
        assert!(text.contains("deep-chain"));
    }

    #[test]
    fn sweep_bench_json_shape_parses() {
        let sweeps = vec![WorkflowSweep {
            workflow: "Fake".into(),
            periods: vec![1.0, 0.1],
            energies: vec![Some(2.5), None],
            amortized_wall_ms: 1.0,
            naive_wall_ms: 4.0,
        }];
        let doc = sweep_bench_json(&sweeps);
        let metrics = crate::bench_check::parse_bench_metrics(&doc).unwrap();
        let names: Vec<&str> = metrics.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"sweep/Fake/median_energy"));
        assert!(names.contains(&"sweep/median_speedup"));
        let speedup = metrics
            .iter()
            .find(|m| m.name == "sweep/median_speedup")
            .unwrap();
        assert_eq!(speedup.unit, "speedup");
        assert_eq!(speedup.value, 4.0);
        assert!(sweep_bench_text(&sweeps).contains("4.00x"));
    }
}
