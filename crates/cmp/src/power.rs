//! DVFS speed/power model (paper §3.5, §6.1.2).
//!
//! Each core can run at one of `m` speeds (frequencies); executing `w`
//! cycles at speed `s` takes `w / s` seconds and dissipates the dynamic
//! power `P(s)` for that duration. Every *enrolled* core additionally leaks
//! `P_leak_comp` for the entire period `T`. Because `P(s)/s` is increasing
//! in `s` for realistic (superlinear) power curves, the energy-minimal speed
//! for a fixed workload and period bound is always the **slowest feasible**
//! speed — [`PowerModel::min_speed_for`] implements exactly that selection,
//! used by every heuristic ("downgrade" post-pass of §5.2, `Ecal` of
//! Theorem 1 and §5.3).

/// One DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speed {
    /// Frequency in Hz (cycles per second).
    pub freq: f64,
    /// Dynamic power at this frequency, in watts.
    pub power: f64,
}

/// The per-core speed set and leakage power.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Available speeds, sorted by increasing frequency.
    speeds: Vec<Speed>,
    /// Leakage power of an enrolled core, in watts (`P_leak^(comp)`).
    pub p_leak: f64,
}

impl PowerModel {
    /// Builds a model from explicit operating points (sorted internally).
    ///
    /// # Panics
    /// Panics on an empty speed list or non-positive frequencies.
    pub fn new(mut speeds: Vec<Speed>, p_leak: f64) -> Self {
        assert!(!speeds.is_empty(), "at least one speed required");
        assert!(speeds.iter().all(|s| s.freq > 0.0 && s.power >= 0.0));
        assert!(p_leak >= 0.0);
        speeds.sort_by(|a, b| a.freq.partial_cmp(&b.freq).unwrap());
        PowerModel { speeds, p_leak }
    }

    /// The Intel XScale model used throughout the paper's evaluation
    /// (§6.1.2): `{0.15, 0.4, 0.6, 0.8, 1.0} GHz` at
    /// `{80, 170, 400, 900, 1600} mW`, `P_leak = 80 mW`.
    pub fn xscale() -> Self {
        PowerModel::new(
            vec![
                Speed {
                    freq: 0.15e9,
                    power: 0.080,
                },
                Speed {
                    freq: 0.40e9,
                    power: 0.170,
                },
                Speed {
                    freq: 0.60e9,
                    power: 0.400,
                },
                Speed {
                    freq: 0.80e9,
                    power: 0.900,
                },
                Speed {
                    freq: 1.00e9,
                    power: 1.600,
                },
            ],
            0.080,
        )
    }

    /// A single-speed model (used by the NP-completeness gadgets of §4,
    /// where cores "can operate only at a unique speed s = 1").
    pub fn single(freq: f64, power: f64, p_leak: f64) -> Self {
        PowerModel::new(vec![Speed { freq, power }], p_leak)
    }

    /// The speed set, sorted by increasing frequency.
    #[inline]
    pub fn speeds(&self) -> &[Speed] {
        &self.speeds
    }

    /// Number of operating points `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.speeds.len()
    }

    /// One operating point by index.
    #[inline]
    pub fn speed(&self, k: usize) -> Speed {
        self.speeds[k]
    }

    /// The fastest available frequency.
    #[inline]
    pub fn max_freq(&self) -> f64 {
        self.speeds.last().unwrap().freq
    }

    /// Index of the slowest speed that executes `work` cycles within
    /// `period` seconds (`work / s ≤ period`), or `None` if even the fastest
    /// speed misses the bound. A small relative tolerance absorbs the usual
    /// floating-point dust on equality cases.
    pub fn min_speed_for(&self, work: f64, period: f64) -> Option<usize> {
        debug_assert!(work >= 0.0 && period > 0.0);
        let needed = work / period;
        self.speeds
            .iter()
            .position(|s| s.freq >= needed * (1.0 - 1e-12))
    }

    /// Index of the *energy-optimal* feasible speed: the feasible speed
    /// minimising the per-cycle dynamic energy `P(s)/s`. With a power curve
    /// whose `P(s)/s` is non-decreasing this coincides with
    /// [`PowerModel::min_speed_for`]; with the paper's XScale table it does
    /// not (0.4 GHz spends 0.425 nJ/cycle vs 0.533 nJ/cycle at 0.15 GHz — a
    /// "critical speed" effect at the leakage-dominated low end). The
    /// paper's algorithms prescribe the *minimum* speed, which this crate
    /// follows by default; this variant backs the speed-rule ablation.
    pub fn best_speed_for(&self, work: f64, period: f64) -> Option<usize> {
        let first = self.min_speed_for(work, period)?;
        (first..self.m()).min_by(|&a, &b| {
            let ea = self.speeds[a].power / self.speeds[a].freq;
            let eb = self.speeds[b].power / self.speeds[b].freq;
            ea.partial_cmp(&eb).unwrap()
        })
    }

    /// Energy consumed by one enrolled core over one period: leakage for the
    /// whole period plus dynamic energy `(w / s) · P(s)` (paper §3.5).
    ///
    /// # Panics
    /// Panics (debug) if the speed index is out of range.
    pub fn compute_energy(&self, work: f64, speed_idx: usize, period: f64) -> f64 {
        let s = self.speeds[speed_idx];
        self.p_leak * period + (work / s.freq) * s.power
    }

    /// Convenience: energy of one enrolled core at the slowest feasible
    /// speed, or `None` if the workload cannot meet the period.
    pub fn best_compute_energy(&self, work: f64, period: f64) -> Option<f64> {
        self.min_speed_for(work, period)
            .map(|k| self.compute_energy(work, k, period))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xscale_matches_paper_numbers() {
        let m = PowerModel::xscale();
        assert_eq!(m.m(), 5);
        let freqs: Vec<f64> = m.speeds().iter().map(|s| s.freq / 1e9).collect();
        assert_eq!(freqs, vec![0.15, 0.4, 0.6, 0.8, 1.0]);
        let powers: Vec<f64> = m.speeds().iter().map(|s| s.power * 1e3).collect();
        assert_eq!(powers, vec![80.0, 170.0, 400.0, 900.0, 1600.0]);
        assert_eq!(m.p_leak * 1e3, 80.0);
    }

    #[test]
    fn min_speed_selection() {
        let m = PowerModel::xscale();
        // 1e8 cycles in 1 s needs >= 0.1 GHz -> slowest (0.15 GHz) works.
        assert_eq!(m.min_speed_for(1e8, 1.0), Some(0));
        // 5e8 cycles in 1 s needs >= 0.5 GHz -> 0.6 GHz (index 2).
        assert_eq!(m.min_speed_for(5e8, 1.0), Some(2));
        // Exactly 0.4 GHz worth of work picks 0.4 GHz despite rounding.
        assert_eq!(m.min_speed_for(0.4e9, 1.0), Some(1));
        // Infeasible.
        assert_eq!(m.min_speed_for(2e9, 1.0), None);
        // Zero work runs at the slowest speed.
        assert_eq!(m.min_speed_for(0.0, 1.0), Some(0));
    }

    #[test]
    fn energy_accounting() {
        let m = PowerModel::xscale();
        // 0.15e9 cycles at 0.15 GHz for T = 2 s: leak 0.08*2 + 1.0 s * 0.08 W.
        let e = m.compute_energy(0.15e9, 0, 2.0);
        assert!((e - (0.16 + 0.08)).abs() < 1e-12);
    }

    #[test]
    fn slowest_feasible_is_energy_minimal() {
        // P(s)/s increasing -> picking any faster speed costs more energy.
        let m = PowerModel::xscale();
        let (work, period) = (3e8, 1.0);
        let k = m.min_speed_for(work, period).unwrap();
        let best = m.compute_energy(work, k, period);
        for faster in k + 1..m.m() {
            assert!(m.compute_energy(work, faster, period) > best);
        }
    }

    #[test]
    fn speeds_sorted_on_construction() {
        let m = PowerModel::new(
            vec![
                Speed {
                    freq: 2.0,
                    power: 4.0,
                },
                Speed {
                    freq: 1.0,
                    power: 1.0,
                },
            ],
            0.0,
        );
        assert_eq!(m.speed(0).freq, 1.0);
        assert_eq!(m.speed(1).freq, 2.0);
    }
}
