//! The CMP grid description (paper §3.2), generalised over the pluggable
//! interconnect backends of [`crate::topology`].

use crate::fault::FaultSet;
use crate::power::PowerModel;
use crate::router::RoutePolicy;
use crate::topology::{Neighbours, TopoBackend, Topology, TopologyKind};

/// A core coordinate: row `u ∈ 0..p`, column `v ∈ 0..q` (the paper's
/// 1-based `C_{u+1,v+1}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId {
    /// Row index, `0..p`.
    pub u: u32,
    /// Column index, `0..q`.
    pub v: u32,
}

impl CoreId {
    /// Flat index `u·q + v` for dense per-core vectors.
    #[inline]
    pub fn flat(self, q: u32) -> usize {
        (self.u * q + self.v) as usize
    }

    /// Inverse of [`CoreId::flat`].
    #[inline]
    pub fn from_flat(idx: usize, q: u32) -> CoreId {
        CoreId {
            u: idx as u32 / q,
            v: idx as u32 % q,
        }
    }

    /// Manhattan distance to another core (number of link hops of any
    /// minimal route).
    pub fn manhattan(self, other: CoreId) -> u32 {
        self.u.abs_diff(other.u) + self.v.abs_diff(other.v)
    }
}

/// A `p × q` CMP: homogeneous DVFS cores on a grid-shaped interconnect
/// (mesh, torus, or ring — see [`TopologyKind`]) with bidirectional
/// neighbour links of bandwidth `bw` bytes/s **per direction**, per-bit
/// link energy `e_bit` joules/bit, and an aggregate router/link leakage
/// `p_leak_comm` watts (paper §3.2, §3.5).
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Number of rows `p`.
    pub p: u32,
    /// Number of columns `q`.
    pub q: u32,
    /// The DVFS model shared by all cores.
    pub power: PowerModel,
    /// Link bandwidth in bytes per second, per direction.
    pub bw: f64,
    /// Energy per transferred bit per link hop, in joules.
    pub e_bit: f64,
    /// Aggregate communication leakage power `P_leak^(comm)` in watts.
    /// The paper sets it to 0 without loss of generality (it adds the same
    /// `P_leak^(comm)·T` to every mapping).
    pub p_leak_comm: f64,
    /// The interconnect shape (the paper's platform is [`TopologyKind::Mesh`]).
    pub topology: TopologyKind,
    /// The routing policy solvers use for dimension-routed mappings (the
    /// paper's platform uses [`RoutePolicy::Xy`]; torus/ring default to
    /// [`RoutePolicy::Shortest`] so their wrap links actually pay off).
    pub policy: RoutePolicy,
    /// Dead cores and links (empty on a healthy platform — see
    /// [`crate::fault`]).
    pub faults: FaultSet,
}

impl Platform {
    /// The paper's evaluation platform (§6.1.2): XScale cores on a mesh,
    /// 16-byte-wide links at 1.2 GHz (`BW = 19.2 GB/s` per direction),
    /// `E_bit = 6 pJ`, `P_leak^(comm) = 0`, XY routing.
    pub fn paper(p: u32, q: u32) -> Self {
        Platform::paper_topology(TopologyKind::Mesh, p, q)
    }

    /// The paper's electrical parameters on an alternative interconnect
    /// backend, with the backend's default routing policy (mesh → XY,
    /// torus/ring → shortest). A [`TopologyKind::Ring`] has no second
    /// dimension: the grid is flattened to a ring of `p·q` cores.
    pub fn paper_topology(kind: TopologyKind, p: u32, q: u32) -> Self {
        assert!(p >= 1 && q >= 1);
        let (p, q) = match kind {
            TopologyKind::Ring => (1, p * q),
            _ => (p, q),
        };
        Platform {
            p,
            q,
            power: PowerModel::xscale(),
            bw: 16.0 * 1.2e9,
            e_bit: 6e-12,
            p_leak_comm: 0.0,
            topology: kind,
            policy: match kind {
                TopologyKind::Mesh => RoutePolicy::Xy,
                TopologyKind::Torus | TopologyKind::Ring => RoutePolicy::Shortest,
            },
            faults: FaultSet::default(),
        }
    }

    /// The same platform with a different default routing policy.
    pub fn with_policy(mut self, policy: RoutePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The topology backend implementing [`Topology`] for this platform.
    #[inline]
    pub fn topo(&self) -> TopoBackend {
        TopoBackend::new(self.topology, self.p, self.q)
    }

    /// Total number of cores `r = p·q`.
    #[inline]
    pub fn n_cores(&self) -> usize {
        (self.p * self.q) as usize
    }

    /// Whether a coordinate lies on the grid.
    #[inline]
    pub fn contains(&self, c: CoreId) -> bool {
        c.u < self.p && c.v < self.q
    }

    /// All cores in row-major order.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        let q = self.q;
        (0..self.p).flat_map(move |u| (0..q).map(move |v| CoreId { u, v }))
    }

    /// The 2–4 topology neighbours of a core, as an allocation-free
    /// iterator in link-direction order (east, west, south, north; wrap
    /// neighbours included on torus/ring).
    pub fn neighbours(&self, c: CoreId) -> Neighbours {
        Neighbours::new(self.topo(), c)
    }

    /// Whether the topology owns a directed link from `from` to `to`.
    #[inline]
    pub fn has_link(&self, from: CoreId, to: CoreId) -> bool {
        self.topo().has_link(from, to)
    }

    /// Minimal hop distance between two cores on this topology (the
    /// Manhattan distance on a mesh; wrap-aware on torus and ring).
    #[inline]
    pub fn distance(&self, a: CoreId, b: CoreId) -> u32 {
        self.topo().distance(a, b)
    }

    /// Seconds needed to push `bytes` across one link direction.
    #[inline]
    pub fn link_time(&self, bytes: f64) -> f64 {
        bytes / self.bw
    }

    /// Energy to move `bytes` across one link hop: `8 · bytes · E_bit`
    /// (volumes are in bytes, `E_bit` is per bit — paper §3.5).
    #[inline]
    pub fn hop_energy(&self, bytes: f64) -> f64 {
        8.0 * bytes * self.e_bit
    }

    /// A same-shape platform with a different core count, keeping all
    /// electrical parameters, topology, and policy (used by `DPA2D1D` to
    /// run `DPA2D` on a virtual `1 × (p·q)` platform, §5.4).
    pub fn reshaped(&self, p: u32, q: u32) -> Platform {
        Platform {
            p,
            q,
            // Fault indices are flat per-shape coordinates; they do not
            // survive a reshape.
            faults: FaultSet::default(),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_constants() {
        let pf = Platform::paper(4, 4);
        assert_eq!(pf.n_cores(), 16);
        assert_eq!(pf.bw, 19.2e9);
        assert_eq!(pf.e_bit, 6e-12);
        assert_eq!(pf.p_leak_comm, 0.0);
        assert_eq!(pf.power.m(), 5);
    }

    #[test]
    fn flat_roundtrip() {
        let pf = Platform::paper(3, 5);
        for (i, c) in pf.cores().enumerate() {
            assert_eq!(c.flat(pf.q), i);
            assert_eq!(CoreId::from_flat(i, pf.q), c);
        }
    }

    #[test]
    fn neighbours_on_borders() {
        let pf = Platform::paper(3, 3);
        assert_eq!(pf.neighbours(CoreId { u: 0, v: 0 }).count(), 2);
        assert_eq!(pf.neighbours(CoreId { u: 0, v: 1 }).count(), 3);
        assert_eq!(pf.neighbours(CoreId { u: 1, v: 1 }).count(), 4);
        let single = Platform::paper(1, 1);
        assert!(single.neighbours(CoreId { u: 0, v: 0 }).next().is_none());
        // On the torus every core has all four neighbours.
        let torus = Platform::paper_topology(TopologyKind::Torus, 3, 3);
        assert_eq!(torus.neighbours(CoreId { u: 0, v: 0 }).count(), 4);
    }

    #[test]
    fn ring_constructor_flattens_the_grid() {
        let ring = Platform::paper_topology(TopologyKind::Ring, 4, 4);
        assert_eq!((ring.p, ring.q), (1, 16));
        assert_eq!(ring.n_cores(), 16);
        assert_eq!(ring.policy, RoutePolicy::Shortest);
        // Wrap closes the line: first and last core are one hop apart.
        assert_eq!(
            ring.distance(CoreId { u: 0, v: 0 }, CoreId { u: 0, v: 15 }),
            1
        );
        let mesh = Platform::paper(4, 4);
        assert_eq!(mesh.policy, RoutePolicy::Xy);
        assert_eq!(mesh.topology, TopologyKind::Mesh);
    }

    #[test]
    fn hop_energy_is_8_delta_ebit() {
        let pf = Platform::paper(2, 2);
        assert!((pf.hop_energy(1000.0) - 8.0 * 1000.0 * 6e-12).abs() < 1e-20);
    }

    #[test]
    fn manhattan_distance() {
        let a = CoreId { u: 0, v: 0 };
        let b = CoreId { u: 2, v: 3 };
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.manhattan(a), 0);
    }
}
