//! Routing on the CMP grid.
//!
//! * **XY (dimension-ordered) routes** — the paper's heuristics route each
//!   inter-core communication along one dimension, then the other (§5.1 for
//!   `Random`; `DPA2D`'s "horizontal then redistribute vertically" is the
//!   row-first variant). The paper's §5.1 wording is self-contradictory
//!   (see DESIGN.md §3); we implement both dimension orders explicitly.
//! * **Snake embedding** — the 1D heuristics (§5.4) configure the `p × q`
//!   grid as a uni-line CMP of `r = p·q` cores by snaking through the rows;
//!   consecutive snake positions are physically adjacent, so a uni-line
//!   route from position `a` to position `b` crosses `|b − a|` links.

use crate::grid::{CoreId, Platform};
use crate::topology::Topology;

pub use crate::topology::DirLink;

impl Platform {
    /// Number of dense directed-link index slots: 4 per core (east, west,
    /// south, north), unowned slots simply unused. O(1)
    /// [`Platform::link_index`] beats hashing `DirLink`s in the evaluator's
    /// inner loop.
    #[inline]
    pub fn n_link_slots(&self) -> usize {
        self.topo().n_link_slots()
    }

    /// Dense index of a directed link between adjacent cores (adjacency per
    /// this platform's topology — wrap links included on torus/ring).
    ///
    /// # Panics
    /// Panics if the topology owns no such link.
    #[inline]
    pub fn link_index(&self, l: DirLink) -> usize {
        match self.topo().link_index(l) {
            Some(idx) => idx,
            None => panic!("link endpoints not adjacent on {}: {l:?}", self.topology),
        }
    }

    /// Inverse of [`Platform::link_index`]; `None` for unused slots.
    pub fn link_from_index(&self, idx: usize) -> Option<DirLink> {
        self.topo().link_from_index(idx)
    }

    /// All directed links of the topology, in index order.
    pub fn links(&self) -> impl Iterator<Item = DirLink> + '_ {
        (0..self.n_link_slots()).filter_map(|i| self.link_from_index(i))
    }
}

/// Which dimension an XY route traverses first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOrder {
    /// Move along the row to the destination column, then along the column.
    RowFirst,
    /// Move along the column to the destination row, then along the row.
    ColFirst,
}

/// The XY route from `from` to `to` as a list of directed links
/// (empty when `from == to`).
pub fn xy_route(from: CoreId, to: CoreId, order: RouteOrder) -> Vec<DirLink> {
    let mut path = Vec::with_capacity(from.manhattan(to) as usize);
    let mut cur = from;
    let step_col = |cur: &mut CoreId, path: &mut Vec<DirLink>| {
        while cur.v != to.v {
            let next = CoreId {
                u: cur.u,
                v: if to.v > cur.v { cur.v + 1 } else { cur.v - 1 },
            };
            path.push(DirLink {
                from: *cur,
                to: next,
            });
            *cur = next;
        }
    };
    let step_row = |cur: &mut CoreId, path: &mut Vec<DirLink>| {
        while cur.u != to.u {
            let next = CoreId {
                u: if to.u > cur.u { cur.u + 1 } else { cur.u - 1 },
                v: cur.v,
            };
            path.push(DirLink {
                from: *cur,
                to: next,
            });
            *cur = next;
        }
    };
    match order {
        RouteOrder::RowFirst => {
            step_col(&mut cur, &mut path);
            step_row(&mut cur, &mut path);
        }
        RouteOrder::ColFirst => {
            step_row(&mut cur, &mut path);
            step_col(&mut cur, &mut path);
        }
    }
    path
}

/// Visitor form of [`xy_route`]: calls `f` on each hop without building a
/// path vector (the evaluator's accumulation loop runs per application
/// edge, so the allocation matters).
pub fn xy_route_visit(from: CoreId, to: CoreId, order: RouteOrder, mut f: impl FnMut(DirLink)) {
    let mut cur = from;
    let step_col = |cur: &mut CoreId, f: &mut dyn FnMut(DirLink)| {
        while cur.v != to.v {
            let next = CoreId {
                u: cur.u,
                v: if to.v > cur.v { cur.v + 1 } else { cur.v - 1 },
            };
            f(DirLink {
                from: *cur,
                to: next,
            });
            *cur = next;
        }
    };
    let step_row = |cur: &mut CoreId, f: &mut dyn FnMut(DirLink)| {
        while cur.u != to.u {
            let next = CoreId {
                u: if to.u > cur.u { cur.u + 1 } else { cur.u - 1 },
                v: cur.v,
            };
            f(DirLink {
                from: *cur,
                to: next,
            });
            *cur = next;
        }
    };
    match order {
        RouteOrder::RowFirst => {
            step_col(&mut cur, &mut f);
            step_row(&mut cur, &mut f);
        }
        RouteOrder::ColFirst => {
            step_row(&mut cur, &mut f);
            step_col(&mut cur, &mut f);
        }
    }
}

/// Snake position of a core: row 0 runs left→right, row 1 right→left, …
/// (§5.4's embedding of the uni-line CMP into the grid).
pub fn snake_index(pf: &Platform, c: CoreId) -> usize {
    debug_assert!(pf.contains(c));
    let row_base = (c.u * pf.q) as usize;
    if c.u.is_multiple_of(2) {
        row_base + c.v as usize
    } else {
        row_base + (pf.q - 1 - c.v) as usize
    }
}

/// The core at a snake position (inverse of [`snake_index`]).
pub fn snake_core(pf: &Platform, idx: usize) -> CoreId {
    debug_assert!(idx < pf.n_cores());
    let u = idx as u32 / pf.q;
    let off = idx as u32 % pf.q;
    let v = if u.is_multiple_of(2) {
        off
    } else {
        pf.q - 1 - off
    };
    CoreId { u, v }
}

/// The route along the snake between two snake positions, as directed
/// links. Forward (`a < b`) and backward (`a > b`) both follow the snake;
/// uni-directional uni-line configurations simply never ask for backward
/// routes.
pub fn snake_route(pf: &Platform, a: usize, b: usize) -> Vec<DirLink> {
    let mut path = Vec::with_capacity(a.abs_diff(b));
    if a <= b {
        for i in a..b {
            path.push(DirLink {
                from: snake_core(pf, i),
                to: snake_core(pf, i + 1),
            });
        }
    } else {
        for i in (b..a).rev() {
            path.push(DirLink {
                from: snake_core(pf, i + 1),
                to: snake_core(pf, i),
            });
        }
    }
    path
}

/// Visitor form of [`snake_route`]: calls `f` on each hop without building
/// a path vector.
pub fn snake_route_visit(pf: &Platform, a: usize, b: usize, mut f: impl FnMut(DirLink)) {
    if a <= b {
        for i in a..b {
            f(DirLink {
                from: snake_core(pf, i),
                to: snake_core(pf, i + 1),
            });
        }
    } else {
        for i in (b..a).rev() {
            f(DirLink {
                from: snake_core(pf, i + 1),
                to: snake_core(pf, i),
            });
        }
    }
}

/// Checks that a path is a well-formed route on the platform: consecutive,
/// adjacent (per the platform's topology, so wrap hops validate on torus
/// and ring), cycle-free, from `from` to `to`.
pub fn validate_route(
    pf: &Platform,
    from: CoreId,
    to: CoreId,
    path: &[DirLink],
) -> Result<(), String> {
    let mut cur = from;
    let mut visited = std::collections::HashSet::new();
    visited.insert(cur);
    for l in path {
        if l.from != cur {
            return Err(format!("discontinuous route at {:?}", l));
        }
        if !pf.contains(l.to) || !pf.has_link(l.from, l.to) {
            return Err(format!("non-adjacent hop {:?}", l));
        }
        cur = l.to;
        if !visited.insert(cur) {
            return Err(format!("route revisits core {:?}", cur));
        }
    }
    if cur != to {
        return Err(format!("route ends at {:?}, expected {:?}", cur, to));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_routes_have_manhattan_length() {
        let pf = Platform::paper(4, 4);
        let a = CoreId { u: 0, v: 0 };
        let b = CoreId { u: 3, v: 2 };
        for order in [RouteOrder::RowFirst, RouteOrder::ColFirst] {
            let r = xy_route(a, b, order);
            assert_eq!(r.len(), 5);
            validate_route(&pf, a, b, &r).unwrap();
        }
        assert!(xy_route(a, a, RouteOrder::RowFirst).is_empty());
    }

    #[test]
    fn row_first_goes_horizontal_first() {
        let a = CoreId { u: 0, v: 0 };
        let b = CoreId { u: 1, v: 1 };
        let r = xy_route(a, b, RouteOrder::RowFirst);
        assert_eq!(r[0].to, CoreId { u: 0, v: 1 });
        let r = xy_route(a, b, RouteOrder::ColFirst);
        assert_eq!(r[0].to, CoreId { u: 1, v: 0 });
    }

    #[test]
    fn snake_roundtrip_and_adjacency() {
        let pf = Platform::paper(4, 5);
        for i in 0..pf.n_cores() {
            assert_eq!(snake_index(&pf, snake_core(&pf, i)), i);
        }
        // Consecutive snake positions are grid-adjacent.
        for i in 0..pf.n_cores() - 1 {
            assert_eq!(snake_core(&pf, i).manhattan(snake_core(&pf, i + 1)), 1);
        }
    }

    #[test]
    fn snake_layout_matches_paper_sketch() {
        // §5.4: C11 -> C12 -> ... -> C1q ; down ; C2q -> ... -> C21 ; down...
        let pf = Platform::paper(3, 3);
        let order: Vec<CoreId> = (0..9).map(|i| snake_core(&pf, i)).collect();
        let expect = [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 1),
            (1, 0),
            (2, 0),
            (2, 1),
            (2, 2),
        ];
        for (c, &(u, v)) in order.iter().zip(&expect) {
            assert_eq!(*c, CoreId { u, v });
        }
    }

    #[test]
    fn snake_route_lengths_and_direction() {
        let pf = Platform::paper(2, 4);
        let fwd = snake_route(&pf, 1, 5);
        assert_eq!(fwd.len(), 4);
        validate_route(&pf, snake_core(&pf, 1), snake_core(&pf, 5), &fwd).unwrap();
        let back = snake_route(&pf, 5, 1);
        assert_eq!(back.len(), 4);
        validate_route(&pf, snake_core(&pf, 5), snake_core(&pf, 1), &back).unwrap();
        assert!(snake_route(&pf, 3, 3).is_empty());
    }

    #[test]
    fn link_index_roundtrip_and_density() {
        let pf = Platform::paper(3, 4);
        // Every mesh link gets a unique slot, and decoding inverts encoding.
        let mut seen = std::collections::HashSet::new();
        for link in pf.links() {
            let idx = pf.link_index(link);
            assert!(idx < pf.n_link_slots());
            assert!(seen.insert(idx), "slot collision at {link:?}");
            assert_eq!(pf.link_from_index(idx), Some(link));
        }
        // A p x q mesh has 2(p(q-1) + (p-1)q) directed links.
        let expect = 2 * (3 * 3 + 2 * 4);
        assert_eq!(seen.len(), expect);
        assert_eq!(pf.links().count(), expect);
    }

    #[test]
    fn link_index_covers_route_hops() {
        let pf = Platform::paper(4, 4);
        let a = CoreId { u: 0, v: 0 };
        let b = CoreId { u: 3, v: 2 };
        for order in [RouteOrder::RowFirst, RouteOrder::ColFirst] {
            for link in xy_route(a, b, order) {
                assert_eq!(pf.link_from_index(pf.link_index(link)), Some(link));
            }
        }
    }

    #[test]
    fn route_visitors_match_vector_forms() {
        let pf = Platform::paper(3, 5);
        let a = CoreId { u: 0, v: 4 };
        let b = CoreId { u: 2, v: 1 };
        for order in [RouteOrder::RowFirst, RouteOrder::ColFirst] {
            let mut visited = Vec::new();
            xy_route_visit(a, b, order, |l| visited.push(l));
            assert_eq!(visited, xy_route(a, b, order));
        }
        for (x, y) in [(1usize, 9usize), (9, 1), (4, 4)] {
            let mut visited = Vec::new();
            snake_route_visit(&pf, x, y, |l| visited.push(l));
            assert_eq!(visited, snake_route(&pf, x, y));
        }
    }

    #[test]
    fn validate_route_catches_errors() {
        let pf = Platform::paper(2, 2);
        let a = CoreId { u: 0, v: 0 };
        let b = CoreId { u: 1, v: 1 };
        // Teleporting hop.
        let bad = vec![DirLink { from: a, to: b }];
        assert!(validate_route(&pf, a, b, &bad).is_err());
        // Wrong endpoint.
        let partial = xy_route(a, CoreId { u: 0, v: 1 }, RouteOrder::RowFirst);
        assert!(validate_route(&pf, a, b, &partial).is_err());
    }
}
