//! # cmp-platform — chip-multiprocessor platform substrate
//!
//! Models the target platform of the paper (§3.2) behind pluggable
//! interconnect backends: a grid of homogeneous DVFS cores connected by
//! bidirectional links of bandwidth `BW` per direction, with per-bit link
//! energy `E_bit`.
//!
//! * [`power`] — the DVFS speed/power model, with the Intel XScale defaults
//!   used in §6.1.2;
//! * [`grid`] — the platform description and core coordinates;
//! * [`topology`] — the [`Topology`] trait and the shipped backends
//!   ([`Mesh2D`] — the paper's platform, [`Torus2D`], [`Ring`]), all
//!   sharing the dense directed-link indexing;
//! * [`router`] — the [`Router`] trait, the shipped policies
//!   ([`RoutePolicy`]: XY / YX dimension-ordered, wrap-aware shortest,
//!   snake), and the precomputed [`RouteTable`] that turns route
//!   generation into flat slice walks;
//! * [`routing`] — the dimension-ordered XY route generators, the snake
//!   embedding that turns the grid into a uni-line CMP (§5.4), and route
//!   validation.
//!
//! Coordinates are **0-based** internally (`u ∈ 0..p` rows, `v ∈ 0..q`
//! columns); the paper's `C_{u,v}` with 1-based indices maps to
//! `CoreId { u: u-1, v: v-1 }`.

pub mod fault;
pub mod grid;
pub mod power;
pub mod router;
pub mod routing;
pub mod topology;

pub use fault::{Fault, FaultSet};
pub use grid::{CoreId, Platform};
pub use power::{PowerModel, Speed};
pub use router::{
    shortest_route_visit, DimOrderedRouter, RoutePolicy, RouteTable, Router, ShortestRouter,
    SnakeRouter,
};
pub use routing::{
    snake_core, snake_index, snake_route, snake_route_visit, xy_route, xy_route_visit, DirLink,
    RouteOrder,
};
pub use topology::{Mesh2D, Neighbours, Ring, TopoBackend, Topology, TopologyKind, Torus2D};
