//! # cmp-platform — chip-multiprocessor platform substrate
//!
//! Models the target platform of the paper (§3.2): a `p × q` grid of
//! homogeneous DVFS cores connected by bidirectional mesh links of bandwidth
//! `BW` per direction, with per-bit link energy `E_bit`.
//!
//! * [`power`] — the DVFS speed/power model, with the Intel XScale defaults
//!   used in §6.1.2;
//! * [`grid`] — the platform description and core coordinates;
//! * [`routing`] — dimension-ordered XY routes, the snake embedding that
//!   turns the grid into a uni-line CMP (§5.4), and directed link ids.
//!
//! Coordinates are **0-based** internally (`u ∈ 0..p` rows, `v ∈ 0..q`
//! columns); the paper's `C_{u,v}` with 1-based indices maps to
//! `CoreId { u: u-1, v: v-1 }`.

pub mod grid;
pub mod power;
pub mod routing;

pub use grid::{CoreId, Platform};
pub use power::{PowerModel, Speed};
pub use routing::{
    snake_core, snake_index, snake_route, snake_route_visit, xy_route, xy_route_visit, DirLink,
    RouteOrder,
};
