//! Platform fault modelling: dead cores and dead links.
//!
//! A **core fault** kills a PE but leaves its router and attached links
//! alive (the common manufacturing-defect / thermal-shutdown model), so
//! routes are unaffected — only placement is. A **link fault** kills one
//! physical link in both directions; policy routes that crossed it are
//! detoured along the shortest alive path (deterministic BFS, see
//! [`crate::Platform::route_visit`]).
//!
//! `docs/fault-model.md` documents the exact invalidation contract each
//! fault kind implies for cached derived state.

use crate::grid::{CoreId, Platform};

/// A single platform fault, in grid coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The PE at this core is dead. Its router and links stay alive.
    Core(CoreId),
    /// The physical link between two adjacent cores is dead in **both**
    /// directions.
    Link(CoreId, CoreId),
}

/// The set of faults applied to a [`Platform`]: dead core flat indices and
/// dead directed-link indices, both kept sorted and deduplicated so equal
/// fault sets compare equal regardless of injection order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSet {
    /// Flat indices (`u·q + v`) of dead cores, sorted ascending.
    dead_cores: Vec<u32>,
    /// Dense directed-link indices ([`Platform::link_index`]) of dead
    /// links, sorted ascending. A link fault contributes both directions.
    dead_links: Vec<u32>,
}

impl FaultSet {
    /// An empty (healthy) fault set.
    pub fn new() -> Self {
        FaultSet::default()
    }

    /// Whether no fault is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dead_cores.is_empty() && self.dead_links.is_empty()
    }

    /// Whether the core with this flat index is dead.
    #[inline]
    pub fn core_dead(&self, flat: usize) -> bool {
        !self.dead_cores.is_empty() && self.dead_cores.binary_search(&(flat as u32)).is_ok()
    }

    /// Whether the directed link with this dense index is dead.
    #[inline]
    pub fn link_dead(&self, link_index: usize) -> bool {
        !self.dead_links.is_empty() && self.dead_links.binary_search(&(link_index as u32)).is_ok()
    }

    /// Sorted flat indices of dead cores.
    pub fn dead_cores(&self) -> &[u32] {
        &self.dead_cores
    }

    /// Sorted dense indices of dead directed links.
    pub fn dead_links(&self) -> &[u32] {
        &self.dead_links
    }

    /// Number of dead cores.
    pub fn n_dead_cores(&self) -> usize {
        self.dead_cores.len()
    }

    /// Marks a core dead by flat index (idempotent).
    pub fn insert_core(&mut self, flat: u32) {
        if let Err(pos) = self.dead_cores.binary_search(&flat) {
            self.dead_cores.insert(pos, flat);
        }
    }

    /// Marks a directed link dead by dense index (idempotent).
    pub fn insert_link(&mut self, link_index: u32) {
        if let Err(pos) = self.dead_links.binary_search(&link_index) {
            self.dead_links.insert(pos, link_index);
        }
    }
}

impl Platform {
    /// This platform with one more fault applied (out-of-place; the
    /// existing fault set is extended). Link faults kill both directions.
    ///
    /// # Panics
    /// Panics if the core is off-grid or the link endpoints are not
    /// topology-adjacent.
    pub fn with_fault(&self, fault: Fault) -> Platform {
        let mut pf = self.clone();
        match fault {
            Fault::Core(c) => {
                assert!(pf.contains(c), "faulted core {c:?} off the grid");
                pf.faults.insert_core(c.flat(pf.q) as u32);
            }
            Fault::Link(a, b) => {
                let fwd = pf.link_index(crate::topology::DirLink { from: a, to: b }) as u32;
                let back = pf.link_index(crate::topology::DirLink { from: b, to: a }) as u32;
                pf.faults.insert_link(fwd);
                pf.faults.insert_link(back);
            }
        }
        pf
    }

    /// Shorthand for [`Platform::with_fault`] with [`Fault::Core`].
    pub fn with_core_fault(&self, c: CoreId) -> Platform {
        self.with_fault(Fault::Core(c))
    }

    /// Shorthand for [`Platform::with_fault`] with [`Fault::Link`].
    pub fn with_link_fault(&self, a: CoreId, b: CoreId) -> Platform {
        self.with_fault(Fault::Link(a, b))
    }

    /// This platform with every fault cleared (the healthy twin; its
    /// fingerprint keys fault-invariant cached artifacts).
    pub fn fault_free(&self) -> Platform {
        let mut pf = self.clone();
        pf.faults = FaultSet::default();
        pf
    }

    /// Whether any fault is present.
    #[inline]
    pub fn is_faulted(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Whether any **link** fault is present (core faults leave routing
    /// untouched, so route generation only branches on this).
    #[inline]
    pub fn has_link_faults(&self) -> bool {
        !self.faults.dead_links().is_empty()
    }

    /// Whether this core's PE is alive (its router always is).
    #[inline]
    pub fn core_alive(&self, c: CoreId) -> bool {
        !self.faults.core_dead(c.flat(self.q))
    }

    /// All cores with a live PE, in row-major order (identical to
    /// [`Platform::cores`] on a healthy platform).
    pub fn alive_cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.cores().filter(move |c| self.core_alive(*c))
    }

    /// Number of cores with a live PE.
    pub fn n_alive_cores(&self) -> usize {
        self.n_cores() - self.faults.n_dead_cores()
    }

    /// Whether the directed link is alive (false only under link faults).
    #[inline]
    pub fn link_alive(&self, l: crate::topology::DirLink) -> bool {
        !self.faults.link_dead(self.link_index(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::DirLink;

    fn c(u: u32, v: u32) -> CoreId {
        CoreId { u, v }
    }

    #[test]
    fn fault_set_injection_order_is_canonical() {
        let pf = Platform::paper(3, 3);
        let a = pf.with_core_fault(c(2, 1)).with_core_fault(c(0, 0));
        let b = pf.with_core_fault(c(0, 0)).with_core_fault(c(2, 1));
        assert_eq!(a.faults, b.faults);
        assert_eq!(a, b);
    }

    #[test]
    fn core_fault_kills_pe_not_router() {
        let pf = Platform::paper(3, 3).with_core_fault(c(1, 1));
        assert!(!pf.core_alive(c(1, 1)));
        assert!(pf.core_alive(c(0, 1)));
        assert_eq!(pf.n_alive_cores(), 8);
        assert_eq!(pf.alive_cores().count(), 8);
        // Links through the dead core's router still work.
        assert!(pf.link_alive(DirLink {
            from: c(1, 0),
            to: c(1, 1)
        }));
        assert!(!pf.has_link_faults());
    }

    #[test]
    fn link_fault_kills_both_directions() {
        let pf = Platform::paper(3, 3).with_link_fault(c(0, 0), c(0, 1));
        assert!(!pf.link_alive(DirLink {
            from: c(0, 0),
            to: c(0, 1)
        }));
        assert!(!pf.link_alive(DirLink {
            from: c(0, 1),
            to: c(0, 0)
        }));
        assert!(pf.link_alive(DirLink {
            from: c(0, 1),
            to: c(0, 2)
        }));
        assert!(pf.has_link_faults());
        assert_eq!(pf.n_alive_cores(), 9);
    }

    #[test]
    fn fault_free_restores_equality() {
        let pf = Platform::paper(2, 2);
        let hurt = pf
            .with_core_fault(c(0, 1))
            .with_link_fault(c(0, 0), c(1, 0));
        assert!(hurt.is_faulted());
        assert_eq!(hurt.fault_free(), pf);
        assert!(!pf.is_faulted());
    }

    #[test]
    #[should_panic]
    fn non_adjacent_link_fault_panics() {
        let _ = Platform::paper(3, 3).with_link_fault(c(0, 0), c(2, 2));
    }

    #[test]
    fn alive_cores_row_major_on_healthy_platform() {
        let pf = Platform::paper(3, 4);
        let all: Vec<_> = pf.cores().collect();
        let alive: Vec<_> = pf.alive_cores().collect();
        assert_eq!(all, alive);
    }
}
