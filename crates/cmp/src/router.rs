//! Pluggable routing policies and precomputed route tables.
//!
//! A [`Router`] turns a `(src, dst)` core pair into a sequence of directed
//! links on a [`Topology`]. Four policies ship:
//!
//! * [`RoutePolicy::Xy`] — dimension-ordered, column dimension first (the
//!   paper's row-first XY routes, §5.1/§5.3); never uses wrap links, so it
//!   behaves identically on mesh and torus;
//! * [`RoutePolicy::Yx`] — dimension-ordered, row dimension first (the
//!   transposed reading of §5.1);
//! * [`RoutePolicy::Shortest`] — dimension-ordered like XY, but each
//!   dimension independently takes the direction with fewer hops,
//!   including wrap links on torus and ring; ties break toward the mesh
//!   direction, so on a mesh this is exactly `Xy`;
//! * [`RoutePolicy::Snake`] — along the snake embedding of the grid
//!   (§5.4), the discipline of the 1D heuristics.
//!
//! [`RouteTable`] precomputes every `(src, dst)` route of one policy into a
//! flat `(offsets, links)` pair of packed link-index spans, so the
//! evaluation hot path walks a slice instead of regenerating routes hop by
//! hop. A table is a few hundred kilobytes even on a 6×6 grid and is cached
//! per policy on the solver session (`ea_core::Instance`).

use crate::grid::{CoreId, Platform};
use crate::routing::{snake_index, snake_route_visit, xy_route_visit, RouteOrder};
use crate::topology::{DirLink, TopoBackend, Topology, DIR_EAST, DIR_NORTH, DIR_SOUTH, DIR_WEST};

/// A routing policy name: which [`Router`] generates a mapping's routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutePolicy {
    /// Dimension-ordered, column dimension first (row-first XY).
    #[default]
    Xy,
    /// Dimension-ordered, row dimension first (column-first XY).
    Yx,
    /// Per-dimension shortest direction, wrap-aware; `Xy` on a mesh.
    Shortest,
    /// Along the snake embedding of the grid (§5.4).
    Snake,
}

impl RoutePolicy {
    /// All shipped policies, in CLI/documentation order.
    pub const ALL: [RoutePolicy; 4] = [
        RoutePolicy::Xy,
        RoutePolicy::Yx,
        RoutePolicy::Shortest,
        RoutePolicy::Snake,
    ];

    /// Dense index (for per-policy caches).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RoutePolicy::Xy => 0,
            RoutePolicy::Yx => 1,
            RoutePolicy::Shortest => 2,
            RoutePolicy::Snake => 3,
        }
    }

    /// Lower-case CLI name (`xy` / `yx` / `shortest` / `snake`).
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::Xy => "xy",
            RoutePolicy::Yx => "yx",
            RoutePolicy::Shortest => "shortest",
            RoutePolicy::Snake => "snake",
        }
    }
}

impl std::fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for RoutePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "xy" => Ok(RoutePolicy::Xy),
            "yx" => Ok(RoutePolicy::Yx),
            "shortest" => Ok(RoutePolicy::Shortest),
            "snake" => Ok(RoutePolicy::Snake),
            other => Err(format!(
                "unknown routing policy '{other}' (expected xy, yx, shortest, or snake)"
            )),
        }
    }
}

/// Route generation between two cores of a topology.
///
/// The contract (checked by the cross-backend property tests): the visited
/// links form a contiguous, cycle-free path from `from` to `to`, and every
/// link is owned by the topology ([`Topology::has_link`]).
pub trait Router {
    /// Which policy this router implements.
    fn policy(&self) -> RoutePolicy;

    /// Visits every hop of the route from `from` to `to`, in order (no
    /// hops when `from == to`).
    fn visit(&self, from: CoreId, to: CoreId, f: &mut dyn FnMut(DirLink));

    /// The route as a path vector (convenience over [`Router::visit`]).
    fn route(&self, from: CoreId, to: CoreId) -> Vec<DirLink> {
        let mut path = Vec::new();
        self.visit(from, to, &mut |l| path.push(l));
        path
    }
}

/// Dimension-ordered router ([`RoutePolicy::Xy`] / [`RoutePolicy::Yx`]);
/// never takes wrap links, so it is valid on every shipped backend.
#[derive(Debug, Clone, Copy)]
pub struct DimOrderedRouter {
    /// Which dimension moves first.
    pub order: RouteOrder,
}

impl Router for DimOrderedRouter {
    fn policy(&self) -> RoutePolicy {
        match self.order {
            RouteOrder::RowFirst => RoutePolicy::Xy,
            RouteOrder::ColFirst => RoutePolicy::Yx,
        }
    }

    fn visit(&self, from: CoreId, to: CoreId, f: &mut dyn FnMut(DirLink)) {
        xy_route_visit(from, to, self.order, f);
    }
}

/// Wrap-aware shortest router ([`RoutePolicy::Shortest`]) over one topology
/// backend.
#[derive(Debug, Clone, Copy)]
pub struct ShortestRouter {
    /// The topology whose wrap links the router may take.
    pub topo: TopoBackend,
}

impl Router for ShortestRouter {
    fn policy(&self) -> RoutePolicy {
        RoutePolicy::Shortest
    }

    fn visit(&self, from: CoreId, to: CoreId, f: &mut dyn FnMut(DirLink)) {
        shortest_route_visit(&self.topo, from, to, f);
    }
}

/// Snake router ([`RoutePolicy::Snake`]) over one grid shape.
#[derive(Debug, Clone)]
pub struct SnakeRouter {
    /// The platform whose snake embedding the routes follow.
    pub pf: Platform,
}

impl Router for SnakeRouter {
    fn policy(&self) -> RoutePolicy {
        RoutePolicy::Snake
    }

    fn visit(&self, from: CoreId, to: CoreId, f: &mut dyn FnMut(DirLink)) {
        snake_route_visit(
            &self.pf,
            snake_index(&self.pf, from),
            snake_index(&self.pf, to),
            f,
        );
    }
}

/// One dimension of a shortest route: the direction slot to step in and the
/// number of hops. Ties (exactly half way around a wrapped dimension) break
/// toward the mesh direction, so mesh and torus agree whenever wrap buys
/// nothing.
#[inline]
fn shortest_leg(
    cur: u32,
    dst: u32,
    size: u32,
    wrap: bool,
    pos_dir: usize,
    neg_dir: usize,
) -> (usize, u32) {
    let d = cur.abs_diff(dst);
    let mesh_dir = if dst > cur { pos_dir } else { neg_dir };
    if !wrap || d <= size - d {
        (mesh_dir, d)
    } else {
        // Strictly shorter the other way around.
        let wrap_dir = if dst > cur { neg_dir } else { pos_dir };
        (wrap_dir, size - d)
    }
}

/// Visitor form of the shortest route on a topology: dimension-ordered
/// (columns first, mirroring row-first XY), each dimension independently
/// taking the direction with fewer hops — including wrap links where the
/// topology has them. On a mesh this produces exactly the row-first XY
/// route.
pub fn shortest_route_visit<T: Topology + ?Sized>(
    topo: &T,
    from: CoreId,
    to: CoreId,
    mut f: impl FnMut(DirLink),
) {
    debug_assert!(topo.contains(from) && topo.contains(to));
    let mut cur = from;
    let legs = [
        shortest_leg(
            from.v,
            to.v,
            topo.cols(),
            topo.wrap_cols(),
            DIR_EAST,
            DIR_WEST,
        ),
        shortest_leg(
            from.u,
            to.u,
            topo.rows(),
            topo.wrap_rows(),
            DIR_SOUTH,
            DIR_NORTH,
        ),
    ];
    for (dir, hops) in legs {
        for _ in 0..hops {
            let next = topo
                .step(cur, dir)
                .expect("shortest leg steps stay on the topology");
            f(DirLink {
                from: cur,
                to: next,
            });
            cur = next;
        }
    }
    debug_assert_eq!(cur, to);
}

impl Platform {
    /// Visits every hop of the `policy` route from `from` to `to` on this
    /// platform (static dispatch; the generation hot path behind
    /// [`RouteTable::build`] and the mapping evaluator's fallback).
    ///
    /// On a platform with **link faults** the policy route is checked
    /// against the dead-link set first: clean routes are emitted verbatim,
    /// routes crossing a dead link are replaced by a deterministic
    /// shortest alive detour (BFS in direction-slot order), and pairs with
    /// no alive path emit **nothing** — the evaluator treats a zero-hop
    /// route between distinct cores as unroutable.
    pub fn route_visit(
        &self,
        policy: RoutePolicy,
        from: CoreId,
        to: CoreId,
        mut f: impl FnMut(DirLink),
    ) {
        if !self.has_link_faults() {
            self.policy_route_visit(policy, from, to, f);
            return;
        }
        let (path, _detoured) = self.faulted_route(policy, from, to);
        for l in path {
            f(l);
        }
    }

    /// The fault-oblivious policy route (what [`Platform::route_visit`]
    /// emits on a healthy platform).
    fn policy_route_visit(
        &self,
        policy: RoutePolicy,
        from: CoreId,
        to: CoreId,
        f: impl FnMut(DirLink),
    ) {
        match policy {
            RoutePolicy::Xy => xy_route_visit(from, to, RouteOrder::RowFirst, f),
            RoutePolicy::Yx => xy_route_visit(from, to, RouteOrder::ColFirst, f),
            RoutePolicy::Shortest => shortest_route_visit(&self.topo(), from, to, f),
            RoutePolicy::Snake => {
                snake_route_visit(self, snake_index(self, from), snake_index(self, to), f)
            }
        }
    }

    /// The route from `from` to `to` under this platform's link faults:
    /// the policy route when it avoids every dead link, else a
    /// deterministic shortest alive detour (empty when `to` is
    /// unreachable). The flag reports whether a detour replaced the
    /// policy route.
    ///
    /// Detours depend only on (topology, fault set, endpoints): BFS
    /// explores neighbours in fixed direction-slot order (east, west,
    /// south, north) and keeps the first parent that discovers each core,
    /// so the returned equal-length path is unique for a given fault set.
    pub(crate) fn faulted_route(
        &self,
        policy: RoutePolicy,
        from: CoreId,
        to: CoreId,
    ) -> (Vec<DirLink>, bool) {
        let mut path = Vec::new();
        self.policy_route_visit(policy, from, to, |l| path.push(l));
        if path.iter().all(|l| self.link_alive(*l)) {
            return (path, false);
        }
        (self.bfs_detour(from, to), true)
    }

    /// Deterministic BFS over alive links; empty when unreachable.
    fn bfs_detour(&self, from: CoreId, to: CoreId) -> Vec<DirLink> {
        let topo = self.topo();
        let n = self.n_cores();
        let mut parent: Vec<Option<CoreId>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[from.flat(self.q)] = true;
        queue.push_back(from);
        'bfs: while let Some(cur) = queue.pop_front() {
            for dir in 0..4 {
                let Some(next) = topo.step(cur, dir) else {
                    continue;
                };
                let flat = next.flat(self.q);
                if seen[flat]
                    || !self.link_alive(DirLink {
                        from: cur,
                        to: next,
                    })
                {
                    continue;
                }
                seen[flat] = true;
                parent[flat] = Some(cur);
                if next == to {
                    break 'bfs;
                }
                queue.push_back(next);
            }
        }
        if !seen[to.flat(self.q)] {
            return Vec::new();
        }
        let mut rev = Vec::new();
        let mut cur = to;
        while cur != from {
            let prev = parent[cur.flat(self.q)].expect("BFS parents reach the source");
            rev.push(DirLink {
                from: prev,
                to: cur,
            });
            cur = prev;
        }
        rev.reverse();
        rev
    }

    /// A boxed [`Router`] for one policy on this platform, for callers that
    /// want dynamic dispatch over policies.
    pub fn router(&self, policy: RoutePolicy) -> Box<dyn Router> {
        match policy {
            RoutePolicy::Xy => Box::new(DimOrderedRouter {
                order: RouteOrder::RowFirst,
            }),
            RoutePolicy::Yx => Box::new(DimOrderedRouter {
                order: RouteOrder::ColFirst,
            }),
            RoutePolicy::Shortest => Box::new(ShortestRouter { topo: self.topo() }),
            RoutePolicy::Snake => Box::new(SnakeRouter { pf: self.clone() }),
        }
    }
}

/// A precomputed route table: for every `(src, dst)` core pair of one
/// platform and one policy, the route as a packed span of dense link
/// indices ([`Platform::link_index`]). Turning the evaluator's per-hop
/// route generation into a flat slice walk is what makes route-heavy
/// campaigns cheap, uniformly across topologies.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteTable {
    policy: RoutePolicy,
    /// The platform shape the table was built for — all three fields are
    /// checked by [`RouteTable::matches_platform`]: link indices are only
    /// meaningful on the exact grid shape and topology that produced them.
    p: u32,
    q: u32,
    topology: crate::topology::TopologyKind,
    /// `offsets[src * n + dst] .. offsets[src * n + dst + 1]` indexes
    /// `links`.
    offsets: Vec<u32>,
    /// Concatenated link indices of all routes, row-major by `(src, dst)`.
    links: Vec<u32>,
    /// The dead directed-link set the table was built under (sorted; empty
    /// on a healthy platform). Routes are **core**-fault-independent, so
    /// only link faults participate in [`RouteTable::matches_platform`].
    dead_links: Vec<u32>,
    /// Per `(src, dst)` cell: whether the stored route is a BFS detour
    /// rather than the policy route. Detours are tie-break-sensitive to
    /// the whole fault set, so [`RouteTable::patched`] always regenerates
    /// them; empty means "no cell detoured" (the healthy fast path).
    detoured: Vec<bool>,
}

impl RouteTable {
    /// Builds the table for one platform and policy by running the policy's
    /// route visitor over every ordered core pair (fault-aware: on a
    /// platform with link faults, stored routes are the alive detours).
    pub fn build(pf: &Platform, policy: RoutePolicy) -> RouteTable {
        let n = pf.n_cores();
        let mut offsets = Vec::with_capacity(n * n + 1);
        let mut links = Vec::new();
        let mut detoured = Vec::new();
        let faulted = pf.has_link_faults();
        if faulted {
            detoured.reserve(n * n);
        }
        offsets.push(0u32);
        for src in 0..n {
            let from = CoreId::from_flat(src, pf.q);
            for dst in 0..n {
                let to = CoreId::from_flat(dst, pf.q);
                if faulted {
                    let (path, det) = pf.faulted_route(policy, from, to);
                    links.extend(path.iter().map(|l| pf.link_index(*l) as u32));
                    detoured.push(det);
                } else {
                    pf.route_visit(policy, from, to, |l| {
                        links.push(pf.link_index(l) as u32);
                    });
                }
                offsets.push(links.len() as u32);
            }
        }
        RouteTable {
            policy,
            p: pf.p,
            q: pf.q,
            topology: pf.topology,
            offsets,
            links,
            dead_links: pf.faults.dead_links().to_vec(),
            detoured,
        }
    }

    /// Delta-patches this table onto a platform with a **different link
    /// fault set**: pairs whose stored route is the policy route and
    /// avoids every newly dead link are copied verbatim; detoured or
    /// newly-broken pairs are regenerated under the new fault set. The
    /// result is bit-identical to `RouteTable::build(pf, policy)` — a
    /// clean policy route is exactly what a cold build would store, and
    /// everything else is recomputed from scratch.
    ///
    /// # Panics
    /// Panics when the platform shape/topology differs or the policy
    /// mismatches — patching only makes sense across fault sets.
    pub fn patched(&self, pf: &Platform) -> RouteTable {
        assert!(
            self.p == pf.p && self.q == pf.q && self.topology == pf.topology,
            "route-table patch across different platform shapes"
        );
        let n = pf.n_cores();
        let mut offsets = Vec::with_capacity(n * n + 1);
        let mut links = Vec::with_capacity(self.links.len());
        let mut detoured = Vec::new();
        let faulted = pf.has_link_faults();
        if faulted {
            detoured.reserve(n * n);
        }
        offsets.push(0u32);
        for src in 0..n {
            let from = CoreId::from_flat(src, pf.q);
            for dst in 0..n {
                let to = CoreId::from_flat(dst, pf.q);
                let cell = src * n + dst;
                let was_detoured = self.detoured.get(cell).copied().unwrap_or(false);
                let span = self.links_between(src, dst);
                let clean = !was_detoured && span.iter().all(|&l| !pf.faults.link_dead(l as usize));
                if clean {
                    links.extend_from_slice(span);
                    if faulted {
                        detoured.push(false);
                    }
                } else if faulted {
                    let (path, det) = pf.faulted_route(self.policy, from, to);
                    links.extend(path.iter().map(|l| pf.link_index(*l) as u32));
                    detoured.push(det);
                } else {
                    pf.route_visit(self.policy, from, to, |l| {
                        links.push(pf.link_index(l) as u32);
                    });
                }
                offsets.push(links.len() as u32);
            }
        }
        RouteTable {
            policy: self.policy,
            p: pf.p,
            q: pf.q,
            topology: pf.topology,
            offsets,
            links,
            dead_links: pf.faults.dead_links().to_vec(),
            detoured,
        }
    }

    /// Approximate resident size in bytes (offset and link arrays) —
    /// input to byte-bounded artifact-cache accounting.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.links.capacity() * std::mem::size_of::<u32>()
            + self.dead_links.capacity() * std::mem::size_of::<u32>()
            + self.detoured.capacity()
    }

    /// Serialises the table into a self-contained little-endian byte image
    /// for artifact-cache spill files (policy and topology travel as their
    /// dense `ALL` indices). [`RouteTable::from_bytes`] reverses it.
    pub fn to_bytes(&self) -> Vec<u8> {
        use spg::wire;
        let mut out = Vec::with_capacity(32 + self.offsets.len() * 4 + self.links.len() * 4);
        out.push(self.policy.index() as u8);
        out.push(
            crate::topology::TopologyKind::ALL
                .iter()
                .position(|&t| t == self.topology)
                .expect("shipped topology kind") as u8,
        );
        wire::put_u32(&mut out, self.p);
        wire::put_u32(&mut out, self.q);
        wire::put_u32_slice(&mut out, &self.offsets);
        wire::put_u32_slice(&mut out, &self.links);
        wire::put_u32_slice(&mut out, &self.dead_links);
        wire::put_u64(&mut out, self.detoured.len() as u64);
        out.extend(self.detoured.iter().map(|&d| d as u8));
        out
    }

    /// Decodes a byte image produced by [`RouteTable::to_bytes`],
    /// re-validating the structural invariants (offset table covering
    /// `n²+1` monotone cells ending at the link count), so corrupted spill
    /// files yield `Err` rather than a table that panics on lookup.
    pub fn from_bytes(bytes: &[u8]) -> Result<RouteTable, String> {
        use spg::wire;
        let mut pos = 0usize;
        let policy_idx = wire::take(bytes, &mut pos, 1)?[0] as usize;
        let topo_idx = wire::take(bytes, &mut pos, 1)?[0] as usize;
        let policy = *RoutePolicy::ALL
            .get(policy_idx)
            .ok_or_else(|| format!("unknown route policy index {policy_idx}"))?;
        let topology = *crate::topology::TopologyKind::ALL
            .get(topo_idx)
            .ok_or_else(|| format!("unknown topology index {topo_idx}"))?;
        let p = wire::get_u32(bytes, &mut pos)?;
        let q = wire::get_u32(bytes, &mut pos)?;
        let offsets = wire::get_u32_slice(bytes, &mut pos)?;
        let links = wire::get_u32_slice(bytes, &mut pos)?;
        let dead_links = wire::get_u32_slice(bytes, &mut pos)?;
        let n_det = wire::get_len(bytes, &mut pos, 1)?;
        let detoured: Vec<bool> = wire::take(bytes, &mut pos, n_det)?
            .iter()
            .map(|&b| b != 0)
            .collect();
        if pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after route-table image",
                bytes.len() - pos
            ));
        }
        let n = p as usize * q as usize;
        if n == 0 {
            return Err("route table for an empty grid".into());
        }
        if offsets.len() != n * n + 1
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets.last().copied().unwrap_or(0) as usize != links.len()
        {
            return Err("offset table is not a monotone cover of the link list".into());
        }
        // Healthy tables carry no detour flags at all; faulted tables flag
        // every cell.
        if !detoured.is_empty() && detoured.len() != n * n {
            return Err("detour flag count disagrees with the grid".into());
        }
        Ok(RouteTable {
            policy,
            p,
            q,
            topology,
            offsets,
            links,
            dead_links,
            detoured,
        })
    }

    /// The policy the table was built for.
    #[inline]
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Number of cores of the platform the table was built for.
    #[inline]
    pub fn n_cores(&self) -> usize {
        (self.p * self.q) as usize
    }

    /// Whether the table was built for this platform's exact shape,
    /// topology, and **link** fault set. Consumers (the evaluator, the
    /// simulator) fall back to hop-by-hop route generation when this is
    /// false — a table from a same-core-count but differently shaped
    /// platform (e.g. 4×4 vs 2×8) would silently map link indices onto
    /// the wrong physical links, and one built under other link faults
    /// would route over dead links. Core faults are deliberately not
    /// compared: routers outlive their PEs, so routes are core-fault-
    /// independent.
    #[inline]
    pub fn matches_platform(&self, pf: &Platform) -> bool {
        self.p == pf.p
            && self.q == pf.q
            && self.topology == pf.topology
            && self.dead_links == pf.faults.dead_links()
    }

    /// The packed link-index span of the route from flat core `src` to flat
    /// core `dst` (empty when `src == dst`).
    #[inline]
    pub fn links_between(&self, src: usize, dst: usize) -> &[u32] {
        let cell = src * self.n_cores() + dst;
        let lo = self.offsets[cell] as usize;
        let hi = self.offsets[cell + 1] as usize;
        &self.links[lo..hi]
    }

    /// Hop count of the route from flat core `src` to flat core `dst`.
    #[inline]
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        let cell = src * self.n_cores() + dst;
        (self.offsets[cell + 1] - self.offsets[cell]) as usize
    }

    /// Total number of stored hops over all pairs (diagnostics).
    pub fn total_hops(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::validate_route;
    use crate::topology::TopologyKind;

    fn c(u: u32, v: u32) -> CoreId {
        CoreId { u, v }
    }

    #[test]
    fn policy_names_round_trip() {
        for p in RoutePolicy::ALL {
            assert_eq!(p.name().parse::<RoutePolicy>().unwrap(), p);
            assert_eq!(RoutePolicy::ALL[p.index()], p);
        }
        assert!("spiral".parse::<RoutePolicy>().is_err());
    }

    #[test]
    fn route_table_byte_image_round_trips_exactly() {
        // Cover every policy, a non-mesh topology, and a link-faulted
        // platform (dead links + detour flags populated).
        let platforms = [
            Platform::paper(4, 4),
            Platform::paper_topology(TopologyKind::Torus, 3, 4),
            Platform::paper(3, 3).with_link_fault(c(0, 0), c(0, 1)),
        ];
        for pf in &platforms {
            for policy in RoutePolicy::ALL {
                let table = RouteTable::build(pf, policy);
                let bytes = table.to_bytes();
                let back = RouteTable::from_bytes(&bytes).unwrap();
                assert_eq!(back.policy(), table.policy());
                assert_eq!(back.matches_platform(pf), table.matches_platform(pf));
                for s in 0..table.n_cores() {
                    for d in 0..table.n_cores() {
                        assert_eq!(back.links_between(s, d), table.links_between(s, d));
                    }
                }
                assert_eq!(back.detoured, table.detoured);
                assert_eq!(back.to_bytes(), bytes);
            }
        }
    }

    #[test]
    fn corrupt_route_table_images_are_rejected() {
        let bytes = RouteTable::build(&Platform::paper(2, 2), RoutePolicy::Xy).to_bytes();
        for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(RouteTable::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut bad_policy = bytes.clone();
        bad_policy[0] = 9;
        assert!(RouteTable::from_bytes(&bad_policy).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(RouteTable::from_bytes(&padded).is_err());
    }

    #[test]
    fn shortest_equals_xy_on_mesh() {
        let pf = Platform::paper(4, 5);
        let xy = DimOrderedRouter {
            order: RouteOrder::RowFirst,
        };
        let sp = ShortestRouter { topo: pf.topo() };
        for a in 0..pf.n_cores() {
            for b in 0..pf.n_cores() {
                let (ca, cb) = (CoreId::from_flat(a, pf.q), CoreId::from_flat(b, pf.q));
                assert_eq!(sp.route(ca, cb), xy.route(ca, cb), "{ca:?}->{cb:?}");
            }
        }
    }

    #[test]
    fn shortest_takes_wrap_links_on_torus() {
        let pf = Platform::paper_topology(TopologyKind::Torus, 4, 4);
        let sp = ShortestRouter { topo: pf.topo() };
        // (0,0) -> (0,3): one wrap hop west instead of three east.
        let r = sp.route(c(0, 0), c(0, 3));
        assert_eq!(r.len(), 1);
        assert_eq!(
            r[0],
            DirLink {
                from: c(0, 0),
                to: c(0, 3)
            }
        );
        // (0,0) -> (3,3): wrap in both dimensions.
        let r = sp.route(c(0, 0), c(3, 3));
        assert_eq!(r.len(), 2);
        validate_route(&pf, c(0, 0), c(3, 3), &r).unwrap();
        // Ties (distance exactly q/2) break toward the mesh direction.
        let r = sp.route(c(0, 0), c(0, 2));
        assert_eq!(r[0].to, c(0, 1));
    }

    #[test]
    fn shortest_route_length_is_topology_distance() {
        for pf in [
            Platform::paper(3, 4),
            Platform::paper_topology(TopologyKind::Torus, 3, 4),
            Platform::paper_topology(TopologyKind::Torus, 5, 5),
            Platform::paper_topology(TopologyKind::Ring, 1, 7),
        ] {
            let sp = ShortestRouter { topo: pf.topo() };
            for a in 0..pf.n_cores() {
                for b in 0..pf.n_cores() {
                    let (ca, cb) = (CoreId::from_flat(a, pf.q), CoreId::from_flat(b, pf.q));
                    let r = sp.route(ca, cb);
                    assert_eq!(r.len() as u32, pf.distance(ca, cb), "{ca:?}->{cb:?}");
                    validate_route(&pf, ca, cb, &r).unwrap();
                }
            }
        }
    }

    #[test]
    fn route_table_matches_visitors() {
        for pf in [
            Platform::paper(3, 3),
            Platform::paper_topology(TopologyKind::Torus, 3, 3),
            Platform::paper_topology(TopologyKind::Ring, 1, 6),
        ] {
            for policy in RoutePolicy::ALL {
                let table = RouteTable::build(&pf, policy);
                assert_eq!(table.policy(), policy);
                for src in 0..pf.n_cores() {
                    for dst in 0..pf.n_cores() {
                        let (ca, cb) = (CoreId::from_flat(src, pf.q), CoreId::from_flat(dst, pf.q));
                        let mut direct = Vec::new();
                        pf.route_visit(policy, ca, cb, |l| direct.push(pf.link_index(l) as u32));
                        assert_eq!(table.links_between(src, dst), direct.as_slice());
                        assert_eq!(table.hops(src, dst), direct.len());
                    }
                }
            }
        }
    }

    #[test]
    fn link_fault_detours_are_valid_shortest_alive_paths() {
        let pf = Platform::paper(3, 3).with_link_fault(c(0, 0), c(0, 1));
        for policy in RoutePolicy::ALL {
            for src in 0..pf.n_cores() {
                for dst in 0..pf.n_cores() {
                    let (ca, cb) = (CoreId::from_flat(src, pf.q), CoreId::from_flat(dst, pf.q));
                    let mut path = Vec::new();
                    pf.route_visit(policy, ca, cb, |l| path.push(l));
                    validate_route(&pf, ca, cb, &path).unwrap();
                    assert!(path.iter().all(|l| pf.link_alive(*l)), "{ca:?}->{cb:?}");
                }
            }
        }
        // The broken pair itself detours: one dead mesh link costs a
        // 2-extra-hop dogleg.
        let mut hops = 0;
        pf.route_visit(RoutePolicy::Xy, c(0, 0), c(0, 1), |_| hops += 1);
        assert_eq!(hops, 3);
    }

    #[test]
    fn unreachable_pair_emits_no_hops() {
        // Sever core (0,0) of a 1x2 ring-free mesh entirely.
        let pf = Platform::paper(1, 2).with_link_fault(c(0, 0), c(0, 1));
        let mut hops = 0;
        pf.route_visit(RoutePolicy::Xy, c(0, 0), c(0, 1), |_| hops += 1);
        assert_eq!(hops, 0);
    }

    #[test]
    fn core_faults_leave_routes_and_tables_untouched() {
        let pf = Platform::paper(3, 3);
        let hurt = pf.with_core_fault(c(1, 1));
        for policy in RoutePolicy::ALL {
            let clean = RouteTable::build(&pf, policy);
            let faulted = RouteTable::build(&hurt, policy);
            assert_eq!(clean, faulted);
            assert!(clean.matches_platform(&hurt));
        }
    }

    #[test]
    fn patched_table_is_bit_identical_to_cold_build() {
        let base = Platform::paper(3, 3);
        let f1 = base.with_link_fault(c(0, 0), c(0, 1));
        let f2 = f1.with_link_fault(c(1, 1), c(2, 1));
        for policy in RoutePolicy::ALL {
            let t_base = RouteTable::build(&base, policy);
            // Healthy -> faulted, faulted -> more faulted, faulted -> healed.
            for (from_tab, to_pf) in [
                (&t_base, &f1),
                (&RouteTable::build(&f1, policy), &f2),
                (&RouteTable::build(&f2, policy), &base),
            ] {
                let patched = from_tab.patched(to_pf);
                let cold = RouteTable::build(to_pf, policy);
                assert_eq!(patched, cold, "{policy:?}");
                assert!(patched.matches_platform(to_pf));
                assert!(!from_tab.matches_platform(to_pf));
            }
        }
    }
}
