//! Pluggable interconnect topologies.
//!
//! The paper evaluates exactly one platform shape — a rectangular mesh with
//! XY routing — but interconnect topology is a first-class experimental
//! axis. This module abstracts it behind the [`Topology`] trait: core
//! enumeration, neighbour stepping, and dense directed-link indexing. Three
//! backends ship today:
//!
//! * [`Mesh2D`] — the paper's `p × q` grid (§3.2), bidirectional
//!   neighbour links, no wrap-around;
//! * [`Torus2D`] — the same grid plus wrap-around links closing each row
//!   and column into a cycle (wrap is only materialised for dimensions of
//!   size ≥ 3, where it adds a genuinely new link);
//! * [`Ring`] — a one-dimensional cycle of `r` cores (a `1 × r` grid with
//!   the column dimension closed).
//!
//! All three share the grid coordinate system ([`CoreId`]) and the dense
//! 4-slots-per-core link indexing (east, west, south, north), so everything
//! above the platform layer — mapping evaluation, the DP solvers, the
//! stream simulator — stays topology-generic: routes are just sequences of
//! link indices, whatever shape the interconnect has.

use crate::grid::CoreId;

/// A directed link between two *adjacent* cores (adjacency as defined by
/// the platform's topology — wrap links are adjacent on torus and ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DirLink {
    /// Transmitting core.
    pub from: CoreId,
    /// Receiving core (topology neighbour of `from`).
    pub to: CoreId,
}

/// Link direction slots, in dense-index order.
pub(crate) const DIR_EAST: usize = 0;
pub(crate) const DIR_WEST: usize = 1;
pub(crate) const DIR_SOUTH: usize = 2;
pub(crate) const DIR_NORTH: usize = 3;

/// The shipped topology backends, as a plain tag (the field stored on a
/// [`crate::Platform`]; [`TopoBackend`] is the corresponding implementation
/// carrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TopologyKind {
    /// Rectangular `p × q` mesh — the paper's platform.
    #[default]
    Mesh,
    /// `p × q` torus: mesh plus row/column wrap links.
    Torus,
    /// One-dimensional ring of `r` cores.
    Ring,
}

impl TopologyKind {
    /// All shipped backends, in CLI/documentation order.
    pub const ALL: [TopologyKind; 3] =
        [TopologyKind::Mesh, TopologyKind::Torus, TopologyKind::Ring];

    /// Lower-case CLI name (`mesh` / `torus` / `ring`).
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
            TopologyKind::Ring => "ring",
        }
    }
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for TopologyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mesh" | "grid" => Ok(TopologyKind::Mesh),
            "torus" => Ok(TopologyKind::Torus),
            "ring" => Ok(TopologyKind::Ring),
            other => Err(format!(
                "unknown topology '{other}' (expected mesh, torus, or ring)"
            )),
        }
    }
}

/// An interconnect shape: a `rows × cols` grid of cores with per-dimension
/// wrap flags, neighbour stepping, and dense directed-link indexing.
///
/// All methods except the four shape accessors have generic default
/// implementations, so a backend only declares its dimensions and which
/// dimensions wrap. The dense link indexing reserves 4 slots per core
/// (east, west, south, north); slots that the topology does not own (mesh
/// borders, the row directions of a ring) simply stay unused, keeping
/// [`Topology::link_index`] a constant-time arithmetic map for every
/// backend.
pub trait Topology {
    /// Which backend this is.
    fn kind(&self) -> TopologyKind;
    /// Number of grid rows `p`.
    fn rows(&self) -> u32;
    /// Number of grid columns `q`.
    fn cols(&self) -> u32;
    /// Whether the row dimension wraps (column `q-1` links to column `0`).
    fn wrap_cols(&self) -> bool;
    /// Whether the column dimension wraps (row `p-1` links to row `0`).
    fn wrap_rows(&self) -> bool;

    /// Total number of cores.
    #[inline]
    fn n_cores(&self) -> usize {
        (self.rows() * self.cols()) as usize
    }

    /// Whether a coordinate lies on the grid.
    #[inline]
    fn contains(&self, c: CoreId) -> bool {
        c.u < self.rows() && c.v < self.cols()
    }

    /// The neighbour of `c` in link-direction `dir` (east/west/south/north),
    /// honouring wrap links; `None` when the topology has no link there.
    fn step(&self, c: CoreId, dir: usize) -> Option<CoreId> {
        debug_assert!(self.contains(c));
        let (p, q) = (self.rows(), self.cols());
        match dir {
            DIR_EAST => {
                if c.v + 1 < q {
                    Some(CoreId { u: c.u, v: c.v + 1 })
                } else if self.wrap_cols() {
                    Some(CoreId { u: c.u, v: 0 })
                } else {
                    None
                }
            }
            DIR_WEST => {
                if c.v > 0 {
                    Some(CoreId { u: c.u, v: c.v - 1 })
                } else if self.wrap_cols() {
                    Some(CoreId { u: c.u, v: q - 1 })
                } else {
                    None
                }
            }
            DIR_SOUTH => {
                if c.u + 1 < p {
                    Some(CoreId { u: c.u + 1, v: c.v })
                } else if self.wrap_rows() {
                    Some(CoreId { u: 0, v: c.v })
                } else {
                    None
                }
            }
            DIR_NORTH => {
                if c.u > 0 {
                    Some(CoreId { u: c.u - 1, v: c.v })
                } else if self.wrap_rows() {
                    Some(CoreId { u: p - 1, v: c.v })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The direction slot of a directed link, or `None` when the topology
    /// owns no such link. Wrap needs dimension size ≥ 3, so non-wrap and
    /// wrap classifications never collide.
    fn dir_of(&self, l: DirLink) -> Option<usize> {
        if !self.contains(l.from) || !self.contains(l.to) || l.from == l.to {
            return None;
        }
        let (p, q) = (self.rows(), self.cols());
        if l.from.u == l.to.u {
            if l.to.v == l.from.v + 1 || (self.wrap_cols() && l.from.v == q - 1 && l.to.v == 0) {
                return Some(DIR_EAST);
            }
            if l.from.v == l.to.v + 1 || (self.wrap_cols() && l.to.v == q - 1 && l.from.v == 0) {
                return Some(DIR_WEST);
            }
        } else if l.from.v == l.to.v {
            if l.to.u == l.from.u + 1 || (self.wrap_rows() && l.from.u == p - 1 && l.to.u == 0) {
                return Some(DIR_SOUTH);
            }
            if l.from.u == l.to.u + 1 || (self.wrap_rows() && l.to.u == p - 1 && l.from.u == 0) {
                return Some(DIR_NORTH);
            }
        }
        None
    }

    /// Number of dense directed-link index slots: 4 per core. Border slots
    /// of non-wrapping dimensions are simply unused.
    #[inline]
    fn n_link_slots(&self) -> usize {
        self.n_cores() * 4
    }

    /// Dense index of a directed link, or `None` when the topology owns no
    /// such link.
    #[inline]
    fn link_index(&self, l: DirLink) -> Option<usize> {
        self.dir_of(l).map(|dir| l.from.flat(self.cols()) * 4 + dir)
    }

    /// Inverse of [`Topology::link_index`]; `None` for unused slots.
    fn link_from_index(&self, idx: usize) -> Option<DirLink> {
        if idx >= self.n_link_slots() {
            return None;
        }
        let from = CoreId::from_flat(idx / 4, self.cols());
        let to = self.step(from, idx % 4)?;
        Some(DirLink { from, to })
    }

    /// Whether the topology owns a directed link from `from` to `to`.
    #[inline]
    fn has_link(&self, from: CoreId, to: CoreId) -> bool {
        self.dir_of(DirLink { from, to }).is_some()
    }

    /// Calls `f` on each neighbour of `c`, in direction-slot order
    /// (east, west, south, north). Allocation-free.
    fn for_each_neighbour(&self, c: CoreId, f: &mut dyn FnMut(CoreId)) {
        for dir in 0..4 {
            if let Some(n) = self.step(c, dir) {
                f(n);
            }
        }
    }

    /// Number of neighbours of `c` (2–4 depending on borders and wrap).
    fn degree(&self, c: CoreId) -> usize {
        (0..4).filter(|&d| self.step(c, d).is_some()).count()
    }

    /// Minimal hop distance between two cores, wrap-aware (reduces to the
    /// Manhattan distance on the mesh).
    fn distance(&self, a: CoreId, b: CoreId) -> u32 {
        dim_dist(a.u, b.u, self.rows(), self.wrap_rows())
            + dim_dist(a.v, b.v, self.cols(), self.wrap_cols())
    }
}

/// Per-dimension minimal hop distance, with optional wrap-around.
#[inline]
pub(crate) fn dim_dist(a: u32, b: u32, size: u32, wrap: bool) -> u32 {
    let d = a.abs_diff(b);
    if wrap {
        d.min(size - d)
    } else {
        d
    }
}

/// The paper's `p × q` mesh: bidirectional neighbour links, no wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh2D {
    /// Rows.
    pub p: u32,
    /// Columns.
    pub q: u32,
}

impl Topology for Mesh2D {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Mesh
    }
    fn rows(&self) -> u32 {
        self.p
    }
    fn cols(&self) -> u32 {
        self.q
    }
    fn wrap_cols(&self) -> bool {
        false
    }
    fn wrap_rows(&self) -> bool {
        false
    }
}

/// A `p × q` torus: the mesh plus wrap links closing every row and column.
/// Wrap is only materialised for dimensions of size ≥ 3 — on a size-2
/// dimension the wrap link would duplicate the existing mesh link (and on
/// size 1 it would be a self-loop), so smaller tori degrade gracefully to
/// the mesh in that dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus2D {
    /// Rows.
    pub p: u32,
    /// Columns.
    pub q: u32,
}

impl Topology for Torus2D {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Torus
    }
    fn rows(&self) -> u32 {
        self.p
    }
    fn cols(&self) -> u32 {
        self.q
    }
    fn wrap_cols(&self) -> bool {
        self.q >= 3
    }
    fn wrap_rows(&self) -> bool {
        self.p >= 3
    }
}

/// A bidirectional ring of `r` cores: a `1 × r` grid with the column
/// dimension closed (for `r ≥ 3`; smaller rings degrade to a path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring {
    /// Number of cores.
    pub r: u32,
}

impl Topology for Ring {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Ring
    }
    fn rows(&self) -> u32 {
        1
    }
    fn cols(&self) -> u32 {
        self.r
    }
    fn wrap_cols(&self) -> bool {
        self.r >= 3
    }
    fn wrap_rows(&self) -> bool {
        false
    }
}

/// The backend carrier a [`crate::Platform`] dispatches through: a cheap
/// `Copy` enum over the shipped [`Topology`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoBackend {
    /// [`Mesh2D`].
    Mesh(Mesh2D),
    /// [`Torus2D`].
    Torus(Torus2D),
    /// [`Ring`].
    Ring(Ring),
}

impl TopoBackend {
    /// The backend for a kind on a `p × q` grid.
    ///
    /// # Panics
    /// A [`TopologyKind::Ring`] has no second dimension, so it requires
    /// `p == 1` — otherwise the grid's `u·q + v` flat addressing and the
    /// ring's would disagree. [`crate::Platform::paper_topology`] flattens
    /// a `p × q` request to a `1 × p·q` ring before getting here; a
    /// hand-rolled `Platform` literal with `topology: Ring` and `p > 1`
    /// fails fast instead of mis-indexing links.
    pub fn new(kind: TopologyKind, p: u32, q: u32) -> TopoBackend {
        assert!(p >= 1 && q >= 1);
        match kind {
            TopologyKind::Mesh => TopoBackend::Mesh(Mesh2D { p, q }),
            TopologyKind::Torus => TopoBackend::Torus(Torus2D { p, q }),
            TopologyKind::Ring => {
                assert_eq!(
                    p, 1,
                    "a ring platform needs p == 1 (Platform::paper_topology flattens the grid)"
                );
                TopoBackend::Ring(Ring { r: q })
            }
        }
    }
}

macro_rules! delegate {
    ($self:ident, $t:ident => $e:expr) => {
        match $self {
            TopoBackend::Mesh($t) => $e,
            TopoBackend::Torus($t) => $e,
            TopoBackend::Ring($t) => $e,
        }
    };
}

impl Topology for TopoBackend {
    fn kind(&self) -> TopologyKind {
        delegate!(self, t => t.kind())
    }
    fn rows(&self) -> u32 {
        delegate!(self, t => t.rows())
    }
    fn cols(&self) -> u32 {
        delegate!(self, t => t.cols())
    }
    fn wrap_cols(&self) -> bool {
        delegate!(self, t => t.wrap_cols())
    }
    fn wrap_rows(&self) -> bool {
        delegate!(self, t => t.wrap_rows())
    }
}

/// Allocation-free neighbour iterator (see [`crate::Platform::neighbours`]).
#[derive(Debug, Clone)]
pub struct Neighbours {
    topo: TopoBackend,
    c: CoreId,
    dir: usize,
}

impl Neighbours {
    /// The neighbours of `c` under `topo`, in direction-slot order.
    pub fn new(topo: TopoBackend, c: CoreId) -> Neighbours {
        Neighbours { topo, c, dir: 0 }
    }
}

impl Iterator for Neighbours {
    type Item = CoreId;

    fn next(&mut self) -> Option<CoreId> {
        while self.dir < 4 {
            let d = self.dir;
            self.dir += 1;
            if let Some(n) = self.topo.step(self.c, d) {
                return Some(n);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(u: u32, v: u32) -> CoreId {
        CoreId { u, v }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in TopologyKind::ALL {
            assert_eq!(kind.name().parse::<TopologyKind>().unwrap(), kind);
        }
        assert!("hypercube".parse::<TopologyKind>().is_err());
    }

    #[test]
    fn mesh_degrees_match_borders() {
        let m = Mesh2D { p: 3, q: 3 };
        assert_eq!(m.degree(c(0, 0)), 2);
        assert_eq!(m.degree(c(0, 1)), 3);
        assert_eq!(m.degree(c(1, 1)), 4);
    }

    #[test]
    fn torus_is_4_regular() {
        let t = Torus2D { p: 3, q: 4 };
        for u in 0..3 {
            for v in 0..4 {
                assert_eq!(t.degree(c(u, v)), 4, "({u},{v})");
            }
        }
        // Wrap steps land on the opposite border.
        assert_eq!(t.step(c(0, 3), DIR_EAST), Some(c(0, 0)));
        assert_eq!(t.step(c(0, 0), DIR_WEST), Some(c(0, 3)));
        assert_eq!(t.step(c(2, 1), DIR_SOUTH), Some(c(0, 1)));
        assert_eq!(t.step(c(0, 1), DIR_NORTH), Some(c(2, 1)));
    }

    #[test]
    fn small_torus_degrades_to_mesh() {
        // Size-2 dimensions get no wrap links (they would duplicate the
        // mesh link); the 2x2 torus is exactly the 2x2 mesh.
        let t = Torus2D { p: 2, q: 2 };
        let m = Mesh2D { p: 2, q: 2 };
        for u in 0..2 {
            for v in 0..2 {
                for d in 0..4 {
                    assert_eq!(t.step(c(u, v), d), m.step(c(u, v), d));
                }
            }
        }
    }

    #[test]
    fn ring_wraps_both_ways() {
        let r = Ring { r: 5 };
        assert_eq!(r.degree(c(0, 0)), 2);
        assert_eq!(r.step(c(0, 4), DIR_EAST), Some(c(0, 0)));
        assert_eq!(r.step(c(0, 0), DIR_WEST), Some(c(0, 4)));
        assert_eq!(r.step(c(0, 0), DIR_SOUTH), None);
        assert_eq!(r.distance(c(0, 0), c(0, 4)), 1);
        assert_eq!(r.distance(c(0, 0), c(0, 2)), 2);
    }

    #[test]
    fn link_index_roundtrip_all_backends() {
        let backends = [
            TopoBackend::new(TopologyKind::Mesh, 3, 4),
            TopoBackend::new(TopologyKind::Torus, 3, 4),
            TopoBackend::new(TopologyKind::Ring, 1, 6),
        ];
        for topo in backends {
            let mut seen = std::collections::HashSet::new();
            let mut n_links = 0usize;
            for idx in 0..topo.n_link_slots() {
                let Some(l) = topo.link_from_index(idx) else {
                    continue;
                };
                n_links += 1;
                assert_eq!(topo.link_index(l), Some(idx), "{topo:?} {l:?}");
                assert!(seen.insert(idx), "slot collision {topo:?} {idx}");
                assert!(topo.has_link(l.from, l.to));
            }
            // Sum of degrees = number of directed links.
            let degree_sum: usize = (0..topo.n_cores())
                .map(|f| topo.degree(CoreId::from_flat(f, topo.cols())))
                .sum();
            assert_eq!(n_links, degree_sum, "{topo:?}");
        }
    }

    #[test]
    fn torus_wrap_links_classified() {
        let t = Torus2D { p: 4, q: 4 };
        let wrap_e = DirLink {
            from: c(1, 3),
            to: c(1, 0),
        };
        assert_eq!(t.dir_of(wrap_e), Some(DIR_EAST));
        let wrap_n = DirLink {
            from: c(0, 2),
            to: c(3, 2),
        };
        assert_eq!(t.dir_of(wrap_n), Some(DIR_NORTH));
        // The mesh owns neither.
        let m = Mesh2D { p: 4, q: 4 };
        assert_eq!(m.dir_of(wrap_e), None);
        assert_eq!(m.dir_of(wrap_n), None);
    }

    #[test]
    fn torus_distance_never_exceeds_mesh() {
        let t = Torus2D { p: 4, q: 5 };
        let m = Mesh2D { p: 4, q: 5 };
        for a in 0..t.n_cores() {
            for b in 0..t.n_cores() {
                let (ca, cb) = (CoreId::from_flat(a, 5), CoreId::from_flat(b, 5));
                assert!(t.distance(ca, cb) <= m.distance(ca, cb));
                assert_eq!(m.distance(ca, cb), ca.manhattan(cb));
            }
        }
    }

    #[test]
    fn neighbours_iterator_matches_visitor() {
        for topo in [
            TopoBackend::new(TopologyKind::Mesh, 3, 3),
            TopoBackend::new(TopologyKind::Torus, 3, 3),
            TopoBackend::new(TopologyKind::Ring, 1, 4),
        ] {
            for f in 0..topo.n_cores() {
                let core = CoreId::from_flat(f, topo.cols());
                let iter: Vec<CoreId> = Neighbours::new(topo, core).collect();
                let mut visited = Vec::new();
                topo.for_each_neighbour(core, &mut |n| visited.push(n));
                assert_eq!(iter, visited);
                assert_eq!(iter.len(), topo.degree(core));
            }
        }
    }
}
