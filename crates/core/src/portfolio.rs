//! The solver portfolio: run a set of [`Solver`]s against one
//! [`Instance`], optionally in parallel, and report per-solver energies,
//! failures, and wall times.
//!
//! This is the paper's experimental protocol (all five heuristics per
//! instance, keep the best) promoted to a first-class API. The instance's
//! shared precomputation (interned ideal lattice, speed-feasibility table,
//! snake/topological orders) is computed once per instance, not once per
//! portfolio member.
//!
//! Determinism: each solver receives a seed mixed from the portfolio seed
//! and the solver's *name*, so a report depends only on `(instance, solver
//! set, seed)` — never on thread count or scheduling (the parallel fan-out
//! preserves solver order).

use std::sync::Arc;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use crate::common::{Failure, Solution};
use crate::instance::Instance;
use crate::solver::{SolveCtx, Solver};

/// What the portfolio is racing for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Race {
    /// Run every solver; the winner is the lowest energy (the paper's
    /// protocol).
    #[default]
    BestEnergy,
    /// The winner is the first solver *in portfolio order* to find any
    /// valid mapping. Sequential runs stop at the first success (the §6.1.3
    /// probe's short-circuit); parallel runs still execute the whole set
    /// but pick the same winner, so the outcome is mode-independent.
    FirstFeasible,
}

/// One solver's outcome within a portfolio run.
pub struct SolverRun {
    /// The solver's [`Solver::name`].
    pub name: String,
    /// The seed the solver was called with (mixed per name).
    pub seed: u64,
    /// The solution or failure.
    pub result: Result<Solution, Failure>,
    /// Wall time of this solver's `solve` call.
    pub wall: Duration,
}

impl SolverRun {
    /// The energy if the solver succeeded.
    pub fn energy(&self) -> Option<f64> {
        self.result.as_ref().ok().map(Solution::energy)
    }
}

/// The outcome of [`Portfolio::run`].
pub struct PortfolioReport {
    /// Per-solver outcomes, in portfolio order. Under
    /// [`Race::FirstFeasible`] in sequential mode, solvers after the first
    /// success are not attempted and have no entry.
    pub runs: Vec<SolverRun>,
    /// Index into `runs` of the winner (by the race rule), if any solver
    /// succeeded.
    pub best: Option<usize>,
    /// Wall time of the whole portfolio run.
    pub wall: Duration,
}

impl PortfolioReport {
    /// The winning run, if any solver succeeded.
    pub fn best_run(&self) -> Option<&SolverRun> {
        self.best.map(|i| &self.runs[i])
    }

    /// The winning solution.
    pub fn best_solution(&self) -> Option<&Solution> {
        self.best_run().and_then(|r| r.result.as_ref().ok())
    }

    /// The winning energy.
    pub fn best_energy(&self) -> Option<f64> {
        self.best_run().and_then(SolverRun::energy)
    }
}

/// Mixes the portfolio seed with a solver name (FNV-1a over the name), so
/// each solver draws decorrelated randomness yet reruns reproduce exactly.
fn solver_seed(base: u64, name: &str) -> u64 {
    let h = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    });
    base ^ h
}

/// A configured portfolio of solvers (builder-style).
///
/// ```
/// use ea_core::{Instance, Portfolio};
/// use cmp_platform::Platform;
///
/// let inst = Instance::new(spg::chain(&[1e8; 4], &[1e3; 3]), Platform::paper(2, 2), 1.0);
/// let report = Portfolio::heuristics().seeded(2011).run(&inst);
/// assert!(report.best_energy().is_some());
/// ```
pub struct Portfolio {
    solvers: Vec<Arc<dyn Solver>>,
    parallel: bool,
    race: Race,
    seed: u64,
    budget: Option<Duration>,
    anytime: bool,
}

impl Portfolio {
    /// A portfolio over an explicit solver set (kept in the given order).
    pub fn new(solvers: Vec<Arc<dyn Solver>>) -> Self {
        Portfolio {
            solvers,
            parallel: true,
            race: Race::BestEnergy,
            seed: 0,
            budget: None,
            anytime: false,
        }
    }

    /// The paper's portfolio: the five §5 heuristics in plot order.
    pub fn heuristics() -> Self {
        Portfolio::new(crate::solvers::default_heuristics())
    }

    /// Sets the base seed (mixed per solver name).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the rayon fan-out (on by default). Under
    /// [`Race::BestEnergy`] the report is identical either way (only wall
    /// times vary); under [`Race::FirstFeasible`] the *winner* is
    /// mode-independent, but sequential mode stops at the first success,
    /// so `runs` only contains the solvers attempted up to and including
    /// the winner.
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// Sets the race rule.
    pub fn race(mut self, race: Race) -> Self {
        self.race = race;
        self
    }

    /// Caps the wall-clock budget: solvers whose turn starts after the
    /// deadline fail with [`Failure::TooExpensive`] instead of searching
    /// (coarse-grained — see [`SolveCtx`]).
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Enables anytime mode: when every solver fails and at least one hit
    /// a budget ([`Failure::TooExpensive`]), the portfolio appends one
    /// un-budgeted `Greedy` rescue run (named `"Anytime(Greedy)"`) and
    /// certifies its energy with a [`crate::PruneStats::bound_gap`]
    /// against [`Instance::energy_lower_bound`] — the caller gets a
    /// mapping plus a bracket on the optimum instead of a bare failure.
    pub fn anytime(mut self, yes: bool) -> Self {
        self.anytime = yes;
        self
    }

    /// The solver set, in portfolio order.
    pub fn solvers(&self) -> &[Arc<dyn Solver>] {
        &self.solvers
    }

    /// The solver names, in portfolio order.
    pub fn solver_names(&self) -> Vec<String> {
        self.solvers.iter().map(|s| s.name().to_string()).collect()
    }

    /// Runs the portfolio on one instance.
    pub fn run(&self, inst: &Instance) -> PortfolioReport {
        let started = Instant::now();
        let deadline = self.budget.and_then(|b| started.checked_add(b));
        let run_one = |s: &Arc<dyn Solver>| -> SolverRun {
            let seed = solver_seed(self.seed, s.name());
            let ctx = SolveCtx {
                seed,
                deadline,
                anytime: self.anytime,
            };
            let t0 = Instant::now();
            let result = s.solve(inst, &ctx);
            SolverRun {
                name: s.name().to_string(),
                seed,
                result,
                wall: t0.elapsed(),
            }
        };

        let runs: Vec<SolverRun> = if self.race == Race::FirstFeasible && !self.parallel {
            // Short-circuit: stop at the first success.
            let mut runs = Vec::new();
            for s in &self.solvers {
                let r = run_one(s);
                let done = r.result.is_ok();
                runs.push(r);
                if done {
                    break;
                }
            }
            runs
        } else if self.parallel && self.solvers.len() > 1 && rayon::current_num_threads() > 1 {
            // With one worker the fan-out would only add dispatch overhead
            // and buffer shuffling; the plain loop is strictly better.
            self.solvers.par_iter().map(run_one).collect()
        } else {
            self.solvers.iter().map(run_one).collect()
        };

        self.finish_runs(inst, runs, started)
    }

    /// Runs several `(portfolio, instance)` jobs as **one** fan-out wave:
    /// every `(job, solver)` pair becomes one task in a single
    /// `par_iter`, so a batch of k requests saturates the worker pool
    /// instead of launching k competing fan-outs (the serve scheduler's
    /// whole point — see [`crate::serve::scheduler`]).
    ///
    /// Each job's report is **identical to what its own
    /// [`Portfolio::run`] would produce** (same per-solver seeds, same
    /// anytime-rescue and winner rules — the tail is literally shared
    /// code), with two deliberate deviations that cannot move energies:
    /// wall times reflect the batch, and every job's deadline anchors at
    /// the batch start rather than its own `run` call (callers that care
    /// pre-anchor the budget at request arrival).
    ///
    /// [`Race::FirstFeasible`]'s sequential short-circuit does not apply
    /// — all solvers run, as in any parallel mode, and the winner is
    /// unchanged.
    pub fn run_batch(jobs: &[(&Portfolio, &Instance)]) -> Vec<PortfolioReport> {
        let started = Instant::now();
        let deadlines: Vec<Option<Instant>> = jobs
            .iter()
            .map(|(p, _)| p.budget.and_then(|b| started.checked_add(b)))
            .collect();
        // Flatten to (job, solver) pairs; par_iter preserves input order,
        // so regrouping by job index restores portfolio order exactly.
        let tasks: Vec<(usize, usize)> = jobs
            .iter()
            .enumerate()
            .flat_map(|(j, (p, _))| (0..p.solvers.len()).map(move |s| (j, s)))
            .collect();
        let run_one = |&(j, s): &(usize, usize)| -> (usize, SolverRun) {
            let (p, inst) = jobs[j];
            let solver = &p.solvers[s];
            let seed = solver_seed(p.seed, solver.name());
            let ctx = SolveCtx {
                seed,
                deadline: deadlines[j],
                anytime: p.anytime,
            };
            let t0 = Instant::now();
            let result = solver.solve(inst, &ctx);
            (
                j,
                SolverRun {
                    name: solver.name().to_string(),
                    seed,
                    result,
                    wall: t0.elapsed(),
                },
            )
        };
        let parallel = jobs.iter().any(|(p, _)| p.parallel)
            && tasks.len() > 1
            && rayon::current_num_threads() > 1;
        let flat: Vec<(usize, SolverRun)> = if parallel {
            tasks.par_iter().map(run_one).collect()
        } else {
            tasks.iter().map(run_one).collect()
        };
        let mut per_job: Vec<Vec<SolverRun>> = jobs.iter().map(|_| Vec::new()).collect();
        for (j, run) in flat {
            per_job[j].push(run);
        }
        jobs.iter()
            .zip(per_job)
            .map(|((p, inst), runs)| p.finish_runs(inst, runs, started))
            .collect()
    }

    /// The shared tail of [`Portfolio::run`] and [`Portfolio::run_batch`]:
    /// anytime rescue, winner selection, report assembly. Keeping this in
    /// one place is what makes batched reports bit-identical to unbatched
    /// ones.
    fn finish_runs(
        &self,
        inst: &Instance,
        mut runs: Vec<SolverRun>,
        started: Instant,
    ) -> PortfolioReport {
        let starved = runs.iter().all(|r| r.result.is_err())
            && runs
                .iter()
                .any(|r| matches!(r.result, Err(Failure::TooExpensive(_))));
        if self.anytime && starved {
            runs.push(self.anytime_rescue(inst));
        }

        let best = match self.race {
            Race::BestEnergy => runs
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.energy().map(|e| (i, e)))
                .min_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i),
            Race::FirstFeasible => runs.iter().position(|r| r.result.is_ok()),
        };
        PortfolioReport {
            runs,
            best,
            wall: started.elapsed(),
        }
    }

    /// The anytime rescue run: un-budgeted `Greedy`, with the gap to the
    /// instance's certified energy lower bound stamped as `bound_gap`
    /// (`E_rescue − bound_gap ≤ E_opt ≤ E_rescue`).
    fn anytime_rescue(&self, inst: &Instance) -> SolverRun {
        use crate::common::PruneStats;
        let name = "Anytime(Greedy)";
        let seed = solver_seed(self.seed, name);
        let ctx = SolveCtx {
            seed,
            anytime: true,
            ..Default::default()
        };
        let t0 = Instant::now();
        let mut result = crate::solvers::Greedy::default().solve(inst, &ctx);
        if let Ok(sol) = &mut result {
            let gap = (sol.energy() - inst.energy_lower_bound()).max(0.0);
            sol.prune = Some(PruneStats {
                bound_gap: gap,
                ..Default::default()
            });
        }
        SolverRun {
            name: name.to_string(),
            seed,
            result,
            wall: t0.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_platform::Platform;
    use spg::chain;

    fn inst() -> Instance {
        Instance::new(chain(&[2e8; 8], &[5e4; 7]), Platform::paper(4, 4), 0.5)
    }

    /// The per-solver comparison key for determinism checks: name, seed,
    /// and energy-or-failure (wall times legitimately vary).
    fn signature(report: &PortfolioReport) -> Vec<(String, u64, Result<f64, String>)> {
        report
            .runs
            .iter()
            .map(|r| {
                (
                    r.name.clone(),
                    r.seed,
                    r.result
                        .as_ref()
                        .map(Solution::energy)
                        .map_err(|e| e.to_string()),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let i = inst();
        let par = Portfolio::heuristics().seeded(7).run(&i);
        let seq = Portfolio::heuristics().seeded(7).parallel(false).run(&i);
        assert_eq!(signature(&par), signature(&seq));
        assert_eq!(par.best, seq.best);
        assert!(par.best_energy().unwrap() > 0.0);
    }

    #[test]
    fn best_is_min_energy() {
        let report = Portfolio::heuristics().seeded(1).run(&inst());
        let min = report
            .runs
            .iter()
            .filter_map(SolverRun::energy)
            .min_by(|a, b| a.total_cmp(b))
            .unwrap();
        assert_eq!(report.best_energy().unwrap(), min);
    }

    #[test]
    fn first_feasible_stops_early_sequentially() {
        let report = Portfolio::heuristics()
            .seeded(3)
            .parallel(false)
            .race(Race::FirstFeasible)
            .run(&inst());
        // The first heuristic (Random) succeeds on this loose instance, so
        // exactly one solver ran.
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.best, Some(0));
        // Parallel mode runs everything but picks the same winner.
        let par = Portfolio::heuristics()
            .seeded(3)
            .race(Race::FirstFeasible)
            .run(&inst());
        assert_eq!(par.runs.len(), 5);
        assert_eq!(
            par.best_run().unwrap().name,
            report.best_run().unwrap().name
        );
    }

    #[test]
    fn seeds_are_per_solver_and_reproducible() {
        let a = Portfolio::heuristics().seeded(42).run(&inst());
        let b = Portfolio::heuristics().seeded(42).run(&inst());
        assert_eq!(signature(&a), signature(&b));
        // Distinct solvers draw distinct seeds.
        let seeds: std::collections::HashSet<u64> = a.runs.iter().map(|r| r.seed).collect();
        assert_eq!(seeds.len(), a.runs.len());
    }

    #[test]
    fn zero_budget_fails_everything() {
        let report = Portfolio::heuristics()
            .with_budget(Duration::ZERO)
            .run(&inst());
        assert!(report.best.is_none());
        assert!(report
            .runs
            .iter()
            .all(|r| matches!(r.result, Err(Failure::TooExpensive(_)))));
    }

    #[test]
    fn anytime_rescues_a_starved_portfolio() {
        let i = inst();
        let report = Portfolio::heuristics()
            .with_budget(Duration::ZERO)
            .anytime(true)
            .run(&i);
        let best = report.best_run().expect("anytime mode yields a mapping");
        assert_eq!(best.name, "Anytime(Greedy)");
        let sol = best.result.as_ref().unwrap();
        let gap = sol.bound_gap();
        assert!(sol.prune.is_some(), "rescue stamps a certified gap");
        assert!(gap >= 0.0 && gap.is_finite());
        // The certificate reconstructs the instance lower bound.
        let lb = sol.energy() - gap;
        assert!((lb - i.energy_lower_bound()).abs() <= 1e-9 * i.energy_lower_bound());
        // Determinism: the rescue draws its seed like any portfolio member.
        let again = Portfolio::heuristics()
            .with_budget(Duration::ZERO)
            .anytime(true)
            .run(&i);
        assert_eq!(signature(&report), signature(&again));
    }

    #[test]
    fn anytime_bound_brackets_the_exact_optimum() {
        // Small enough for Exact: the certified interval
        // [E_any − gap, E_any] must contain the exact optimum.
        let i = Instance::new(chain(&[2e8; 4], &[5e4; 3]), Platform::paper(2, 2), 0.5);
        let exact = crate::solvers::Exact::default()
            .solve(&i, &SolveCtx::new(0))
            .expect("exact solves the small instance");
        let report = Portfolio::heuristics()
            .with_budget(Duration::ZERO)
            .anytime(true)
            .run(&i);
        let sol = report.best_run().unwrap().result.as_ref().unwrap();
        let gap = sol.bound_gap();
        assert!(sol.energy() - gap <= exact.energy() * (1.0 + 1e-12));
        assert!(exact.energy() <= sol.energy() * (1.0 + 1e-12));
    }

    #[test]
    fn run_batch_matches_individual_runs_exactly() {
        let a = inst();
        let b = Instance::new(chain(&[3e8; 6], &[2e4; 5]), Platform::paper(2, 2), 0.5);
        let pa = Portfolio::heuristics().seeded(7);
        let pb = Portfolio::heuristics().seeded(11).anytime(true);
        let batch = Portfolio::run_batch(&[(&pa, &a), (&pb, &b), (&pa, &a)]);
        assert_eq!(batch.len(), 3);
        let solo_a = pa.run(&a);
        let solo_b = pb.run(&b);
        assert_eq!(signature(&batch[0]), signature(&solo_a));
        assert_eq!(signature(&batch[1]), signature(&solo_b));
        assert_eq!(signature(&batch[2]), signature(&solo_a));
        assert_eq!(batch[0].best, solo_a.best);
        assert_eq!(batch[1].best, solo_b.best);
        assert_eq!(
            batch[0].best_energy(),
            solo_a.best_energy(),
            "batched energies must be bit-identical to unbatched"
        );
        // A starved anytime job inside a batch still gets its rescue.
        let starved = Portfolio::heuristics()
            .with_budget(Duration::ZERO)
            .anytime(true);
        let rescued = Portfolio::run_batch(&[(&starved, &a)]);
        assert_eq!(
            rescued[0].best_run().unwrap().name,
            "Anytime(Greedy)",
            "rescue applies inside run_batch"
        );
    }

    #[test]
    fn anytime_is_inert_when_solvers_succeed() {
        let i = inst();
        let plain = Portfolio::heuristics().seeded(9).run(&i);
        let any = Portfolio::heuristics().seeded(9).anytime(true).run(&i);
        assert_eq!(signature(&plain), signature(&any));
    }
}
