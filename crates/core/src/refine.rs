//! Local-search refinement of a valid mapping (beyond the paper).
//!
//! The paper's conclusion asks for "an absolute measure of the quality of
//! the various heuristics"; besides the exact solver (tiny instances only),
//! a cheap hill-climb gives a *relative* measure at any scale: if a simple
//! stage-migration descent improves a heuristic's mapping substantially,
//! the heuristic left energy on the table.
//!
//! The move set is single-stage migration: move one stage to another core
//! (possibly an idle one — enrolling it — or emptying its old core —
//! turning it off), re-derive the slowest feasible speeds, re-validate with
//! the shared evaluator, and accept the best strictly-improving move per
//! stage (steepest-descent within a stage, first-to-converge across
//! passes). All DAG-partition/period checking is delegated to the
//! evaluator, so accepted mappings stay valid by construction.

use cmp_mapping::{assign_min_speeds, evaluate_with, Mapping};
use cmp_platform::{CoreId, Platform, RouteTable};
use spg::Spg;

use crate::common::Solution;

/// Refinement budget.
#[derive(Debug, Clone, Copy)]
pub struct RefineConfig {
    /// Maximum full passes over the stages.
    pub max_passes: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { max_passes: 4 }
    }
}

/// Hill-climbs from `start`; returns a solution at least as good (often the
/// same object when `start` is already locally optimal).
///
/// The descent evaluates every candidate migration, so it drives the
/// evaluator off a precomputed route table for `start`'s routing
/// discipline; callers holding a solver session should prefer
/// [`refine_with`] with the session's cached table instead of the local one
/// built here.
pub fn refine(
    spg: &Spg,
    pf: &Platform,
    start: &Solution,
    period: f64,
    cfg: &RefineConfig,
) -> Solution {
    let table = start
        .mapping
        .routes
        .policy()
        .map(|p| RouteTable::build(pf, p));
    refine_with(spg, pf, start, period, cfg, table.as_ref())
}

/// [`refine`] with a caller-provided precomputed route table (or `None` to
/// regenerate routes hop by hop); the `Refined` solver passes its
/// session's cached table.
pub fn refine_with(
    spg: &Spg,
    pf: &Platform,
    start: &Solution,
    period: f64,
    cfg: &RefineConfig,
    table: Option<&RouteTable>,
) -> Solution {
    let mut best = start.clone();
    let cores: Vec<CoreId> = pf.alive_cores().collect();
    for _pass in 0..cfg.max_passes {
        let mut improved = false;
        for s in spg.stages() {
            let current = best.mapping.alloc[s.idx()];
            let mut stage_best: Option<(f64, Mapping)> = None;
            for &cand in &cores {
                if cand == current {
                    continue;
                }
                let mut alloc = best.mapping.alloc.clone();
                alloc[s.idx()] = cand;
                let Some(speed) = assign_min_speeds(spg, pf, &alloc, period) else {
                    continue;
                };
                let mapping = Mapping {
                    alloc,
                    speed,
                    routes: best.mapping.routes.clone(),
                };
                let Ok(eval) = evaluate_with(spg, pf, &mapping, period, table) else {
                    continue;
                };
                if eval.energy < best.eval.energy * (1.0 - 1e-12)
                    && stage_best.as_ref().is_none_or(|(e, _)| eval.energy < *e)
                {
                    stage_best = Some((eval.energy, mapping));
                }
            }
            if let Some((_, mapping)) = stage_best {
                let eval = evaluate_with(spg, pf, &mapping, period, table).expect("just validated");
                // A refined mapping is a fresh full evaluation: any prune
                // telemetry of the starting solution no longer applies.
                best = Solution {
                    mapping,
                    eval,
                    prune: None,
                };
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::validated;
    use crate::random::random_trials;
    use cmp_mapping::{evaluate, RouteSpec};
    use cmp_platform::RouteOrder;
    use spg::chain;

    #[test]
    fn refine_never_worsens() {
        let pf = Platform::paper(3, 3);
        let g = chain(&[2e8; 8], &[1e5; 7]);
        let t = 0.4;
        let start = random_trials(&g, &pf, t, 3, 10, None).unwrap();
        let refined = refine(&g, &pf, &start, t, &RefineConfig::default());
        assert!(refined.energy() <= start.energy() * (1.0 + 1e-12));
        // Result still validates.
        assert!(evaluate(&g, &pf, &refined.mapping, t).is_ok());
    }

    #[test]
    fn refine_consolidates_scattered_mapping() {
        // A deliberately wasteful mapping: 4 light stages on 4 cores. The
        // descent should pack them onto fewer cores (saving leakage).
        let pf = Platform::paper(2, 2);
        let g = chain(&[1e6; 4], &[1e2; 3]);
        let t = 1.0;
        let alloc: Vec<CoreId> = g
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, _)| CoreId {
                u: (i / 2) as u32,
                v: (i % 2) as u32,
            })
            .collect();
        // Reorder alloc to stage-id indexing.
        let mut by_stage = vec![CoreId { u: 0, v: 0 }; g.n()];
        for (i, s) in g.topo_order().iter().enumerate() {
            by_stage[s.idx()] = alloc[i];
        }
        let speed = assign_min_speeds(&g, &pf, &by_stage, t).unwrap();
        let start = validated(
            &g,
            &pf,
            Mapping {
                alloc: by_stage,
                speed,
                routes: RouteSpec::Xy(RouteOrder::RowFirst),
            },
            t,
        )
        .unwrap();
        assert_eq!(start.eval.active_cores, 4);
        let refined = refine(&g, &pf, &start, t, &RefineConfig::default());
        assert_eq!(
            refined.eval.active_cores, 1,
            "should pack onto one slow core"
        );
        assert!(refined.energy() < start.energy());
    }

    #[test]
    fn locally_optimal_input_unchanged() {
        let pf = Platform::paper(1, 1);
        let g = chain(&[1e6, 1e6], &[1e2]);
        let t = 1.0;
        let alloc = vec![CoreId { u: 0, v: 0 }; 2];
        let speed = assign_min_speeds(&g, &pf, &alloc, t).unwrap();
        let start = validated(
            &g,
            &pf,
            Mapping {
                alloc,
                speed,
                routes: RouteSpec::Xy(RouteOrder::RowFirst),
            },
            t,
        )
        .unwrap();
        let refined = refine(&g, &pf, &start, t, &RefineConfig::default());
        assert_eq!(refined.energy(), start.energy());
    }
}
