//! Solver-session state: an [`Instance`] owns one `(workload, platform,
//! period)` triple and lazily caches the derived structures that several
//! algorithms share — so a portfolio run (or a period probe) computes them
//! once instead of once per solver call.
//!
//! Cached today:
//!
//! * the **interned ideal lattice** with its per-ideal cut volumes
//!   ([`SharedLattice`]) — the dominant cost of `DPA1D`, and
//!   period-independent, so one enumeration serves every probe decade and
//!   every portfolio member;
//! * `DPA1D`'s **transition skeleton** ([`TransitionSkeleton`]) — the
//!   complete cluster-transition system over the lattice, which turns
//!   each period-sweep point into a threshold-admission pass instead of a
//!   lattice re-walk;
//! * the **snake order** of the grid (used by `DPA1D` and `DPA2D1D`);
//! * the **topological stage order** (used by the exact solver);
//! * the per-stage **speed-feasibility table** (the slowest speed able to
//!   run each stage alone within the period) — a shared quick-reject: if
//!   any single stage cannot meet the period at the fastest speed, *no*
//!   mapping exists and every solver can fail without searching.
//!
//! The period-independent caches live behind an `Arc`, so
//! [`Instance::with_period`] re-targets the period while keeping the
//! lattice, snake, and topological order warm — exactly what the §6.1.3
//! period probe needs.

use std::sync::{Arc, Mutex, OnceLock};

use cmp_mapping::{evaluate_with, Evaluation, Mapping, MappingError};
use cmp_platform::{snake_core, CoreId, Fault, Platform, RoutePolicy, RouteTable};
use spg::ideal::{enumerate_ideals, IdealError, IdealLattice};
use spg::{Edit, Spg, StageId};

use crate::common::Failure;
use crate::dpa1d::{build_skeleton, build_skeleton_bounded, Dpa1dConfig, TransitionSkeleton};

/// The interned ideal lattice of an instance together with the per-ideal
/// cut volumes `DPA1D` prices its uni-line links with. Both are
/// period-independent, so the pair is shared across solver calls and probe
/// decades via `Arc`.
pub struct SharedLattice {
    /// The interned lattice (see [`spg::ideal`]).
    pub lattice: IdealLattice,
    /// `cuts[i]` = cut volume of ideal `i` (traffic on the uni-line link
    /// right after it).
    pub cuts: Vec<f64>,
}

impl SharedLattice {
    /// Approximate resident size in bytes (interned lattice plus cut
    /// volumes) — input to byte-bounded artifact-cache accounting.
    pub fn size_bytes(&self) -> usize {
        // `lattice.size_bytes()` already counts the lattice struct header.
        self.lattice.size_bytes() + self.cuts.capacity() * std::mem::size_of::<f64>()
    }

    /// Serialises lattice and cut volumes into a self-contained
    /// little-endian byte image for artifact-cache spill files.
    pub fn to_bytes(&self) -> Vec<u8> {
        let lat = self.lattice.to_bytes();
        let mut out = Vec::with_capacity(lat.len() + self.cuts.len() * 8 + 16);
        spg::wire::put_u64(&mut out, lat.len() as u64);
        out.extend_from_slice(&lat);
        spg::wire::put_f64_slice(&mut out, &self.cuts);
        out
    }

    /// Decodes a byte image produced by [`SharedLattice::to_bytes`],
    /// re-validating that the cut array covers every ideal.
    pub fn from_bytes(bytes: &[u8]) -> Result<SharedLattice, String> {
        let mut pos = 0usize;
        let lat_len = spg::wire::get_len(bytes, &mut pos, 1)?;
        let lattice = IdealLattice::from_bytes(spg::wire::take(bytes, &mut pos, lat_len)?)?;
        let cuts = spg::wire::get_f64_slice(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after lattice image",
                bytes.len() - pos
            ));
        }
        if cuts.len() != lattice.len() {
            return Err("cut volume count disagrees with the ideal count".into());
        }
        Ok(SharedLattice { lattice, cuts })
    }
}

/// Cached lattice state: the cap the last enumeration ran with, and its
/// outcome. A success with `len ≤ cap'` answers any request with cap ≥ len;
/// a `LimitExceeded` at cap `c` answers any request with cap ≤ `c`.
type LatticeSlot = Mutex<Option<(usize, Result<Arc<SharedLattice>, IdealError>)>>;

/// Cached `DPA1D` transition skeleton: the lattice it was built from (by
/// pointer), the edge cap the build ran under, and the outcome. A success
/// serves *any* edge cap (per-period admission enforces the cap on the
/// admitted count, not on the index size); a build failure at cap `c`
/// answers any request with cap ≤ `c` (the complete set is even larger).
type SkeletonSlot = Mutex<Option<(usize, Result<Arc<TransitionSkeleton>, Failure>)>>;

/// Cached work-ceiling bounded skeleton state (the fallback when the
/// complete transition set overflows the edge cap): at most one built
/// artifact — the loosest ceiling built so far, which serves every period
/// at or below it — plus the most binding build *failure* observed.
///
/// The failure is keyed by both the edge cap it was attempted under and
/// the ceiling it was attempted at: bounded builds are monotone in both,
/// so a failure at `(cap, ceiling)` proves failure for any `cap' ≤ cap`
/// at any `ceiling' ≥ ceiling` — and proves nothing about tighter
/// ceilings. That keying is what lets a tighter sweep point retry (and
/// succeed) after a looser point's build overflowed, where a bare
/// "build failed once" flag would poison the whole session.
#[derive(Default, Clone)]
struct BoundedSkeleton {
    built: Option<Arc<TransitionSkeleton>>,
    /// `(edge_cap, ceiling)` of the most binding failed build: tightest
    /// ceiling first, largest cap among equal ceilings.
    failed: Option<(usize, f64)>,
}

/// Period-independent derived structures, shared between an instance and
/// its [`Instance::with_period`] re-targets.
#[derive(Default)]
struct Derived {
    lattice: LatticeSlot,
    skeleton: SkeletonSlot,
    bounded: Mutex<BoundedSkeleton>,
    /// The loosest period a sweep over this instance intends to request
    /// (see [`Instance::note_period_ceiling`]): bounded builds target it
    /// so one artifact serves the whole grid. `0.0` until noted.
    sweep_ceiling: Mutex<f64>,
    snake: OnceLock<Vec<CoreId>>,
    topo: OnceLock<Vec<StageId>>,
    /// One lazily built precomputed route table per [`RoutePolicy`]
    /// (indexed by [`RoutePolicy::index`]). Period-independent and shared
    /// across probe decades and portfolio members like the lattice.
    route_tables: [OnceLock<Arc<RouteTable>>; 4],
}

/// One solve session: a workload, a platform, a period bound, and the
/// lazily cached derived structures shared by the solvers.
///
/// ```
/// use ea_core::{Instance, SolveCtx, Solver};
/// use ea_core::solvers::Greedy;
/// use cmp_platform::Platform;
///
/// let inst = Instance::new(spg::chain(&[1e8; 4], &[1e3; 3]), Platform::paper(2, 2), 1.0);
/// let sol = Greedy::default().solve(&inst, &SolveCtx::new(0)).unwrap();
/// assert!(sol.energy() > 0.0);
/// ```
pub struct Instance {
    spg: Arc<Spg>,
    pf: Arc<Platform>,
    period: f64,
    derived: Arc<Derived>,
    /// Per-stage slowest feasible speed at this period (`None` = the stage
    /// alone misses the period even at top speed). Period-dependent, so not
    /// part of [`Derived`].
    min_speeds: OnceLock<Vec<Option<usize>>>,
}

impl Clone for Instance {
    fn clone(&self) -> Self {
        Instance {
            spg: Arc::clone(&self.spg),
            pf: Arc::clone(&self.pf),
            period: self.period,
            derived: Arc::clone(&self.derived),
            min_speeds: self.min_speeds.clone(),
        }
    }
}

impl Instance {
    /// Wraps a workload, platform, and period bound into a session.
    pub fn new(spg: Spg, pf: Platform, period: f64) -> Self {
        Instance::from_shared(Arc::new(spg), Arc::new(pf), period)
    }

    /// An instance whose period is derived from a target platform
    /// *utilisation* instead of given absolutely: `T = W / (u · p·q ·
    /// f_max)`, the time the whole platform needs for one data set when a
    /// fraction `u` of its peak cycle capacity does useful work.
    ///
    /// This is how the campaign engine turns a *generated* workload into a
    /// comparable instance: synthetic families span orders of magnitude of
    /// total work `W`, so a fixed absolute period would make some jobs
    /// trivially loose and others hopeless. A fixed utilisation scales the
    /// bound with the workload — `u` near the serial fraction of the graph
    /// keeps every family in the regime where heuristics can both succeed
    /// and fail (the informative regime of Tables 2–3). Deterministic in
    /// the inputs, so resumable campaign jobs can recompute it from the
    /// job key alone.
    pub fn for_utilisation(spg: Spg, pf: Platform, utilisation: f64) -> Self {
        let period = utilisation_period(&spg, &pf, utilisation);
        Instance::new(spg, pf, period)
    }

    /// The period bound a target utilisation `u` denotes for this
    /// instance's workload and platform (`T = W / (u · p·q · f_max)`, see
    /// [`Instance::for_utilisation`]). Utilisation-axis sweeps resolve
    /// their grid values through this before calling
    /// [`Instance::with_period`].
    pub fn utilisation_period(&self, utilisation: f64) -> f64 {
        utilisation_period(&self.spg, &self.pf, utilisation)
    }

    /// Like [`Instance::new`] but sharing already-`Arc`ed inputs (avoids
    /// cloning a large graph when the caller keeps its own handle).
    pub fn from_shared(spg: Arc<Spg>, pf: Arc<Platform>, period: f64) -> Self {
        assert!(period > 0.0, "period bound must be positive");
        Instance {
            spg,
            pf,
            period,
            derived: Arc::new(Derived::default()),
            min_speeds: OnceLock::new(),
        }
    }

    /// The workload.
    #[inline]
    pub fn spg(&self) -> &Spg {
        &self.spg
    }

    /// The platform.
    #[inline]
    pub fn platform(&self) -> &Platform {
        &self.pf
    }

    /// The period bound `T`.
    #[inline]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// A session for the same workload and platform at a different period,
    /// **sharing** the period-independent caches (lattice, snake,
    /// topological order). This is what makes the §6.1.3 decade probe cheap:
    /// the lattice is enumerated once across all probed periods.
    pub fn with_period(&self, period: f64) -> Instance {
        assert!(period > 0.0, "period bound must be positive");
        Instance {
            spg: Arc::clone(&self.spg),
            pf: Arc::clone(&self.pf),
            period,
            derived: Arc::clone(&self.derived),
            min_speeds: OnceLock::new(),
        }
    }

    /// The interned ideal lattice (plus cut volumes), enumerated under
    /// `cap`. Cached: a previous successful enumeration is reused whenever
    /// it fits the requested cap, and a previous `LimitExceeded` at a cap
    /// at least as large answers the request without re-enumerating.
    pub fn lattice(&self, cap: usize) -> Result<Arc<SharedLattice>, IdealError> {
        let mut slot = self.derived.lattice.lock().unwrap();
        if let Some((cached_cap, res)) = slot.as_ref() {
            match res {
                Ok(sh) if sh.lattice.len() <= cap => return Ok(Arc::clone(sh)),
                // A cached success larger than the requested cap is itself
                // proof the enumeration would exceed `cap`: answer without
                // re-enumerating and without evicting the success.
                Ok(sh) => {
                    return Err(IdealError::LimitExceeded {
                        cap,
                        found: sh.lattice.len(),
                    })
                }
                Err(e) if cap <= *cached_cap => return Err(e.clone()),
                _ => {}
            }
        }
        let res = enumerate_ideals(&self.spg, cap).map(|lattice| {
            let cuts = lattice.iter().map(|s| self.spg.cut_volume(s)).collect();
            Arc::new(SharedLattice { lattice, cuts })
        });
        *slot = Some((cap, res.clone()));
        res
    }

    /// The period-independent `DPA1D` transition skeleton for this
    /// instance (see [`TransitionSkeleton`]): the complete cluster
    /// transition system over the interned lattice, built at most once and
    /// shared across [`Instance::with_period`] re-targets — each sweep
    /// point then pays only the threshold-admission pass and the per-period
    /// `Ecal` lookups instead of re-walking the lattice.
    ///
    /// Returns:
    ///
    /// * `Ok(Some(_))` — a skeleton serving this session's period: the
    ///   complete build when it fits `cfg.edge_cap`, else a work-ceiling
    ///   bounded build targeting the loosest period the session is known
    ///   to need (see [`Instance::note_period_ceiling`]) — exact for
    ///   every period it [`TransitionSkeleton::serves`];
    /// * `Ok(None)` — neither the complete set nor any candidate bounded
    ///   build fits `cfg.edge_cap`; callers fall back to per-period
    ///   materialisation (also cached: failures are keyed by the cap —
    ///   and, for bounded builds, the ceiling — they were attempted
    ///   under, so only genuinely new requests re-run a build);
    /// * `Err(_)` — lattice enumeration itself exceeded `cfg.ideal_cap`.
    pub fn transition_skeleton(
        &self,
        cfg: &Dpa1dConfig,
    ) -> Result<Option<Arc<TransitionSkeleton>>, Failure> {
        let shared = self
            .lattice(cfg.ideal_cap)
            .map_err(|e| crate::dpa1d::lattice_failure(&e))?;
        {
            let mut slot = self.derived.skeleton.lock().unwrap();
            let known_overflow = match slot.as_ref() {
                Some((_, Ok(sk))) => return Ok(Some(Arc::clone(sk))),
                // A complete-build overflow at cap ≥ ours is proof ours
                // overflows too; a *smaller* failed cap proves nothing, so
                // fall through and (re)try the complete build.
                Some((built_cap, Err(_))) => cfg.edge_cap <= *built_cap,
                None => false,
            };
            if !known_overflow {
                let res = build_skeleton(self.spg(), self.platform(), &shared, cfg.edge_cap)
                    .map(Arc::new);
                *slot = Some((cfg.edge_cap, res.clone()));
                if let Ok(sk) = res {
                    return Ok(Some(sk));
                }
            }
        }
        // The complete set is over budget: fall back to a bounded build.
        self.bounded_skeleton(cfg, &shared)
    }

    /// The work-ceiling bounded fallback of [`Instance::transition_skeleton`].
    /// Candidate ceilings run loosest first — the sweep-grid hint (one
    /// build serves the whole grid), then this session's own period — and
    /// each is skipped when a recorded failure already proves it overflows
    /// at this cap.
    fn bounded_skeleton(
        &self,
        cfg: &Dpa1dConfig,
        shared: &Arc<SharedLattice>,
    ) -> Result<Option<Arc<TransitionSkeleton>>, Failure> {
        let hint = *self.derived.sweep_ceiling.lock().unwrap();
        let mut slot = self.derived.bounded.lock().unwrap();
        if let Some(sk) = &slot.built {
            if sk.serves(self.period) {
                return Ok(Some(Arc::clone(sk)));
            }
        }
        let loosest = hint.max(self.period);
        let mut candidates = vec![loosest];
        if self.period < loosest {
            candidates.push(self.period);
        }
        for ceiling in candidates {
            if let Some((fcap, fceil)) = slot.failed {
                if cfg.edge_cap <= fcap && ceiling >= fceil {
                    continue; // proven overflow at this cap and ceiling
                }
            }
            match build_skeleton_bounded(self.spg(), self.platform(), shared, cfg.edge_cap, ceiling)
            {
                Ok(sk) => {
                    let sk = Arc::new(sk);
                    // Cache the loosest built artifact (it strictly
                    // subsumes tighter ones); always serve the fresh one.
                    if slot
                        .built
                        .as_ref()
                        .is_none_or(|b| sk.period_ceiling() > b.period_ceiling())
                    {
                        slot.built = Some(Arc::clone(&sk));
                    }
                    return Ok(Some(sk));
                }
                Err(_) => {
                    slot.failed = Some(match slot.failed {
                        // Keep the tightest-ceiling record (it covers the
                        // largest request region); merge caps on a tie.
                        Some((fc, fceil)) if fceil < ceiling => (fc, fceil),
                        Some((fc, fceil)) if fceil == ceiling => (fc.max(cfg.edge_cap), fceil),
                        _ => (cfg.edge_cap, ceiling),
                    });
                }
            }
        }
        Ok(None)
    }

    /// Records (max-accumulating) the loosest period this session — or a
    /// [`Instance::with_period`] re-target sharing its caches — intends to
    /// request. Period sweeps call this with their grid's loosest resolved
    /// point before fanning out, so the first bounded skeleton build
    /// targets a ceiling serving *every* point exactly (see
    /// [`TransitionSkeleton::serves`]).
    pub fn note_period_ceiling(&self, period: f64) {
        if period.is_finite() && period > 0.0 {
            let mut hint = self.derived.sweep_ceiling.lock().unwrap();
            if period > *hint {
                *hint = period;
            }
        }
    }

    /// The precomputed route table for one routing policy on this
    /// instance's platform, built lazily and cached (period-independent,
    /// shared across [`Instance::with_period`] re-targets). Solvers hand it
    /// to the evaluator so the per-hop route generation in the hottest loop
    /// becomes a flat slice walk.
    pub fn route_table(&self, policy: RoutePolicy) -> Arc<RouteTable> {
        Arc::clone(
            self.derived.route_tables[policy.index()]
                .get_or_init(|| Arc::new(RouteTable::build(&self.pf, policy))),
        )
    }

    /// The cached route table matching a mapping's routing discipline, or
    /// `None` for per-edge custom routes.
    pub fn route_table_for(&self, mapping: &Mapping) -> Option<Arc<RouteTable>> {
        mapping.routes.policy().map(|p| self.route_table(p))
    }

    /// Validates a mapping against this session's period and computes its
    /// energy, driving the link-load accumulation off the session's cached
    /// route table whenever the mapping's routing discipline has one.
    /// Bit-identical to `cmp_mapping::evaluate` — the table stores exactly
    /// the hops the route generators produce, in order.
    pub fn evaluate_mapping(&self, mapping: &Mapping) -> Result<Evaluation, MappingError> {
        let table = self.route_table_for(mapping);
        evaluate_with(&self.spg, &self.pf, mapping, self.period, table.as_deref())
    }

    /// Peeks at the cached lattice without computing it: the successful
    /// enumeration cached on this session, if any. The `serve` artifact
    /// cache harvests warm artifacts through this after a solve.
    pub fn cached_lattice(&self) -> Option<Arc<SharedLattice>> {
        let slot = self.derived.lattice.lock().unwrap();
        slot.as_ref()
            .and_then(|(_, res)| res.as_ref().ok().cloned())
    }

    /// Peeks at the cached *complete* transition skeleton without building
    /// it (bounded artifacts have their own peek,
    /// [`Instance::cached_bounded_skeleton`]).
    pub fn cached_skeleton(&self) -> Option<Arc<TransitionSkeleton>> {
        let slot = self.derived.skeleton.lock().unwrap();
        slot.as_ref()
            .and_then(|(_, res)| res.as_ref().ok().cloned())
    }

    /// Peeks at the cached work-ceiling bounded skeleton (the loosest one
    /// built on this session) without building it.
    pub fn cached_bounded_skeleton(&self) -> Option<Arc<TransitionSkeleton>> {
        self.derived.bounded.lock().unwrap().built.clone()
    }

    /// Peeks at the cached route table for one policy without building it.
    pub fn cached_route_table(&self, policy: RoutePolicy) -> Option<Arc<RouteTable>> {
        self.derived.route_tables[policy.index()].get().cloned()
    }

    /// Seeds the lattice cache with an artifact computed on a previous
    /// session over content-identical inputs (the `serve` daemon's warm
    /// path). First write wins: an already-populated slot is left alone.
    /// The seeded success answers any cap `>= lattice.len()` exactly like
    /// a fresh enumeration would, so solves stay bit-identical.
    pub fn seed_lattice(&self, shared: Arc<SharedLattice>) {
        let mut slot = self.derived.lattice.lock().unwrap();
        if slot.is_none() {
            let len = shared.lattice.len();
            *slot = Some((len, Ok(shared)));
        }
    }

    /// Seeds the skeleton cache (see [`Instance::seed_lattice`]). Routes
    /// by build kind: a complete artifact fills the complete slot (first
    /// success wins, but it may replace a cached build *failure* — the
    /// donor evidently built it under a larger cap); a bounded artifact
    /// fills the bounded slot when it is looser than what is already
    /// there. A cached success serves any edge cap, so no cap is recorded.
    pub fn seed_skeleton(&self, skeleton: Arc<TransitionSkeleton>) {
        if skeleton.is_complete() {
            let mut slot = self.derived.skeleton.lock().unwrap();
            if !matches!(slot.as_ref(), Some((_, Ok(_)))) {
                *slot = Some((0, Ok(skeleton)));
            }
        } else {
            let mut slot = self.derived.bounded.lock().unwrap();
            if slot
                .built
                .as_ref()
                .is_none_or(|b| skeleton.period_ceiling() > b.period_ceiling())
            {
                slot.built = Some(skeleton);
            }
        }
    }

    /// Seeds the route-table cache for one policy (see
    /// [`Instance::seed_lattice`]; first write wins).
    pub fn seed_route_table(&self, policy: RoutePolicy, table: Arc<RouteTable>) {
        let _ = self.derived.route_tables[policy.index()].set(table);
    }

    /// The snake embedding of the grid: `snake_order()[k]` is the physical
    /// core at snake position `k`.
    pub fn snake_order(&self) -> &[CoreId] {
        self.derived.snake.get_or_init(|| {
            (0..self.pf.n_cores())
                .map(|k| snake_core(&self.pf, k))
                .collect()
        })
    }

    /// A topological order of the stages.
    pub fn topo_order(&self) -> &[StageId] {
        self.derived.topo.get_or_init(|| self.spg.topo_order())
    }

    /// Per-stage speed-feasibility table: `stage_min_speeds()[s]` is the
    /// slowest speed index at which stage `s` *alone* meets the period, or
    /// `None` when even the fastest speed misses it.
    pub fn stage_min_speeds(&self) -> &[Option<usize>] {
        self.min_speeds.get_or_init(|| {
            self.spg
                .stages()
                .map(|s| self.pf.power.min_speed_for(self.spg.weight(s), self.period))
                .collect()
        })
    }

    /// The first stage (if any) that cannot meet the period even alone at
    /// the fastest speed — a certificate that the whole instance is
    /// infeasible, shared by every solver as a pre-search reject.
    pub fn infeasible_stage(&self) -> Option<StageId> {
        self.stage_min_speeds()
            .iter()
            .position(Option::is_none)
            .map(|i| StageId(i as u32))
    }

    /// The slowest speed index at which *every* stage individually meets
    /// the period — no uniform-speed pass below it can ever place all
    /// stages. `None` when the instance is infeasible per
    /// [`Instance::infeasible_stage`].
    pub fn min_uniform_speed(&self) -> Option<usize> {
        self.stage_min_speeds()
            .iter()
            .copied()
            .try_fold(0usize, |acc, k| k.map(|k| acc.max(k)))
    }

    /// A certified lower bound on the energy of *any* valid mapping of
    /// this instance — the anytime mode's certificate (see
    /// `docs/fault-model.md`):
    ///
    /// * dynamic compute: every cycle costs at least the best
    ///   energy-per-cycle over the DVFS ladder, so
    ///   `E_dyn ≥ W · min_k(P_k / f_k)`;
    /// * compute leakage: a core runs at most `T · f_max` cycles per
    ///   period, so at least `⌈W / (T · f_max)⌉` cores (and never fewer
    ///   than one) are enrolled, each paying `P_leak · T`;
    /// * communication: dynamic energy is non-negative and the
    ///   communication leakage `P_leak^(comm) · T` is paid by every
    ///   mapping.
    ///
    /// The bound is deterministic in the instance alone (no solve needed),
    /// so `E_anytime − bound_gap ≤ E_opt ≤ E_anytime` holds for any
    /// solution whose `bound_gap` is `E_anytime` minus this value.
    pub fn energy_lower_bound(&self) -> f64 {
        let w = self.spg.total_work();
        let power = &self.pf.power;
        let epc_min = (0..power.m())
            .map(|k| {
                let s = power.speed(k);
                s.power / s.freq
            })
            .fold(f64::INFINITY, f64::min);
        let k_min = if w > 0.0 {
            (w / (self.period * power.max_freq())).ceil().max(1.0)
        } else {
            1.0
        };
        w * epc_min + k_min * power.p_leak * self.period + self.pf.p_leak_comm * self.period
    }

    /// A session for the same workload on the **faulted** platform,
    /// delta-patching the cached derived state instead of discarding it
    /// (see `docs/fault-model.md` for the full invalidation matrix):
    ///
    /// * the ideal lattice, transition skeletons, snake/topological
    ///   orders, sweep-ceiling hint, and per-stage speed table are all
    ///   fault-invariant — shared or copied as-is;
    /// * on a **core** fault every built route table is reused verbatim
    ///   (routers outlive their PEs, so routes never change);
    /// * on a **link** fault every built route table is delta-patched
    ///   ([`RouteTable::patched`]) — bit-identical to a cold rebuild on
    ///   the faulted platform.
    ///
    /// Solves on the patched session are bit-identical in energy to cold
    /// solves on `Instance::new(spg, pf.with_fault(fault), period)`.
    pub fn with_fault(&self, fault: Fault) -> Instance {
        let pf = Arc::new(self.pf.with_fault(fault));
        let patch_routes = pf.faults.dead_links() != self.pf.faults.dead_links();
        let derived = Derived {
            lattice: Mutex::new(self.derived.lattice.lock().unwrap().clone()),
            skeleton: Mutex::new(self.derived.skeleton.lock().unwrap().clone()),
            bounded: Mutex::new(self.derived.bounded.lock().unwrap().clone()),
            sweep_ceiling: Mutex::new(*self.derived.sweep_ceiling.lock().unwrap()),
            snake: self.derived.snake.clone(),
            topo: self.derived.topo.clone(),
            route_tables: Default::default(),
        };
        for (i, slot) in self.derived.route_tables.iter().enumerate() {
            if let Some(t) = slot.get() {
                let table = if patch_routes {
                    Arc::new(t.patched(&pf))
                } else {
                    Arc::clone(t)
                };
                let _ = derived.route_tables[i].set(table);
            }
        }
        Instance {
            spg: Arc::clone(&self.spg),
            pf,
            period: self.period,
            derived: Arc::new(derived),
            min_speeds: self.min_speeds.clone(),
        }
    }

    /// A session for the **edited** workload on the same platform,
    /// delta-patching the cached derived state (see `docs/fault-model.md`):
    ///
    /// * [`Edit`]s are structure-preserving, so the interned lattice
    ///   *structure* survives every edit: a weight retune shares the whole
    ///   [`SharedLattice`] (cut volumes are weight-independent), a volume
    ///   edit clones the structure and recomputes the cut volumes — in
    ///   cold enumeration order, so they are bit-identical to a rebuild;
    /// * transition skeletons are invalidated (their per-transition work
    ///   sums and admission thresholds are value-derived) and rebuilt
    ///   lazily from the reused lattice;
    /// * route tables, snake/topological orders, and the sweep-ceiling
    ///   hint are workload-independent or structure-only — copied;
    /// * the per-stage speed table survives volume edits and is dropped on
    ///   weight retunes.
    ///
    /// Solves on the patched session are bit-identical in energy to cold
    /// solves on `Instance::new(spg.with_edit(edit), pf, period)`.
    pub fn with_edit(&self, edit: &Edit) -> Instance {
        let spg = Arc::new(self.spg.with_edit(edit));
        let lattice = {
            let slot = self.derived.lattice.lock().unwrap();
            match slot.as_ref() {
                Some((cap, Ok(sh))) if edit.changes_volumes() => {
                    // Same structure, new per-ideal cut volumes — computed
                    // ideal by ideal exactly as a cold enumeration would.
                    let lattice = sh.lattice.clone();
                    let cuts = lattice.iter().map(|s| spg.cut_volume(s)).collect();
                    Some((*cap, Ok(Arc::new(SharedLattice { lattice, cuts }))))
                }
                // Weight retunes leave the lattice untouched; enumeration
                // *failures* are structure-only proofs, valid either way.
                other => other.cloned(),
            }
        };
        let derived = Derived {
            lattice: Mutex::new(lattice),
            // Skeleton blocks embed value-derived work sums and admission
            // thresholds: rebuilt lazily from the reused lattice.
            skeleton: Mutex::new(None),
            bounded: Mutex::new(BoundedSkeleton::default()),
            sweep_ceiling: Mutex::new(*self.derived.sweep_ceiling.lock().unwrap()),
            snake: self.derived.snake.clone(),
            topo: self.derived.topo.clone(),
            route_tables: Default::default(),
        };
        for (i, slot) in self.derived.route_tables.iter().enumerate() {
            if let Some(t) = slot.get() {
                let _ = derived.route_tables[i].set(Arc::clone(t));
            }
        }
        Instance {
            spg,
            pf: Arc::clone(&self.pf),
            period: self.period,
            derived: Arc::new(derived),
            min_speeds: if edit.changes_volumes() {
                self.min_speeds.clone()
            } else {
                OnceLock::new()
            },
        }
    }
}

/// `T = W / (u · p·q · f_max)`: the time the whole platform needs for one
/// data set when a fraction `u` of its peak cycle capacity does useful
/// work. Deterministic in the inputs, so resumable campaign jobs can
/// recompute it from the job key alone.
fn utilisation_period(spg: &Spg, pf: &Platform, utilisation: f64) -> f64 {
    assert!(
        utilisation > 0.0 && utilisation.is_finite(),
        "utilisation must be positive and finite"
    );
    let capacity = pf.n_cores() as f64 * pf.power.max_freq();
    spg.total_work() / (utilisation * capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg::chain;

    #[test]
    fn lattice_is_cached_and_shared_across_periods() {
        let g = chain(&[1e6; 6], &[1e3; 5]);
        let inst = Instance::new(g, Platform::paper(2, 2), 1.0);
        let a = inst.lattice(10_000).unwrap();
        let b = inst.with_period(0.1).lattice(10_000).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "with_period must share the lattice");
        assert_eq!(a.lattice.len(), 7, "a 6-chain has 7 ideals");
        assert_eq!(a.cuts.len(), a.lattice.len());
    }

    #[test]
    fn lattice_cap_logic() {
        // 6-chain: 7 ideals. cap 3 fails; a later cap 100 succeeds; a
        // repeat cap 2 must fail again (not reuse the success).
        let g = chain(&[1e6; 6], &[1e3; 5]);
        let inst = Instance::new(g, Platform::paper(2, 2), 1.0);
        assert!(inst.lattice(3).is_err());
        let ok = inst.lattice(100).unwrap();
        assert_eq!(ok.lattice.len(), 7);
        // Success (7 ideals) also answers caps >= 7.
        assert!(Arc::ptr_eq(&inst.lattice(7).unwrap(), &ok));
        // An under-cap request fails off the cached length alone...
        assert!(matches!(
            inst.lattice(2),
            Err(IdealError::LimitExceeded { cap: 2, found: 7 })
        ));
        // ...without evicting the cached success.
        assert!(Arc::ptr_eq(&inst.lattice(100).unwrap(), &ok));
    }

    #[test]
    fn speed_table_and_quick_reject() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[1e8, 5e8, 2e9], &[1e3, 1e3]);
        let inst = Instance::new(g.clone(), pf.clone(), 1.0);
        // 2e9 cycles in 1 s needs 2 GHz: infeasible.
        assert!(inst.infeasible_stage().is_some());
        assert_eq!(inst.min_uniform_speed(), None);
        // At T = 10 s everything fits; the binding stage is 2e9 -> 0.2 GHz
        // -> speed index 1 (0.4 GHz).
        let loose = inst.with_period(10.0);
        assert_eq!(loose.infeasible_stage(), None);
        assert_eq!(loose.min_uniform_speed(), Some(1));
    }

    #[test]
    fn utilisation_period_scales_with_work() {
        let pf = Platform::paper(2, 2); // 4 cores, f_max = 1 GHz (XScale)
        let light = Instance::for_utilisation(chain(&[1e8; 4], &[1e3; 3]), pf.clone(), 0.5);
        let heavy = Instance::for_utilisation(chain(&[1e9; 4], &[1e3; 3]), pf, 0.5);
        // T = W / (u * cores * f_max): 4e8 / (0.5 * 4 * f_max).
        let fmax = light.platform().power.max_freq();
        assert!((light.period() - 4e8 / (0.5 * 4.0 * fmax)).abs() < 1e-12);
        // 10x the work at the same utilisation => 10x the period.
        assert!((heavy.period() / light.period() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn peek_and_seed_roundtrip() {
        let g = chain(&[1e6; 6], &[1e3; 5]);
        let donor = Instance::new(g.clone(), Platform::paper(2, 2), 1.0);
        assert!(donor.cached_lattice().is_none(), "peek must not compute");
        let lat = donor.lattice(10_000).unwrap();
        let table = donor.route_table(RoutePolicy::Xy);
        assert!(Arc::ptr_eq(&donor.cached_lattice().unwrap(), &lat));
        assert!(Arc::ptr_eq(
            &donor.cached_route_table(RoutePolicy::Xy).unwrap(),
            &table
        ));
        assert!(donor.cached_route_table(RoutePolicy::Yx).is_none());

        // A fresh instance over content-identical inputs, seeded from the
        // donor, answers from the seeded artifacts without recomputing.
        let warm = Instance::new(g, Platform::paper(2, 2), 0.5);
        warm.seed_lattice(Arc::clone(&lat));
        warm.seed_route_table(RoutePolicy::Xy, Arc::clone(&table));
        assert!(Arc::ptr_eq(&warm.lattice(10_000).unwrap(), &lat));
        assert!(Arc::ptr_eq(&warm.route_table(RoutePolicy::Xy), &table));
        // Cap semantics survive seeding: an under-cap request still fails.
        assert!(matches!(
            warm.lattice(2),
            Err(IdealError::LimitExceeded { cap: 2, found: 7 })
        ));
        // First write wins: seeding over a populated slot is a no-op.
        let other = Instance::new(chain(&[1e6; 6], &[1e3; 5]), Platform::paper(2, 2), 1.0)
            .lattice(10_000)
            .unwrap();
        warm.seed_lattice(other);
        assert!(Arc::ptr_eq(&warm.lattice(10_000).unwrap(), &lat));
    }

    #[test]
    fn seeded_skeleton_short_circuits_build() {
        let g = chain(&[1e6; 6], &[1e3; 5]);
        let cfg = crate::dpa1d::Dpa1dConfig::default();
        let donor = Instance::new(g.clone(), Platform::paper(2, 2), 1.0);
        let sk = donor.transition_skeleton(&cfg).unwrap().unwrap();
        assert!(Arc::ptr_eq(&donor.cached_skeleton().unwrap(), &sk));
        assert!(sk.size_bytes() > 0);

        let warm = Instance::new(g, Platform::paper(2, 2), 1.0);
        assert!(warm.cached_skeleton().is_none());
        warm.seed_skeleton(Arc::clone(&sk));
        let served = warm.transition_skeleton(&cfg).unwrap().unwrap();
        assert!(Arc::ptr_eq(&served, &sk), "seed must serve the build");
    }

    #[test]
    fn bounded_fallback_after_complete_overflow() {
        // 30-chain: the complete set (465 transitions) overflows an edge
        // cap of 100, but the bounded build at the session period fits —
        // the cache must fall through to it instead of giving up.
        let g = chain(&[1e6; 30], &[1e3; 29]);
        let cfg = crate::dpa1d::Dpa1dConfig {
            edge_cap: 100,
            ..Default::default()
        };
        let inst = Instance::new(g, Platform::paper(2, 2), 0.003);
        let sk = inst.transition_skeleton(&cfg).unwrap().unwrap();
        assert!(!sk.is_complete() && sk.serves(0.003));
        assert!(
            inst.cached_skeleton().is_none(),
            "complete slot holds a failure"
        );
        assert!(Arc::ptr_eq(&inst.cached_bounded_skeleton().unwrap(), &sk));
        // A tighter re-target is served from the same cached artifact.
        let sk2 = inst
            .with_period(0.001)
            .transition_skeleton(&cfg)
            .unwrap()
            .unwrap();
        assert!(Arc::ptr_eq(&sk, &sk2));
    }

    #[test]
    fn bounded_failures_keyed_by_cap_and_ceiling() {
        // A loose period's bounded build overflows the cap (its ceiling
        // admits the whole complete set); a tighter request afterwards
        // must retry at its own ceiling and succeed rather than inherit
        // the failure — the regression this PR fixes.
        let g = chain(&[1e6; 30], &[1e3; 29]);
        let cfg = crate::dpa1d::Dpa1dConfig {
            edge_cap: 100,
            ..Default::default()
        };
        let loose = Instance::new(g, Platform::paper(2, 2), 0.03);
        assert!(loose.transition_skeleton(&cfg).unwrap().is_none());
        let sk = loose
            .with_period(0.003)
            .transition_skeleton(&cfg)
            .unwrap()
            .unwrap();
        assert!(sk.serves(0.003));
        // The loose request still answers `None` off the recorded failure
        // (its ceiling is at least the failed one at the same cap).
        assert!(loose.transition_skeleton(&cfg).unwrap().is_none());
    }

    #[test]
    fn sweep_ceiling_hint_targets_one_build() {
        let g = chain(&[1e6; 30], &[1e3; 29]);
        let cfg = crate::dpa1d::Dpa1dConfig {
            edge_cap: 100,
            ..Default::default()
        };
        let inst = Instance::new(g, Platform::paper(2, 2), 0.001);
        inst.note_period_ceiling(0.003);
        let sk = inst.transition_skeleton(&cfg).unwrap().unwrap();
        // Built at the noted grid ceiling, not the session period, so the
        // same artifact serves every point of the sweep.
        assert!(sk.serves(0.003));
        let sk2 = inst
            .with_period(0.003)
            .transition_skeleton(&cfg)
            .unwrap()
            .unwrap();
        assert!(Arc::ptr_eq(&sk, &sk2));
    }

    #[test]
    fn seeded_bounded_skeleton_routes_to_bounded_slot() {
        let g = chain(&[1e6; 30], &[1e3; 29]);
        let cfg = crate::dpa1d::Dpa1dConfig {
            edge_cap: 100,
            ..Default::default()
        };
        let donor = Instance::new(g.clone(), Platform::paper(2, 2), 0.003);
        let sk = donor.transition_skeleton(&cfg).unwrap().unwrap();
        assert!(!sk.is_complete());
        let warm = Instance::new(g, Platform::paper(2, 2), 0.003);
        warm.seed_skeleton(Arc::clone(&sk));
        assert!(warm.cached_skeleton().is_none());
        assert!(Arc::ptr_eq(&warm.cached_bounded_skeleton().unwrap(), &sk));
        let served = warm.transition_skeleton(&cfg).unwrap().unwrap();
        assert!(Arc::ptr_eq(&served, &sk), "seed must serve the build");
    }

    #[test]
    fn with_fault_reuses_fault_invariant_artifacts() {
        let g = chain(&[1e6; 6], &[1e3; 5]);
        let inst = Instance::new(g, Platform::paper(2, 2), 1.0);
        let lat = inst.lattice(10_000).unwrap();
        let sk = inst
            .transition_skeleton(&crate::dpa1d::Dpa1dConfig::default())
            .unwrap()
            .unwrap();
        let xy = inst.route_table(RoutePolicy::Xy);

        // Core fault: everything survives, route tables byte-for-byte.
        let core_hurt = inst.with_fault(cmp_platform::Fault::Core(CoreId { u: 1, v: 1 }));
        assert!(!core_hurt.platform().core_alive(CoreId { u: 1, v: 1 }));
        assert!(Arc::ptr_eq(&core_hurt.lattice(10_000).unwrap(), &lat));
        assert!(Arc::ptr_eq(&core_hurt.cached_skeleton().unwrap(), &sk));
        assert!(Arc::ptr_eq(
            &core_hurt.cached_route_table(RoutePolicy::Xy).unwrap(),
            &xy
        ));

        // Link fault: lattice/skeleton survive, route tables are patched
        // bit-identically to a cold build on the faulted platform.
        let link_hurt = inst.with_fault(cmp_platform::Fault::Link(
            CoreId { u: 0, v: 0 },
            CoreId { u: 0, v: 1 },
        ));
        assert!(Arc::ptr_eq(&link_hurt.lattice(10_000).unwrap(), &lat));
        assert!(Arc::ptr_eq(&link_hurt.cached_skeleton().unwrap(), &sk));
        let patched = link_hurt.cached_route_table(RoutePolicy::Xy).unwrap();
        let cold = RouteTable::build(link_hurt.platform(), RoutePolicy::Xy);
        assert_eq!(*patched, cold);
        // Unbuilt policies stay unbuilt — patching is lazy per slot.
        assert!(link_hurt.cached_route_table(RoutePolicy::Yx).is_none());
    }

    #[test]
    fn with_edit_lattice_reuse_matches_cold_rebuild() {
        let g = chain(&[1e6; 6], &[1e3; 5]);
        let inst = Instance::new(g.clone(), Platform::paper(2, 2), 1.0);
        let lat = inst.lattice(10_000).unwrap();
        let order = inst.spg().topo_order();

        // Weight retune: the whole shared lattice (cuts included) is
        // reused by pointer.
        let retune = spg::Edit::Retune {
            stage: order[2],
            work: 2e6,
        };
        let tuned = inst.with_edit(&retune);
        assert_eq!(tuned.spg().weight(order[2]), 2e6);
        assert!(Arc::ptr_eq(&tuned.lattice(10_000).unwrap(), &lat));

        // Volume edit: structure reused, cuts recomputed — equal to a
        // cold enumeration on the edited graph.
        let revol = spg::Edit::SetVolume {
            edge: spg::EdgeId(2),
            volume: 7e3,
        };
        let edited = inst.with_edit(&revol);
        let warm = edited.lattice(10_000).unwrap();
        assert!(!Arc::ptr_eq(&warm, &lat));
        let cold = Instance::new(g.with_edit(&revol), Platform::paper(2, 2), 1.0)
            .lattice(10_000)
            .unwrap();
        assert_eq!(warm.cuts, cold.cuts);
        assert_eq!(warm.lattice.len(), cold.lattice.len());

        // Skeletons are invalidated on edits (value-derived work sums).
        let cfg = crate::dpa1d::Dpa1dConfig::default();
        let _ = inst.transition_skeleton(&cfg).unwrap().unwrap();
        assert!(inst.with_edit(&retune).cached_skeleton().is_none());
    }

    #[test]
    fn patched_solves_match_cold_solves() {
        use crate::solver::{SolveCtx, Solver};
        let g = chain(&[2e8, 3e8, 1e8, 4e8], &[1e4, 2e4, 5e3]);
        let pf = Platform::paper(2, 2);
        let inst = Instance::new(g.clone(), pf.clone(), 1.0);
        let ctx = SolveCtx::new(7);
        // Warm the caches before patching.
        let _ = crate::solvers::Greedy::default().solve(&inst, &ctx);

        let fault = cmp_platform::Fault::Core(CoreId { u: 0, v: 0 });
        let warm = inst.with_fault(fault);
        let cold = Instance::new(g.clone(), pf.with_fault(fault), 1.0);
        for s in crate::solvers::default_heuristics() {
            let a = s.solve(&warm, &ctx);
            let b = s.solve(&cold, &ctx);
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x.energy(), y.energy(), "{}", s.name()),
                (Err(_), Err(_)) => {}
                (x, y) => panic!("{}: warm {x:?} vs cold {y:?}", s.name()),
            }
        }

        let edit = spg::Edit::Retune {
            stage: g.topo_order()[1],
            work: 5e8,
        };
        let warm = inst.with_edit(&edit);
        let cold = Instance::new(g.with_edit(&edit), pf, 1.0);
        for s in crate::solvers::default_heuristics() {
            let a = s.solve(&warm, &ctx);
            let b = s.solve(&cold, &ctx);
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x.energy(), y.energy(), "{}", s.name()),
                (Err(_), Err(_)) => {}
                (x, y) => panic!("{}: warm {x:?} vs cold {y:?}", s.name()),
            }
        }
    }

    #[test]
    fn snake_and_topo_are_cached() {
        let g = chain(&[1e6; 3], &[1e3; 2]);
        let inst = Instance::new(g, Platform::paper(2, 3), 1.0);
        assert_eq!(inst.snake_order().len(), 6);
        assert_eq!(inst.topo_order().len(), 3);
        // Second call returns the same slice (cache hit).
        assert_eq!(
            inst.snake_order().as_ptr(),
            inst.with_period(2.0).snake_order().as_ptr()
        );
    }
}
