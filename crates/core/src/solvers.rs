//! [`Solver`] implementations: the five §5 heuristics, the §4.4 exact
//! solver, and the hill-climbing [`Refined`] combinator.
//!
//! Every solver shares the instance's precomputation: all of them consult
//! the per-stage speed-feasibility table as a pre-search reject, `DPA1D`
//! reads the interned ideal lattice (enumerated once per instance instead
//! of once per call), `Greedy` starts its speed sweep at the shared
//! feasibility floor, and `Exact` reuses the cached topological order.

use std::sync::Arc;

use cmp_platform::RoutePolicy;

use crate::common::{Failure, HeuristicKind, Solution};
use crate::dpa1d::Dpa1dConfig;
use crate::exact::ExactConfig;
use crate::instance::Instance;
use crate::random::RANDOM_TRIALS;
use crate::refine::RefineConfig;
use crate::solver::{SolveCtx, Solver};

/// Shared pre-search reject: a single stage that misses the period alone at
/// the fastest speed makes *every* mapping invalid, so each solver fails
/// fast off the instance's cached table instead of searching.
fn reject_infeasible(inst: &Instance) -> Result<(), Failure> {
    match inst.infeasible_stage() {
        Some(s) => Err(Failure::NoValidMapping(format!(
            "stage {} exceeds the fastest speed at T = {}",
            s.0,
            inst.period()
        ))),
        None => Ok(()),
    }
}

/// The §5.1 `Random` heuristic: best of `trials` random draws.
#[derive(Debug, Clone)]
pub struct Random {
    /// Independent draws per call (paper: 10).
    pub trials: usize,
}

impl Default for Random {
    fn default() -> Self {
        Random {
            trials: RANDOM_TRIALS,
        }
    }
}

impl Solver for Random {
    fn name(&self) -> &str {
        "Random"
    }

    fn solve(&self, inst: &Instance, ctx: &SolveCtx) -> Result<Solution, Failure> {
        ctx.check_budget()?;
        reject_infeasible(inst)?;
        let table = inst.route_table(inst.platform().policy);
        crate::random::random_trials(
            inst.spg(),
            inst.platform(),
            inst.period(),
            ctx.seed,
            self.trials,
            Some(&table),
        )
    }
}

/// The §5.2 `Greedy` heuristic: wavefront growth at each speed, downgrade.
#[derive(Debug, Clone)]
pub struct Greedy {
    /// Whether to run the §5.2 speed-downgrade post-pass (on in the paper;
    /// off only for the downgrade ablation).
    pub downgrade: bool,
}

impl Default for Greedy {
    fn default() -> Self {
        Greedy { downgrade: true }
    }
}

impl Solver for Greedy {
    fn name(&self) -> &str {
        "Greedy"
    }

    fn solve(&self, inst: &Instance, ctx: &SolveCtx) -> Result<Solution, Failure> {
        ctx.check_budget()?;
        reject_infeasible(inst)?;
        // The shared speed-feasibility floor: wavefront passes below the
        // heaviest stage's slowest feasible speed can never place it.
        let k_lo = inst.min_uniform_speed().unwrap_or(0);
        let table = inst.route_table(inst.platform().policy);
        crate::greedy::greedy_run(
            inst.spg(),
            inst.platform(),
            inst.period(),
            self.downgrade,
            k_lo,
            Some(&table),
        )
    }
}

/// The §5.3 `DPA2D` nested dynamic program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dpa2d;

impl Solver for Dpa2d {
    fn name(&self) -> &str {
        "DPA2D"
    }

    fn solve(&self, inst: &Instance, ctx: &SolveCtx) -> Result<Solution, Failure> {
        ctx.check_budget()?;
        reject_infeasible(inst)?;
        let table = inst.route_table(inst.platform().policy);
        crate::dpa2d::dpa2d_run(inst.spg(), inst.platform(), inst.period(), Some(&table))
    }
}

/// The §5.4 `DPA1D` uni-line DP, reading the instance's shared interned
/// ideal lattice (enumerated at most once per instance across probe decades
/// and portfolio members).
#[derive(Debug, Clone, Default)]
pub struct Dpa1d {
    /// Complexity budgets (ideal and transition caps).
    pub cfg: Dpa1dConfig,
}

impl Solver for Dpa1d {
    fn name(&self) -> &str {
        "DPA1D"
    }

    fn solve(&self, inst: &Instance, ctx: &SolveCtx) -> Result<Solution, Failure> {
        ctx.check_budget()?;
        reject_infeasible(inst)?;
        let shared = inst
            .lattice(self.cfg.ideal_cap)
            .map_err(|e| crate::dpa1d::lattice_failure(&e))?;
        // The period-independent transition skeleton, when the complete
        // set fits the edge cap; `None` falls back to per-period
        // materialisation inside `dpa1d_run`.
        let skeleton = inst.transition_skeleton(&self.cfg)?;
        let table = inst.route_table(RoutePolicy::Snake);
        crate::dpa1d::dpa1d_run(
            inst.spg(),
            inst.platform(),
            inst.period(),
            &self.cfg,
            Some(&shared),
            skeleton.as_deref(),
            Some(&table),
        )
    }
}

/// The §5.4 `DPA2D1D` heuristic (`DPA2D` on a virtual `1 × pq` line,
/// snaked).
#[derive(Debug, Clone, Copy, Default)]
pub struct Dpa2d1d;

impl Solver for Dpa2d1d {
    fn name(&self) -> &str {
        "DPA2D1D"
    }

    fn solve(&self, inst: &Instance, ctx: &SolveCtx) -> Result<Solution, Failure> {
        ctx.check_budget()?;
        reject_infeasible(inst)?;
        let table = inst.route_table(RoutePolicy::Snake);
        crate::dpa2d1d::dpa2d1d_run(inst.spg(), inst.platform(), inst.period(), Some(&table))
    }
}

/// The §4.4 exhaustive exact solver (ILP substitute; tiny instances only).
#[derive(Debug, Clone, Default)]
pub struct Exact {
    /// Budgets and the partition admissibility rule.
    pub cfg: ExactConfig,
}

impl Solver for Exact {
    fn name(&self) -> &str {
        "Exact"
    }

    fn solve(&self, inst: &Instance, ctx: &SolveCtx) -> Result<Solution, Failure> {
        ctx.check_budget()?;
        reject_infeasible(inst)?;
        crate::exact::exact_run(
            inst.spg(),
            inst.platform(),
            inst.period(),
            &self.cfg,
            inst.topo_order(),
        )
    }
}

/// Wrapper combinator: solve with the inner solver, then hill-climb the
/// result with single-stage migrations ([`crate::refine::refine`]). Fails
/// exactly when the inner solver fails.
pub struct Refined {
    inner: Arc<dyn Solver>,
    /// Refinement budget.
    pub cfg: RefineConfig,
    name: String,
}

impl Refined {
    /// Refinement around `inner` with the default budget.
    pub fn new(inner: Arc<dyn Solver>) -> Self {
        Refined::with_config(inner, RefineConfig::default())
    }

    /// Refinement around `inner` with an explicit budget.
    pub fn with_config(inner: Arc<dyn Solver>, cfg: RefineConfig) -> Self {
        let name = format!("Refined({})", inner.name());
        Refined { inner, cfg, name }
    }
}

impl Solver for Refined {
    fn name(&self) -> &str {
        &self.name
    }

    fn solve(&self, inst: &Instance, ctx: &SolveCtx) -> Result<Solution, Failure> {
        let start = self.inner.solve(inst, ctx)?;
        ctx.check_budget()?;
        let table = inst.route_table_for(&start.mapping);
        Ok(crate::refine::refine_with(
            inst.spg(),
            inst.platform(),
            &start,
            inst.period(),
            &self.cfg,
            table.as_deref(),
        ))
    }
}

/// The five §5 heuristics at default configuration, in the paper's plot
/// order (the order of [`crate::ALL_HEURISTICS`]).
pub fn default_heuristics() -> Vec<Arc<dyn Solver>> {
    vec![
        Arc::new(Random::default()),
        Arc::new(Greedy::default()),
        Arc::new(Dpa2d),
        Arc::new(Dpa1d::default()),
        Arc::new(Dpa2d1d),
    ]
}

impl HeuristicKind {
    /// The default-configured solver for this heuristic.
    pub fn solver(self) -> Arc<dyn Solver> {
        match self {
            HeuristicKind::Random => Arc::new(Random::default()),
            HeuristicKind::Greedy => Arc::new(Greedy::default()),
            HeuristicKind::Dpa2d => Arc::new(Dpa2d),
            HeuristicKind::Dpa1d => Arc::new(Dpa1d::default()),
            HeuristicKind::Dpa2d1d => Arc::new(Dpa2d1d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_platform::Platform;
    use spg::chain;

    fn small_instance() -> Instance {
        Instance::new(chain(&[2e8; 6], &[1e4; 5]), Platform::paper(2, 2), 0.5)
    }

    #[test]
    fn every_solver_has_the_paper_name() {
        let names: Vec<String> = default_heuristics()
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        assert_eq!(names, ["Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D"]);
        assert_eq!(Exact::default().name(), "Exact");
    }

    #[test]
    fn solvers_match_their_legacy_free_functions() {
        #![allow(deprecated)]
        let inst = small_instance();
        let (g, pf, t) = (inst.spg().clone(), inst.platform().clone(), inst.period());
        let ctx = SolveCtx::new(11);
        let pairs: Vec<(Result<Solution, Failure>, Result<Solution, Failure>)> = vec![
            (
                Random::default().solve(&inst, &ctx),
                crate::random_heuristic(&g, &pf, t, 11),
            ),
            (
                Greedy::default().solve(&inst, &ctx),
                crate::greedy(&g, &pf, t),
            ),
            (Dpa2d.solve(&inst, &ctx), crate::dpa2d(&g, &pf, t)),
            (
                Dpa1d::default().solve(&inst, &ctx),
                crate::dpa1d(&g, &pf, t, &Dpa1dConfig::default()),
            ),
            (Dpa2d1d.solve(&inst, &ctx), crate::dpa2d1d(&g, &pf, t)),
            (
                Exact::default().solve(&inst, &ctx),
                crate::exact(&g, &pf, t, &ExactConfig::default()),
            ),
        ];
        for (new, old) in pairs {
            match (new, old) {
                (Ok(a), Ok(b)) => assert_eq!(a.energy(), b.energy()),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("solver/legacy mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn quick_reject_fails_every_solver() {
        // One 3e9-cycle stage can never meet T = 1 at 1 GHz.
        let inst = Instance::new(chain(&[3e9, 1.0], &[1.0]), Platform::paper(2, 2), 1.0);
        let ctx = SolveCtx::new(0);
        for s in default_heuristics() {
            assert!(matches!(
                s.solve(&inst, &ctx),
                Err(Failure::NoValidMapping(_))
            ));
        }
    }

    #[test]
    fn refined_never_worsens_inner() {
        let inst = small_instance();
        let ctx = SolveCtx::new(3);
        let base = Random::default().solve(&inst, &ctx).unwrap();
        let refined = Refined::new(Arc::new(Random::default()))
            .solve(&inst, &ctx)
            .unwrap();
        assert!(refined.energy() <= base.energy() * (1.0 + 1e-12));
    }

    #[test]
    fn expired_budget_short_circuits() {
        let inst = small_instance();
        let ctx = SolveCtx {
            seed: 0,
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..Default::default()
        };
        for s in default_heuristics() {
            assert!(matches!(
                s.solve(&inst, &ctx),
                Err(Failure::TooExpensive(_))
            ));
        }
    }

    #[test]
    fn dpa1d_shares_the_instance_lattice() {
        let inst = small_instance();
        let ctx = SolveCtx::new(0);
        let a = Dpa1d::default().solve(&inst, &ctx).unwrap();
        // Second call must reuse the cached lattice (same Arc) and agree.
        let l1 = inst.lattice(Dpa1dConfig::default().ideal_cap).unwrap();
        let b = Dpa1d::default().solve(&inst, &ctx).unwrap();
        let l2 = inst.lattice(Dpa1dConfig::default().ideal_cap).unwrap();
        assert!(Arc::ptr_eq(&l1, &l2));
        assert_eq!(a.energy(), b.energy());
    }
}
