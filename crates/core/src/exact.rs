//! Exhaustive exact solver — the stand-in for the paper's §4.4 integer
//! linear program.
//!
//! Enumerates every partition of the stages into at most `p·q` clusters
//! (restricted-growth assignment in topological order, pruned by per-cluster
//! work), filters to DAG-partitions (acyclic cluster quotient — or not, see
//! [`PartitionRule::General`], the paper's §7 future-work relaxation), then
//! enumerates every injective cluster→core placement and both XY route
//! orders, scoring each candidate with the shared evaluator.
//!
//! The paper could only run its CPLEX formulation up to `2 × 2` CMPs; this
//! solver covers the same scale (and a little more) and is used as the
//! ground-truth baseline in tests and in the `exact` experiments: no
//! heuristic may ever return less energy on instances the solver can close
//! (with XY routing, which is lossless on `2 × 2` grids where every simple
//! route is an XY route).

use cmp_mapping::{assign_min_speeds, is_dag_partition, Mapping, RouteSpec, REL_TOL};
use cmp_platform::{CoreId, Platform, RouteOrder, Topology};
use spg::{Spg, StageId};

use crate::common::{better, validated, Failure, Solution};

/// Which partitions are admissible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionRule {
    /// The paper's mapping rule (§3.3): acyclic cluster quotient.
    DagPartition,
    /// Arbitrary partitions (the paper's §7 "general mappings" future
    /// work); may find strictly better mappings on some instances.
    General,
}

/// Budgets and rules for the exact solver.
#[derive(Debug, Clone)]
pub struct ExactConfig {
    /// Refuse instances with more stages than this (Bell-number blow-up).
    pub max_stages: usize,
    /// Refuse placement enumerations larger than this.
    pub max_placements: u64,
    /// Partition admissibility rule.
    pub rule: PartitionRule,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_stages: 10,
            max_placements: 2_000_000,
            rule: PartitionRule::DagPartition,
        }
    }
}

/// Finds the minimum-energy valid mapping by exhaustive search.
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "use `ea_core::solvers::Exact` with an `Instance`"
)]
pub fn exact(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &ExactConfig,
) -> Result<Solution, Failure> {
    exact_run(spg, pf, period, cfg, &spg.topo_order())
}

/// Exhaustive search over a caller-provided topological stage order (the
/// [`crate::solvers::Exact`] solver passes the instance's cached order).
pub(crate) fn exact_run(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &ExactConfig,
    order: &[StageId],
) -> Result<Solution, Failure> {
    let n = spg.n();
    if n > cfg.max_stages {
        return Err(Failure::budget(
            crate::common::BudgetPhase::Search,
            cfg.max_stages,
            n,
        ));
    }
    debug_assert_eq!(order.len(), n);
    let r = pf.n_cores();
    let cap_work = period * pf.power.max_freq() * (1.0 + REL_TOL);

    // Route disciplines tried per placement: both XY orders (lossless on
    // the paper's 2x2 grids), plus wrap-aware shortest routes when the
    // topology actually has wrap links to exploit.
    let mut route_specs = vec![
        RouteSpec::Xy(RouteOrder::RowFirst),
        RouteSpec::Xy(RouteOrder::ColFirst),
    ];
    let topo = pf.topo();
    if topo.wrap_rows() || topo.wrap_cols() {
        route_specs.push(RouteSpec::Shortest);
    }

    let mut best: Option<Solution> = None;
    let mut assignment: Vec<usize> = vec![usize::MAX; n]; // stage -> block
    let mut block_work: Vec<f64> = Vec::new();
    enumerate_partitions(
        spg,
        order,
        0,
        &mut assignment,
        &mut block_work,
        r,
        cap_work,
        &mut |assignment, k| {
            try_partition(spg, pf, period, cfg, assignment, k, &route_specs, &mut best);
        },
    );
    best.ok_or_else(|| Failure::NoValidMapping("exhaustive search found no valid mapping".into()))
}

/// Restricted-growth enumeration of partitions in topological stage order.
#[allow(clippy::too_many_arguments)]
fn enumerate_partitions(
    spg: &Spg,
    order: &[StageId],
    i: usize,
    assignment: &mut Vec<usize>,
    block_work: &mut Vec<f64>,
    max_blocks: usize,
    cap_work: f64,
    leaf: &mut impl FnMut(&[usize], usize),
) {
    if i == order.len() {
        leaf(assignment, block_work.len());
        return;
    }
    let s = order[i];
    let w = spg.weight(s);
    // Existing blocks.
    for b in 0..block_work.len() {
        if block_work[b] + w > cap_work {
            continue;
        }
        assignment[s.idx()] = b;
        block_work[b] += w;
        enumerate_partitions(
            spg,
            order,
            i + 1,
            assignment,
            block_work,
            max_blocks,
            cap_work,
            leaf,
        );
        block_work[b] -= w;
    }
    // A fresh block (restricted growth: block ids appear in first-use order).
    if block_work.len() < max_blocks && w <= cap_work {
        assignment[s.idx()] = block_work.len();
        block_work.push(w);
        enumerate_partitions(
            spg,
            order,
            i + 1,
            assignment,
            block_work,
            max_blocks,
            cap_work,
            leaf,
        );
        block_work.pop();
    }
    assignment[s.idx()] = usize::MAX;
}

/// Evaluates one partition: placement × route-discipline search.
#[allow(clippy::too_many_arguments)]
fn try_partition(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &ExactConfig,
    assignment: &[usize],
    k: usize,
    route_specs: &[RouteSpec],
    best: &mut Option<Solution>,
) {
    // Block-index pseudo-allocation for the quotient check.
    if cfg.rule == PartitionRule::DagPartition {
        let pseudo: Vec<CoreId> = assignment
            .iter()
            .map(|&b| CoreId { u: 0, v: b as u32 })
            .collect();
        if !is_dag_partition(spg, &pseudo) {
            return;
        }
    }
    // Count placements r·(r-1)·…·(r-k+1) up front.
    let cores: Vec<CoreId> = pf.alive_cores().collect();
    let r = cores.len();
    if k > r {
        return;
    }
    let mut count: u64 = 1;
    for j in 0..k {
        count = count.saturating_mul((r - j) as u64);
    }
    if count > cfg.max_placements {
        // Treated as a no-solution-from-this-partition rather than a global
        // failure: the caller limited max_stages so this is unreachable in
        // practice.
        return;
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let mut used = vec![false; r];
    place_blocks(
        spg,
        pf,
        period,
        assignment,
        k,
        &cores,
        route_specs,
        &mut chosen,
        &mut used,
        best,
    );
}

/// Recursive injective placement of blocks onto cores.
#[allow(clippy::too_many_arguments)]
fn place_blocks(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    assignment: &[usize],
    k: usize,
    cores: &[CoreId],
    route_specs: &[RouteSpec],
    chosen: &mut Vec<usize>,
    used: &mut Vec<bool>,
    best: &mut Option<Solution>,
) {
    if chosen.len() == k {
        let alloc: Vec<CoreId> = assignment.iter().map(|&b| cores[chosen[b]]).collect();
        let Some(speed) = assign_min_speeds(spg, pf, &alloc, period) else {
            return;
        };
        for spec in route_specs {
            let mapping = Mapping {
                alloc: alloc.clone(),
                speed: speed.clone(),
                routes: spec.clone(),
            };
            if let Ok(sol) = validated(spg, pf, mapping, period) {
                *best = better(best.take(), Some(sol));
            }
        }
        return;
    }
    for c in 0..cores.len() {
        if used[c] {
            continue;
        }
        used[c] = true;
        chosen.push(c);
        place_blocks(
            spg,
            pf,
            period,
            assignment,
            k,
            cores,
            route_specs,
            chosen,
            used,
            best,
        );
        chosen.pop();
        used[c] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpa1d::{dpa1d_run, Dpa1dConfig};
    use spg::{chain, parallel};

    /// Non-deprecated local stand-in for the legacy free function (shadows
    /// the glob import), so the tests exercise `exact_run` directly.
    fn exact(
        spg: &Spg,
        pf: &Platform,
        period: f64,
        cfg: &ExactConfig,
    ) -> Result<Solution, Failure> {
        exact_run(spg, pf, period, cfg, &spg.topo_order())
    }

    #[test]
    fn single_stage_pair_on_one_core() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[1e6, 1e6], &[1e3]);
        let sol = exact(&g, &pf, 1.0, &ExactConfig::default()).unwrap();
        assert_eq!(sol.eval.active_cores, 1, "co-location avoids comm + leak");
        let expect = 0.08 + (2e6 / 0.15e9) * 0.08;
        assert!((sol.energy() - expect).abs() < 1e-9);
    }

    #[test]
    fn forced_split_picks_adjacent_cores() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[0.9e9, 0.9e9], &[1e6]);
        let sol = exact(&g, &pf, 1.0, &ExactConfig::default()).unwrap();
        assert_eq!(sol.eval.active_cores, 2);
        // Both stages on adjacent cores: exactly one link used.
        assert_eq!(sol.eval.link_loads.len(), 1);
    }

    #[test]
    fn exact_never_beaten_by_dpa1d_on_uniline() {
        // On a 1xq platform DPA1D is optimal (Theorem 1) among uni-line
        // mappings, and uni-line == the whole platform here, so the two must
        // agree.
        let pf = Platform::paper(1, 3);
        let g = chain(&[0.5e9, 0.4e9, 0.3e9, 0.2e9], &[1e5, 2e5, 3e5]);
        let t = 1.0;
        let ex = exact(&g, &pf, t, &ExactConfig::default()).unwrap();
        let dp = dpa1d_run(&g, &pf, t, &Dpa1dConfig::default(), None, None, None).unwrap();
        assert!(
            (ex.energy() - dp.energy()).abs() < 1e-9,
            "exact {} vs dpa1d {}",
            ex.energy(),
            dp.energy()
        );
    }

    #[test]
    fn general_rule_never_worse_than_dag_rule() {
        let pf = Platform::paper(2, 2);
        let g = parallel(
            &chain(&[0.5e9; 3], &[1e4; 2]),
            &chain(&[0.5e9; 3], &[1e4; 2]),
        );
        let t = 2.0;
        let dag = exact(&g, &pf, t, &ExactConfig::default()).unwrap();
        let gen = exact(
            &g,
            &pf,
            t,
            &ExactConfig {
                rule: PartitionRule::General,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(gen.energy() <= dag.energy() * (1.0 + 1e-12));
    }

    #[test]
    fn too_many_stages_rejected() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[1e5; 15], &[1e2; 14]);
        assert!(matches!(
            exact(&g, &pf, 1.0, &ExactConfig::default()),
            Err(Failure::TooExpensive(_))
        ));
    }

    #[test]
    fn infeasible_instance_fails() {
        let pf = Platform::paper(1, 1);
        let g = chain(&[0.9e9, 0.9e9], &[1.0]);
        assert!(matches!(
            exact(&g, &pf, 1.0, &ExactConfig::default()),
            Err(Failure::NoValidMapping(_))
        ));
    }

    #[test]
    fn two_partition_gadget_proposition_1() {
        // Proposition 1's reduction: fork-join, two single-speed cores,
        // period = S/2 achievable iff the weights 2-partition. Weights
        // {3,3,2,2,2}+source/sink of 0 cycles: S = 12, T = 6 cycles at 1 Hz.
        let branches: Vec<Spg> = [3.0, 3.0, 2.0, 2.0, 2.0]
            .iter()
            .map(|&w| chain(&[0.0, w, 0.0], &[0.0, 0.0]))
            .collect();
        let g = spg::parallel_many(&branches);
        let pf = Platform {
            power: cmp_platform::PowerModel::single(1.0, 1.0, 0.0),
            bw: 1e12,
            e_bit: 0.0,
            ..Platform::paper(1, 2)
        };
        // T = 6: solvable (3+3 | 2+2+2).
        let sol = exact(&g, &pf, 6.0, &ExactConfig::default()).unwrap();
        assert!(sol.eval.max_cycle_time <= 6.0 * (1.0 + 1e-9));
        // T = 5.9: no 2-partition fits.
        assert!(exact(&g, &pf, 5.9, &ExactConfig::default()).is_err());
    }

    use spg::Spg;
}
