//! The `Greedy` heuristic (paper §5.2).
//!
//! For each speed `s` in the speed set, `greedy(s)` grows the mapping from
//! core `C_{1,1}` with all cores clocked at `s`:
//!
//! * cores are processed in **wavefront order** (increasing `u+v`, then
//!   `u`), so every forwarded stage arrives before its target core is
//!   processed;
//! * each core keeps a pending list of candidate stages (successors of
//!   already-placed stages, merged with the communication volume they will
//!   receive), sorted by non-increasing volume;
//! * the core greedily places pending stages whose predecessors are all
//!   placed, while its computation cycle-time fits the period; successors of
//!   newly placed stages join the same pending list (so a whole workflow can
//!   collapse onto one core under a loose period);
//! * leftovers are **shared between the east and south neighbours**, each
//!   stage going to the neighbour currently carrying the smaller pending
//!   volume (the paper's balancing rule); a stage stranded on the
//!   bottom-right corner fails this speed.
//!
//! The resulting mapping is validated with the platform's routing policy
//! (XY on the paper's mesh), then *downgraded*:
//! each enrolled core drops to its slowest feasible speed and unused cores
//! are turned off (§5.2's post-pass). `Greedy` keeps the best energy over
//! all speeds.
//!
//! The paper describes this heuristic informally; interpretation choices
//! (wavefront order, volume-balanced forwarding, skip-if-not-ready) are
//! documented in DESIGN.md §3.

use cmp_mapping::{assign_min_speeds, Mapping, RouteSpec};
use cmp_platform::{CoreId, Platform, RouteTable};
use spg::{Spg, StageId};

use crate::common::{better, validated_with, Failure, Solution};

/// Runs `Greedy`: one wavefront pass per available speed, downgrade, keep
/// the lowest-energy valid mapping.
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "use `ea_core::solvers::Greedy` with an `Instance` (skips provably infeasible speeds)"
)]
pub fn greedy(spg: &Spg, pf: &Platform, period: f64) -> Result<Solution, Failure> {
    greedy_opts(spg, pf, period, true)
}

/// `Greedy` with the §5.2 speed-downgrade post-pass made optional, for the
/// downgrade ablation experiment.
pub fn greedy_opts(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    downgrade: bool,
) -> Result<Solution, Failure> {
    greedy_run(spg, pf, period, downgrade, 0, None)
}

/// `Greedy` starting from speed index `k_lo`. The [`crate::solvers::Greedy`]
/// solver passes the instance's shared speed-feasibility floor: a wavefront
/// pass at a speed below the heaviest stage's slowest feasible speed can
/// never place that stage, so those passes are skipped without changing the
/// result.
pub(crate) fn greedy_run(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    downgrade: bool,
    k_lo: usize,
    table: Option<&RouteTable>,
) -> Result<Solution, Failure> {
    let mut best: Option<Solution> = None;
    for k in k_lo..pf.power.m() {
        best = better(best, greedy_at_speed(spg, pf, period, k, downgrade, table));
    }
    best.ok_or_else(|| Failure::NoValidMapping("greedy failed at every speed".into()))
}

/// One pending entry: a candidate stage and the communication volume that
/// will flow to wherever it lands.
#[derive(Debug, Clone, Copy)]
struct Pending {
    stage: StageId,
    volume: f64,
}

fn greedy_at_speed(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    k: usize,
    downgrade: bool,
    table: Option<&RouteTable>,
) -> Option<Solution> {
    let n = spg.n();
    let freq = pf.power.speed(k).freq;
    let cap_alive = period * freq * (1.0 + 1e-12);
    let n_cores = pf.n_cores();

    let mut pending: Vec<Vec<Pending>> = vec![Vec::new(); n_cores];
    // Which pending list currently carries each unplaced stage.
    let mut carrier: Vec<Option<usize>> = vec![None; n];
    let mut placed: Vec<Option<CoreId>> = vec![None; n];
    let mut preds_left: Vec<usize> = (0..n).map(|i| spg.in_degree(StageId(i as u32))).collect();

    let start = CoreId { u: 0, v: 0 };
    pending[start.flat(pf.q)].push(Pending {
        stage: spg.source(),
        volume: 0.0,
    });
    carrier[spg.source().idx()] = Some(start.flat(pf.q));

    // Wavefront order guarantees east/south forwards land on unprocessed
    // cores.
    let mut wavefront: Vec<CoreId> = pf.cores().collect();
    wavefront.sort_by_key(|c| (c.u + c.v, c.u));

    for core in wavefront {
        let f = core.flat(pf.q);
        let mut work = 0.0f64;
        // A dead core places nothing (negative cap can never admit a
        // stage) but still forwards its pending stages east/south.
        let cap = if pf.core_alive(core) { cap_alive } else { -1.0 };
        // Greedy placement passes: repeatedly place the largest-volume
        // pending stage that is ready and fits.
        loop {
            pending[f].sort_by(|a, b| b.volume.partial_cmp(&a.volume).unwrap());
            let pick = pending[f]
                .iter()
                .position(|p| preds_left[p.stage.idx()] == 0 && work + spg.weight(p.stage) <= cap);
            let Some(idx) = pick else { break };
            let p = pending[f].remove(idx);
            let s = p.stage;
            placed[s.idx()] = Some(core);
            carrier[s.idx()] = None;
            work += spg.weight(s);
            // Successors become candidates; merge volumes wherever the
            // successor is already carried.
            for (_, e) in spg.out_edges(s) {
                preds_left[e.dst.idx()] -= 1;
                let j = e.dst;
                if placed[j.idx()].is_some() {
                    continue;
                }
                match carrier[j.idx()] {
                    None => {
                        carrier[j.idx()] = Some(f);
                        pending[f].push(Pending {
                            stage: j,
                            volume: e.volume,
                        });
                    }
                    Some(cf) => {
                        if let Some(entry) = pending[cf].iter_mut().find(|q| q.stage == j) {
                            entry.volume += e.volume;
                        }
                    }
                }
            }
        }
        // Forward leftovers east/south, balancing pending volume.
        if pending[f].is_empty() {
            continue;
        }
        let east = (core.v + 1 < pf.q).then(|| CoreId {
            u: core.u,
            v: core.v + 1,
        });
        let south = (core.u + 1 < pf.p).then(|| CoreId {
            u: core.u + 1,
            v: core.v,
        });
        if east.is_none() && south.is_none() {
            return None; // stages stranded on the bottom-right corner
        }
        let leftovers = std::mem::take(&mut pending[f]);
        let vol_at = |cf: usize, pending: &Vec<Vec<Pending>>| -> f64 {
            pending[cf].iter().map(|p| p.volume).sum()
        };
        for p in leftovers {
            let target = match (east, south) {
                (Some(e), Some(s)) => {
                    if vol_at(e.flat(pf.q), &pending) <= vol_at(s.flat(pf.q), &pending) {
                        e
                    } else {
                        s
                    }
                }
                (Some(e), None) => e,
                (None, Some(s)) => s,
                (None, None) => unreachable!(),
            };
            let tf = target.flat(pf.q);
            carrier[p.stage.idx()] = Some(tf);
            pending[tf].push(p);
        }
    }

    if placed.iter().any(|p| p.is_none()) {
        return None;
    }
    let alloc: Vec<CoreId> = placed.into_iter().map(|p| p.unwrap()).collect();
    // All enrolled cores at speed k first (the paper validates at uniform
    // speed), then the downgrade post-pass; both must be valid — the
    // downgraded mapping can only reduce energy (same cycle-time bounds).
    let mut used = vec![false; n_cores];
    for &c in &alloc {
        used[c.flat(pf.q)] = true;
    }
    let uniform: Vec<Option<usize>> = used
        .iter()
        .map(|&u| if u { Some(k) } else { None })
        .collect();
    let mapping = Mapping {
        alloc: alloc.clone(),
        speed: uniform,
        routes: RouteSpec::for_platform(pf),
    };
    let at_speed = validated_with(spg, pf, mapping, period, table).ok()?;
    if !downgrade {
        return Some(at_speed);
    }
    // Downgrade: slowest feasible speed per core, unused cores off.
    let downgraded = assign_min_speeds(spg, pf, &alloc, period)?;
    let mapping = Mapping {
        alloc,
        speed: downgraded,
        routes: RouteSpec::for_platform(pf),
    };
    match validated_with(spg, pf, mapping, period, table) {
        Ok(sol) => Some(sol),
        Err(_) => Some(at_speed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::validated;
    use spg::{chain, parallel_many, SpgGenConfig};

    #[test]
    fn loose_period_collapses_to_single_core() {
        let pf = Platform::paper(4, 4);
        let g = chain(&[1e6; 10], &[1e3; 9]);
        let sol = greedy_opts(&g, &pf, 1.0, true).unwrap();
        assert_eq!(sol.eval.active_cores, 1, "everything fits one slow core");
        // Energy = leak + dynamic at the slowest speed.
        let expect = 0.08 + (1e7 / 0.15e9) * 0.08;
        assert!((sol.energy() - expect).abs() < 1e-9);
    }

    #[test]
    fn tight_period_spreads_over_cores() {
        let pf = Platform::paper(4, 4);
        // 8 stages of 0.5e9 cycles each; at 1 GHz each core fits 2 per
        // second, so at least 4 cores are needed for T = 1.
        let g = chain(&[0.5e9; 8], &[1e3; 7]);
        let sol = greedy_opts(&g, &pf, 1.0, true).unwrap();
        assert!(sol.eval.active_cores >= 4);
    }

    #[test]
    fn impossible_period_fails() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[2e9, 1.0], &[1.0]);
        assert!(greedy_opts(&g, &pf, 1.0, true).is_err());
    }

    #[test]
    fn fork_join_handled() {
        let pf = Platform::paper(4, 4);
        // Light shared source/sink (merged weights add up), heavy inners.
        let branches: Vec<_> = (0..5)
            .map(|_| chain(&[1e3, 0.4e9, 1e3], &[1e4; 2]))
            .collect();
        let g = parallel_many(&branches);
        let sol = greedy_opts(&g, &pf, 1.0, true).unwrap();
        assert!(sol.eval.active_cores >= 2);
    }

    #[test]
    fn downgrade_never_raises_energy() {
        // greedy() already keeps the better of uniform/downgraded; this
        // checks the envelope on a random workload.
        let pf = Platform::paper(4, 4);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        use rand::SeedableRng;
        let cfg = SpgGenConfig {
            n: 40,
            elevation: 5,
            ccr: Some(10.0),
            ..Default::default()
        };
        let g = spg::random_spg(&cfg, &mut rng);
        let t = 0.05;
        if let Ok(sol) = greedy_opts(&g, &pf, t, true) {
            // Re-deriving min speeds for its allocation must reproduce it.
            let speeds = assign_min_speeds(&g, &pf, &sol.mapping.alloc, t).unwrap();
            let m = Mapping {
                speed: speeds,
                ..sol.mapping.clone()
            };
            let again = validated(&g, &pf, m, t).unwrap();
            assert!(again.energy() <= sol.energy() * (1.0 + 1e-12));
        }
    }
}
