//! Shared heuristic interface: solutions, failures, and small helpers used
//! by several algorithms.

use cmp_mapping::{evaluate_with, Evaluation, Mapping};
use cmp_platform::{Platform, RouteTable};
use spg::Spg;

/// The five heuristics of paper §5, in the order plotted in Figures 8–13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeuristicKind {
    /// §5.1 — random DAG-partition and placement, best of ten draws.
    Random,
    /// §5.2 — greedy wavefront growth, one pass per speed, downgrade.
    Greedy,
    /// §5.3 — two-dimensional nested dynamic program.
    Dpa2d,
    /// §5.4 — optimal uni-directional uni-line DP on the snake.
    Dpa1d,
    /// §5.4 — `DPA2D` on a virtual `1 × pq` CMP, mapped along the snake.
    Dpa2d1d,
}

/// All five heuristics, in plot order.
pub const ALL_HEURISTICS: [HeuristicKind; 5] = [
    HeuristicKind::Random,
    HeuristicKind::Greedy,
    HeuristicKind::Dpa2d,
    HeuristicKind::Dpa1d,
    HeuristicKind::Dpa2d1d,
];

impl HeuristicKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            HeuristicKind::Random => "Random",
            HeuristicKind::Greedy => "Greedy",
            HeuristicKind::Dpa2d => "DPA2D",
            HeuristicKind::Dpa1d => "DPA1D",
            HeuristicKind::Dpa2d1d => "DPA2D1D",
        }
    }
}

impl std::fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// State-reduction telemetry of a `DPA1D` solve (see
/// [`crate::Dpa1dConfig::dominance`]): how much of the admitted transition
/// system the dominance frontier actually relaxed, and — when
/// [`crate::Dpa1dConfig::frontier_cap`] truncated an exact frontier — the
/// certified energy bound gap the returned solution carries instead of a
/// `TooExpensive` failure. Campaign JSONL rows and the serve daemon's
/// `stats` response surface these fields verbatim.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PruneStats {
    /// Admitted transitions the relaxation scanned.
    pub transitions_kept: u64,
    /// Admitted transitions skipped because every DP state of their source
    /// ideal was dominance-pruned before its out-edges were scanned.
    pub transitions_pruned: u64,
    /// Largest per-ideal energy frontier observed (the strictly-improving
    /// prefix-minima staircase over cluster counts within one ideal's DP
    /// row).
    pub frontier_max: u32,
    /// Certified optimality gap: the true optimum is no more than
    /// `bound_gap` below the returned energy. Non-zero only when
    /// `frontier_cap` truncated an exact frontier (the truncated states'
    /// completions are lower-bounded, not searched); `0.0` means the solve
    /// is exact modulo dominance.
    pub bound_gap: f64,
}

/// A validated mapping together with its evaluation.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The mapping (allocation, speeds, routes).
    pub mapping: Mapping,
    /// Its validated evaluation at the requested period.
    pub eval: Evaluation,
    /// `DPA1D` state-reduction telemetry (`None` for every other solver,
    /// and for `DPA1D` paths that never engage the dominance frontier).
    pub prune: Option<PruneStats>,
}

impl Solution {
    /// Total energy, the optimization objective.
    #[inline]
    pub fn energy(&self) -> f64 {
        self.eval.energy
    }

    /// The certified energy bound gap, when this solution was produced by
    /// a frontier-truncated `DPA1D` solve (see [`PruneStats::bound_gap`]);
    /// `0.0` for exact solutions.
    #[inline]
    pub fn bound_gap(&self) -> f64 {
        self.prune.map_or(0.0, |p| p.bound_gap)
    }
}

/// Which phase of a solve exhausted its complexity budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetPhase {
    /// Order-ideal lattice enumeration (`DPA1D`'s ideal cap).
    Enumerate,
    /// Cluster-transition materialisation (`DPA1D`'s edge cap).
    Materialise,
    /// An exhaustive search-space bound (the exact solver's stage limit).
    Search,
    /// A wall-clock deadline ([`crate::SolveCtx`]).
    Deadline,
}

impl BudgetPhase {
    /// Stable lower-case name (campaign JSONL field values).
    pub fn name(self) -> &'static str {
        match self {
            BudgetPhase::Enumerate => "enumerate",
            BudgetPhase::Materialise => "materialise",
            BudgetPhase::Search => "search",
            BudgetPhase::Deadline => "deadline",
        }
    }
}

impl std::fmt::Display for BudgetPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Structured budget-exhaustion telemetry: which phase aborted, the cap it
/// ran under, and the count observed at abort. Campaign JSONL records the
/// three fields verbatim, which is what makes the paper's elevation-vs-cost
/// wall (§6.2.1) plottable straight from nightly runs — a string payload
/// could only be grepped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The phase that aborted.
    pub phase: BudgetPhase,
    /// The configured cap (ideals, transitions, or stages; 0 for
    /// wall-clock deadlines, which have no count-shaped cap).
    pub cap: u64,
    /// The count at abort (for [`BudgetPhase::Enumerate`] a lower bound on
    /// the true lattice size; 0 for deadlines).
    pub count: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.phase {
            BudgetPhase::Enumerate => {
                write!(f, "ideal lattice exceeds the cap of {} ideals", self.cap)
            }
            BudgetPhase::Materialise => {
                write!(f, "more than {} cluster transitions", self.cap)
            }
            BudgetPhase::Search => write!(
                f,
                "{} stages exceed the exact solver's limit of {}",
                self.count, self.cap
            ),
            BudgetPhase::Deadline => f.write_str("wall-clock budget exhausted"),
        }
    }
}

/// Why a heuristic produced no mapping. Both variants count as "failures"
/// in the paper's Tables 2 and 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Failure {
    /// The search completed but found no valid mapping for this period.
    NoValidMapping(String),
    /// The search exceeded its complexity budget (e.g. `DPA1D`'s ideal
    /// lattice explosion on high-elevation graphs, paper §6.2.1), with
    /// structured phase/cap/count telemetry.
    TooExpensive(BudgetExceeded),
}

impl Failure {
    /// Shorthand [`Failure::TooExpensive`] constructor.
    pub fn budget(phase: BudgetPhase, cap: usize, count: usize) -> Failure {
        Failure::TooExpensive(BudgetExceeded {
            phase,
            cap: cap as u64,
            count: count as u64,
        })
    }

    /// The structured budget telemetry, when this is a budget failure.
    pub fn budget_exceeded(&self) -> Option<&BudgetExceeded> {
        match self {
            Failure::TooExpensive(b) => Some(b),
            Failure::NoValidMapping(_) => None,
        }
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::NoValidMapping(why) => write!(f, "no valid mapping: {why}"),
            Failure::TooExpensive(why) => write!(f, "budget exceeded: {why}"),
        }
    }
}

impl std::error::Error for Failure {}

/// Validates a candidate mapping and wraps it into a [`Solution`].
pub fn validated(
    spg: &Spg,
    pf: &Platform,
    mapping: Mapping,
    period: f64,
) -> Result<Solution, Failure> {
    validated_with(spg, pf, mapping, period, None)
}

/// [`validated`] with an optional precomputed route table (see
/// [`cmp_mapping::evaluate_with`]); solvers pass their session's cached
/// table so re-validation walks packed link-index spans.
pub fn validated_with(
    spg: &Spg,
    pf: &Platform,
    mapping: Mapping,
    period: f64,
    table: Option<&RouteTable>,
) -> Result<Solution, Failure> {
    match evaluate_with(spg, pf, &mapping, period, table) {
        Ok(eval) => Ok(Solution {
            mapping,
            eval,
            prune: None,
        }),
        Err(e) => Err(Failure::NoValidMapping(e.to_string())),
    }
}

/// Keeps the lower-energy of two optional solutions.
pub fn better(a: Option<Solution>, b: Option<Solution>) -> Option<Solution> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.energy() <= y.energy() { x } else { y }),
        (Some(x), None) => Some(x),
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_mapping::assign_min_speeds;
    use cmp_platform::CoreId;
    use spg::chain;

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = ALL_HEURISTICS.iter().map(|h| h.name()).collect();
        assert_eq!(names, vec!["Random", "Greedy", "DPA2D", "DPA1D", "DPA2D1D"]);
    }

    #[test]
    fn validated_accepts_good_and_rejects_bad() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[1e6, 1e6], &[10.0]);
        let mut m = Mapping::all_on(&pf, 2, CoreId { u: 0, v: 0 });
        m.speed = assign_min_speeds(&g, &pf, &m.alloc, 1.0).unwrap();
        assert!(validated(&g, &pf, m.clone(), 1.0).is_ok());
        // Far too tight a period.
        assert!(matches!(
            validated(&g, &pf, m, 1e-9),
            Err(Failure::NoValidMapping(_))
        ));
    }

    #[test]
    fn better_picks_lower_energy() {
        let pf = Platform::paper(1, 1);
        let g = chain(&[1e6, 1e6], &[0.0]);
        let mut m = Mapping::all_on(&pf, 2, CoreId { u: 0, v: 0 });
        m.speed = vec![Some(0)];
        let slow = validated(&g, &pf, m.clone(), 1.0).unwrap();
        m.speed = vec![Some(4)];
        let fast = validated(&g, &pf, m, 1.0).unwrap();
        assert!(slow.energy() < fast.energy());
        let picked = better(Some(fast), Some(slow.clone())).unwrap();
        assert_eq!(picked.energy(), slow.energy());
        assert!(better(None::<Solution>, None).is_none());
    }
}
