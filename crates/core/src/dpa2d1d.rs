//! The `DPA2D1D` heuristic (paper §5.4).
//!
//! Runs the `DPA2D` nested dynamic program on a **virtual `1 × r` CMP**
//! (`r = p·q`), then lays the resulting one-row allocation along the snake
//! embedding of the physical grid. Because consecutive snake positions are
//! physically adjacent, the virtual horizontal links map one-to-one onto
//! snake links: loads, bandwidth checks and hop energies carry over exactly,
//! so the snake-routed mapping validates whenever the virtual DP succeeded.
//!
//! The paper motivates this as the cheap 1D fallback: near-optimal on long,
//! low-communication graphs, while avoiding `DPA1D`'s exponential ideal
//! lattice on high-elevation graphs.

use cmp_mapping::{assign_min_speeds, Mapping, RouteSpec};
use cmp_platform::{snake_core, Platform, RouteTable};
use spg::Spg;

use crate::common::{validated_with, Failure, Solution};
use crate::dpa2d::dpa2d_alloc;

/// Runs `DPA2D1D`: `DPA2D` on a virtual `1 × pq` platform, snaked onto the
/// physical grid.
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "use `ea_core::solvers::Dpa2d1d` with an `Instance`"
)]
pub fn dpa2d1d(spg: &Spg, pf: &Platform, period: f64) -> Result<Solution, Failure> {
    dpa2d1d_run(spg, pf, period, None)
}

/// `DPA2D1D` implementation behind both the deprecated free function and
/// the [`crate::solvers::Dpa2d1d`] solver.
pub(crate) fn dpa2d1d_run(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    table: Option<&RouteTable>,
) -> Result<Solution, Failure> {
    if pf.is_faulted() {
        // The virtual 1×r platform cannot express faults at physical
        // coordinates; other solvers cover faulted platforms.
        return Err(Failure::NoValidMapping(
            "DPA2D1D does not support faulted platforms".into(),
        ));
    }
    let r = pf.n_cores() as u32;
    let virt = pf.reshaped(1, r);
    let valloc = dpa2d_alloc(spg, &virt, period)?;
    // Virtual core (0, j) becomes snake position j on the physical grid.
    let alloc: Vec<_> = valloc
        .into_iter()
        .map(|c| {
            debug_assert_eq!(c.u, 0);
            snake_core(pf, c.v as usize)
        })
        .collect();
    let speed = assign_min_speeds(spg, pf, &alloc, period)
        .ok_or_else(|| Failure::NoValidMapping("speed assignment failed".into()))?;
    let mapping = Mapping {
        alloc,
        speed,
        routes: RouteSpec::Snake,
    };
    validated_with(spg, pf, mapping, period, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg::{chain, parallel_many};

    #[test]
    fn pipeline_uses_all_snake_cores_when_needed() {
        // Unlike DPA2D (capped at q cores on a pipeline), DPA2D1D can use
        // all p*q snake positions.
        let pf = Platform::paper(4, 4);
        let g = chain(&[0.9e9; 8], &[1e3; 7]);
        let sol = dpa2d1d_run(&g, &pf, 1.0, None).unwrap();
        assert_eq!(sol.eval.active_cores, 8);
    }

    #[test]
    fn loose_period_single_core() {
        let pf = Platform::paper(4, 4);
        let g = chain(&[1e6; 10], &[1e3; 9]);
        let sol = dpa2d1d_run(&g, &pf, 1.0, None).unwrap();
        assert_eq!(sol.eval.active_cores, 1);
    }

    #[test]
    fn fork_join_succeeds() {
        let pf = Platform::paper(4, 4);
        // Light shared source/sink (merged weights add up). On a 1×r
        // virtual CMP each x-level lands on a single core, so one level's
        // three parallel stages (3 × 0.3e9 cycles) must fit the fastest
        // speed together.
        let branches: Vec<_> = (0..3)
            .map(|_| chain(&[1e3, 0.3e9, 0.3e9, 1e3], &[1e4; 3]))
            .collect();
        let g = parallel_many(&branches);
        let sol = dpa2d1d_run(&g, &pf, 1.0, None).unwrap();
        assert!(sol.eval.active_cores >= 2);
    }

    #[test]
    fn infeasible_fails() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[3e9, 1.0], &[1.0]);
        assert!(dpa2d1d_run(&g, &pf, 1.0, None).is_err());
    }
}
