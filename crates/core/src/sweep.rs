//! Period sweeps: the paper's feasibility/energy-versus-tightness curves
//! (§6.1.3, Figures 8–13's x-axis) as a first-class API.
//!
//! A [`PeriodSweep`] runs a solver list over a grid of period bounds — given
//! either directly or as platform *utilisations* (`u`, resolved through
//! [`Instance::utilisation_period`]) — against **one** instance, so every
//! sweep point shares the instance's period-independent caches via
//! [`Instance::with_period`]: the interned ideal lattice, `DPA1D`'s
//! [`crate::TransitionSkeleton`], and the route tables are built once for
//! the whole curve instead of once per point. Sweep points fan out over
//! the rayon pool; within a point the solvers run sequentially, so
//! per-point outcomes are deterministic in `(instance, solvers, seed)` and
//! bit-identical to a fresh [`Instance::new`] solve at that period (the
//! root test-suite pins this).
//!
//! ```
//! use ea_core::sweep::PeriodSweep;
//! use ea_core::Instance;
//! use cmp_platform::Platform;
//!
//! let inst = Instance::new(spg::chain(&[2e8; 6], &[1e4; 5]), Platform::paper(2, 2), 1.0);
//! let grid = PeriodSweep::geometric(1.0, 0.1, 8); // one decade, 8 points
//! let report = PeriodSweep::over_periods(ea_core::solvers::default_heuristics(), grid)
//!     .seeded(2011)
//!     .run(&inst);
//! for f in report.frontier() {
//!     println!("{}: tightest feasible T = {:?}", f.solver, f.tightest_period);
//! }
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use crate::instance::Instance;
use crate::portfolio::{Portfolio, SolverRun};
use crate::solver::Solver;

/// One solver's outcome at one sweep point (name, seed, solution or
/// failure, wall time) — the same record a [`Portfolio`] run produces.
pub type SolveOutcome = SolverRun;

/// Which quantity the sweep grid enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Grid values are period bounds `T` (seconds).
    Period,
    /// Grid values are platform utilisations `u ∈ (0, 1]`; tighter periods
    /// correspond to *larger* `u` (`T = W / (u · p·q · f_max)`).
    Utilisation,
}

/// A configured sweep: a solver list and a grid over one axis.
pub struct PeriodSweep {
    solvers: Vec<Arc<dyn Solver>>,
    axis: SweepAxis,
    values: Vec<f64>,
    seed: u64,
    parallel: bool,
}

impl PeriodSweep {
    /// A sweep whose grid values are period bounds (seconds).
    pub fn over_periods(solvers: Vec<Arc<dyn Solver>>, periods: Vec<f64>) -> Self {
        PeriodSweep {
            solvers,
            axis: SweepAxis::Period,
            values: periods,
            seed: 0,
            parallel: true,
        }
    }

    /// A sweep whose grid values are platform utilisations, resolved to
    /// periods per instance ([`Instance::utilisation_period`]).
    pub fn over_utilisations(solvers: Vec<Arc<dyn Solver>>, utilisations: Vec<f64>) -> Self {
        PeriodSweep {
            solvers,
            axis: SweepAxis::Utilisation,
            values: utilisations,
            seed: 0,
            parallel: true,
        }
    }

    /// A geometric grid from `start` to `stop` inclusive (`points ≥ 2`;
    /// with `points == 1` the grid is just `[start]`). Works on either
    /// axis — e.g. `geometric(1.0, 0.1, 16)` is the §6.1.3 decade at
    /// 16-point resolution.
    pub fn geometric(start: f64, stop: f64, points: usize) -> Vec<f64> {
        assert!(
            start > 0.0 && stop > 0.0 && start.is_finite() && stop.is_finite(),
            "geometric grids need positive finite endpoints"
        );
        assert!(points > 0, "a grid needs at least one point");
        if points == 1 {
            return vec![start];
        }
        let ratio = stop / start;
        (0..points)
            .map(|i| start * ratio.powf(i as f64 / (points - 1) as f64))
            .collect()
    }

    /// Sets the base seed (mixed per solver name, like [`Portfolio`], so a
    /// sweep point's outcomes equal a fresh portfolio run at that period).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the rayon fan-out over sweep points (on by
    /// default; outcomes are identical either way, only wall times vary).
    pub fn parallel(mut self, yes: bool) -> Self {
        self.parallel = yes;
        self
    }

    /// The solver names, in sweep order.
    pub fn solver_names(&self) -> Vec<String> {
        self.solvers.iter().map(|s| s.name().to_string()).collect()
    }

    /// Runs the sweep against `base`'s workload and platform. Every point
    /// re-targets `base` via [`Instance::with_period`], so the
    /// period-independent caches are built once for the whole curve;
    /// `base`'s own period is *not* part of the grid unless listed.
    pub fn run(&self, base: &Instance) -> SweepReport {
        let started = Instant::now();
        let resolved: Vec<(f64, f64)> = self
            .values
            .iter()
            .map(|&v| match self.axis {
                SweepAxis::Period => (v, v),
                SweepAxis::Utilisation => (v, base.utilisation_period(v)),
            })
            .collect();
        // Announce the grid's loosest period before fanning out: the first
        // `DPA1D` bounded-skeleton build then targets a work ceiling that
        // serves *every* point of the sweep (see
        // [`Instance::note_period_ceiling`]), instead of the first-solved
        // point's — which under the rayon fan-out would be an arbitrary
        // (though result-identical) choice.
        if let Some(loosest) = resolved
            .iter()
            .map(|&(_, t)| t)
            .max_by(f64::total_cmp)
            .filter(|t| t.is_finite())
        {
            base.note_period_ceiling(loosest);
        }
        let portfolio = Portfolio::new(self.solvers.clone())
            .seeded(self.seed)
            .parallel(false);
        let solve_point = |&(value, period): &(f64, f64)| -> SweepPoint {
            let inst = base.with_period(period);
            let report = portfolio.run(&inst);
            SweepPoint {
                value,
                period,
                runs: report.runs,
            }
        };
        let points: Vec<SweepPoint> =
            if self.parallel && resolved.len() > 1 && rayon::current_num_threads() > 1 {
                // A 1-worker pool runs points inline anyway; skip the fan-out
                // plumbing entirely so sequential mode is the literal code path.
                resolved.par_iter().map(solve_point).collect()
            } else {
                resolved.iter().map(solve_point).collect()
            };
        SweepReport {
            axis: self.axis,
            solver_names: self.solver_names(),
            points,
            wall: started.elapsed(),
        }
    }
}

/// All solver outcomes at one grid point.
pub struct SweepPoint {
    /// The grid value (a period or a utilisation, per [`SweepAxis`]).
    pub value: f64,
    /// The resolved period bound this point solved at.
    pub period: f64,
    /// Per-solver outcomes, in sweep solver order.
    pub runs: Vec<SolveOutcome>,
}

impl SweepPoint {
    /// The lowest energy over the point's solvers, if any succeeded.
    pub fn best_energy(&self) -> Option<f64> {
        self.runs
            .iter()
            .filter_map(SolveOutcome::energy)
            .min_by(f64::total_cmp)
    }

    /// This point's outcome for one solver (by display name).
    pub fn outcome(&self, solver: &str) -> Option<&SolveOutcome> {
        self.runs.iter().find(|r| r.name == solver)
    }
}

/// One solver's feasibility frontier over a sweep.
#[derive(Debug, Clone)]
pub struct FrontierEntry {
    /// Solver display name.
    pub solver: String,
    /// Tightest (smallest) period at which the solver succeeded.
    pub tightest_period: Option<f64>,
    /// The grid value at that tightest point (equals `tightest_period` on
    /// the period axis; the largest feasible `u` on the utilisation axis).
    pub tightest_value: Option<f64>,
    /// Number of grid points where the solver succeeded.
    pub feasible_points: usize,
}

/// The outcome of [`PeriodSweep::run`]: per-point solver outcomes plus the
/// derived feasibility frontier.
pub struct SweepReport {
    /// The swept axis.
    pub axis: SweepAxis,
    /// Solver names, in sweep order (the order of every point's `runs`).
    pub solver_names: Vec<String>,
    /// One entry per grid value, in grid order.
    pub points: Vec<SweepPoint>,
    /// Wall time of the whole sweep.
    pub wall: Duration,
}

impl SweepReport {
    /// Per-solver feasibility frontier: the tightest period each solver
    /// still solves, over the swept grid.
    pub fn frontier(&self) -> Vec<FrontierEntry> {
        self.solver_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let feasible: Vec<&SweepPoint> = self
                    .points
                    .iter()
                    .filter(|p| p.runs.get(i).is_some_and(|r| r.result.is_ok()))
                    .collect();
                let tightest = feasible.iter().min_by(|a, b| a.period.total_cmp(&b.period));
                FrontierEntry {
                    solver: name.clone(),
                    tightest_period: tightest.map(|p| p.period),
                    tightest_value: tightest.map(|p| p.value),
                    feasible_points: feasible.len(),
                }
            })
            .collect()
    }

    /// One solver's energy curve over the grid (`None` where it failed).
    pub fn energies(&self, solver: &str) -> Vec<Option<f64>> {
        self.points
            .iter()
            .map(|p| p.outcome(solver).and_then(SolveOutcome::energy))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::default_heuristics;
    use cmp_platform::Platform;
    use spg::chain;

    fn base() -> Instance {
        Instance::new(chain(&[2e8; 6], &[1e4; 5]), Platform::paper(2, 2), 1.0)
    }

    #[test]
    fn geometric_grid_hits_endpoints() {
        let g = PeriodSweep::geometric(1.0, 0.1, 16);
        assert_eq!(g.len(), 16);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[15] - 0.1).abs() < 1e-12);
        assert!(g.windows(2).all(|w| w[1] < w[0]), "descending decade");
        assert_eq!(PeriodSweep::geometric(2.0, 0.5, 1), vec![2.0]);
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let grid = PeriodSweep::geometric(1.0, 0.05, 6);
        let par = PeriodSweep::over_periods(default_heuristics(), grid.clone())
            .seeded(7)
            .run(&base());
        let seq = PeriodSweep::over_periods(default_heuristics(), grid)
            .seeded(7)
            .parallel(false)
            .run(&base());
        assert_eq!(par.points.len(), seq.points.len());
        for (a, b) in par.points.iter().zip(&seq.points) {
            assert_eq!(a.period, b.period);
            for (ra, rb) in a.runs.iter().zip(&b.runs) {
                assert_eq!(ra.name, rb.name);
                assert_eq!(ra.seed, rb.seed);
                assert_eq!(ra.energy(), rb.energy());
            }
        }
    }

    #[test]
    fn utilisation_axis_resolves_periods() {
        let inst = base();
        let report = PeriodSweep::over_utilisations(default_heuristics(), vec![0.2, 0.4])
            .seeded(1)
            .run(&inst);
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!((p.period - inst.utilisation_period(p.value)).abs() < 1e-15);
        }
        // Doubling the utilisation halves the period.
        let ratio = report.points[0].period / report.points[1].period;
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn frontier_reports_tightest_feasible_point() {
        // A decade sweep on a loose pipeline: every solver feasible at the
        // loose end, and the frontier period is the minimum feasible one.
        let grid = PeriodSweep::geometric(1.0, 0.01, 8);
        let report = PeriodSweep::over_periods(default_heuristics(), grid)
            .seeded(3)
            .run(&base());
        for f in report.frontier() {
            assert!(f.feasible_points > 0, "{} never succeeded", f.solver);
            let t = f.tightest_period.unwrap();
            // Every point at a looser period than the frontier must be
            // feasible-or-tighter consistent: the frontier is the min.
            for p in &report.points {
                if p.outcome(&f.solver).is_some_and(|r| r.result.is_ok()) {
                    assert!(p.period >= t);
                }
            }
        }
        // Energy curves have one slot per grid point.
        assert_eq!(report.energies("DPA1D").len(), 8);
    }
}
