//! The `DPA1D` heuristic (paper Theorem 1 + §5.4).
//!
//! Configures the CMP as a uni-directional uni-line of `r = p·q` cores by
//! snaking through the grid, and computes the **optimal** uni-line
//! DAG-partition mapping with the dynamic program of Theorem 1:
//!
//! > `E(G, k) = min over admissible G' ⊆ G of
//! >            E(G', k−1) ⊕ Ecal(G \ G')`,
//! > subject to `Cout(G') ≤ BW·T`,
//!
//! where admissible subgraphs are the order ideals of the SPG. Clusters are
//! the successive differences of a chain of ideals, so the quotient graph is
//! automatically acyclic, and on the uni-directional line the traffic on the
//! link between cores `k` and `k+1` is exactly the cut volume of the ideal
//! covering the first `k` clusters.
//!
//! Implementation: the ideal lattice is enumerated once (capped — a cap hit
//! is a heuristic *failure*, mirroring the paper's observation that `DPA1D`
//! cannot handle the high-elevation StreamIt graphs); every `(ideal,
//! extended ideal)` cluster transition with feasible work is materialised
//! once (also capped); a layered relaxation over at most `r` layers then
//! finds the optimum, and the cluster chain is laid along the snake.
//!
//! On a platform with a single row (`p = 1`) this *is* Theorem 1's exact
//! algorithm, which the test-suite cross-checks against the exhaustive
//! solver.

use cmp_mapping::{Mapping, RouteSpec, REL_TOL};
use cmp_platform::{snake_core, CoreId, Platform, RouteTable};
use spg::ideal::{enumerate_ideals, IdealId, IdealLattice};
use spg::{NodeSet, Spg, StageId};

use crate::common::{validated_with, Failure, Solution};
use crate::instance::SharedLattice;

/// Complexity budgets for `DPA1D`.
#[derive(Debug, Clone)]
pub struct Dpa1dConfig {
    /// Maximum number of order ideals to enumerate before failing.
    pub ideal_cap: usize,
    /// Maximum number of materialised cluster transitions before failing.
    pub edge_cap: usize,
}

impl Default for Dpa1dConfig {
    fn default() -> Self {
        Dpa1dConfig {
            ideal_cap: 60_000,
            edge_cap: 1_000_000,
        }
    }
}

/// Materialised DP transitions in struct-of-arrays layout: entry `t`
/// extends its block's source ideal to ideal `to[t]` by one cluster of
/// compute energy `ecal[t]`. Transitions are grouped into per-source
/// [`TransitionBlock`]s, so the source id is not repeated per edge and the
/// relaxation loops hoist everything that depends only on it (the split
/// arrays also keep the 16-fold layered sweep lean on memory bandwidth).
/// Ideals are referenced by their dense interned [`IdealId`] — the DP
/// never touches an owned `NodeSet`.
#[derive(Default)]
struct Transitions {
    to: Vec<IdealId>,
    ecal: Vec<f64>,
}

impl Transitions {
    fn len(&self) -> usize {
        self.to.len()
    }
}

/// All transitions out of one ideal: a contiguous range of [`Transitions`].
struct TransitionBlock {
    from: IdealId,
    /// Hop energy paid on the uni-line link entering the next cluster
    /// (0 for the empty ideal, which has no predecessor link).
    hop: f64,
    range: std::ops::Range<u32>,
}

/// Runs `DPA1D` on the snake embedding of `pf`.
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "use `ea_core::solvers::Dpa1d` with an `Instance` (shares the interned lattice across calls)"
)]
pub fn dpa1d(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
) -> Result<Solution, Failure> {
    dpa1d_run(spg, pf, period, cfg, None, None)
}

/// `DPA1D` on an optionally pre-enumerated lattice. `None` enumerates
/// locally (legacy behaviour); the [`crate::solvers::Dpa1d`] solver passes
/// the instance's cached [`SharedLattice`] and snake route table.
pub(crate) fn dpa1d_run(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
    shared: Option<&SharedLattice>,
    table: Option<&RouteTable>,
) -> Result<Solution, Failure> {
    let chain = match shared {
        Some(sh) => solve_chain_on(spg, pf, period, cfg, &sh.lattice, &sh.cuts)?,
        None => solve_chain(spg, pf, period, cfg)?,
    };
    build_snake_solution(spg, pf, period, &chain, table)
}

/// The optimal chain of clusters (at most `pf.n_cores()` of them) for the
/// uni-directional uni-line configuration, enumerating the lattice locally.
/// Exposed crate-internally for cross-checks.
pub(crate) fn solve_chain(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
) -> Result<Vec<Vec<StageId>>, Failure> {
    let lattice =
        enumerate_ideals(spg, cfg.ideal_cap).map_err(|e| Failure::TooExpensive(e.to_string()))?;
    // Per-ideal cut volumes (traffic on the uni-line link right after the
    // ideal). An ideal whose cut exceeds the bandwidth-period product can
    // never be a cluster boundary (its outgoing link is overloaded), so its
    // extensions are not even materialised; feasible cuts precompute their
    // hop energy in `materialize_transitions`.
    let cuts: Vec<f64> = lattice.iter().map(|s| spg.cut_volume(s)).collect();
    solve_chain_on(spg, pf, period, cfg, &lattice, &cuts)
}

/// The Theorem 1 dynamic program over an already-enumerated lattice with
/// precomputed per-ideal cut volumes. Enforces `cfg.ideal_cap` on the given
/// lattice too, so a shared over-cap lattice still fails this solver the
/// way a local enumeration would.
pub(crate) fn solve_chain_on(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
    lattice: &IdealLattice,
    cuts: &[f64],
) -> Result<Vec<Vec<StageId>>, Failure> {
    debug_assert_eq!(cuts.len(), lattice.len());
    if lattice.len() > cfg.ideal_cap {
        return Err(Failure::TooExpensive(format!(
            "ideal lattice exceeds the cap of {} ideals",
            cfg.ideal_cap
        )));
    }
    let r = pf.n_cores();
    let n_ideals = lattice.len();
    let tol = 1.0 + REL_TOL;
    // Strictly *below* the evaluator's tolerance band so every enumerated
    // cluster is guaranteed to admit a feasible speed (no rounding gap
    // between the pruning threshold and `min_speed_for`'s acceptance).
    let cap_work = period * pf.power.max_freq();
    let bw_cap = period * pf.bw * tol;

    let (blocks, transitions) = materialize_transitions(
        spg,
        pf,
        period,
        lattice,
        cuts,
        bw_cap,
        cap_work,
        cfg.edge_cap,
    )?;

    // The transition DAG is topologically ordered by id (every extension
    // strictly grows the ideal, and ids are sorted by cardinality), so a
    // SINGLE pass over the blocks in id order relaxes every cluster-count
    // layer at once: when block `from` is processed, all of its in-edges
    // (from strictly smaller ids) have already been relaxed, making row
    // `e[from]` final. The per-ideal rows `e[i][k]` (best energy covering
    // ideal `i` with exactly `k` clusters, `k <= min(r, n)`) stay
    // cache-resident while the big transition arrays stream through memory
    // exactly once — the classic layered formulation re-reads them `r`
    // times.
    let full = lattice.full_id().idx();
    let width = r.min(spg.n()) + 1; // k ∈ 0..width clusters
    let mut e = vec![f64::INFINITY; n_ideals * width];
    let mut par = vec![u32::MAX; n_ideals * width];
    // Finite-k window per ideal, to skip the empty parts of each row.
    let mut klo = vec![u16::MAX; n_ideals];
    let mut khi = vec![0u16; n_ideals];
    e[0] = 0.0;
    klo[0] = 0;
    let mut row = vec![f64::INFINITY; width];
    for b in &blocks {
        let f = b.from.idx();
        if klo[f] == u16::MAX {
            continue; // unreachable ideal
        }
        let lo = klo[f] as usize;
        // k+1 must stay below `width`.
        let hi = (khi[f] as usize).min(width - 2);
        if lo > hi {
            continue;
        }
        // Snapshot the source row: `e` rows of later ideals are written
        // while this one is read, and the borrow is easier on a buffer.
        row[lo..=hi].copy_from_slice(&e[f * width + lo..f * width + hi + 1]);
        let range = b.range.start as usize..b.range.end as usize;
        for (&to, &ecal) in transitions.to[range.clone()]
            .iter()
            .zip(&transitions.ecal[range])
        {
            let entry = b.hop + ecal;
            let t = to.idx();
            let base = t * width + lo + 1;
            // Infinite row entries propagate harmlessly: `INF + entry` never
            // beats any slot (`INF < INF` is false), so the inner loop needs
            // no finiteness branch; the slice zip hoists the bounds checks
            // out of the loop.
            let es = &mut e[base..base + (hi - lo) + 1];
            let ps = &mut par[base..base + (hi - lo) + 1];
            for ((&b_val, ev), pv) in row[lo..=hi].iter().zip(es).zip(ps) {
                let cand = b_val + entry;
                if cand < *ev {
                    *ev = cand;
                    *pv = b.from.0;
                }
            }
            klo[t] = klo[t].min(lo as u16 + 1);
            khi[t] = khi[t].max(hi as u16 + 1);
        }
    }

    // Best cluster count for the full ideal.
    let full_row = &e[full * width..(full + 1) * width];
    let Some((k_best, _)) = full_row
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_finite())
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
    else {
        return Err(Failure::NoValidMapping(
            "no feasible cluster chain within the core count".into(),
        ));
    };

    // Walk parents back from (full, k_best) to (empty, 0); cluster members
    // stream straight out of the arena, no set is materialised.
    let mut chain: Vec<Vec<StageId>> = Vec::with_capacity(k_best);
    let mut j = full;
    for k in (1..=k_best).rev() {
        let i = par[j * width + k] as usize;
        debug_assert_ne!(i, u32::MAX as usize, "broken parent chain");
        let members: Vec<StageId> = lattice
            .get(IdealId(j as u32))
            .difference_iter(lattice.get(IdealId(i as u32)))
            .map(|x| StageId(x as u32))
            .collect();
        chain.push(members);
        j = i;
    }
    debug_assert_eq!(j, 0, "chain must end at the empty ideal");
    chain.reverse();
    Ok(chain)
}

/// Lays a cluster chain along the snake and validates it.
pub(crate) fn build_snake_solution(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    chain: &[Vec<StageId>],
    table: Option<&RouteTable>,
) -> Result<Solution, Failure> {
    let mut alloc = vec![CoreId { u: 0, v: 0 }; spg.n()];
    for (pos, cluster) in chain.iter().enumerate() {
        let core = snake_core(pf, pos);
        for &s in cluster {
            alloc[s.idx()] = core;
        }
    }
    let speed = cmp_mapping::assign_min_speeds(spg, pf, &alloc, period)
        .ok_or_else(|| Failure::NoValidMapping("cluster exceeds fastest speed".into()))?;
    let mapping = Mapping {
        alloc,
        speed,
        routes: RouteSpec::Snake,
    };
    validated_with(spg, pf, mapping, period, table)
}

/// Enumerates every (ideal, one-cluster extension) pair with cluster work
/// within `cap_work`, visiting each extension exactly once via
/// first-included-stage branching on ready stages. Ideals whose outgoing
/// cut already exceeds the bandwidth-period product are skipped outright:
/// no chain may pass through them, so their transitions would be dead
/// weight in the relaxation.
#[allow(clippy::too_many_arguments)]
fn materialize_transitions(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    lattice: &IdealLattice,
    cuts: &[f64],
    bw_cap: f64,
    cap_work: f64,
    edge_cap: usize,
) -> Result<(Vec<TransitionBlock>, Transitions), Failure> {
    let mut blocks: Vec<TransitionBlock> = Vec::new();
    let mut transitions = Transitions::default();
    let mut ctx = ExtendCtx {
        spg,
        lattice,
        pred_masks: lattice.pred_masks(),
        cap_work,
        stack: Vec::with_capacity(4 * spg.n()),
    };
    // Flattened speed table: selection matches `PowerModel::min_speed_for`
    // (up to one reciprocal rounding in the last ulp — harmless here: the
    // energies only steer the argmin, and the chosen chain is re-priced by
    // the shared evaluator), with divisions hoisted out of the visit path.
    let speeds: Vec<(f64, f64)> = (0..pf.power.m())
        .map(|k| {
            let sp = pf.power.speed(k);
            (sp.freq, sp.power / sp.freq)
        })
        .collect();
    let leak = pf.power.p_leak * period;
    let inv_period = (1.0 - 1e-12) / period;
    let ecal_of = |w: f64| -> Option<f64> {
        let needed = w * inv_period;
        speeds
            .iter()
            .find(|&&(freq, _)| freq >= needed)
            .map(|&(_, energy_per_cycle)| leak + w * energy_per_cycle)
    };
    for from in lattice.ids() {
        if from.idx() != 0 && cuts[from.idx()] > bw_cap {
            continue; // outgoing link overloaded: unreachable boundary
        }
        // The ready stages of `from` are exactly its recorded covers.
        ctx.stack.clear();
        ctx.stack
            .extend(lattice.covers(from).iter().map(|&(s, _)| StageId(s)));
        let hi = ctx.stack.len();
        let start = transitions.len() as u32;
        let ok = extend(&mut ctx, from, 0.0, 0, hi, &mut |to: IdealId,
                                                          w: f64|
         -> bool {
            if transitions.len() >= edge_cap {
                return false;
            }
            // The work pruning guarantees a feasible speed exists; be
            // defensive about rounding anyway and drop the transition
            // rather than panic.
            if let Some(ecal) = ecal_of(w) {
                transitions.to.push(to);
                transitions.ecal.push(ecal);
            }
            true
        });
        if !ok {
            return Err(Failure::TooExpensive(format!(
                "more than {edge_cap} cluster transitions"
            )));
        }
        let end = transitions.len() as u32;
        if end > start {
            let hop = if from.idx() == 0 {
                0.0
            } else {
                pf.hop_energy(cuts[from.idx()])
            };
            blocks.push(TransitionBlock {
                from,
                hop,
                range: start..end,
            });
        }
    }
    Ok((blocks, transitions))
}

/// Shared state of the cluster-extension DFS: the graph, the interned
/// lattice (whose Hasse covers resolve "current ideal + stage" to the next
/// `IdealId` without hashing), and an arena stack holding every recursion
/// level's ready list as a range — the DFS performs no per-node allocation.
struct ExtendCtx<'a> {
    spg: &'a Spg,
    lattice: &'a IdealLattice,
    pred_masks: &'a [NodeSet],
    cap_work: f64,
    stack: Vec<StageId>,
}

/// DFS over cluster extensions of `cur`, whose pending ready list is
/// `ctx.stack[lo..hi]` (in lattice cover order — NOT sorted by weight, so
/// an overweight stage must be `continue`d past, never `break`ed on). Each
/// loop iteration picks `stack[k]` as the *next* included stage (everything
/// before `k` stays excluded on this path), so every distinct extension is
/// visited exactly once. `visit` receives the extension's interned id and
/// cluster work; returning `false` aborts.
fn extend(
    ctx: &mut ExtendCtx<'_>,
    cur: IdealId,
    w: f64,
    lo: usize,
    hi: usize,
    visit: &mut impl FnMut(IdealId, f64) -> bool,
) -> bool {
    for k in lo..hi {
        let s = ctx.stack[k];
        let w2 = w + ctx.spg.weight(s);
        if w2 > ctx.cap_work {
            continue; // a lighter stage later in the list may still fit
        }
        let child = ctx
            .lattice
            .child_via(cur, s)
            .expect("ready stage must have a recorded cover");
        if !visit(child, w2) {
            return false;
        }
        // Next level's ready list: the stages after `k`, plus the covers of
        // `child` released by `s` itself. A stage becomes ready exactly when
        // its last missing predecessor joins the ideal, so "newly released"
        // is precisely "`s` is one of its predecessors" — stages ready
        // earlier (including the ones deliberately excluded at shallower
        // levels of this path) can never have `s` as a predecessor.
        let next_lo = ctx.stack.len();
        ctx.stack.extend_from_within(k + 1..hi);
        for &(cs, _) in ctx.lattice.covers(child) {
            if ctx.pred_masks[cs as usize].contains(s.idx()) {
                ctx.stack.push(StageId(cs));
            }
        }
        let next_hi = ctx.stack.len();
        if next_hi > next_lo {
            let ok = extend(ctx, child, w2, next_lo, next_hi, visit);
            ctx.stack.truncate(next_lo);
            if !ok {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg::{chain, parallel_many};

    #[test]
    fn single_core_when_period_is_loose() {
        let pf = Platform::paper(4, 4);
        let g = chain(&[1e6; 10], &[1e3; 9]);
        let sol = dpa1d_run(&g, &pf, 1.0, &Dpa1dConfig::default(), None, None).unwrap();
        assert_eq!(sol.eval.active_cores, 1);
        let expect = 0.08 + (1e7 / 0.15e9) * 0.08;
        assert!((sol.energy() - expect).abs() < 1e-9);
    }

    #[test]
    fn splits_when_period_forces_it() {
        let pf = Platform::paper(2, 2);
        // 4 stages of 0.9e9 cycles: one per core at 1 GHz for T = 1.
        let g = chain(&[0.9e9; 4], &[1e3; 3]);
        let sol = dpa1d_run(&g, &pf, 1.0, &Dpa1dConfig::default(), None, None).unwrap();
        assert_eq!(sol.eval.active_cores, 4);
    }

    #[test]
    fn fails_when_chain_needs_too_many_cores() {
        let pf = Platform::paper(1, 2);
        let g = chain(&[0.9e9; 3], &[1e3; 2]);
        assert!(matches!(
            dpa1d_run(&g, &pf, 1.0, &Dpa1dConfig::default(), None, None),
            Err(Failure::NoValidMapping(_))
        ));
    }

    #[test]
    fn fails_on_lattice_explosion() {
        // Elevation-10 fork-join: ~6^10 ideals, way past a tiny cap.
        let branches: Vec<Spg> = (0..10).map(|_| chain(&[1e5; 7], &[1e2; 6])).collect();
        let g = parallel_many(&branches);
        let pf = Platform::paper(4, 4);
        let cfg = Dpa1dConfig {
            ideal_cap: 1000,
            ..Default::default()
        };
        assert!(matches!(
            dpa1d_run(&g, &pf, 1.0, &cfg, None, None),
            Err(Failure::TooExpensive(_))
        ));
    }

    #[test]
    fn respects_bandwidth_on_the_snake() {
        // Two heavy stages forced onto different cores with an edge too fat
        // for the link: DPA1D must fail rather than emit an invalid mapping.
        let pf = Platform::paper(1, 2);
        let g = chain(&[0.9e9, 0.9e9], &[25e9]);
        assert!(dpa1d_run(&g, &pf, 1.0, &Dpa1dConfig::default(), None, None).is_err());
    }

    #[test]
    fn chain_clusters_are_contiguous_prefix_partition() {
        let pf = Platform::paper(1, 4);
        let g = chain(&[0.5e9; 6], &[1e3; 5]);
        let chain_sol = solve_chain(&g, &pf, 1.0, &Dpa1dConfig::default()).unwrap();
        // Union of clusters in order must walk the chain front to back.
        let topo = g.topo_order();
        let flat: Vec<StageId> = chain_sol
            .iter()
            .flat_map(|c| {
                let mut c = c.clone();
                c.sort_by_key(|s| topo.iter().position(|t| t == s).unwrap());
                c
            })
            .collect();
        assert_eq!(flat, topo);
    }

    #[test]
    fn dp_energy_matches_evaluator() {
        // The DP's internal cost model must agree with the shared evaluator.
        let pf = Platform::paper(2, 3);
        let g = chain(&[0.5e9, 0.3e9, 0.7e9, 0.2e9], &[1e6, 5e6, 2e6]);
        let sol = dpa1d_run(&g, &pf, 1.0, &Dpa1dConfig::default(), None, None).unwrap();
        // Recompute through the evaluator (already done inside validated);
        // here we just sanity-check decomposition adds up.
        let e = &sol.eval;
        assert!(
            (e.energy - (e.compute_dynamic + e.compute_leak + e.comm_dynamic + e.comm_leak)).abs()
                < 1e-12
        );
    }

    use spg::Spg;
}
