//! The `DPA1D` heuristic (paper Theorem 1 + §5.4).
//!
//! Configures the CMP as a uni-directional uni-line of `r = p·q` cores by
//! snaking through the grid, and computes the **optimal** uni-line
//! DAG-partition mapping with the dynamic program of Theorem 1:
//!
//! > `E(G, k) = min over admissible G' ⊆ G of
//! >            E(G', k−1) ⊕ Ecal(G \ G')`,
//! > subject to `Cout(G') ≤ BW·T`,
//!
//! where admissible subgraphs are the order ideals of the SPG. Clusters are
//! the successive differences of a chain of ideals, so the quotient graph is
//! automatically acyclic, and on the uni-directional line the traffic on the
//! link between cores `k` and `k+1` is exactly the cut volume of the ideal
//! covering the first `k` clusters.
//!
//! Implementation: the ideal lattice is enumerated once (capped — a cap hit
//! is a heuristic *failure*, mirroring the paper's observation that `DPA1D`
//! cannot handle the high-elevation StreamIt graphs); every `(ideal,
//! extended ideal)` cluster transition with feasible work is materialised
//! once (also capped); a layered relaxation over at most `r` layers then
//! finds the optimum, and the cluster chain is laid along the snake.
//!
//! On a platform with a single row (`p = 1`) this *is* Theorem 1's exact
//! algorithm, which the test-suite cross-checks against the exhaustive
//! solver.

use cmp_mapping::{Mapping, RouteSpec, REL_TOL};
use cmp_platform::{snake_core, CoreId, Platform};
use spg::ideal::{enumerate_ideals, IdealLattice};
use spg::{NodeSet, Spg, StageId};

use crate::common::{validated, Failure, Solution};

/// Complexity budgets for `DPA1D`.
#[derive(Debug, Clone)]
pub struct Dpa1dConfig {
    /// Maximum number of order ideals to enumerate before failing.
    pub ideal_cap: usize,
    /// Maximum number of materialised cluster transitions before failing.
    pub edge_cap: usize,
}

impl Default for Dpa1dConfig {
    fn default() -> Self {
        Dpa1dConfig {
            ideal_cap: 60_000,
            edge_cap: 1_000_000,
        }
    }
}

/// One materialised DP transition: extending ideal `from` to ideal `to` by
/// one cluster of compute energy `ecal`.
struct Transition {
    from: u32,
    to: u32,
    ecal: f64,
}

/// Runs `DPA1D` on the snake embedding of `pf`.
pub fn dpa1d(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
) -> Result<Solution, Failure> {
    let chain = solve_chain(spg, pf, period, cfg)?;
    build_snake_solution(spg, pf, period, &chain)
}

/// The optimal chain of clusters (at most `pf.n_cores()` of them) for the
/// uni-directional uni-line configuration. Exposed crate-internally for
/// cross-checks.
pub(crate) fn solve_chain(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
) -> Result<Vec<Vec<StageId>>, Failure> {
    let r = pf.n_cores();
    let lattice =
        enumerate_ideals(spg, cfg.ideal_cap).map_err(|e| Failure::TooExpensive(e.to_string()))?;
    let n_ideals = lattice.len();
    let tol = 1.0 + REL_TOL;
    // Strictly *below* the evaluator's tolerance band so every enumerated
    // cluster is guaranteed to admit a feasible speed (no rounding gap
    // between the pruning threshold and `min_speed_for`'s acceptance).
    let cap_work = period * pf.power.max_freq();
    let bw_cap = period * pf.bw * tol;

    // Per-ideal cut volumes (traffic on the uni-line link right after the
    // ideal) and feasibility.
    let cuts: Vec<f64> = lattice.ideals.iter().map(|s| spg.cut_volume(s)).collect();

    let transitions = materialize_transitions(spg, pf, period, &lattice, cap_work, cfg.edge_cap)?;

    // Layered relaxation: layer k holds the best energy of covering each
    // ideal with exactly k clusters. Cluster k+1's incoming link carries
    // cut(I_k), paying one hop of energy and one bandwidth check.
    let full = lattice.full_index() as usize;
    let mut e_prev = vec![f64::INFINITY; n_ideals];
    e_prev[0] = 0.0;
    let mut parents: Vec<Vec<u32>> = Vec::new();
    let mut best: Option<(f64, usize)> = None; // (energy, #clusters)

    for layer in 1..=r {
        let mut e_curr = vec![f64::INFINITY; n_ideals];
        let mut par = vec![u32::MAX; n_ideals];
        let mut any = false;
        for t in &transitions {
            let base = e_prev[t.from as usize];
            if !base.is_finite() {
                continue;
            }
            let hop = if t.from == 0 {
                0.0
            } else {
                if cuts[t.from as usize] > bw_cap {
                    continue;
                }
                pf.hop_energy(cuts[t.from as usize])
            };
            let cand = base + hop + t.ecal;
            let slot = t.to as usize;
            if cand < e_curr[slot] {
                e_curr[slot] = cand;
                par[slot] = t.from;
                any = true;
            }
        }
        parents.push(par);
        if e_curr[full].is_finite() && best.is_none_or(|(b, _)| e_curr[full] < b) {
            best = Some((e_curr[full], layer));
        }
        if !any {
            break;
        }
        e_prev = e_curr;
    }

    let Some((_, k_best)) = best else {
        return Err(Failure::NoValidMapping(
            "no feasible cluster chain within the core count".into(),
        ));
    };

    // Walk parents back from (full, k_best) to (empty, 0).
    let mut chain: Vec<Vec<StageId>> = Vec::with_capacity(k_best);
    let mut j = full;
    for layer in (0..k_best).rev() {
        let i = parents[layer][j] as usize;
        debug_assert_ne!(i, u32::MAX as usize, "broken parent chain");
        let members: Vec<StageId> = lattice.ideals[j]
            .difference(&lattice.ideals[i])
            .iter()
            .map(|x| StageId(x as u32))
            .collect();
        chain.push(members);
        j = i;
    }
    debug_assert_eq!(j, 0, "chain must end at the empty ideal");
    chain.reverse();
    Ok(chain)
}

/// Lays a cluster chain along the snake and validates it.
pub(crate) fn build_snake_solution(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    chain: &[Vec<StageId>],
) -> Result<Solution, Failure> {
    let mut alloc = vec![CoreId { u: 0, v: 0 }; spg.n()];
    for (pos, cluster) in chain.iter().enumerate() {
        let core = snake_core(pf, pos);
        for &s in cluster {
            alloc[s.idx()] = core;
        }
    }
    let speed = cmp_mapping::assign_min_speeds(spg, pf, &alloc, period)
        .ok_or_else(|| Failure::NoValidMapping("cluster exceeds fastest speed".into()))?;
    let mapping = Mapping {
        alloc,
        speed,
        routes: RouteSpec::Snake,
    };
    validated(spg, pf, mapping, period)
}

/// Enumerates every (ideal, one-cluster extension) pair with cluster work
/// within `cap_work`, visiting each extension exactly once via
/// include/exclude branching on ready stages.
fn materialize_transitions(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    lattice: &IdealLattice,
    cap_work: f64,
    edge_cap: usize,
) -> Result<Vec<Transition>, Failure> {
    let mut transitions: Vec<Transition> = Vec::new();
    for (i_idx, ideal) in lattice.ideals.iter().enumerate() {
        if ideal.len() == spg.n() {
            continue; // full ideal has no extensions
        }
        let ready = spg::ideal::ready_stages(spg, ideal);
        let mut j = ideal.clone();
        let ok = extend(spg, &mut j, 0.0, &ready, cap_work, &mut |set: &NodeSet,
                                                                  w: f64|
         -> bool {
            if transitions.len() >= edge_cap {
                return false;
            }
            let to = lattice
                .index_of(set)
                .expect("extension of an ideal must be in the lattice");
            // The work pruning guarantees a feasible speed exists; be
            // defensive about rounding anyway and drop the transition
            // rather than panic.
            if let Some(ecal) = pf.power.best_compute_energy(w, period) {
                transitions.push(Transition {
                    from: i_idx as u32,
                    to,
                    ecal,
                });
            }
            true
        });
        if !ok {
            return Err(Failure::TooExpensive(format!(
                "more than {edge_cap} cluster transitions"
            )));
        }
    }
    Ok(transitions)
}

/// Include/exclude DFS over ready stages. `visit` is called once per
/// distinct non-empty extension; returning `false` aborts the enumeration.
fn extend(
    spg: &Spg,
    j: &mut NodeSet,
    w: f64,
    ready: &[StageId],
    cap_work: f64,
    visit: &mut impl FnMut(&NodeSet, f64) -> bool,
) -> bool {
    let Some((&s, rest)) = ready.split_first() else {
        return true;
    };
    // Exclude branch: extensions without `s`.
    if !extend(spg, j, w, rest, cap_work, visit) {
        return false;
    }
    // Include branch: extensions with `s` (pruned by cluster work).
    let w2 = w + spg.weight(s);
    if w2 > cap_work {
        return true;
    }
    j.insert(s.idx());
    if !visit(j, w2) {
        j.remove(s.idx());
        return false;
    }
    // Stages that become ready once `s` is in.
    let mut next_ready: Vec<StageId> = rest.to_vec();
    for (_, e) in spg.out_edges(s) {
        let d = e.dst;
        if !j.contains(d.idx())
            && !next_ready.contains(&d)
            && spg.predecessors(d).all(|p| j.contains(p.idx()))
        {
            next_ready.push(d);
        }
    }
    let ok = extend(spg, j, w2, &next_ready, cap_work, visit);
    j.remove(s.idx());
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg::{chain, parallel_many};

    #[test]
    fn single_core_when_period_is_loose() {
        let pf = Platform::paper(4, 4);
        let g = chain(&[1e6; 10], &[1e3; 9]);
        let sol = dpa1d(&g, &pf, 1.0, &Dpa1dConfig::default()).unwrap();
        assert_eq!(sol.eval.active_cores, 1);
        let expect = 0.08 + (1e7 / 0.15e9) * 0.08;
        assert!((sol.energy() - expect).abs() < 1e-9);
    }

    #[test]
    fn splits_when_period_forces_it() {
        let pf = Platform::paper(2, 2);
        // 4 stages of 0.9e9 cycles: one per core at 1 GHz for T = 1.
        let g = chain(&[0.9e9; 4], &[1e3; 3]);
        let sol = dpa1d(&g, &pf, 1.0, &Dpa1dConfig::default()).unwrap();
        assert_eq!(sol.eval.active_cores, 4);
    }

    #[test]
    fn fails_when_chain_needs_too_many_cores() {
        let pf = Platform::paper(1, 2);
        let g = chain(&[0.9e9; 3], &[1e3; 2]);
        assert!(matches!(
            dpa1d(&g, &pf, 1.0, &Dpa1dConfig::default()),
            Err(Failure::NoValidMapping(_))
        ));
    }

    #[test]
    fn fails_on_lattice_explosion() {
        // Elevation-10 fork-join: ~6^10 ideals, way past a tiny cap.
        let branches: Vec<Spg> = (0..10).map(|_| chain(&[1e5; 7], &[1e2; 6])).collect();
        let g = parallel_many(&branches);
        let pf = Platform::paper(4, 4);
        let cfg = Dpa1dConfig {
            ideal_cap: 1000,
            ..Default::default()
        };
        assert!(matches!(
            dpa1d(&g, &pf, 1.0, &cfg),
            Err(Failure::TooExpensive(_))
        ));
    }

    #[test]
    fn respects_bandwidth_on_the_snake() {
        // Two heavy stages forced onto different cores with an edge too fat
        // for the link: DPA1D must fail rather than emit an invalid mapping.
        let pf = Platform::paper(1, 2);
        let g = chain(&[0.9e9, 0.9e9], &[25e9]);
        assert!(dpa1d(&g, &pf, 1.0, &Dpa1dConfig::default()).is_err());
    }

    #[test]
    fn chain_clusters_are_contiguous_prefix_partition() {
        let pf = Platform::paper(1, 4);
        let g = chain(&[0.5e9; 6], &[1e3; 5]);
        let chain_sol = solve_chain(&g, &pf, 1.0, &Dpa1dConfig::default()).unwrap();
        // Union of clusters in order must walk the chain front to back.
        let topo = g.topo_order();
        let flat: Vec<StageId> = chain_sol
            .iter()
            .flat_map(|c| {
                let mut c = c.clone();
                c.sort_by_key(|s| topo.iter().position(|t| t == s).unwrap());
                c
            })
            .collect();
        assert_eq!(flat, topo);
    }

    #[test]
    fn dp_energy_matches_evaluator() {
        // The DP's internal cost model must agree with the shared evaluator.
        let pf = Platform::paper(2, 3);
        let g = chain(&[0.5e9, 0.3e9, 0.7e9, 0.2e9], &[1e6, 5e6, 2e6]);
        let sol = dpa1d(&g, &pf, 1.0, &Dpa1dConfig::default()).unwrap();
        // Recompute through the evaluator (already done inside validated);
        // here we just sanity-check decomposition adds up.
        let e = &sol.eval;
        assert!(
            (e.energy - (e.compute_dynamic + e.compute_leak + e.comm_dynamic + e.comm_leak)).abs()
                < 1e-12
        );
    }

    use spg::Spg;
}
