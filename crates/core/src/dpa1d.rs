//! The `DPA1D` heuristic (paper Theorem 1 + §5.4).
//!
//! Configures the CMP as a uni-directional uni-line of `r = p·q` cores by
//! snaking through the grid, and computes the **optimal** uni-line
//! DAG-partition mapping with the dynamic program of Theorem 1:
//!
//! > `E(G, k) = min over admissible G' ⊆ G of
//! >            E(G', k−1) ⊕ Ecal(G \ G')`,
//! > subject to `Cout(G') ≤ BW·T`,
//!
//! where admissible subgraphs are the order ideals of the SPG. Clusters are
//! the successive differences of a chain of ideals, so the quotient graph is
//! automatically acyclic, and on the uni-directional line the traffic on the
//! link between cores `k` and `k+1` is exactly the cut volume of the ideal
//! covering the first `k` clusters.
//!
//! Implementation: the ideal lattice is enumerated once (capped — a cap hit
//! is a heuristic *failure*, mirroring the paper's observation that `DPA1D`
//! cannot handle the high-elevation StreamIt graphs); every `(ideal,
//! extended ideal)` cluster transition is materialised (also capped); a
//! relaxation over at most `r` cluster-count layers then finds the optimum,
//! and the cluster chain is laid along the snake.
//!
//! ## The period-sweep split
//!
//! Everything the pipeline computes except `Ecal` is period-independent:
//! the lattice, each transition's cluster work, and each boundary ideal's
//! cut volume. The two feasibility filters are *monotone thresholds* over
//! those precomputed numbers — a transition is admissible at period `T` iff
//! its source cut fits the link (`cut ≤ BW·T`) and its cluster work fits
//! the fastest speed (`w ≤ T·f_max`). So a period sweep does not need to
//! re-walk the lattice per point: the [`TransitionSkeleton`] materialises
//! the *complete* transition system once (work-uncapped, edge-capped), and
//! each sweep point runs a cheap admission pass — two compares and a speed
//! lookup per transition — over the flat arrays.
//!
//! The admission pass deliberately scans the skeleton in its original DFS
//! order instead of pre-sorting transitions by critical period and slicing
//! a prefix: the relaxation breaks energy ties by first arrival, so any
//! reordering could pick a different (equal-DP-energy) parent chain whose
//! *evaluated* energy differs in the last ulp. Scanning in order keeps
//! every sweep point bit-identical to a from-scratch solve at that period,
//! which is what the sweep equivalence tests pin; the filtered-out
//! compares it wastes are noise next to the relaxation itself.
//!
//! On a platform with a single row (`p = 1`) this *is* Theorem 1's exact
//! algorithm, which the test-suite cross-checks against the exhaustive
//! solver.

use cmp_mapping::{Mapping, RouteSpec, REL_TOL};
use cmp_platform::{snake_core, CoreId, Platform, RouteTable};
use spg::ideal::{enumerate_ideals, IdealError, IdealId, IdealLattice};
use spg::{NodeSet, Spg, StageId};

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::common::{validated_with, BudgetPhase, Failure, PruneStats, Solution};
use crate::instance::SharedLattice;

/// Complexity budgets for `DPA1D`.
#[derive(Debug, Clone)]
pub struct Dpa1dConfig {
    /// Maximum number of order ideals to enumerate before failing.
    pub ideal_cap: usize,
    /// Maximum number of materialised cluster transitions before failing.
    pub edge_cap: usize,
    /// Minimum number of in-edges in a cardinality level for that level of
    /// the relaxation to fan out over rayon; narrower levels run inline,
    /// so small instances never regress. The vendored rayon shim now runs
    /// a persistent work-stealing pool (dispatching a fan-out costs on the
    /// order of a microsecond, versus a quarter millisecond of scoped
    /// thread spawns before), so the break-even is set by the real work —
    /// the by-destination layered form trades the sequential sweep's
    /// linear streaming for transposed random access, which a few worker
    /// threads repay once a level carries roughly ten thousand in-edges
    /// (measured on the StreamIt-scale skeletons; see `BENCH_pool.json`
    /// for the dispatch numbers behind it). Mid-size instances that the
    /// old thread-spawn shim priced out of parallelism (the former default
    /// sat at a million) now engage the pool. Only the skeleton path
    /// parallelises — the fallback materialisation path is always
    /// sequential — and a 1-worker pool keeps the sequential order
    /// outright. (Tests force either order by setting this to 0 or
    /// `usize::MAX`; the results are bit-identical.)
    pub relax_par_threshold: usize,
    /// Enables the dominance state-reduction layer (new in 0.8; `true` by
    /// default — set `false` to reproduce 0.7 semantics exactly, see the
    /// README migration note). Two effects:
    ///
    /// 1. **Dominance pruning.** Once an ideal's DP row is final, every
    ///    state strictly dominated within the row's Pareto frontier over
    ///    `(energy, residual cluster capacity)` is dropped before the
    ///    ideal's out-transitions are scanned: a slot that covers the same
    ///    ideal at strictly higher energy *and* strictly fewer remaining
    ///    clusters than an earlier slot cannot start a better completion
    ///    (any completion of the dominated state applies verbatim to its
    ///    dominator). Value-preserving by construction, so energies stay
    ///    bit-identical to the unpruned relaxation; what it buys is a
    ///    tighter relaxation window per source row (often one slot instead
    ///    of the full cluster-count range).
    /// 2. **The edge cap becomes a soundness-preserving bound.** With the
    ///    layer on, `edge_cap` bounds only *materialised* structures (the
    ///    cached skeleton and per-period transition arrays). An admitted
    ///    set that overflows the cap no longer fails with `TooExpensive`:
    ///    the skeleton path streams the admission scan over the prebuilt
    ///    index, and the materialisation path falls back to a fused
    ///    DFS+relax sweep that stores no transitions at all — same
    ///    candidate order, bit-identical result, bounded memory.
    pub dominance: bool,
    /// Upper bound on the per-ideal Pareto frontier kept by the dominance
    /// layer (`usize::MAX` = unbounded, the default; values below 1 are
    /// clamped to 1). When an *exact* frontier is truncated, the dropped
    /// states' completions are lower-bounded instead of searched and the
    /// solve returns normally with a certified
    /// [`PruneStats::bound_gap`] — the true optimum is guaranteed to lie
    /// within `bound_gap` below the returned energy. Truncation keeps the
    /// lowest-cluster-count frontier members, so it never costs
    /// feasibility, only (boundedly) optimality.
    pub frontier_cap: usize,
}

impl Default for Dpa1dConfig {
    fn default() -> Self {
        Dpa1dConfig {
            ideal_cap: 60_000,
            edge_cap: 1_000_000,
            relax_par_threshold: 10_000,
            dominance: true,
            frontier_cap: usize::MAX,
        }
    }
}

/// Maps a lattice-enumeration failure to the structured budget failure.
pub(crate) fn lattice_failure(e: &IdealError) -> Failure {
    match e {
        IdealError::LimitExceeded { cap, found } => {
            Failure::budget(BudgetPhase::Enumerate, *cap, *found)
        }
    }
}

/// Materialised DP transitions in struct-of-arrays layout: entry `t`
/// extends its block's source ideal to ideal `to[t]` by one cluster of
/// compute energy `ecal[t]`. Transitions are grouped into per-source
/// [`TransitionBlock`]s, so the source id is not repeated per edge and the
/// relaxation loops hoist everything that depends only on it (the split
/// arrays also keep the 16-fold layered sweep lean on memory bandwidth).
/// Ideals are referenced by their dense interned [`IdealId`] — the DP
/// never touches an owned `NodeSet`.
#[derive(Default)]
struct Transitions {
    to: Vec<IdealId>,
    ecal: Vec<f64>,
}

impl Transitions {
    fn len(&self) -> usize {
        self.to.len()
    }
}

/// All transitions out of one ideal: a contiguous range of [`Transitions`].
struct TransitionBlock {
    from: IdealId,
    /// Hop energy paid on the uni-line link entering the next cluster
    /// (0 for the empty ideal, which has no predecessor link).
    hop: f64,
    range: std::ops::Range<u32>,
}

/// One source ideal's block of skeleton transitions, with the
/// period-independent quantities the admission pass filters on.
struct SkeletonBlock {
    from: IdealId,
    /// Cut volume of the source ideal (traffic on its outgoing uni-line
    /// link); the bandwidth admission threshold.
    cut: f64,
    /// Hop energy entering the next cluster (period-independent:
    /// `8 · cut · E_bit`); 0 for the empty ideal.
    hop: f64,
    /// Lightest and heaviest cluster work in the block: `wmin > cap_work`
    /// skips the whole block, `wmax ≤ cap_work` admits it without
    /// per-transition compares — the tight half of a decade sweep touches
    /// only a fraction of the skeleton this way.
    wmin: f64,
    wmax: f64,
    range: std::ops::Range<u32>,
}

impl SkeletonBlock {
    /// Whether any of this block's transitions can be admitted at the
    /// given thresholds. Single-sourced on purpose: the admitted-count
    /// pass, the sequential sweep, and the parallel relaxation must filter
    /// the *same* block set or the edge-cap check and the bit-identity
    /// contract with fresh per-period materialisation silently break.
    #[inline]
    fn admissible(&self, adm: &Admission) -> bool {
        (self.from.idx() == 0 || self.cut <= adm.bw_cap) && self.wmin <= adm.cap_work
    }
}

/// The period-independent half of the `DPA1D` pipeline: every cluster
/// transition of the lattice (work-uncapped, so it serves *every* period),
/// in the same per-source-block SoA layout the relaxation streams, plus a
/// destination-grouped transposed index and the cardinality levels that
/// let the relaxation fan out over rayon.
///
/// Built at most once per instance (see `Instance::transition_skeleton`)
/// and shared across `with_period` re-targets — the enabling structure for
/// period sweeps: per sweep point only the admission thresholds and `Ecal`
/// change.
pub struct TransitionSkeleton {
    // Summarised rather than dumped: a skeleton can hold a million
    // transitions.
    blocks: Vec<SkeletonBlock>,
    /// Per-transition destination ideal (DFS order within each block).
    to: Vec<IdealId>,
    /// Per-transition cluster work (cycles) — the speed-admission and
    /// `Ecal` input.
    work: Vec<f64>,
    /// Largest cluster stage count over all transitions (telemetry; the DP
    /// never reads stage counts, so only the running max is kept — a
    /// per-transition array would pin ~4 MB per cached skeleton at the
    /// default edge cap for nothing).
    max_stages: u32,
    /// Transposed view: `in_idx[in_off[t]..in_off[t+1]]` lists the global
    /// transition indices entering ideal `t`, in ascending order — i.e. in
    /// exactly the order the sequential sweep relaxes them, which keeps
    /// the parallel relaxation's tie-breaking bit-identical.
    in_off: Vec<u32>,
    in_idx: Vec<u32>,
    /// Block index of each transposed entry (source id + hop lookup).
    in_block: Vec<u32>,
    /// Cardinality-level boundaries over ideal ids: all in-edges of a
    /// level-`L` ideal come from strictly earlier levels, so levels are
    /// the parallel relaxation's synchronisation points.
    level_off: Vec<u32>,
    /// The loosest period this skeleton serves exactly: `INFINITY` for a
    /// complete (work-uncapped) build, or the work-ceiling period of a
    /// bounded build. Work strictly grows along every extension-DFS path,
    /// so a build capped at the ceiling's work threshold contains *every*
    /// transition any period `T ≤ ceiling` admits, in the same DFS order —
    /// the admission pass at such a `T` is bit-identical to one over the
    /// complete skeleton (and to fresh materialisation at `T`).
    period_ceiling: f64,
}

impl std::fmt::Debug for TransitionSkeleton {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransitionSkeleton")
            .field("blocks", &self.blocks.len())
            .field("transitions", &self.to.len())
            .field("levels", &(self.level_off.len().saturating_sub(1)))
            .field("period_ceiling", &self.period_ceiling)
            .finish()
    }
}

impl TransitionSkeleton {
    /// Number of skeleton transitions (the complete, work-uncapped set).
    pub fn n_transitions(&self) -> usize {
        self.to.len()
    }

    /// Number of source blocks with at least one transition.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Approximate resident size in bytes (all per-block and
    /// per-transition arrays, including the transposed index) — input to
    /// byte-bounded artifact-cache accounting.
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.blocks.capacity() * size_of::<SkeletonBlock>()
            + self.to.capacity() * size_of::<IdealId>()
            + self.work.capacity() * size_of::<f64>()
            + self.in_off.capacity() * size_of::<u32>()
            + self.in_idx.capacity() * size_of::<u32>()
            + self.in_block.capacity() * size_of::<u32>()
            + self.level_off.capacity() * size_of::<u32>()
    }

    /// Largest cluster stage count over all transitions.
    pub fn max_cluster_stages(&self) -> u32 {
        self.max_stages
    }

    /// The loosest period this skeleton serves exactly (`INFINITY` for a
    /// complete build; see [`TransitionSkeleton::serves`]).
    pub fn period_ceiling(&self) -> f64 {
        self.period_ceiling
    }

    /// Whether this is a complete (work-uncapped) build serving every
    /// period, as opposed to a work-ceiling bounded build.
    pub fn is_complete(&self) -> bool {
        self.period_ceiling.is_infinite()
    }

    /// Whether an admission pass at `period` over this skeleton is exact —
    /// i.e. bit-identical to fresh per-period materialisation. True for
    /// every period of a complete build, and for `period ≤ ceiling` of a
    /// bounded one.
    pub fn serves(&self, period: f64) -> bool {
        period <= self.period_ceiling
    }

    /// Serialises the skeleton into a self-contained little-endian byte
    /// image for artifact-cache spill files; floats (cut volumes, cluster
    /// work, the period ceiling) travel as IEEE-754 bit patterns, so a
    /// reloaded skeleton admits bit-identically.
    pub fn to_bytes(&self) -> Vec<u8> {
        use spg::wire;
        let mut out = Vec::with_capacity(64 + self.to.len() * 16);
        wire::put_u64(&mut out, self.blocks.len() as u64);
        for b in &self.blocks {
            wire::put_u32(&mut out, b.from.0);
            wire::put_f64(&mut out, b.cut);
            wire::put_f64(&mut out, b.hop);
            wire::put_f64(&mut out, b.wmin);
            wire::put_f64(&mut out, b.wmax);
            wire::put_u32(&mut out, b.range.start);
            wire::put_u32(&mut out, b.range.end);
        }
        wire::put_u64(&mut out, self.to.len() as u64);
        for t in &self.to {
            wire::put_u32(&mut out, t.0);
        }
        wire::put_f64_slice(&mut out, &self.work);
        wire::put_u32(&mut out, self.max_stages);
        wire::put_u32_slice(&mut out, &self.in_off);
        wire::put_u32_slice(&mut out, &self.in_idx);
        wire::put_u32_slice(&mut out, &self.in_block);
        wire::put_u32_slice(&mut out, &self.level_off);
        wire::put_f64(&mut out, self.period_ceiling);
        out
    }

    /// Decodes a byte image produced by [`TransitionSkeleton::to_bytes`],
    /// re-validating every index the relaxation later slices with (block
    /// ranges, the transposed index, level boundaries), so a corrupted
    /// spill file yields `Err`, never an out-of-bounds panic mid-DP.
    pub fn from_bytes(bytes: &[u8]) -> Result<TransitionSkeleton, String> {
        use spg::wire;
        let mut pos = 0usize;
        let n_blocks = wire::get_len(bytes, &mut pos, 44)?;
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let from = IdealId(wire::get_u32(bytes, &mut pos)?);
            let cut = wire::get_f64(bytes, &mut pos)?;
            let hop = wire::get_f64(bytes, &mut pos)?;
            let wmin = wire::get_f64(bytes, &mut pos)?;
            let wmax = wire::get_f64(bytes, &mut pos)?;
            let start = wire::get_u32(bytes, &mut pos)?;
            let end = wire::get_u32(bytes, &mut pos)?;
            blocks.push(SkeletonBlock {
                from,
                cut,
                hop,
                wmin,
                wmax,
                range: start..end,
            });
        }
        let n_to = wire::get_len(bytes, &mut pos, 4)?;
        let mut to = Vec::with_capacity(n_to);
        for _ in 0..n_to {
            to.push(IdealId(wire::get_u32(bytes, &mut pos)?));
        }
        let work = wire::get_f64_slice(bytes, &mut pos)?;
        let max_stages = wire::get_u32(bytes, &mut pos)?;
        let in_off = wire::get_u32_slice(bytes, &mut pos)?;
        let in_idx = wire::get_u32_slice(bytes, &mut pos)?;
        let in_block = wire::get_u32_slice(bytes, &mut pos)?;
        let level_off = wire::get_u32_slice(bytes, &mut pos)?;
        let period_ceiling = wire::get_f64(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after skeleton image",
                bytes.len() - pos
            ));
        }
        let n_tr = to.len();
        if work.len() != n_tr {
            return Err("work array disagrees with the transition count".into());
        }
        if blocks
            .iter()
            .any(|b| b.range.start > b.range.end || b.range.end as usize > n_tr)
        {
            return Err("block range exceeds the transition arrays".into());
        }
        let n_ideals = in_off.len().saturating_sub(1);
        if in_off.is_empty()
            || in_off.windows(2).any(|w| w[0] > w[1])
            || in_off.last().copied().unwrap_or(0) as usize != in_idx.len()
        {
            return Err("transposed offsets are not a monotone cover".into());
        }
        if in_idx.len() != n_tr || in_block.len() != n_tr {
            return Err("transposed index disagrees with the transition count".into());
        }
        if in_idx.iter().any(|&i| i as usize >= n_tr)
            || in_block.iter().any(|&b| b as usize >= blocks.len().max(1))
        {
            return Err("transposed entry references an out-of-range transition".into());
        }
        if level_off.windows(2).any(|w| w[0] > w[1])
            || level_off.last().copied().unwrap_or(0) as usize > n_ideals
        {
            return Err("level boundaries exceed the ideal count".into());
        }
        if to.iter().any(|t| t.idx() >= n_ideals)
            || blocks.iter().any(|b| b.from.idx() >= n_ideals.max(1))
        {
            return Err("transition references an out-of-range ideal".into());
        }
        Ok(TransitionSkeleton {
            blocks,
            to,
            work,
            max_stages,
            in_off,
            in_idx,
            in_block,
            level_off,
            period_ceiling,
        })
    }

    /// In-edge count of one cardinality level (`level_off[l]..level_off[l+1]`
    /// ideal ids): destinations in a level are contiguous, and the
    /// transposed index is grouped by destination id, so the level's edges
    /// are one contiguous span.
    fn level_edges(&self, start: usize, end: usize) -> usize {
        (self.in_off[end] - self.in_off[start]) as usize
    }

    /// Whether any cardinality level is wide enough (by in-edge count) to
    /// clear the parallel fan-out threshold.
    fn has_parallel_level(&self, threshold: usize) -> bool {
        self.level_off
            .windows(2)
            .any(|lv| self.level_edges(lv[0] as usize, lv[1] as usize) >= threshold)
    }

    /// How many transitions the admission pass keeps at the period's
    /// thresholds. Monotone in the period: loosening a threshold only
    /// ever adds transitions.
    fn admitted_count(&self, adm: &Admission) -> usize {
        let mut n = 0usize;
        for b in &self.blocks {
            if !b.admissible(adm) {
                continue;
            }
            if b.wmax <= adm.cap_work {
                n += b.range.len();
                continue;
            }
            let range = b.range.start as usize..b.range.end as usize;
            n += self.work[range]
                .iter()
                .filter(|&&w| w <= adm.cap_work)
                .count();
        }
        n
    }

    /// Whether a fresh materialisation at this period would have created
    /// this source block at all: admissible cut AND at least one
    /// work-feasible out-transition. This is the dominance layer's gate
    /// for pruning the source row — fresh materialisation only ever
    /// prunes rows whose block exists, and the telemetry pins parity
    /// with it bit for bit. The scan short-circuits on the first
    /// feasible transition (DFS emits single-stage extensions first, so
    /// it is almost always the very first element).
    fn block_live(&self, b: &SkeletonBlock, adm: &Admission, ec: &EcalTable) -> bool {
        b.admissible(adm)
            && self.work[b.range.start as usize..b.range.end as usize]
                .iter()
                .any(|&w| w <= adm.cap_work && ec.ecal(w).is_some())
    }

    /// Builds the transition system over `lattice`, complete
    /// (`period_ceiling = INFINITY`) or bounded by a work-ceiling period.
    /// Fails (with the materialise-phase budget payload) when the built set
    /// exceeds `edge_cap` — the caller falls back to a tighter ceiling or
    /// to per-period materialisation.
    fn build(
        spg: &Spg,
        pf: &Platform,
        lattice: &IdealLattice,
        cuts: &[f64],
        edge_cap: usize,
        period_ceiling: f64,
    ) -> Result<TransitionSkeleton, Failure> {
        debug_assert_eq!(cuts.len(), lattice.len());
        // A bounded build applies the ceiling period's admission thresholds
        // at materialisation time: both are monotone in the period, so
        // everything a tighter period admits survives, in DFS order.
        let ceiling_adm = period_ceiling
            .is_finite()
            .then(|| Admission::new(pf, period_ceiling));
        let mut blocks: Vec<SkeletonBlock> = Vec::new();
        let mut to: Vec<IdealId> = Vec::new();
        let mut work: Vec<f64> = Vec::new();
        let mut max_stages = 0u32;
        let mut ctx = ExtendCtx {
            spg,
            lattice,
            pred_masks: lattice.pred_masks(),
            // Complete builds are work-uncapped: the skeleton serves every
            // period, so only the edge cap bounds it.
            cap_work: ceiling_adm.as_ref().map_or(f64::INFINITY, |a| a.cap_work),
            stack: Vec::with_capacity(4 * spg.n()),
        };
        for from in lattice.ids() {
            // Complete builds keep every boundary (a cut infeasible at one
            // period is feasible at a looser one; the admission pass applies
            // both thresholds per period). A bounded build drops boundaries
            // already overloaded at the ceiling — no served period can pass
            // through them.
            if let Some(a) = &ceiling_adm {
                if from.idx() != 0 && cuts[from.idx()] > a.bw_cap {
                    continue;
                }
            }
            ctx.stack.clear();
            ctx.stack
                .extend(lattice.covers(from).iter().map(|&(s, _)| StageId(s)));
            let hi = ctx.stack.len();
            let start = to.len() as u32;
            let ok = extend(&mut ctx, from, 0.0, 1, 0, hi, &mut |child: IdealId,
                                                                 w: f64,
                                                                 depth: u32|
             -> bool {
                if to.len() >= edge_cap {
                    return false;
                }
                to.push(child);
                work.push(w);
                max_stages = max_stages.max(depth);
                true
            });
            if !ok {
                return Err(Failure::budget(
                    BudgetPhase::Materialise,
                    edge_cap,
                    edge_cap + 1,
                ));
            }
            let end = to.len() as u32;
            if end > start {
                let cut = cuts[from.idx()];
                let hop = if from.idx() == 0 {
                    0.0
                } else {
                    pf.hop_energy(cut)
                };
                let ws = &work[start as usize..end as usize];
                blocks.push(SkeletonBlock {
                    from,
                    cut,
                    hop,
                    wmin: ws.iter().copied().fold(f64::INFINITY, f64::min),
                    wmax: ws.iter().copied().fold(0.0, f64::max),
                    range: start..end,
                });
            }
        }

        // Transposed (destination-grouped) index via counting sort, so the
        // per-destination lists come out in ascending global order — the
        // sequential sweep's relaxation order.
        let n_ideals = lattice.len();
        let mut in_off = vec![0u32; n_ideals + 1];
        for t in &to {
            in_off[t.idx() + 1] += 1;
        }
        for i in 0..n_ideals {
            in_off[i + 1] += in_off[i];
        }
        let mut cursor = in_off.clone();
        let mut in_idx = vec![0u32; to.len()];
        let mut in_block = vec![0u32; to.len()];
        for (bi, b) in blocks.iter().enumerate() {
            for j in b.range.clone() {
                let t = to[j as usize].idx();
                let slot = cursor[t] as usize;
                in_idx[slot] = j;
                in_block[slot] = bi as u32;
                cursor[t] += 1;
            }
        }

        // Cardinality levels: the lattice is grouped by cardinality in
        // increasing order, so levels are contiguous id ranges.
        let mut level_off = vec![0u32];
        let mut prev_card = 0usize;
        for (i, s) in lattice.iter().enumerate() {
            let card = s.len();
            if card != prev_card {
                level_off.push(i as u32);
                prev_card = card;
            }
        }
        level_off.push(n_ideals as u32);

        Ok(TransitionSkeleton {
            blocks,
            to,
            work,
            max_stages,
            in_off,
            in_idx,
            in_block,
            level_off,
            period_ceiling,
        })
    }
}

/// Builds the complete (every-period) skeleton for a shared lattice
/// (crate-internal constructor used by the `Instance` cache).
pub(crate) fn build_skeleton(
    spg: &Spg,
    pf: &Platform,
    shared: &SharedLattice,
    edge_cap: usize,
) -> Result<TransitionSkeleton, Failure> {
    TransitionSkeleton::build(
        spg,
        pf,
        &shared.lattice,
        &shared.cuts,
        edge_cap,
        f64::INFINITY,
    )
}

/// Builds a work-ceiling bounded skeleton: exact for every period up to
/// `period_ceiling` (see [`TransitionSkeleton::serves`]), and typically far
/// smaller than the complete set — the escape hatch when the complete build
/// overflows the edge cap (e.g. `BitonicSort`'s ~4.2M complete transitions
/// against the 1M default cap).
pub(crate) fn build_skeleton_bounded(
    spg: &Spg,
    pf: &Platform,
    shared: &SharedLattice,
    edge_cap: usize,
    period_ceiling: f64,
) -> Result<TransitionSkeleton, Failure> {
    debug_assert!(period_ceiling.is_finite() && period_ceiling > 0.0);
    TransitionSkeleton::build(
        spg,
        pf,
        &shared.lattice,
        &shared.cuts,
        edge_cap,
        period_ceiling,
    )
}

/// The period-dependent compute-energy table: cluster work → `Ecal`.
/// Selection matches `PowerModel::min_speed_for` (up to one reciprocal
/// rounding in the last ulp — harmless here: the energies only steer the
/// argmin, and the chosen chain is re-priced by the shared evaluator),
/// with divisions hoisted out of the per-transition path.
struct EcalTable {
    /// `(freq, power/freq)` per speed, in speed-index order.
    speeds: Vec<(f64, f64)>,
    leak: f64,
    inv_period: f64,
}

impl EcalTable {
    fn new(pf: &Platform, period: f64) -> EcalTable {
        EcalTable {
            speeds: (0..pf.power.m())
                .map(|k| {
                    let sp = pf.power.speed(k);
                    (sp.freq, sp.power / sp.freq)
                })
                .collect(),
            leak: pf.power.p_leak * period,
            inv_period: (1.0 - 1e-12) / period,
        }
    }

    #[inline]
    fn ecal(&self, w: f64) -> Option<f64> {
        let needed = w * self.inv_period;
        self.speeds
            .iter()
            .find(|&&(freq, _)| freq >= needed)
            .map(|&(_, energy_per_cycle)| self.leak + w * energy_per_cycle)
    }
}

/// Runs `DPA1D` on the snake embedding of `pf`.
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "use `ea_core::solvers::Dpa1d` with an `Instance` (shares the interned lattice across calls)"
)]
pub fn dpa1d(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
) -> Result<Solution, Failure> {
    dpa1d_run(spg, pf, period, cfg, None, None, None)
}

/// `DPA1D` on optionally pre-computed session caches. `None` everywhere
/// enumerates locally (legacy behaviour); the [`crate::solvers::Dpa1d`]
/// solver passes the instance's cached [`SharedLattice`], its
/// [`TransitionSkeleton`] (when the complete transition system fit the
/// edge cap), and the snake route table.
pub(crate) fn dpa1d_run(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
    shared: Option<&SharedLattice>,
    skeleton: Option<&TransitionSkeleton>,
    table: Option<&RouteTable>,
) -> Result<Solution, Failure> {
    let (chain, prune) = match (shared, skeleton) {
        // A bounded skeleton is only exact up to its ceiling; a request
        // beyond it (defensive — the `Instance` cache hands out serving
        // skeletons only) falls back to per-period materialisation.
        (Some(sh), Some(sk)) if sk.serves(period) => {
            solve_chain_skeleton(spg, pf, period, cfg, &sh.lattice, sk)?
        }
        (Some(sh), _) => solve_chain_on(spg, pf, period, cfg, &sh.lattice, &sh.cuts)?,
        _ => solve_chain(spg, pf, period, cfg)?,
    };
    let mut sol = build_snake_solution(spg, pf, period, &chain, table)?;
    sol.prune = prune;
    Ok(sol)
}

/// A solved cluster chain together with the dominance layer's telemetry
/// (`None` when `cfg.dominance` is off).
pub(crate) type ChainSolve = (Vec<Vec<StageId>>, Option<PruneStats>);

/// The optimal chain of clusters (at most `pf.n_cores()` of them) for the
/// uni-directional uni-line configuration, enumerating the lattice locally.
/// Exposed crate-internally for cross-checks.
pub(crate) fn solve_chain(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
) -> Result<ChainSolve, Failure> {
    let lattice = enumerate_ideals(spg, cfg.ideal_cap).map_err(|e| lattice_failure(&e))?;
    // Per-ideal cut volumes (traffic on the uni-line link right after the
    // ideal). An ideal whose cut exceeds the bandwidth-period product can
    // never be a cluster boundary (its outgoing link is overloaded), so its
    // extensions are not even materialised; feasible cuts precompute their
    // hop energy in `materialize_transitions`.
    let cuts: Vec<f64> = lattice.iter().map(|s| spg.cut_volume(s)).collect();
    solve_chain_on(spg, pf, period, cfg, &lattice, &cuts)
}

/// Per-period admission thresholds (both monotone in the period).
struct Admission {
    /// Bandwidth-period product (with the evaluator's tolerance band).
    bw_cap: f64,
    /// Heaviest cluster the fastest speed can run within the period.
    cap_work: f64,
}

impl Admission {
    fn new(pf: &Platform, period: f64) -> Admission {
        let tol = 1.0 + REL_TOL;
        // `cap_work` stays strictly *below* the evaluator's tolerance band
        // so every admitted cluster is guaranteed a feasible speed (no
        // rounding gap between the threshold and `min_speed_for`).
        Admission {
            bw_cap: period * pf.bw * tol,
            cap_work: period * pf.power.max_freq(),
        }
    }
}

/// Per-solve state of the dominance layer (see
/// [`Dpa1dConfig::dominance`]). Interior mutability throughout: the
/// parallel relaxation prunes each destination row inside the rayon task
/// that owns it, so every counter is an atomic (sums and min/max are
/// order-independent — the telemetry is bit-identical across thread
/// counts, which the sweep equivalence tests pin).
struct PruneCtx {
    /// Per-ideal relaxation-window shrink (in cluster-count slots),
    /// recorded when the row was pruned. Written exactly once, by the
    /// block/task that finalised the row; read only when relaxing *out* of
    /// the row, which is always at a strictly later point of the schedule.
    saved: Vec<AtomicU32>,
    /// Σ over relaxed transitions of their window span — the inner-loop
    /// candidate relaxations actually performed.
    kept: AtomicU64,
    /// Σ over relaxed transitions of their source's window shrink — the
    /// candidate relaxations dominance avoided.
    pruned: AtomicU64,
    /// Largest exact (pre-cap) per-ideal Pareto frontier observed.
    frontier_max: AtomicU32,
    /// Minimum completion lower bound over frontier-cap-truncated states,
    /// as `f64` bits (non-negative floats order like their bit patterns,
    /// so `fetch_min` on the bits is an atomic float min).
    trunc_lb: AtomicU64,
    /// Number of frontier-cap truncations (0 ⇒ the solve is exact and
    /// `bound_gap` is 0).
    truncated: AtomicU64,
    frontier_cap: usize,
    /// Cheapest energy per cycle over the speed grid — the work term of
    /// the truncation lower bound.
    min_epc: f64,
    /// Leak energy of one cluster at this period.
    leak: f64,
    /// Residual work per ideal (`total_work − work_volume(ideal)`; see
    /// [`Spg::work_volume`]). Only materialised when `frontier_cap` can
    /// actually truncate (it costs `O(Σ|ideal|)` to fill).
    residual: Vec<f64>,
}

impl PruneCtx {
    fn new(
        spg: &Spg,
        lattice: &IdealLattice,
        ec: &EcalTable,
        frontier_cap: usize,
        width: usize,
    ) -> PruneCtx {
        let cap = frontier_cap.max(1);
        // A frontier never exceeds the row width, so a cap at least that
        // wide can never truncate — skip the residual-work precompute.
        let residual = if cap < width {
            let total = spg.total_work();
            lattice.iter().map(|s| total - spg.work_volume(s)).collect()
        } else {
            Vec::new()
        };
        PruneCtx {
            saved: (0..lattice.len()).map(|_| AtomicU32::new(0)).collect(),
            kept: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            frontier_max: AtomicU32::new(0),
            trunc_lb: AtomicU64::new(f64::INFINITY.to_bits()),
            truncated: AtomicU64::new(0),
            frontier_cap: cap,
            min_epc: ec
                .speeds
                .iter()
                .map(|&(_, epc)| epc)
                .fold(f64::INFINITY, f64::min),
            leak: ec.leak,
            residual,
        }
    }

    /// Prunes the *finalised* DP row of ideal `f` down to its Pareto
    /// frontier before the row's out-transitions are scanned. A slot is
    /// dominated iff an earlier (lower cluster count) slot covers the same
    /// ideal at strictly lower energy: any completion of the dominated
    /// state is also a completion of the dominator — with clusters to
    /// spare — at strictly lower total, so no DP optimum ever routes
    /// through it. Ties are kept (pruning them would be value-preserving
    /// too, but could flip first-arrival parent selection and break the
    /// bit-identity contract with the unpruned relaxation). Beyond
    /// `frontier_cap` kept slots, further frontier members are *truncated*:
    /// dropped with their completions lower-bounded into the certified
    /// `bound_gap` (keeping the lowest-`k` members preserves feasibility —
    /// completions transfer down-`k` — so truncation can cost optimality,
    /// never a solution).
    fn prune_row(
        &self,
        f: usize,
        hop: f64,
        width: usize,
        e_row: &mut [f64],
        klo: &mut u16,
        khi: &mut u16,
    ) {
        if f == 0 || *klo == u16::MAX {
            return; // the empty ideal's pinned row, or an unreachable one
        }
        let lo = *klo as usize;
        let hi = *khi as usize;
        let relax_hi = hi.min(width - 2);
        let old_span = if lo <= relax_hi { relax_hi - lo + 1 } else { 0 };
        let mut best = f64::INFINITY;
        let mut kept = 0usize;
        let mut new_lo = u16::MAX;
        let mut new_hi = 0u16;
        for (k, v) in e_row.iter_mut().enumerate().take(hi + 1).skip(lo) {
            if !v.is_finite() {
                continue;
            }
            if *v > best {
                *v = f64::INFINITY; // dominated
                continue;
            }
            best = *v;
            kept += 1;
            if kept > self.frontier_cap {
                // Any completion pays the hop out of `f`, at least one
                // cluster's leak, and the residual work at no better than
                // the cheapest energy-per-cycle.
                let res = self.residual.get(f).copied().unwrap_or(0.0);
                let lb = *v + hop + self.leak + res * self.min_epc;
                self.trunc_lb.fetch_min(lb.to_bits(), Ordering::Relaxed);
                self.truncated.fetch_add(1, Ordering::Relaxed);
                *v = f64::INFINITY; // truncated
                continue;
            }
            new_lo = new_lo.min(k as u16);
            new_hi = new_hi.max(k as u16);
        }
        self.frontier_max
            .fetch_max(kept.min(u32::MAX as usize) as u32, Ordering::Relaxed);
        debug_assert_ne!(new_lo, u16::MAX, "a reachable row keeps its first slot");
        *klo = new_lo;
        *khi = new_hi;
        let new_hi_r = (new_hi as usize).min(width - 2);
        let new_span = if (new_lo as usize) <= new_hi_r {
            new_hi_r - (new_lo as usize) + 1
        } else {
            0
        };
        self.saved[f].store((old_span - new_span) as u32, Ordering::Relaxed);
    }

    /// Accounts the relaxations out of source row `f`: `n` transitions were
    /// relaxed over a window of `span` slots; each also *avoided* the
    /// row's recorded window shrink.
    fn count_source(&self, f: usize, n: u64, span: u64) {
        if n == 0 {
            return;
        }
        self.kept.fetch_add(n * span, Ordering::Relaxed);
        let saved = self.saved[f].load(Ordering::Relaxed) as u64;
        if saved > 0 {
            self.pruned.fetch_add(n * saved, Ordering::Relaxed);
        }
    }

    /// The recorded window shrink of source row `f` (0 until the row was
    /// pruned; sources are always pruned strictly before their out-edges
    /// are relaxed, in every relaxation order).
    fn saved_of(&self, f: usize) -> u64 {
        self.saved[f].load(Ordering::Relaxed) as u64
    }

    /// Accounts a batch of relaxations counted edge-by-edge (the parallel
    /// order's per-destination accumulation): same products as
    /// [`PruneCtx::count_source`], summed in a different association.
    fn count_edges(&self, kept: u64, pruned: u64) {
        if kept > 0 {
            self.kept.fetch_add(kept, Ordering::Relaxed);
        }
        if pruned > 0 {
            self.pruned.fetch_add(pruned, Ordering::Relaxed);
        }
    }

    /// Folds the counters into the public telemetry. `best` is the DP
    /// optimum of the solve; the certified gap covers every truncated
    /// state's lower-bounded completions.
    fn stats(&self, best: f64) -> PruneStats {
        let bound_gap = if self.truncated.load(Ordering::Relaxed) > 0 {
            let lb = f64::from_bits(self.trunc_lb.load(Ordering::Relaxed));
            (best - lb).max(0.0)
        } else {
            0.0
        };
        PruneStats {
            transitions_kept: self.kept.load(Ordering::Relaxed),
            transitions_pruned: self.pruned.load(Ordering::Relaxed),
            frontier_max: self.frontier_max.load(Ordering::Relaxed),
            bound_gap,
        }
    }
}

/// The Theorem 1 dynamic program over an already-enumerated lattice with
/// precomputed per-ideal cut volumes. Enforces `cfg.ideal_cap` on the given
/// lattice too, so a shared over-cap lattice still fails this solver the
/// way a local enumeration would. When the per-period admitted set
/// overflows the edge cap and the dominance layer is on, falls back to the
/// fused streaming sweep instead of failing (see
/// [`Dpa1dConfig::dominance`]).
pub(crate) fn solve_chain_on(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
    lattice: &IdealLattice,
    cuts: &[f64],
) -> Result<ChainSolve, Failure> {
    debug_assert_eq!(cuts.len(), lattice.len());
    check_ideal_cap(lattice, cfg)?;
    let adm = Admission::new(pf, period);
    let (blocks, transitions) =
        match materialize_transitions(spg, pf, period, lattice, cuts, &adm, cfg.edge_cap) {
            Ok(bt) => bt,
            Err(e) if cfg.dominance && is_materialise_overflow(&e) => {
                return solve_chain_streaming(spg, pf, period, cfg, lattice, cuts, &adm);
            }
            Err(e) => return Err(e),
        };
    let ec = EcalTable::new(pf, period);
    let mut state = DpState::new(lattice.len(), width_of(spg, pf));
    let pr = cfg
        .dominance
        .then(|| PruneCtx::new(spg, lattice, &ec, cfg.frontier_cap, state.width));

    // The transition DAG is topologically ordered by id (every extension
    // strictly grows the ideal, and ids are sorted by cardinality), so a
    // SINGLE pass over the blocks in id order relaxes every cluster-count
    // layer at once: when block `from` is processed, all of its in-edges
    // (from strictly smaller ids) have already been relaxed, making row
    // `e[from]` final. The per-ideal rows `e[i][k]` (best energy covering
    // ideal `i` with exactly `k` clusters, `k <= min(r, n)`) stay
    // cache-resident while the big transition arrays stream through memory
    // exactly once — the classic layered formulation re-reads them `r`
    // times.
    let width = state.width;
    let mut row = vec![f64::INFINITY; width];
    for b in &blocks {
        let f = b.from.idx();
        if let Some(p) = &pr {
            p.prune_row(
                f,
                b.hop,
                width,
                &mut state.e[f * width..(f + 1) * width],
                &mut state.klo[f],
                &mut state.khi[f],
            );
        }
        let Some((lo, hi)) = state.window(f) else {
            continue;
        };
        // Snapshot the source row: `e` rows of later ideals are written
        // while this one is read, and the borrow is easier on a buffer.
        row[lo..=hi].copy_from_slice(&state.e[f * width + lo..f * width + hi + 1]);
        let range = b.range.start as usize..b.range.end as usize;
        let mut kept = 0u64;
        for (&to, &ecal) in transitions.to[range.clone()]
            .iter()
            .zip(&transitions.ecal[range])
        {
            kept += 1;
            state.relax(to.idx(), b.from.0, b.hop + ecal, &row, lo, hi);
        }
        if let Some(p) = &pr {
            p.count_source(f, kept, (hi - lo + 1) as u64);
        }
    }
    finish_chain(&state, lattice, pr)
}

/// Whether a failure is the materialise-phase edge-cap overflow (the only
/// budget failure the dominance layer is licensed to absorb).
fn is_materialise_overflow(e: &Failure) -> bool {
    matches!(
        e.budget_exceeded(),
        Some(b) if b.phase == BudgetPhase::Materialise
    )
}

/// The materialisation-free relaxation: walks the per-period extension DFS
/// exactly like [`materialize_transitions`] but relaxes every transition
/// the moment the DFS produces it, storing none of them. The candidate
/// sequence — and therefore every tie-break, window, and the returned
/// chain — is bit-identical to materialise-then-relax; only the memory
/// profile differs (DP rows instead of transition arrays). This is what
/// makes the edge cap a *soundness-preserving* bound under the dominance
/// layer: an admitted set past the cap costs time, not a `TooExpensive`
/// failure.
fn solve_chain_streaming(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
    lattice: &IdealLattice,
    cuts: &[f64],
    adm: &Admission,
) -> Result<ChainSolve, Failure> {
    let ec = EcalTable::new(pf, period);
    let mut state = DpState::new(lattice.len(), width_of(spg, pf));
    let pr = PruneCtx::new(spg, lattice, &ec, cfg.frontier_cap, state.width);
    let width = state.width;
    let mut row = vec![f64::INFINITY; width];
    let mut ctx = ExtendCtx {
        spg,
        lattice,
        pred_masks: lattice.pred_masks(),
        cap_work: adm.cap_work,
        stack: Vec::with_capacity(4 * spg.n()),
    };
    for from in lattice.ids() {
        let f = from.idx();
        if f != 0 && cuts[f] > adm.bw_cap {
            continue; // outgoing link overloaded: unreachable boundary
        }
        let hop = if f == 0 { 0.0 } else { pf.hop_energy(cuts[f]) };
        ctx.stack.clear();
        ctx.stack
            .extend(lattice.covers(from).iter().map(|&(s, _)| StageId(s)));
        let hi_stack = ctx.stack.len();
        // Prune/snapshot lazily at the first produced transition, so a
        // source with no work-feasible extension is treated exactly like a
        // block the materialised path never created.
        let mut win: Option<(usize, usize)> = None;
        let mut primed = false;
        let mut kept = 0u64;
        extend(&mut ctx, from, 0.0, 1, 0, hi_stack, &mut |to: IdealId,
                                                          w: f64,
                                                          _depth: u32|
         -> bool {
            let Some(ecal) = ec.ecal(w) else { return true };
            if !primed {
                primed = true;
                pr.prune_row(
                    f,
                    hop,
                    width,
                    &mut state.e[f * width..(f + 1) * width],
                    &mut state.klo[f],
                    &mut state.khi[f],
                );
                win = state.window(f);
                if let Some((lo, hi)) = win {
                    row[lo..=hi].copy_from_slice(&state.e[f * width + lo..f * width + hi + 1]);
                }
            }
            let Some((lo, hi)) = win else { return true };
            kept += 1;
            state.relax(to.idx(), from.0, hop + ecal, &row, lo, hi);
            true
        });
        if let Some((lo, hi)) = win {
            pr.count_source(f, kept, (hi - lo + 1) as u64);
        }
    }
    finish_chain(&state, lattice, Some(pr))
}

/// Backtracks the relaxed state into a cluster chain and stamps the
/// dominance telemetry (the certified bound gap prices off the DP optimum;
/// the evaluator re-prices the chain within one ulp of it).
fn finish_chain(
    state: &DpState,
    lattice: &IdealLattice,
    pr: Option<PruneCtx>,
) -> Result<ChainSolve, Failure> {
    let (chain, best) = state.backtrack(lattice)?;
    Ok((chain, pr.map(|p| p.stats(best))))
}

/// The same dynamic program off a prebuilt [`TransitionSkeleton`]: no
/// lattice walk, no hashing — per transition, two threshold compares, the
/// `Ecal` speed lookup, and the relaxation. Fans the per-level block loop
/// out over rayon when the skeleton is large enough (see
/// [`Dpa1dConfig::relax_par_threshold`]); small instances keep the
/// sequential single-pass sweep. Both orders relax every `(ideal, k)` slot
/// over the same candidate sequence, so the result is bit-identical.
pub(crate) fn solve_chain_skeleton(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    cfg: &Dpa1dConfig,
    lattice: &IdealLattice,
    sk: &TransitionSkeleton,
) -> Result<ChainSolve, Failure> {
    check_ideal_cap(lattice, cfg)?;
    let adm = Admission::new(pf, period);
    if !cfg.dominance {
        // Legacy (0.7) semantics: enforce the edge cap on the *admitted*
        // count, which is exactly what per-period materialisation would
        // have produced. With the dominance layer on the check is skipped:
        // the admission scan streams over the already-materialised index,
        // so an over-cap admitted count is time, not memory — the cap only
        // bounds what gets built.
        let admitted = sk.admitted_count(&adm);
        if admitted > cfg.edge_cap {
            return Err(Failure::budget(
                BudgetPhase::Materialise,
                cfg.edge_cap,
                admitted,
            ));
        }
    }
    let ecal = EcalTable::new(pf, period);
    let mut state = DpState::new(lattice.len(), width_of(spg, pf));
    let pr = cfg
        .dominance
        .then(|| PruneCtx::new(spg, lattice, &ecal, cfg.frontier_cap, state.width));
    // The by-destination layered form only pays when some level is wide
    // enough to amortise the fan-out AND the pool actually has more than
    // one worker; otherwise the block-order sweep is both allocation-free
    // and cache-friendlier (and with one worker the layered form's
    // transposed access pattern is pure loss).
    if sk.has_parallel_level(cfg.relax_par_threshold) && rayon::current_num_threads() > 1 {
        relax_skeleton_par(
            &mut state,
            sk,
            &adm,
            &ecal,
            cfg.relax_par_threshold,
            pr.as_ref(),
        );
    } else {
        relax_skeleton_seq(&mut state, sk, &adm, &ecal, pr.as_ref());
    }
    finish_chain(&state, lattice, pr)
}

/// Sequential single-pass sweep over the skeleton blocks with inline
/// admission: the skeleton analogue of the loop in [`solve_chain_on`].
fn relax_skeleton_seq(
    state: &mut DpState,
    sk: &TransitionSkeleton,
    adm: &Admission,
    ec: &EcalTable,
    pr: Option<&PruneCtx>,
) {
    let width = state.width;
    let mut row = vec![f64::INFINITY; width];
    for b in &sk.blocks {
        if !b.admissible(adm) {
            continue;
        }
        let f = b.from.idx();
        // The row is final here (all in-edges come from smaller ids), and
        // its out-transitions are about to be scanned — the dominance
        // layer's pruning point. Gated on `block_live`: a fresh build at
        // this period materialises a block only when some out-transition
        // is work-feasible, and it prunes exactly those rows — the
        // telemetry parity pins depend on matching that. The parallel
        // order prunes the same rows on the same finalised data (each
        // inside the task that owns it), so decisions, windows, and
        // counters agree bit for bit.
        if let Some(p) = pr.filter(|_| sk.block_live(b, adm, ec)) {
            p.prune_row(
                f,
                b.hop,
                width,
                &mut state.e[f * width..(f + 1) * width],
                &mut state.klo[f],
                &mut state.khi[f],
            );
        }
        let Some((lo, hi)) = state.window(f) else {
            continue;
        };
        row[lo..=hi].copy_from_slice(&state.e[f * width + lo..f * width + hi + 1]);
        let range = b.range.start as usize..b.range.end as usize;
        let mut kept = 0u64;
        for (&to, &w) in sk.to[range.clone()].iter().zip(&sk.work[range]) {
            if w > adm.cap_work {
                continue;
            }
            // The work threshold guarantees a feasible speed; be defensive
            // about rounding anyway and skip rather than panic.
            let Some(ecal) = ec.ecal(w) else { continue };
            kept += 1;
            state.relax(to.idx(), b.from.0, b.hop + ecal, &row, lo, hi);
        }
        if let Some(p) = pr {
            p.count_source(f, kept, (hi - lo + 1) as u64);
        }
    }
}

/// Parallel layered relaxation: cardinality levels run in sequence (all
/// in-edges of a level-`L` ideal come from strictly earlier levels), and
/// within a level the per-destination rows are computed independently over
/// the rayon pool via the skeleton's transposed index. Each destination
/// relaxes its in-edges in ascending global order — the exact order the
/// sequential sweep would have offered its candidates — so energies,
/// parents, and windows come out bit-identical.
/// One destination's unit of parallel work: its ideal id and exclusive
/// views of its DP row, parent row, and window bounds.
type LevelTask<'a> = (
    usize,
    &'a mut [f64],
    &'a mut [u32],
    &'a mut u16,
    &'a mut u16,
);

fn relax_skeleton_par(
    state: &mut DpState,
    sk: &TransitionSkeleton,
    adm: &Admission,
    ec: &EcalTable,
    par_level_edges: usize,
    pr: Option<&PruneCtx>,
) {
    use rayon::prelude::*;

    let width = state.width;
    // Destination-side pruning needs each ideal's out-block (hop and
    // liveness gate): the sequential sweep finds it by walking the blocks
    // in order, the transposed order looks it up.
    let block_of: Vec<u32> = if pr.is_some() {
        let mut map = vec![u32::MAX; state.klo.len()];
        for (bi, b) in sk.blocks.iter().enumerate() {
            map[b.from.idx()] = bi as u32;
        }
        map
    } else {
        Vec::new()
    };
    for lv in sk.level_off.windows(2).skip(1) {
        let (start, end) = (lv[0] as usize, lv[1] as usize);
        // Split every DP array at the level boundary: the finished prefix
        // is shared read-only (all sources live there), the level's own
        // slice splits into disjoint per-destination chunks.
        let (e_done, e_lvl) = state.e.split_at_mut(start * width);
        let (klo_done, klo_lvl) = state.klo.split_at_mut(start);
        let (khi_done, khi_lvl) = state.khi.split_at_mut(start);
        let par_lvl = &mut state.par[start * width..end * width];
        let e_done = &*e_done;
        let klo_done = &*klo_done;
        let khi_done = &*khi_done;

        let tasks: Vec<LevelTask<'_>> = e_lvl[..(end - start) * width]
            .chunks_mut(width)
            .zip(par_lvl.chunks_mut(width))
            .zip(klo_lvl[..end - start].iter_mut())
            .zip(khi_lvl[..end - start].iter_mut())
            .enumerate()
            .map(|(i, (((e_row, par_row), klo_t), khi_t))| {
                (start + i, e_row, par_row, klo_t, khi_t)
            })
            .collect();
        let relax_one = |(t, e_row, par_row, klo_t, khi_t): LevelTask<'_>| {
            let edges = sk.in_off[t] as usize..sk.in_off[t + 1] as usize;
            let mut kept_n = 0u64;
            let mut pruned_n = 0u64;
            for (&j, &bi) in sk.in_idx[edges.clone()].iter().zip(&sk.in_block[edges]) {
                let b = &sk.blocks[bi as usize];
                if !b.admissible(adm) {
                    continue;
                }
                let f = b.from.idx();
                if klo_done[f] == u16::MAX {
                    continue;
                }
                let lo = klo_done[f] as usize;
                let hi = (khi_done[f] as usize).min(width - 2);
                if lo > hi {
                    continue;
                }
                let w = sk.work[j as usize];
                if w > adm.cap_work {
                    continue;
                }
                let Some(ecal) = ec.ecal(w) else { continue };
                if let Some(p) = pr {
                    // The sequential order counts per *source* (n kept
                    // transitions × its window span); counting the same
                    // products edge-by-edge here sums to the identical
                    // totals, in any task order.
                    kept_n += (hi - lo + 1) as u64;
                    pruned_n += p.saved_of(f);
                }
                let entry = b.hop + ecal;
                for k in lo..=hi {
                    let cand = e_done[f * width + k] + entry;
                    if cand < e_row[k + 1] {
                        e_row[k + 1] = cand;
                        par_row[k + 1] = b.from.0;
                    }
                }
                *klo_t = (*klo_t).min(lo as u16 + 1);
                *khi_t = (*khi_t).max(hi as u16 + 1);
            }
            if let Some(p) = pr {
                p.count_edges(kept_n, pruned_n);
                // This row is final once its last in-edge has relaxed:
                // prune it here, inside the task that owns it, iff a
                // fresh per-period build would have materialised its
                // out-block (the same gate the sequential sweep applies
                // when it reaches the block).
                let bi = block_of[t];
                if bi != u32::MAX {
                    let b = &sk.blocks[bi as usize];
                    if sk.block_live(b, adm, ec) {
                        p.prune_row(t, b.hop, width, e_row, klo_t, khi_t);
                    }
                }
            }
        };
        if sk.level_edges(start, end) >= par_level_edges && end - start >= 2 {
            tasks.into_par_iter().for_each(relax_one);
        } else {
            tasks.into_iter().for_each(relax_one);
        }
    }
}

/// `k ∈ 0..width` clusters: at most one per **alive** core, never more
/// than stages (alive = all cores on a healthy platform).
fn width_of(spg: &Spg, pf: &Platform) -> usize {
    pf.n_alive_cores().min(spg.n()) + 1
}

fn check_ideal_cap(lattice: &IdealLattice, cfg: &Dpa1dConfig) -> Result<(), Failure> {
    if lattice.len() > cfg.ideal_cap {
        return Err(Failure::budget(
            BudgetPhase::Enumerate,
            cfg.ideal_cap,
            lattice.len(),
        ));
    }
    Ok(())
}

/// Dense DP state: `e[t*width + k]` is the best energy covering ideal `t`
/// with exactly `k` clusters, `par` the arg-min source, `klo/khi` the
/// finite-`k` window per ideal (skipping the empty parts of each row).
struct DpState {
    width: usize,
    e: Vec<f64>,
    par: Vec<u32>,
    klo: Vec<u16>,
    khi: Vec<u16>,
}

impl DpState {
    fn new(n_ideals: usize, width: usize) -> DpState {
        let mut state = DpState {
            width,
            e: vec![f64::INFINITY; n_ideals * width],
            par: vec![u32::MAX; n_ideals * width],
            klo: vec![u16::MAX; n_ideals],
            khi: vec![0u16; n_ideals],
        };
        state.e[0] = 0.0;
        state.klo[0] = 0;
        state
    }

    /// The finite relaxation window of source ideal `f`, or `None` when it
    /// is unreachable or its window cannot extend (`k+1` must stay below
    /// `width`).
    #[inline]
    fn window(&self, f: usize) -> Option<(usize, usize)> {
        if self.klo[f] == u16::MAX {
            return None; // unreachable ideal
        }
        let lo = self.klo[f] as usize;
        let hi = (self.khi[f] as usize).min(self.width - 2);
        (lo <= hi).then_some((lo, hi))
    }

    /// Relaxes one transition into ideal `t` over the snapshot `row` of its
    /// source's energies (window `lo..=hi`).
    #[inline]
    fn relax(&mut self, t: usize, from: u32, entry: f64, row: &[f64], lo: usize, hi: usize) {
        let base = t * self.width + lo + 1;
        // Infinite row entries propagate harmlessly: `INF + entry` never
        // beats any slot (`INF < INF` is false), so the inner loop needs
        // no finiteness branch; the slice zip hoists the bounds checks
        // out of the loop.
        let es = &mut self.e[base..base + (hi - lo) + 1];
        let ps = &mut self.par[base..base + (hi - lo) + 1];
        for ((&b_val, ev), pv) in row[lo..=hi].iter().zip(es).zip(ps) {
            let cand = b_val + entry;
            if cand < *ev {
                *ev = cand;
                *pv = from;
            }
        }
        self.klo[t] = self.klo[t].min(lo as u16 + 1);
        self.khi[t] = self.khi[t].max(hi as u16 + 1);
    }

    /// Picks the best cluster count for the full ideal and walks the
    /// parent chain back to the empty ideal; cluster members stream
    /// straight out of the arena, no set is materialised. Also returns
    /// the DP optimum energy (the certified bound gap prices off it).
    fn backtrack(&self, lattice: &IdealLattice) -> Result<(Vec<Vec<StageId>>, f64), Failure> {
        let width = self.width;
        let full = lattice.full_id().idx();
        let full_row = &self.e[full * width..(full + 1) * width];
        let Some((k_best, &best)) = full_row
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_finite())
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
        else {
            return Err(Failure::NoValidMapping(
                "no feasible cluster chain within the core count".into(),
            ));
        };
        let mut chain: Vec<Vec<StageId>> = Vec::with_capacity(k_best);
        let mut j = full;
        for k in (1..=k_best).rev() {
            let i = self.par[j * width + k] as usize;
            debug_assert_ne!(i, u32::MAX as usize, "broken parent chain");
            let members: Vec<StageId> = lattice
                .get(IdealId(j as u32))
                .difference_iter(lattice.get(IdealId(i as u32)))
                .map(|x| StageId(x as u32))
                .collect();
            chain.push(members);
            j = i;
        }
        debug_assert_eq!(j, 0, "chain must end at the empty ideal");
        chain.reverse();
        Ok((chain, best))
    }
}

/// Lays a cluster chain along the snake and validates it.
pub(crate) fn build_snake_solution(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    chain: &[Vec<StageId>],
    table: Option<&RouteTable>,
) -> Result<Solution, Failure> {
    let mut alloc = vec![CoreId { u: 0, v: 0 }; spg.n()];
    // Clusters land on consecutive *alive* snake positions (the identity
    // on a healthy platform); dead cores are skipped, their routers still
    // carry the snake traffic through.
    let spots: Vec<CoreId> = (0..pf.n_cores())
        .map(|i| snake_core(pf, i))
        .filter(|c| pf.core_alive(*c))
        .collect();
    if chain.len() > spots.len() {
        return Err(Failure::NoValidMapping(
            "more clusters than alive cores".into(),
        ));
    }
    for (pos, cluster) in chain.iter().enumerate() {
        let core = spots[pos];
        for &s in cluster {
            alloc[s.idx()] = core;
        }
    }
    let speed = cmp_mapping::assign_min_speeds(spg, pf, &alloc, period)
        .ok_or_else(|| Failure::NoValidMapping("cluster exceeds fastest speed".into()))?;
    let mapping = Mapping {
        alloc,
        speed,
        routes: RouteSpec::Snake,
    };
    validated_with(spg, pf, mapping, period, table)
}

/// Enumerates every (ideal, one-cluster extension) pair with cluster work
/// within the period's work cap, visiting each extension exactly once via
/// first-included-stage branching on ready stages. Ideals whose outgoing
/// cut already exceeds the bandwidth-period product are skipped outright:
/// no chain may pass through them, so their transitions would be dead
/// weight in the relaxation.
fn materialize_transitions(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    lattice: &IdealLattice,
    cuts: &[f64],
    adm: &Admission,
    edge_cap: usize,
) -> Result<(Vec<TransitionBlock>, Transitions), Failure> {
    let mut blocks: Vec<TransitionBlock> = Vec::new();
    let mut transitions = Transitions::default();
    let mut ctx = ExtendCtx {
        spg,
        lattice,
        pred_masks: lattice.pred_masks(),
        cap_work: adm.cap_work,
        stack: Vec::with_capacity(4 * spg.n()),
    };
    let ecal = EcalTable::new(pf, period);
    for from in lattice.ids() {
        if from.idx() != 0 && cuts[from.idx()] > adm.bw_cap {
            continue; // outgoing link overloaded: unreachable boundary
        }
        // The ready stages of `from` are exactly its recorded covers.
        ctx.stack.clear();
        ctx.stack
            .extend(lattice.covers(from).iter().map(|&(s, _)| StageId(s)));
        let hi = ctx.stack.len();
        let start = transitions.len() as u32;
        let ok = extend(&mut ctx, from, 0.0, 1, 0, hi, &mut |to: IdealId,
                                                             w: f64,
                                                             _depth: u32|
         -> bool {
            if transitions.len() >= edge_cap {
                return false;
            }
            // The work pruning guarantees a feasible speed exists; be
            // defensive about rounding anyway and drop the transition
            // rather than panic.
            if let Some(ecal) = ecal.ecal(w) {
                transitions.to.push(to);
                transitions.ecal.push(ecal);
            }
            true
        });
        if !ok {
            return Err(Failure::budget(
                BudgetPhase::Materialise,
                edge_cap,
                edge_cap + 1,
            ));
        }
        let end = transitions.len() as u32;
        if end > start {
            let hop = if from.idx() == 0 {
                0.0
            } else {
                pf.hop_energy(cuts[from.idx()])
            };
            blocks.push(TransitionBlock {
                from,
                hop,
                range: start..end,
            });
        }
    }
    Ok((blocks, transitions))
}

/// Shared state of the cluster-extension DFS: the graph, the interned
/// lattice (whose Hasse covers resolve "current ideal + stage" to the next
/// `IdealId` without hashing), and an arena stack holding every recursion
/// level's ready list as a range — the DFS performs no per-node allocation.
struct ExtendCtx<'a> {
    spg: &'a Spg,
    lattice: &'a IdealLattice,
    pred_masks: &'a [NodeSet],
    cap_work: f64,
    stack: Vec<StageId>,
}

/// DFS over cluster extensions of `cur`, whose pending ready list is
/// `ctx.stack[lo..hi]` (in lattice cover order — NOT sorted by weight, so
/// an overweight stage must be `continue`d past, never `break`ed on). Each
/// loop iteration picks `stack[k]` as the *next* included stage (everything
/// before `k` stays excluded on this path), so every distinct extension is
/// visited exactly once. `visit` receives the extension's interned id, its
/// cluster work, and its cluster stage count (`depth` counts the stages on
/// this path); returning `false` aborts.
fn extend(
    ctx: &mut ExtendCtx<'_>,
    cur: IdealId,
    w: f64,
    depth: u32,
    lo: usize,
    hi: usize,
    visit: &mut impl FnMut(IdealId, f64, u32) -> bool,
) -> bool {
    for k in lo..hi {
        let s = ctx.stack[k];
        let w2 = w + ctx.spg.weight(s);
        if w2 > ctx.cap_work {
            continue; // a lighter stage later in the list may still fit
        }
        let child = ctx
            .lattice
            .child_via(cur, s)
            .expect("ready stage must have a recorded cover");
        if !visit(child, w2, depth) {
            return false;
        }
        // Next level's ready list: the stages after `k`, plus the covers of
        // `child` released by `s` itself. A stage becomes ready exactly when
        // its last missing predecessor joins the ideal, so "newly released"
        // is precisely "`s` is one of its predecessors" — stages ready
        // earlier (including the ones deliberately excluded at shallower
        // levels of this path) can never have `s` as a predecessor.
        let next_lo = ctx.stack.len();
        ctx.stack.extend_from_within(k + 1..hi);
        for &(cs, _) in ctx.lattice.covers(child) {
            if ctx.pred_masks[cs as usize].contains(s.idx()) {
                ctx.stack.push(StageId(cs));
            }
        }
        let next_hi = ctx.stack.len();
        if next_hi > next_lo {
            let ok = extend(ctx, child, w2, depth + 1, next_lo, next_hi, visit);
            ctx.stack.truncate(next_lo);
            if !ok {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use spg::{chain, parallel_many};

    #[test]
    fn single_core_when_period_is_loose() {
        let pf = Platform::paper(4, 4);
        let g = chain(&[1e6; 10], &[1e3; 9]);
        let sol = dpa1d_run(&g, &pf, 1.0, &Dpa1dConfig::default(), None, None, None).unwrap();
        assert_eq!(sol.eval.active_cores, 1);
        let expect = 0.08 + (1e7 / 0.15e9) * 0.08;
        assert!((sol.energy() - expect).abs() < 1e-9);
    }

    #[test]
    fn splits_when_period_forces_it() {
        let pf = Platform::paper(2, 2);
        // 4 stages of 0.9e9 cycles: one per core at 1 GHz for T = 1.
        let g = chain(&[0.9e9; 4], &[1e3; 3]);
        let sol = dpa1d_run(&g, &pf, 1.0, &Dpa1dConfig::default(), None, None, None).unwrap();
        assert_eq!(sol.eval.active_cores, 4);
    }

    #[test]
    fn fails_when_chain_needs_too_many_cores() {
        let pf = Platform::paper(1, 2);
        let g = chain(&[0.9e9; 3], &[1e3; 2]);
        assert!(matches!(
            dpa1d_run(&g, &pf, 1.0, &Dpa1dConfig::default(), None, None, None),
            Err(Failure::NoValidMapping(_))
        ));
    }

    #[test]
    fn fails_on_lattice_explosion() {
        // Elevation-10 fork-join: ~6^10 ideals, way past a tiny cap.
        let branches: Vec<Spg> = (0..10).map(|_| chain(&[1e5; 7], &[1e2; 6])).collect();
        let g = parallel_many(&branches);
        let pf = Platform::paper(4, 4);
        let cfg = Dpa1dConfig {
            ideal_cap: 1000,
            ..Default::default()
        };
        let err = dpa1d_run(&g, &pf, 1.0, &cfg, None, None, None).unwrap_err();
        let budget = err.budget_exceeded().expect("budget failure");
        assert_eq!(budget.phase, BudgetPhase::Enumerate);
        assert_eq!(budget.cap, 1000);
        assert!(budget.count > 1000, "count at abort exceeds the cap");
    }

    #[test]
    fn respects_bandwidth_on_the_snake() {
        // Two heavy stages forced onto different cores with an edge too fat
        // for the link: DPA1D must fail rather than emit an invalid mapping.
        let pf = Platform::paper(1, 2);
        let g = chain(&[0.9e9, 0.9e9], &[25e9]);
        assert!(dpa1d_run(&g, &pf, 1.0, &Dpa1dConfig::default(), None, None, None).is_err());
    }

    #[test]
    fn chain_clusters_are_contiguous_prefix_partition() {
        let pf = Platform::paper(1, 4);
        let g = chain(&[0.5e9; 6], &[1e3; 5]);
        let (chain_sol, _) = solve_chain(&g, &pf, 1.0, &Dpa1dConfig::default()).unwrap();
        // Union of clusters in order must walk the chain front to back.
        let topo = g.topo_order();
        let flat: Vec<StageId> = chain_sol
            .iter()
            .flat_map(|c| {
                let mut c = c.clone();
                c.sort_by_key(|s| topo.iter().position(|t| t == s).unwrap());
                c
            })
            .collect();
        assert_eq!(flat, topo);
    }

    #[test]
    fn dp_energy_matches_evaluator() {
        // The DP's internal cost model must agree with the shared evaluator.
        let pf = Platform::paper(2, 3);
        let g = chain(&[0.5e9, 0.3e9, 0.7e9, 0.2e9], &[1e6, 5e6, 2e6]);
        let sol = dpa1d_run(&g, &pf, 1.0, &Dpa1dConfig::default(), None, None, None).unwrap();
        // Recompute through the evaluator (already done inside validated);
        // here we just sanity-check decomposition adds up.
        let e = &sol.eval;
        assert!(
            (e.energy - (e.compute_dynamic + e.compute_leak + e.comm_dynamic + e.comm_leak)).abs()
                < 1e-12
        );
    }

    /// The skeleton path (sequential and forced-parallel) must agree with
    /// the fresh per-period materialisation to the last bit, across loose
    /// and tight periods and across the empty-ideal special cases.
    #[test]
    fn skeleton_paths_match_fresh_materialisation() {
        let graphs = [chain(&[0.5e9, 0.3e9, 0.7e9, 0.2e9], &[1e6, 5e6, 2e6]), {
            let branches: Vec<Spg> = (0..3)
                .map(|i| chain(&[2e8 + i as f64, 3e8], &[1e4]))
                .collect();
            spg::series(&chain(&[1e8, 2e8], &[1e4]), &parallel_many(&branches))
        }];
        let pf = Platform::paper(2, 3);
        let cfg = Dpa1dConfig::default();
        for g in &graphs {
            let lattice = enumerate_ideals(g, cfg.ideal_cap).unwrap();
            let cuts: Vec<f64> = lattice.iter().map(|s| g.cut_volume(s)).collect();
            let shared = SharedLattice {
                lattice: enumerate_ideals(g, cfg.ideal_cap).unwrap(),
                cuts: cuts.clone(),
            };
            let sk = build_skeleton(g, &pf, &shared, cfg.edge_cap).unwrap();
            assert!(sk.n_transitions() > 0 && sk.n_blocks() > 0);
            assert!(sk.max_cluster_stages() >= 1);
            for period in [1.0, 0.5, 0.2, 0.05, 0.01] {
                let fresh = solve_chain_on(g, &pf, period, &cfg, &lattice, &cuts);
                let seq = solve_chain_skeleton(g, &pf, period, &cfg, &lattice, &sk);
                let par_cfg = Dpa1dConfig {
                    relax_par_threshold: 0, // force the parallel path
                    ..cfg.clone()
                };
                // A 2-worker pool keeps the forced-parallel leg meaningful
                // on single-core machines (the solver falls back to the
                // sequential order when only one worker is available).
                let pool = rayon::ThreadPool::new(2);
                let par =
                    pool.install(|| solve_chain_skeleton(g, &pf, period, &par_cfg, &lattice, &sk));
                match (&fresh, &seq, &par) {
                    (Ok(a), Ok(b), Ok(c)) => {
                        assert_eq!(a, b, "sequential skeleton diverged at T={period}");
                        assert_eq!(a, c, "parallel skeleton diverged at T={period}");
                    }
                    (Err(_), Err(_), Err(_)) => {}
                    other => panic!("path outcomes diverged at T={period}: {other:?}"),
                }
            }
        }
    }

    /// The admitted-transition count is monotone in the period and the
    /// edge cap failure carries the admitted count.
    #[test]
    fn admission_is_monotone_and_edge_cap_structured() {
        let g = chain(&[0.5e9; 6], &[1e5; 5]);
        let pf = Platform::paper(2, 2);
        let cfg = Dpa1dConfig::default();
        let shared = SharedLattice {
            lattice: enumerate_ideals(&g, cfg.ideal_cap).unwrap(),
            cuts: {
                let l = enumerate_ideals(&g, cfg.ideal_cap).unwrap();
                l.iter().map(|s| g.cut_volume(s)).collect()
            },
        };
        let sk = build_skeleton(&g, &pf, &shared, cfg.edge_cap).unwrap();
        let mut prev = 0usize;
        for period in [0.01, 0.1, 1.0, 10.0] {
            let adm = Admission::new(&pf, period);
            let n = sk.admitted_count(&adm);
            assert!(n >= prev, "admission must be monotone in the period");
            prev = n;
        }
        assert_eq!(prev, sk.n_transitions(), "a loose period admits all");
        // With the dominance layer off (legacy semantics), a tiny edge cap
        // fails the skeleton path with the admitted count.
        let tight = Dpa1dConfig {
            edge_cap: 1,
            dominance: false,
            ..cfg.clone()
        };
        let err = solve_chain_skeleton(&g, &pf, 1.0, &tight, &shared.lattice, &sk).unwrap_err();
        let b = err.budget_exceeded().unwrap();
        assert_eq!(b.phase, BudgetPhase::Materialise);
        assert_eq!(b.cap, 1);
        assert!(b.count > 1);
        // With the dominance layer on, the same cap is a bound on what gets
        // *built*, not a failure mode: the already-built skeleton streams
        // through admission and yields the exact chain.
        let (unc, _) = solve_chain_skeleton(&g, &pf, 1.0, &cfg, &shared.lattice, &sk).unwrap();
        let tight_dom = Dpa1dConfig {
            edge_cap: 1,
            ..cfg.clone()
        };
        let (capped, stats) =
            solve_chain_skeleton(&g, &pf, 1.0, &tight_dom, &shared.lattice, &sk).unwrap();
        assert_eq!(unc, capped, "edge cap must not change the exact chain");
        let stats = stats.unwrap();
        assert_eq!(stats.bound_gap, 0.0, "uncapped frontier is exact");
        assert!(stats.transitions_kept > 0);
    }

    /// The skeleton builder itself respects the edge cap (complete-set
    /// explosion falls back, it must not OOM or panic).
    #[test]
    fn skeleton_build_respects_edge_cap() {
        let g = chain(&[1e6; 30], &[1e3; 29]);
        let pf = Platform::paper(2, 2);
        let shared = SharedLattice {
            lattice: enumerate_ideals(&g, 60_000).unwrap(),
            cuts: {
                let l = enumerate_ideals(&g, 60_000).unwrap();
                l.iter().map(|s| g.cut_volume(s)).collect()
            },
        };
        // A 30-chain has 31 ideals and C(31,2) = 465 transitions.
        let sk = build_skeleton(&g, &pf, &shared, 1_000_000).unwrap();
        assert_eq!(sk.n_transitions(), 465);
        assert!(sk.is_complete() && sk.serves(f64::MAX));
        let err = build_skeleton(&g, &pf, &shared, 100).unwrap_err();
        let b = err.budget_exceeded().unwrap();
        assert_eq!(b.phase, BudgetPhase::Materialise);
        assert_eq!(b.cap, 100);
        // A work-ceiling bounded build materialises only the ceiling's
        // admitted set — it fits the cap the complete build overflows.
        // cap_work = 3e6 ⇒ clusters of ≤ 3 stages ⇒ 3·30 − 3 = 87 ≤ 100.
        let ceiling = 0.003;
        let bounded = build_skeleton_bounded(&g, &pf, &shared, 100, ceiling).unwrap();
        assert!(!bounded.is_complete());
        assert!(bounded.serves(ceiling) && !bounded.serves(ceiling * 1.01));
        assert!(bounded.n_transitions() < sk.n_transitions());
    }

    /// A bounded skeleton serves every period at or below its ceiling
    /// bit-identically to the complete skeleton AND to fresh per-period
    /// materialisation — results and telemetry both.
    #[test]
    fn bounded_skeleton_matches_fresh_below_ceiling() {
        let branches: Vec<Spg> = (0..3)
            .map(|i| chain(&[2e8 + i as f64, 3e8], &[1e4]))
            .collect();
        let g = spg::series(&chain(&[1e8, 2e8], &[1e4]), &parallel_many(&branches));
        let pf = Platform::paper(2, 3);
        let cfg = Dpa1dConfig::default();
        let lattice = enumerate_ideals(&g, cfg.ideal_cap).unwrap();
        let cuts: Vec<f64> = lattice.iter().map(|s| g.cut_volume(s)).collect();
        let shared = SharedLattice {
            lattice: enumerate_ideals(&g, cfg.ideal_cap).unwrap(),
            cuts: cuts.clone(),
        };
        let complete = build_skeleton(&g, &pf, &shared, cfg.edge_cap).unwrap();
        let ceiling = 0.5;
        let bounded = build_skeleton_bounded(&g, &pf, &shared, cfg.edge_cap, ceiling).unwrap();
        assert!(bounded.n_transitions() <= complete.n_transitions());
        for period in [0.5, 0.2, 0.05, 0.01] {
            let adm = Admission::new(&pf, period);
            assert_eq!(
                bounded.admitted_count(&adm),
                complete.admitted_count(&adm),
                "admitted sets must agree at T={period}"
            );
            let fresh = solve_chain_on(&g, &pf, period, &cfg, &lattice, &cuts);
            let served = solve_chain_skeleton(&g, &pf, period, &cfg, &lattice, &bounded);
            match (&fresh, &served) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "bounded skeleton diverged at T={period}"),
                (Err(_), Err(_)) => {}
                other => panic!("path outcomes diverged at T={period}: {other:?}"),
            }
        }
    }

    /// With dominance on, a materialise-overflow streams the relaxation
    /// instead of failing, and matches the uncapped materialised solve —
    /// results and telemetry — making the edge cap soundness-preserving.
    #[test]
    fn streaming_fallback_matches_materialised() {
        // 6 cores: even the tight period's all-singleton chain stays
        // feasible, so both legs exercise a real solve.
        let g = chain(&[0.5e9; 6], &[1e5; 5]);
        let pf = Platform::paper(2, 3);
        let base = Dpa1dConfig::default();
        let lattice = enumerate_ideals(&g, base.ideal_cap).unwrap();
        let cuts: Vec<f64> = lattice.iter().map(|s| g.cut_volume(s)).collect();
        for period in [1.0, 0.5] {
            let full = solve_chain_on(&g, &pf, period, &base, &lattice, &cuts).unwrap();
            let capped_cfg = Dpa1dConfig {
                edge_cap: 1,
                ..base.clone()
            };
            let capped = solve_chain_on(&g, &pf, period, &capped_cfg, &lattice, &cuts).unwrap();
            assert_eq!(full, capped, "streaming diverged at T={period}");
            // Dominance off keeps the 0.7 semantics: a hard budget failure.
            let legacy = Dpa1dConfig {
                edge_cap: 1,
                dominance: false,
                ..base.clone()
            };
            let err = solve_chain_on(&g, &pf, period, &legacy, &lattice, &cuts).unwrap_err();
            assert_eq!(
                err.budget_exceeded().unwrap().phase,
                BudgetPhase::Materialise
            );
        }
    }

    /// Dominance pruning is value-preserving: the solved chain is
    /// bit-identical with the layer on and off (only the telemetry
    /// differs — off reports none).
    #[test]
    fn dominance_on_off_chains_agree() {
        let graphs = [chain(&[0.5e9, 0.3e9, 0.7e9, 0.2e9], &[1e6, 5e6, 2e6]), {
            let branches: Vec<Spg> = (0..3)
                .map(|i| chain(&[2e8 + i as f64, 3e8], &[1e4]))
                .collect();
            spg::series(&chain(&[1e8, 2e8], &[1e4]), &parallel_many(&branches))
        }];
        let pf = Platform::paper(2, 3);
        let off_cfg = Dpa1dConfig {
            dominance: false,
            ..Default::default()
        };
        for g in &graphs {
            for period in [1.0, 0.5, 0.2, 0.05, 0.01] {
                let on = solve_chain(g, &pf, period, &Dpa1dConfig::default());
                let off = solve_chain(g, &pf, period, &off_cfg);
                match (&on, &off) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.0, b.0, "dominance changed the chain at T={period}");
                        assert!(a.1.is_some() && b.1.is_none());
                    }
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                    other => panic!("on/off outcomes diverged at T={period}: {other:?}"),
                }
            }
        }
    }

    /// `frontier_cap` truncation returns a solution with a certified gap
    /// that contains the true optimum (from the uncapped solve), instead
    /// of failing.
    #[test]
    fn frontier_cap_certifies_a_bound_gap() {
        // Light stages at a loose period: many cluster counts are feasible
        // per ideal and splitting lowers dynamic energy, so rows hold rich
        // frontiers that a cap of 1 must truncate.
        let g = chain(&[0.4e9; 4], &[1e3; 3]);
        let pf = Platform::paper(2, 2);
        let t = 1.0;
        let exact = dpa1d_run(&g, &pf, t, &Dpa1dConfig::default(), None, None, None).unwrap();
        let exact_stats = exact.prune.expect("dominance on by default");
        assert!(
            exact_stats.frontier_max >= 2,
            "test instance must exercise a non-trivial frontier, got {exact_stats:?}"
        );
        assert_eq!(exact_stats.bound_gap, 0.0);
        let capped_cfg = Dpa1dConfig {
            frontier_cap: 1,
            ..Default::default()
        };
        let capped = dpa1d_run(&g, &pf, t, &capped_cfg, None, None, None).unwrap();
        let gap = capped.bound_gap();
        assert!(gap >= 0.0);
        // The capped solve prices a (possibly suboptimal) valid chain, so
        // its energy is at least the optimum; the certificate says the
        // optimum is no further than `gap` below it. One ulp of slack for
        // the evaluator's re-pricing of the DP energies.
        let slack = 1e-9 * exact.energy();
        assert!(capped.energy() >= exact.energy() - slack);
        assert!(
            exact.energy() >= capped.energy() - gap - slack,
            "certified gap must contain the true optimum: exact={}, capped={}, gap={gap}",
            exact.energy(),
            capped.energy()
        );
    }

    use spg::Spg;
}
