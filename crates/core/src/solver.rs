//! The solver abstraction: a uniform `solve(&Instance, &SolveCtx)` entry
//! point over every algorithm in the crate, plus a string-keyed registry
//! for config/CLI-driven selection.
//!
//! The five heuristics of paper §5, the §4.4 exact solver, and the
//! hill-climbing refinement combinator all implement [`Solver`] (see the
//! [`crate::solvers`] module); [`SolverRegistry`] resolves paper-style
//! names (case-insensitively) to shared solver handles, and understands
//! `refined:<name>` as the refinement wrapper around a registered solver.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::common::{Failure, Solution};
use crate::instance::Instance;

/// Per-call solve context: the seed driving any randomized choices, and an
/// optional wall-clock deadline.
///
/// Deadline checking is **coarse-grained**: solvers test it at their entry
/// (and between major phases where natural), not inside inner loops, so a
/// budget bounds when new work *starts* rather than preempting running DP
/// sweeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveCtx {
    /// Seed for randomized solvers (only `Random` draws from it today).
    pub seed: u64,
    /// Optional wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Anytime mode: when the deadline (or a complexity budget) would
    /// force a bare [`Failure::TooExpensive`], the caller prefers the
    /// best-known mapping with a certified energy bound instead. Today the
    /// [`crate::Portfolio`] honours this by rescuing a deadline-starved
    /// run with an un-budgeted `Greedy` pass whose
    /// [`crate::PruneStats::bound_gap`] certifies the distance to
    /// [`crate::Instance::energy_lower_bound`].
    pub anytime: bool,
}

impl SolveCtx {
    /// A context with the given seed and no deadline.
    pub fn new(seed: u64) -> Self {
        SolveCtx {
            seed,
            ..Default::default()
        }
    }

    /// A context with a wall-clock budget counted from now.
    pub fn budgeted(seed: u64, budget: Duration) -> Self {
        SolveCtx {
            seed,
            deadline: Instant::now().checked_add(budget),
            ..Default::default()
        }
    }

    /// Whether the deadline (if any) has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Errors with [`Failure::TooExpensive`] once the deadline has passed;
    /// solvers call this at entry (and between phases).
    pub fn check_budget(&self) -> Result<(), Failure> {
        if self.expired() {
            Err(Failure::budget(crate::common::BudgetPhase::Deadline, 0, 0))
        } else {
            Ok(())
        }
    }
}

/// A named solving algorithm over an [`Instance`].
pub trait Solver: Send + Sync {
    /// Display name, matching the paper's figures where applicable
    /// (`"Random"`, `"Greedy"`, `"DPA2D"`, `"DPA1D"`, `"DPA2D1D"`,
    /// `"Exact"`, `"Refined(...)"`).
    fn name(&self) -> &str;

    /// Solves the instance, or explains why no valid mapping was produced.
    fn solve(&self, inst: &Instance, ctx: &SolveCtx) -> Result<Solution, Failure>;
}

/// Prefix selecting the refinement wrapper in registry lookups:
/// `refined:greedy` resolves to `Refined(Greedy)`.
const REFINED_PREFIX: &str = "refined:";

/// A string-keyed set of solvers for config/CLI-driven selection.
///
/// Lookup is case-insensitive on [`Solver::name`]; registering a solver
/// whose name is already present replaces the previous entry.
pub struct SolverRegistry {
    entries: Vec<Arc<dyn Solver>>,
}

impl SolverRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SolverRegistry {
            entries: Vec::new(),
        }
    }

    /// The standard registry: the five §5 heuristics in plot order,
    /// followed by the §4.4 exact solver, all at default configuration.
    pub fn with_defaults() -> Self {
        let mut reg = SolverRegistry::new();
        for s in crate::solvers::default_heuristics() {
            reg.register(s);
        }
        reg.register(Arc::new(crate::solvers::Exact::default()));
        reg
    }

    /// Registers (or replaces) a solver under its own name.
    pub fn register(&mut self, solver: Arc<dyn Solver>) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.name().eq_ignore_ascii_case(solver.name()))
        {
            *e = solver;
        } else {
            self.entries.push(solver);
        }
    }

    /// Resolves a name (case-insensitive). `refined:<name>` wraps the named
    /// solver in the hill-climbing refinement combinator.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Solver>> {
        let name = name.trim();
        if let Some(inner) = name
            .to_ascii_lowercase()
            .strip_prefix(REFINED_PREFIX)
            .map(str::to_owned)
        {
            let inner = self.get(&inner)?;
            return Some(Arc::new(crate::solvers::Refined::new(inner)));
        }
        self.entries
            .iter()
            .find(|e| e.name().eq_ignore_ascii_case(name))
            .cloned()
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name()).collect()
    }

    /// All registered solvers, in registration order.
    pub fn solvers(&self) -> Vec<Arc<dyn Solver>> {
        self.entries.clone()
    }

    /// Parses a comma-separated solver list (e.g. a CLI `--solvers`
    /// value) against the registry. Unknown names error with the list of
    /// known ones; an empty selection is an error too.
    pub fn parse_list(&self, csv: &str) -> Result<Vec<Arc<dyn Solver>>, String> {
        let mut out = Vec::new();
        for name in csv.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match self.get(name) {
                Some(s) => out.push(s),
                None => {
                    return Err(format!(
                        "unknown solver '{name}' (known: {}, plus refined:<name>)",
                        self.names().join(", ")
                    ))
                }
            }
        }
        if out.is_empty() {
            return Err("empty solver list".into());
        }
        Ok(out)
    }
}

impl Default for SolverRegistry {
    fn default() -> Self {
        SolverRegistry::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip_and_case_insensitivity() {
        let reg = SolverRegistry::with_defaults();
        for name in reg.names() {
            let solver = reg.get(name).expect("registered name resolves");
            assert_eq!(solver.name(), name, "name -> solver -> name roundtrip");
        }
        assert_eq!(reg.get("dpa2d1d").unwrap().name(), "DPA2D1D");
        assert_eq!(reg.get("EXACT").unwrap().name(), "Exact");
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn refined_prefix_wraps() {
        let reg = SolverRegistry::with_defaults();
        let r = reg.get("refined:greedy").unwrap();
        assert_eq!(r.name(), "Refined(Greedy)");
        assert!(reg.get("refined:nope").is_none());
    }

    #[test]
    fn parse_list_reports_unknown_names() {
        let reg = SolverRegistry::with_defaults();
        let picked = reg.parse_list("greedy, DPA1D").unwrap();
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[1].name(), "DPA1D");
        let Err(msg) = reg.parse_list("greedy,bogus") else {
            panic!("unknown name must error");
        };
        assert!(msg.contains("bogus"));
        assert!(reg.parse_list(" , ").is_err());
    }

    #[test]
    fn register_replaces_same_name() {
        let mut reg = SolverRegistry::with_defaults();
        let n = reg.names().len();
        reg.register(Arc::new(crate::solvers::Greedy { downgrade: false }));
        assert_eq!(reg.names().len(), n, "same-name registration replaces");
    }

    #[test]
    fn budget_expiry() {
        let ctx = SolveCtx::budgeted(0, Duration::from_secs(3600));
        assert!(!ctx.expired());
        assert!(ctx.check_budget().is_ok());
        let ctx = SolveCtx {
            seed: 0,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..Default::default()
        };
        assert!(ctx.expired());
        assert!(matches!(ctx.check_budget(), Err(Failure::TooExpensive(_))));
    }
}
