//! # ea-core — energy-aware SPG→CMP mapping algorithms
//!
//! The paper's primary contribution (§5): five polynomial-time heuristics
//! for the NP-hard `MinEnergy(T)` problem, plus an exhaustive exact solver
//! standing in for the §4.4 integer linear program.
//!
//! | Algorithm | Paper | Module |
//! |---|---|---|
//! | `Random` — random DAG-partition chain, random placement, best of 10 | §5.1 | [`mod@random`] |
//! | `Greedy` — wavefront growth from `C_{1,1}` at each speed, downgrade | §5.2 | [`mod@greedy`] |
//! | `DPA2D` — nested column/row dynamic programs on the label grid | §5.3 | [`mod@dpa2d`] |
//! | `DPA1D` — optimal uni-line DP over order ideals (Theorem 1), snaked | §5.4 | [`mod@dpa1d`] |
//! | `DPA2D1D` — `DPA2D` on a virtual `1 × pq` CMP, snaked | §5.4 | [`mod@dpa2d1d`] |
//! | exact — exhaustive DAG-partitions × placements × XY routes | §4.4 | [`mod@exact`] |
//!
//! Every algorithm returns a [`Solution`] whose mapping has been
//! re-validated by `cmp_mapping::evaluate`, or a [`Failure`] explaining why
//! no valid mapping was produced (the paper's "heuristic fails" outcomes,
//! counted in Tables 2 and 3).

pub mod common;
pub mod dpa1d;
pub mod dpa2d;
pub mod dpa2d1d;
pub mod exact;
pub mod greedy;
pub mod random;
pub mod refine;

pub use common::{Failure, HeuristicKind, Solution, ALL_HEURISTICS};
pub use dpa1d::{dpa1d, Dpa1dConfig};
pub use dpa2d::dpa2d;
pub use dpa2d1d::dpa2d1d;
pub use exact::{exact, ExactConfig, PartitionRule};
pub use greedy::{greedy, greedy_opts};
pub use random::random_heuristic;
pub use refine::{refine, RefineConfig};

use cmp_platform::Platform;
use spg::Spg;

/// Runs one heuristic by kind. `seed` only affects [`HeuristicKind::Random`].
pub fn run_heuristic(
    kind: HeuristicKind,
    spg: &Spg,
    pf: &Platform,
    period: f64,
    seed: u64,
) -> Result<Solution, Failure> {
    match kind {
        HeuristicKind::Random => random_heuristic(spg, pf, period, seed),
        HeuristicKind::Greedy => greedy(spg, pf, period),
        HeuristicKind::Dpa2d => dpa2d(spg, pf, period),
        HeuristicKind::Dpa1d => dpa1d(spg, pf, period, &Dpa1dConfig::default()),
        HeuristicKind::Dpa2d1d => dpa2d1d(spg, pf, period),
    }
}
