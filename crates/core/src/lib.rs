//! # ea-core — energy-aware SPG→CMP mapping algorithms
//!
//! The paper's primary contribution (§5): five polynomial-time heuristics
//! for the NP-hard `MinEnergy(T)` problem, plus an exhaustive exact solver
//! standing in for the §4.4 integer linear program.
//!
//! | Algorithm | Paper | Solver |
//! |---|---|---|
//! | `Random` — random DAG-partition chain, random placement, best of 10 | §5.1 | [`solvers::Random`] |
//! | `Greedy` — wavefront growth from `C_{1,1}` at each speed, downgrade | §5.2 | [`solvers::Greedy`] |
//! | `DPA2D` — nested column/row dynamic programs on the label grid | §5.3 | [`solvers::Dpa2d`] |
//! | `DPA1D` — optimal uni-line DP over order ideals (Theorem 1), snaked | §5.4 | [`solvers::Dpa1d`] |
//! | `DPA2D1D` — `DPA2D` on a virtual `1 × pq` CMP, snaked | §5.4 | [`solvers::Dpa2d1d`] |
//! | exact — exhaustive DAG-partitions × placements × XY routes | §4.4 | [`solvers::Exact`] |
//!
//! ## The solve API
//!
//! Wrap a workload, platform, and period into an [`Instance`] (which
//! lazily caches the derived structures the algorithms share — most
//! importantly `DPA1D`'s interned ideal lattice), then run a single
//! [`Solver`] or a whole [`Portfolio`]:
//!
//! ```
//! use ea_core::{Instance, Portfolio};
//! use cmp_platform::Platform;
//!
//! let inst = Instance::new(spg::chain(&[2e8; 8], &[1e4; 7]), Platform::paper(4, 4), 0.5);
//! let report = Portfolio::heuristics().seeded(42).run(&inst);
//! for run in &report.runs {
//!     println!("{}: {:?} in {:?}", run.name, run.energy(), run.wall);
//! }
//! let best = report.best_solution().expect("a loose pipeline is feasible");
//! assert!(best.eval.max_cycle_time <= 0.5 * (1.0 + 1e-9));
//! ```
//!
//! [`SolverRegistry`] resolves paper-style names (`"greedy"`,
//! `"DPA1D"`, `"refined:dpa2d"`, …) for config/CLI-driven selection.
//!
//! Every algorithm returns a [`Solution`] whose mapping has been
//! re-validated by `cmp_mapping::evaluate`, or a [`Failure`] explaining why
//! no valid mapping was produced (the paper's "heuristic fails" outcomes,
//! counted in Tables 2 and 3).
//!
//! The pre-0.2 free functions (`run_heuristic`, `dpa1d`, `exact`, …) remain
//! as thin `#[deprecated]` shims over the same implementations.

#![warn(missing_docs)]

pub mod common;
pub mod dpa1d;
pub mod dpa2d;
pub mod dpa2d1d;
pub mod exact;
pub mod greedy;
pub mod instance;
pub mod json;
pub mod portfolio;
pub mod random;
pub mod refine;
pub mod serve;
pub mod solver;
pub mod solvers;
pub mod sweep;

pub use common::{
    BudgetExceeded, BudgetPhase, Failure, HeuristicKind, PruneStats, Solution, ALL_HEURISTICS,
};
pub use dpa1d::{Dpa1dConfig, TransitionSkeleton};
pub use exact::{ExactConfig, PartitionRule};
pub use greedy::greedy_opts;
pub use instance::{Instance, SharedLattice};
pub use portfolio::{Portfolio, PortfolioReport, Race, SolverRun};
pub use refine::{refine, refine_with, RefineConfig};
pub use serve::{ServeConfig, Server, Service};
pub use solver::{SolveCtx, Solver, SolverRegistry};
pub use sweep::{PeriodSweep, SolveOutcome, SweepAxis, SweepPoint, SweepReport};

// Deprecated pre-0.2 free-function surface, re-exported for downstream
// compatibility (each carries its own `#[deprecated]` note).
#[allow(deprecated)]
pub use dpa1d::dpa1d;
#[allow(deprecated)]
pub use dpa2d::dpa2d;
#[allow(deprecated)]
pub use dpa2d1d::dpa2d1d;
#[allow(deprecated)]
pub use exact::exact;
#[allow(deprecated)]
pub use greedy::greedy;
#[allow(deprecated)]
pub use random::random_heuristic;

use cmp_platform::Platform;
use spg::Spg;

/// Runs one heuristic by kind. `seed` only affects [`HeuristicKind::Random`].
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "build an `Instance` and use `HeuristicKind::solver` (or `Portfolio`) instead"
)]
pub fn run_heuristic(
    kind: HeuristicKind,
    spg: &Spg,
    pf: &Platform,
    period: f64,
    seed: u64,
) -> Result<Solution, Failure> {
    let inst = Instance::new(spg.clone(), pf.clone(), period);
    kind.solver().solve(&inst, &SolveCtx::new(seed))
}
