//! The `DPA2D` heuristic (paper §5.3).
//!
//! Stages are first laid on the `xmax × ymax` **virtual grid** given by
//! their labels. An outer dynamic program cuts the `x`-levels into at most
//! `q` contiguous groups, one per physical CMP column; for each candidate
//! column, an inner dynamic program cuts the `y`-levels into at most `p`
//! contiguous groups, one per core of that column.
//!
//! Communications leaving a column depart from the **row of their source
//! core**, cross horizontal links at that row (possibly across several
//! columns, for edges spanning multiple `x`-levels), and are redistributed
//! **vertically inside the destination column** — i.e. the final paths are
//! exactly row-first XY routes, which is how the resulting mapping is
//! routed and re-validated.
//!
//! As in the paper, the outgoing-communication distribution `D` is not part
//! of the DP state: each cell carries the distribution of its *argmin*
//! sub-solution (a heuristic, not an exact DP). All link bookkeeping along
//! the chosen path is exact, so the final evaluator-checked mapping agrees
//! with the DP's energy.
//!
//! `DPA2D` deliberately wastes cores on low-elevation graphs (a pipeline
//! only ever enrolls one core per column — paper §6.2.1) and shines on fat,
//! high-elevation graphs.

use std::collections::HashMap;

use cmp_mapping::{assign_min_speeds, Mapping, RouteSpec, REL_TOL};
use cmp_platform::{CoreId, Platform, RouteTable};
use spg::{Spg, StageId};

use crate::common::{validated_with, Failure, Solution};

/// Runs `DPA2D` on the physical grid and validates the result with
/// row-first XY routing.
#[doc(hidden)]
#[deprecated(
    since = "0.2.0",
    note = "use `ea_core::solvers::Dpa2d` with an `Instance`"
)]
pub fn dpa2d(spg: &Spg, pf: &Platform, period: f64) -> Result<Solution, Failure> {
    dpa2d_run(spg, pf, period, None)
}

/// `DPA2D` implementation behind both the deprecated free function and the
/// [`crate::solvers::Dpa2d`] solver.
pub(crate) fn dpa2d_run(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    table: Option<&RouteTable>,
) -> Result<Solution, Failure> {
    if pf.is_faulted() {
        // The nested column DP assumes a full rectangular grid; other
        // solvers in the portfolio cover faulted platforms.
        return Err(Failure::NoValidMapping(
            "DPA2D does not support faulted platforms".into(),
        ));
    }
    let alloc = dpa2d_alloc(spg, pf, period)?;
    let speed = assign_min_speeds(spg, pf, &alloc, period)
        .ok_or_else(|| Failure::NoValidMapping("speed assignment failed".into()))?;
    let mapping = Mapping {
        alloc,
        speed,
        routes: RouteSpec::for_platform(pf),
    };
    validated_with(spg, pf, mapping, period, table)
}

/// One outgoing communication: `volume` bytes leaving the column from core
/// row `row`, destined to stage `dest` in a later column.
#[derive(Debug, Clone, Copy)]
struct OutComm {
    row: u32,
    volume: f64,
    dest: StageId,
}

/// Carried per-column bookkeeping (cloned along the DP's argmin path —
/// flat vectors keep those clones cheap memcpys instead of hash-map
/// rebuilds).
#[derive(Debug, Clone, Default)]
struct ColState {
    /// `(stage, row)` of each stage already placed in this column (columns
    /// hold a handful of stages, so linear scans beat hashing).
    row_of: Vec<(u32, u32)>,
    /// Vertical link loads, increasing-row direction (`link i: i → i+1`).
    vload_down: Vec<f64>,
    /// Vertical link loads, decreasing-row direction (`link i: i+1 → i`).
    vload_up: Vec<f64>,
    /// Incoming communications not yet delivered (entry row, volume, dest).
    pending_in: Vec<(u32, f64, u32)>,
    /// Intra-column edges whose destination is not yet placed
    /// (source row, volume, dest).
    pending_edge: Vec<(u32, f64, u32)>,
    /// Distribution `D` of communications leaving this column.
    out: Vec<OutComm>,
}

/// The stage→core allocation computed by the nested DP, on the grid of
/// `pf` (which may be a virtual `1 × r` platform for `DPA2D1D`).
pub(crate) fn dpa2d_alloc(spg: &Spg, pf: &Platform, period: f64) -> Result<Vec<CoreId>, Failure> {
    let xmax = spg.xmax() as usize;
    let q = pf.q as usize;
    let tol = 1.0 + REL_TOL;
    let bw_cap = period * pf.bw * tol;
    let cap_work = period * pf.power.max_freq() * tol;

    // Stages per x-level, and per-level work prefix sums for pruning.
    let mut by_x: Vec<Vec<StageId>> = vec![Vec::new(); xmax + 1];
    for s in spg.stages() {
        by_x[spg.label(s).x as usize].push(s);
    }
    let mut work_prefix = vec![0.0f64; xmax + 1];
    for x in 1..=xmax {
        work_prefix[x] = work_prefix[x - 1] + by_x[x].iter().map(|s| spg.weight(*s)).sum::<f64>();
    }

    /// Outer DP cell: levels `1..=m` on columns `0..v`.
    struct OuterCell {
        energy: f64,
        dist: Vec<OutComm>,
        alloc: Vec<Option<CoreId>>,
    }
    let mut outer: Vec<Vec<Option<OuterCell>>> = (0..=xmax)
        .map(|_| {
            let mut row = Vec::with_capacity(q + 1);
            row.resize_with(q + 1, || None);
            row
        })
        .collect();

    for v in 1..=q {
        for m in v..=xmax {
            let mut best: Option<OuterCell> = None;
            // m' = index of the last level of the previous columns; v = 1
            // has no previous column (m' = 0, empty distribution).
            let lo = if v == 1 { 0 } else { v - 1 };
            let hi = if v == 1 { 0 } else { m - 1 };
            for mp in (lo..=hi).rev() {
                // Work-based pruning: this column cannot hold more than
                // p cores' worth of cycles (monotone in the range size).
                if work_prefix[m] - work_prefix[mp] > pf.p as f64 * cap_work {
                    break;
                }
                let (prev_energy, prev_dist, prev_alloc): (
                    f64,
                    &[OutComm],
                    Option<&Vec<Option<CoreId>>>,
                ) = if v == 1 {
                    (0.0, &[], None)
                } else {
                    let Some(prev) = outer[mp][v - 1].as_ref() else {
                        continue;
                    };
                    (prev.energy, prev.dist.as_slice(), Some(&prev.alloc))
                };
                // Horizontal crossing from column v-2 to v-1: per-row
                // bandwidth check plus one hop of energy per entry.
                let Some(h_energy) = horizontal_crossing(pf, prev_dist, bw_cap) else {
                    continue;
                };
                let Some((col_energy, col_state)) =
                    ecol(spg, pf, period, &by_x, mp + 1, m, prev_dist, bw_cap)
                else {
                    continue;
                };
                let cand = prev_energy + h_energy + col_energy;
                if best.as_ref().is_none_or(|b| cand < b.energy) {
                    let mut alloc: Vec<Option<CoreId>> = match prev_alloc {
                        Some(a) => a.clone(),
                        None => vec![None; spg.n()],
                    };
                    for &(sid, row) in &col_state.row_of {
                        alloc[sid as usize] = Some(CoreId {
                            u: row,
                            v: (v - 1) as u32,
                        });
                    }
                    best = Some(OuterCell {
                        energy: cand,
                        dist: col_state.out,
                        alloc,
                    });
                }
            }
            outer[m][v] = best;
        }
    }

    let best_v = (1..=q)
        .filter(|&v| outer[xmax][v].is_some())
        .min_by(|&a, &b| {
            let ea = outer[xmax][a].as_ref().unwrap().energy;
            let eb = outer[xmax][b].as_ref().unwrap().energy;
            ea.partial_cmp(&eb).unwrap()
        })
        .ok_or_else(|| Failure::NoValidMapping("no feasible column cut".into()))?;
    let cell = outer[xmax][best_v].as_ref().unwrap();
    cell.alloc
        .iter()
        .map(|c| c.ok_or_else(|| Failure::NoValidMapping("stage left unplaced".into())))
        .collect()
}

/// Per-row bandwidth check and hop energy for a distribution crossing one
/// column boundary.
fn horizontal_crossing(pf: &Platform, dist: &[OutComm], bw_cap: f64) -> Option<f64> {
    let mut per_row: HashMap<u32, f64> = HashMap::new();
    let mut energy = 0.0;
    for c in dist {
        *per_row.entry(c.row).or_insert(0.0) += c.volume;
        energy += pf.hop_energy(c.volume);
    }
    if per_row.values().any(|&v| v > bw_cap) {
        None
    } else {
        Some(energy)
    }
}

/// Inner DP: places the stages of x-levels `m1..=m2` onto the `p` cores of
/// one column, given the incoming distribution `d_in`. Returns the column's
/// energy (compute + vertical hops) and its final state (including the
/// outgoing distribution).
#[allow(clippy::too_many_arguments)]
fn ecol(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    by_x: &[Vec<StageId>],
    m1: usize,
    m2: usize,
    d_in: &[OutComm],
    bw_cap: f64,
) -> Option<(f64, ColState)> {
    let p = pf.p as usize;
    let ymax = spg.elevation() as usize;

    // Which stages live in this column, grouped by y-level.
    let mut in_column = vec![false; spg.n()];
    let mut by_y: Vec<Vec<StageId>> = vec![Vec::new(); ymax + 1];
    for level in by_x.iter().take(m2 + 1).skip(m1) {
        for &s in level {
            in_column[s.idx()] = true;
            by_y[spg.label(s).y as usize].push(s);
        }
    }

    // Initial state: split incoming communications into deliveries (dest in
    // this column) and pass-throughs (re-emitted at the same row).
    let mut init = ColState {
        vload_down: vec![0.0; p.saturating_sub(1)],
        vload_up: vec![0.0; p.saturating_sub(1)],
        ..Default::default()
    };
    for c in d_in {
        if in_column[c.dest.idx()] {
            init.pending_in.push((c.row, c.volume, c.dest.0));
        } else {
            init.out.push(*c);
        }
    }

    // cells[g][u]: levels 1..=g placed using the first u rows.
    let mut cells: Vec<Vec<Option<(f64, ColState)>>> = vec![vec![None; p + 1]; ymax + 1];
    cells[0][0] = Some((0.0, init));

    for g in 0..=ymax {
        for u in 0..p {
            let Some((base_energy, _)) = cells[g][u].as_ref().map(|(e, _)| (*e, ())) else {
                continue;
            };
            for g2 in g..=ymax {
                // Quick dominance: skip if target already at least as good
                // with zero additional cost (empty group case handled by
                // cost >= 0).
                let group: Vec<StageId> =
                    (g + 1..=g2).flat_map(|y| by_y[y].iter().copied()).collect();
                let state = &cells[g][u].as_ref().unwrap().1;
                let Some((cost, new_state)) =
                    place_group(spg, pf, period, state, &group, &in_column, u as u32, bw_cap)
                else {
                    continue;
                };
                let cand = base_energy + cost;
                if cells[g2][u + 1].as_ref().is_none_or(|(e, _)| cand < *e) {
                    cells[g2][u + 1] = Some((cand, new_state));
                }
            }
        }
    }

    let (energy, state) = cells[ymax][p].take()?;
    debug_assert!(state.pending_in.is_empty(), "undelivered incoming comms");
    debug_assert!(state.pending_edge.is_empty(), "undelivered internal edges");
    Some((energy, state))
}

/// Places one y-group on core row `row` of the current column, updating the
/// carried state. Returns `None` when the period or a vertical link's
/// bandwidth would be violated.
#[allow(clippy::too_many_arguments)]
fn place_group(
    spg: &Spg,
    pf: &Platform,
    period: f64,
    state: &ColState,
    group: &[StageId],
    in_column: &[bool],
    row: u32,
    bw_cap: f64,
) -> Option<(f64, ColState)> {
    if group.is_empty() {
        return Some((0.0, state.clone()));
    }
    let work: f64 = group.iter().map(|s| spg.weight(*s)).sum();
    let mut cost = pf.power.best_compute_energy(work, period)?;
    let mut st = state.clone();
    let members = |sid: u32| group.iter().any(|s| s.0 == sid);
    for s in group {
        st.row_of.push((s.0, row));
    }

    // Deliver incoming communications destined to this group.
    let mut kept = Vec::with_capacity(st.pending_in.len());
    for (from_row, vol, dest) in st.pending_in.drain(..) {
        if members(dest) {
            cost += add_vertical(
                &mut st.vload_down,
                &mut st.vload_up,
                pf,
                from_row,
                row,
                vol,
                bw_cap,
            )?;
        } else {
            kept.push((from_row, vol, dest));
        }
    }
    st.pending_in = kept;

    // Deliver intra-column edges whose destination just got placed.
    let mut kept = Vec::with_capacity(st.pending_edge.len());
    for (from_row, vol, dest) in st.pending_edge.drain(..) {
        if members(dest) {
            cost += add_vertical(
                &mut st.vload_down,
                &mut st.vload_up,
                pf,
                from_row,
                row,
                vol,
                bw_cap,
            )?;
        } else {
            kept.push((from_row, vol, dest));
        }
    }
    st.pending_edge = kept;

    // Outgoing edges of the newly placed stages.
    for s in group {
        for (_, e) in spg.out_edges(*s) {
            let d = e.dst;
            if members(d.0) {
                continue; // same core, free
            }
            if in_column[d.idx()] {
                if let Some(&(_, rd)) = st.row_of.iter().find(|&&(sid, _)| sid == d.0) {
                    cost += add_vertical(
                        &mut st.vload_down,
                        &mut st.vload_up,
                        pf,
                        row,
                        rd,
                        e.volume,
                        bw_cap,
                    )?;
                } else {
                    st.pending_edge.push((row, e.volume, d.0));
                }
            } else {
                st.out.push(OutComm {
                    row,
                    volume: e.volume,
                    dest: d,
                });
            }
        }
    }
    Some((cost, st))
}

/// Adds `vol` bytes to every vertical link between `from_row` and `to_row`
/// (direction-aware), checking bandwidth, and returns the hop energy.
fn add_vertical(
    down: &mut [f64],
    up: &mut [f64],
    pf: &Platform,
    from_row: u32,
    to_row: u32,
    vol: f64,
    bw_cap: f64,
) -> Option<f64> {
    if from_row == to_row {
        return Some(0.0);
    }
    let (a, b) = (from_row.min(to_row) as usize, from_row.max(to_row) as usize);
    let loads = if to_row > from_row { down } else { up };
    for link in loads.iter_mut().take(b).skip(a) {
        *link += vol;
        if *link > bw_cap {
            return None;
        }
    }
    Some(pf.hop_energy(vol) * (b - a) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::validated;
    use cmp_platform::RouteOrder;
    use spg::{chain, parallel_many, SpgGenConfig};
    use std::collections::HashSet;

    #[test]
    fn single_column_when_period_is_loose() {
        let pf = Platform::paper(4, 4);
        let g = chain(&[1e6; 10], &[1e3; 9]);
        let sol = dpa2d_run(&g, &pf, 1.0, None).unwrap();
        assert_eq!(sol.eval.active_cores, 1, "a loose pipeline fits one core");
    }

    #[test]
    fn pipeline_can_only_use_one_core_per_column() {
        // Paper §6.2.1: on a pipeline, DPA2D enrolls at most q cores.
        let pf = Platform::paper(4, 4);
        let g = chain(&[0.9e9; 8], &[1e3; 7]);
        // 8 stages of 0.9e9 cycles at T=1s need 8 cores -> must fail with
        // only 4 columns.
        assert!(dpa2d_run(&g, &pf, 1.0, None).is_err());
        // 4 stages fit (one per column).
        let g = chain(&[0.9e9; 4], &[1e3; 3]);
        let sol = dpa2d_run(&g, &pf, 1.0, None).unwrap();
        assert_eq!(sol.eval.active_cores, 4);
    }

    #[test]
    fn fat_graph_spreads_over_rows() {
        let pf = Platform::paper(4, 4);
        // Fork-join with 4 branches of heavy inner stages (light shared
        // source/sink — merged weights add up under parallel composition).
        let branches: Vec<_> = (0..4)
            .map(|_| chain(&[1e3, 0.8e9, 0.8e9, 1e3], &[1e4; 3]))
            .collect();
        let g = parallel_many(&branches);
        let sol = dpa2d_run(&g, &pf, 1.0, None).unwrap();
        // 8 heavy inner stages; needs well over 4 cores, across rows.
        assert!(sol.eval.active_cores > 4);
        let rows: HashSet<u32> = sol.mapping.alloc.iter().map(|c| c.u).collect();
        assert!(rows.len() > 1, "must use several rows of the grid");
    }

    #[test]
    fn dp_energy_matches_evaluator_energy() {
        let pf = Platform::paper(3, 3);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        use rand::SeedableRng;
        let cfg = SpgGenConfig {
            n: 20,
            elevation: 3,
            ccr: Some(1.0),
            ..Default::default()
        };
        let g = spg::random_spg(&cfg, &mut rng);
        // DP-internal feasibility equals the evaluator's: whenever the DP
        // returns an allocation, validation must succeed.
        for t in [1.0, 0.1, 0.02] {
            if let Ok(alloc) = dpa2d_alloc(&g, &pf, t) {
                let speed = assign_min_speeds(&g, &pf, &alloc, t).unwrap();
                let m = Mapping {
                    alloc,
                    speed,
                    routes: RouteSpec::Xy(RouteOrder::RowFirst),
                };
                validated(&g, &pf, m, t).expect("DP result must validate");
            }
        }
    }

    #[test]
    fn infeasible_period_fails() {
        let pf = Platform::paper(2, 2);
        let g = chain(&[3e9, 1.0], &[1.0]);
        assert!(dpa2d_run(&g, &pf, 1.0, None).is_err());
    }
}
