//! Content fingerprints for cache keys.
//!
//! The artifact cache (see [`super::cache`]) must key derived state by the
//! *content* that determines it, not by how a request happened to spell the
//! workload: two requests naming the same StreamIt workflow — or sending
//! the same chain inline — must land on the same cache line. The
//! fingerprint therefore hashes the canonical byte image of the data the
//! artifact depends on:
//!
//! * a **workload** fingerprint covers stage count, weights, labels and
//!   edges (the ideal lattice and cut volumes depend on nothing else);
//! * a **platform** fingerprint covers the grid shape, topology, routing
//!   policy, link parameters and the full DVFS table (route tables and the
//!   transition skeleton depend on these).
//!
//! FNV-1a is used deliberately: it is dependency-free, byte-order stable,
//! and collisions between the handful of artifacts a daemon holds are
//! astronomically unlikely (and harmless to energy correctness only if
//! absent — hence 64 bits, not 32). Floats are hashed by IEEE-754 bit
//! pattern, so `-0.0 != 0.0` and every NaN payload is distinct; request
//! decoding never produces non-finite values (the JSON layer rejects
//! them), so this is exact equality on everything reachable.

use cmp_platform::Platform;
use spg::Spg;

/// Incremental FNV-1a (64-bit) over a canonical byte stream.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs an `f64` by IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Absorbs a length-prefixed string (prefixing prevents ambiguity
    /// between `("ab", "c")` and `("a", "bc")`).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// Fingerprint of everything the ideal lattice and cut volumes depend on:
/// stage count, weights, labels, and edges with volumes.
pub fn workload_fingerprint(g: &Spg) -> u64 {
    let mut h = Fingerprint::new();
    h.u64(g.n() as u64);
    for &w in g.weights() {
        h.f64(w);
    }
    for l in g.labels() {
        h.u64(l.x as u64).u64(l.y as u64);
    }
    h.u64(g.n_edges() as u64);
    for e in g.edges() {
        h.u64(e.src.0 as u64).u64(e.dst.0 as u64).f64(e.volume);
    }
    h.finish()
}

/// Absorbs everything *every* platform-derived artifact depends on: grid
/// shape, topology, routing policy, link parameters, and the full DVFS
/// table — the healthy-platform content, faults excluded.
fn hash_platform_base(h: &mut Fingerprint, pf: &Platform) {
    h.u64(pf.p as u64)
        .u64(pf.q as u64)
        .str(pf.topology.name())
        .u64(pf.policy.index() as u64)
        .f64(pf.bw)
        .f64(pf.e_bit)
        .f64(pf.p_leak_comm)
        .f64(pf.power.p_leak);
    for s in pf.power.speeds() {
        h.f64(s.freq).f64(s.power);
    }
}

/// Fingerprint of the full platform content: the healthy base (grid
/// shape, topology, routing policy, link parameters, DVFS table) plus the
/// fault set (length-prefixed sorted dead-core and dead-link indices), so
/// a faulted platform never aliases its healthy twin.
pub fn platform_fingerprint(pf: &Platform) -> u64 {
    let mut h = Fingerprint::new();
    hash_platform_base(&mut h, pf);
    h.u64(pf.faults.dead_cores().len() as u64);
    for &c in pf.faults.dead_cores() {
        h.u64(c as u64);
    }
    h.u64(pf.faults.dead_links().len() as u64);
    for &l in pf.faults.dead_links() {
        h.u64(l as u64);
    }
    h.finish()
}

/// The *fault-stripped* platform fingerprint: what the healthy twin would
/// hash to. This keys fault-invariant artifacts — the `DPA1D` transition
/// skeleton ignores faults entirely (placement handles them), so a
/// faulted request warm-hits the skeleton a healthy solve materialised
/// (see `docs/fault-model.md`).
pub fn fault_free_platform_fingerprint(pf: &Platform) -> u64 {
    let mut h = Fingerprint::new();
    hash_platform_base(&mut h, pf);
    h.u64(0).u64(0);
    h.finish()
}

/// The *core-fault-stripped* platform fingerprint: base content plus only
/// the link faults. This keys route tables — core faults leave every
/// router and link alive, so routes (and their tables) are shared across
/// core-fault siblings; link faults genuinely reroute and get their own
/// entry (derived by [`cmp_platform::RouteTable::patched`] when a
/// link-fault sibling is cached).
pub fn route_platform_fingerprint(pf: &Platform) -> u64 {
    let mut h = Fingerprint::new();
    hash_platform_base(&mut h, pf);
    h.u64(0);
    h.u64(pf.faults.dead_links().len() as u64);
    for &l in pf.faults.dead_links() {
        h.u64(l as u64);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_platform::{RoutePolicy, TopologyKind};

    #[test]
    fn same_content_same_fingerprint() {
        let a = spg::streamit::streamit_suite(2011);
        let b = spg::streamit::streamit_suite(2011);
        for ((sa, ga), (sb, gb)) in a.iter().zip(&b) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(
                workload_fingerprint(ga),
                workload_fingerprint(gb),
                "{} must fingerprint identically across instantiations",
                sa.name
            );
        }
    }

    #[test]
    fn distinct_workloads_distinct_fingerprints() {
        let suite = spg::streamit::streamit_suite(2011);
        let fps: std::collections::HashSet<u64> =
            suite.iter().map(|(_, g)| workload_fingerprint(g)).collect();
        assert_eq!(fps.len(), suite.len(), "12 workflows, 12 fingerprints");
        // Weight perturbation changes the fingerprint.
        let (_, g) = &suite[0];
        let mut g2 = g.clone();
        let mut w = g2.weights().to_vec();
        w[1] += 1.0;
        g2.set_weights(w);
        assert_ne!(workload_fingerprint(g), workload_fingerprint(&g2));
    }

    #[test]
    fn fault_fingerprints_split_the_right_way() {
        use cmp_platform::CoreId;
        let base = Platform::paper(3, 3);
        let a = CoreId { u: 0, v: 0 };
        let b = CoreId { u: 0, v: 1 };
        let core_hurt = base.with_core_fault(b);
        let link_hurt = base.with_link_fault(a, b);
        // Full fingerprints: every fault distinct from healthy and each other.
        let fps = [
            platform_fingerprint(&base),
            platform_fingerprint(&core_hurt),
            platform_fingerprint(&link_hurt),
        ];
        assert_eq!(
            fps.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
        // Fault-stripped: all three agree (skeleton sharing).
        assert_eq!(
            fault_free_platform_fingerprint(&core_hurt),
            platform_fingerprint(&base)
        );
        assert_eq!(
            fault_free_platform_fingerprint(&link_hurt),
            platform_fingerprint(&base)
        );
        // Route fingerprints: blind to core faults, sensitive to link faults.
        assert_eq!(
            route_platform_fingerprint(&core_hurt),
            platform_fingerprint(&base)
        );
        assert_eq!(
            route_platform_fingerprint(&link_hurt),
            platform_fingerprint(&link_hurt)
        );
        assert_ne!(
            route_platform_fingerprint(&link_hurt),
            platform_fingerprint(&base)
        );
        // A core fault on top of a link fault routes like the link fault alone.
        let both = link_hurt.with_core_fault(CoreId { u: 2, v: 2 });
        assert_eq!(
            route_platform_fingerprint(&both),
            platform_fingerprint(&link_hurt)
        );
    }

    #[test]
    fn platform_fingerprint_covers_policy_and_topology() {
        let base = Platform::paper(4, 4);
        let snake = base.clone().with_policy(RoutePolicy::Snake);
        let torus = Platform::paper_topology(TopologyKind::Torus, 4, 4);
        let fp = platform_fingerprint(&base);
        assert_eq!(fp, platform_fingerprint(&Platform::paper(4, 4)));
        assert_ne!(fp, platform_fingerprint(&snake));
        assert_ne!(fp, platform_fingerprint(&torus));
        assert_ne!(fp, platform_fingerprint(&Platform::paper(2, 8)));
    }
}
