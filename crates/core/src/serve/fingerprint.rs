//! Content fingerprints for cache keys.
//!
//! The artifact cache (see [`super::cache`]) must key derived state by the
//! *content* that determines it, not by how a request happened to spell the
//! workload: two requests naming the same StreamIt workflow — or sending
//! the same chain inline — must land on the same cache line. The
//! fingerprint therefore hashes the canonical byte image of the data the
//! artifact depends on:
//!
//! * a **workload** fingerprint covers stage count, weights, labels and
//!   edges (the ideal lattice and cut volumes depend on nothing else);
//! * a **platform** fingerprint covers the grid shape, topology, routing
//!   policy, link parameters and the full DVFS table (route tables and the
//!   transition skeleton depend on these).
//!
//! FNV-1a is used deliberately: it is dependency-free, byte-order stable,
//! and collisions between the handful of artifacts a daemon holds are
//! astronomically unlikely (and harmless to energy correctness only if
//! absent — hence 64 bits, not 32). Floats are hashed by IEEE-754 bit
//! pattern, so `-0.0 != 0.0` and every NaN payload is distinct; request
//! decoding never produces non-finite values (the JSON layer rejects
//! them), so this is exact equality on everything reachable.

use cmp_platform::Platform;
use spg::Spg;

/// Incremental FNV-1a (64-bit) over a canonical byte stream.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs an `f64` by IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Absorbs a length-prefixed string (prefixing prevents ambiguity
    /// between `("ab", "c")` and `("a", "bc")`).
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// Fingerprint of everything the ideal lattice and cut volumes depend on:
/// stage count, weights, labels, and edges with volumes.
pub fn workload_fingerprint(g: &Spg) -> u64 {
    let mut h = Fingerprint::new();
    h.u64(g.n() as u64);
    for &w in g.weights() {
        h.f64(w);
    }
    for l in g.labels() {
        h.u64(l.x as u64).u64(l.y as u64);
    }
    h.u64(g.n_edges() as u64);
    for e in g.edges() {
        h.u64(e.src.0 as u64).u64(e.dst.0 as u64).f64(e.volume);
    }
    h.finish()
}

/// Fingerprint of everything route tables and the transition skeleton
/// depend on: grid shape, topology, routing policy, link parameters, and
/// the full DVFS table.
pub fn platform_fingerprint(pf: &Platform) -> u64 {
    let mut h = Fingerprint::new();
    h.u64(pf.p as u64)
        .u64(pf.q as u64)
        .str(pf.topology.name())
        .u64(pf.policy.index() as u64)
        .f64(pf.bw)
        .f64(pf.e_bit)
        .f64(pf.p_leak_comm)
        .f64(pf.power.p_leak);
    for s in pf.power.speeds() {
        h.f64(s.freq).f64(s.power);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_platform::{RoutePolicy, TopologyKind};

    #[test]
    fn same_content_same_fingerprint() {
        let a = spg::streamit::streamit_suite(2011);
        let b = spg::streamit::streamit_suite(2011);
        for ((sa, ga), (sb, gb)) in a.iter().zip(&b) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(
                workload_fingerprint(ga),
                workload_fingerprint(gb),
                "{} must fingerprint identically across instantiations",
                sa.name
            );
        }
    }

    #[test]
    fn distinct_workloads_distinct_fingerprints() {
        let suite = spg::streamit::streamit_suite(2011);
        let fps: std::collections::HashSet<u64> =
            suite.iter().map(|(_, g)| workload_fingerprint(g)).collect();
        assert_eq!(fps.len(), suite.len(), "12 workflows, 12 fingerprints");
        // Weight perturbation changes the fingerprint.
        let (_, g) = &suite[0];
        let mut g2 = g.clone();
        let mut w = g2.weights().to_vec();
        w[1] += 1.0;
        g2.set_weights(w);
        assert_ne!(workload_fingerprint(g), workload_fingerprint(&g2));
    }

    #[test]
    fn platform_fingerprint_covers_policy_and_topology() {
        let base = Platform::paper(4, 4);
        let snake = base.clone().with_policy(RoutePolicy::Snake);
        let torus = Platform::paper_topology(TopologyKind::Torus, 4, 4);
        let fp = platform_fingerprint(&base);
        assert_eq!(fp, platform_fingerprint(&Platform::paper(4, 4)));
        assert_ne!(fp, platform_fingerprint(&snake));
        assert_ne!(fp, platform_fingerprint(&torus));
        assert_ne!(fp, platform_fingerprint(&Platform::paper(2, 8)));
    }
}
