//! Solve-as-a-service: a daemon that keeps derived solver state warm.
//!
//! Everything the CLI does in one shot — build an [`crate::Instance`],
//! run a [`crate::Portfolio`], print energies — this module does behind a
//! socket, with one addition that only a long-lived process can offer: a
//! bounded, fingerprint-keyed **artifact cache**. The expensive
//! period-independent structures (`DPA1D`'s interned ideal lattice, the
//! transition skeleton, per-policy route tables) survive across requests,
//! so repeated studies over the same workloads skip straight to the
//! dynamic programs while staying **bit-identical in energy** to cold
//! solves — the cache holds inputs to the solvers, never their answers.
//!
//! * [`protocol`] — length-prefixed JSON frames and the request grammar
//!   (see `docs/serve-protocol.md` for the wire-level reference);
//! * [`fingerprint`] — content hashes that key the cache;
//! * [`cache`] — the byte-bounded LRU over shared artifacts;
//! * [`histogram`] — log-bucketed latencies for `stats` (p50/p99/p999);
//! * [`spill`] — versioned, checksummed cache persistence (`--cache-dir`);
//! * [`scheduler`] — the batched solve queue and admission controller;
//! * [`server`] — the [`Service`] request handler and socket [`Server`];
//! * [`client`] — a blocking [`Client`].
//!
//! The `xp serve` / `xp client` commands wrap [`Server`] and [`Client`];
//! in-process embedding needs no sockets at all:
//!
//! ```
//! use ea_core::json::Json;
//! use ea_core::serve::{ServeConfig, Service};
//!
//! let service = Service::new(ServeConfig::default());
//! let req = Json::parse(
//!     r#"{"op":"solve","workload":{"streamit":"Beamformer"},"utilisation":0.5,
//!         "solvers":"greedy"}"#,
//! )
//! .unwrap();
//! let cold = service.handle(&req);
//! let warm = service.handle(&req); // same fingerprints: artifacts hit
//! assert_eq!(
//!     cold.get("result").and_then(|r| r.get("energy")),
//!     warm.get("result").and_then(|r| r.get("energy")),
//! );
//! ```

pub mod cache;
pub mod client;
pub mod fingerprint;
pub mod histogram;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod spill;

pub use cache::{Artifact, ArtifactCache, ArtifactKey, CacheStats};
pub use client::Client;
pub use fingerprint::{platform_fingerprint, workload_fingerprint, Fingerprint};
pub use histogram::LatencyHistogram;
pub use protocol::{read_frame, write_frame, FrameReader, Request, MAX_FRAME_BYTES};
pub use scheduler::SchedulerStats;
pub use server::{serve_connection, Conn, ServeConfig, Server, Service, ServiceCore};
pub use spill::SpillStats;
