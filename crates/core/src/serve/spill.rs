//! Persistent spill/reload for the artifact cache.
//!
//! Artifacts are **deterministic functions of their fingerprints** — a
//! lattice is determined by the workload that fingerprinted it, a skeleton
//! by workload × platform × ceiling, a route table by platform × policy —
//! so a daemon restart does not have to recompute them: `xp serve
//! --cache-dir DIR` writes every newly inserted artifact behind the
//! request (write-behind, outside the cache lock) and reloads the
//! directory on startup, so the first request after a restart is as warm
//! as the last one before it.
//!
//! One artifact per file, named after its key (`lattice-<fp>.xpa`,
//! `skeleton-<fp>-<fp>-<ceiling>.xpa`, `route-<fp>-<policy>.xpa`), laid
//! out as:
//!
//! ```text
//! +--------+---------+-----+----------------+---------+----------+
//! | magic  | version | key | payload length | payload | FNV-1a64 |
//! | 8 B    | u32 LE  | ... | u64 LE         | ...     | u64 LE   |
//! +--------+---------+-----+----------------+---------+----------+
//! ```
//!
//! The checksum covers every preceding byte. Loading is **tolerant**:
//! a corrupt, truncated, or version-skewed file is counted and skipped,
//! never fatal — the daemon simply starts colder. Writes go through a
//! uniquely named temporary file followed by an atomic rename, so a
//! half-written spill can never be observed (a concurrent reader sees
//! either the old complete file or the new complete file), which is what
//! makes spilling during a draining shutdown safe.
//!
//! Version skew is handled at the envelope, not by schema evolution: the
//! payload codecs (`IdealLattice::to_bytes` and friends) are frozen per
//! [`SPILL_VERSION`], and a format change bumps the version, invalidating
//! — not corrupting — old directories.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cmp_platform::RouteTable;
use spg::wire;

use super::cache::{Artifact, ArtifactCache, ArtifactKey};
use super::fingerprint::Fingerprint;
use crate::dpa1d::TransitionSkeleton;
use crate::instance::SharedLattice;

/// File magic: identifies an artifact spill file.
pub const SPILL_MAGIC: [u8; 8] = *b"XPARTIFS";
/// Envelope version; bumping it invalidates (skips) older spill files.
pub const SPILL_VERSION: u32 = 1;
/// Extension of spill files inside a cache directory.
pub const SPILL_EXT: &str = "xpa";

/// Outcome counters of a directory reload, surfaced through `stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Artifacts decoded, validated, and inserted.
    pub loaded: u64,
    /// Files skipped: corrupt, truncated, checksum-mismatched, or written
    /// by a different envelope version.
    pub skipped: u64,
}

/// The file name an artifact spills to — a pure function of its key, so a
/// re-spill of the same key atomically replaces the previous image.
pub fn file_name(key: &ArtifactKey) -> String {
    match key {
        ArtifactKey::Lattice { workload } => format!("lattice-{workload:016x}.{SPILL_EXT}"),
        ArtifactKey::Skeleton {
            workload,
            platform,
            ceiling,
        } => format!("skeleton-{workload:016x}-{platform:016x}-{ceiling:016x}.{SPILL_EXT}"),
        ArtifactKey::Route { platform, policy } => {
            format!("route-{platform:016x}-{policy:02x}.{SPILL_EXT}")
        }
    }
}

/// Serialises one `(key, artifact)` pair into a complete spill-file image
/// (magic, version, key, payload, trailing checksum).
pub fn encode(key: &ArtifactKey, artifact: &Artifact) -> Vec<u8> {
    let payload = match artifact {
        Artifact::Lattice(l) => l.to_bytes(),
        Artifact::Skeleton(s) => s.to_bytes(),
        Artifact::Route(r) => r.to_bytes(),
    };
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(&SPILL_MAGIC);
    wire::put_u32(&mut out, SPILL_VERSION);
    match *key {
        ArtifactKey::Lattice { workload } => {
            out.push(0);
            wire::put_u64(&mut out, workload);
        }
        ArtifactKey::Skeleton {
            workload,
            platform,
            ceiling,
        } => {
            out.push(1);
            wire::put_u64(&mut out, workload);
            wire::put_u64(&mut out, platform);
            wire::put_u64(&mut out, ceiling);
        }
        ArtifactKey::Route { platform, policy } => {
            out.push(2);
            wire::put_u64(&mut out, platform);
            out.push(policy);
        }
    }
    wire::put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    let sum = Fingerprint::new().bytes(&out).finish();
    wire::put_u64(&mut out, sum);
    out
}

/// Decodes and validates a spill-file image: magic, envelope version,
/// trailing checksum, then the kind-specific payload codec (which
/// re-validates its own structural invariants).
pub fn decode(bytes: &[u8]) -> Result<(ArtifactKey, Artifact), String> {
    if bytes.len() < SPILL_MAGIC.len() + 4 + 8 {
        return Err("file shorter than the spill envelope".into());
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let mut pos = 0usize;
    if wire::take(body, &mut pos, 8)? != SPILL_MAGIC {
        return Err("bad spill magic".into());
    }
    let version = wire::get_u32(body, &mut pos)?;
    if version != SPILL_VERSION {
        return Err(format!(
            "spill version {version} (daemon speaks {SPILL_VERSION})"
        ));
    }
    let expected = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte split"));
    if Fingerprint::new().bytes(body).finish() != expected {
        return Err("checksum mismatch".into());
    }
    let kind = wire::take(body, &mut pos, 1)?[0];
    let key = match kind {
        0 => ArtifactKey::Lattice {
            workload: wire::get_u64(body, &mut pos)?,
        },
        1 => ArtifactKey::Skeleton {
            workload: wire::get_u64(body, &mut pos)?,
            platform: wire::get_u64(body, &mut pos)?,
            ceiling: wire::get_u64(body, &mut pos)?,
        },
        2 => ArtifactKey::Route {
            platform: wire::get_u64(body, &mut pos)?,
            policy: wire::take(body, &mut pos, 1)?[0],
        },
        k => return Err(format!("unknown artifact kind {k}")),
    };
    let len = wire::get_len(body, &mut pos, 1)?;
    let payload = wire::take(body, &mut pos, len)?;
    if pos != body.len() {
        return Err(format!("{} trailing bytes in spill body", body.len() - pos));
    }
    let artifact = match key {
        ArtifactKey::Lattice { .. } => {
            Artifact::Lattice(Arc::new(SharedLattice::from_bytes(payload)?))
        }
        ArtifactKey::Skeleton { .. } => {
            Artifact::Skeleton(Arc::new(TransitionSkeleton::from_bytes(payload)?))
        }
        ArtifactKey::Route { .. } => Artifact::Route(Arc::new(RouteTable::from_bytes(payload)?)),
    };
    Ok((key, artifact))
}

/// Sequence for unique temporary-file names: concurrent spills (even of
/// the same key, e.g. during a draining shutdown) must never share a
/// partially written file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes one artifact to `dir` atomically: the image lands in a uniquely
/// named `.tmp` sibling first and is renamed over the final path, so
/// readers only ever observe complete files.
pub fn spill(dir: &Path, key: &ArtifactKey, artifact: &Artifact) -> io::Result<()> {
    let final_path = dir.join(file_name(key));
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp_path = dir.join(format!(
        "{}.{}.{seq}.tmp",
        file_name(key),
        std::process::id()
    ));
    fs::write(&tmp_path, encode(key, artifact))?;
    let renamed = fs::rename(&tmp_path, &final_path);
    if renamed.is_err() {
        let _ = fs::remove_file(&tmp_path);
    }
    renamed
}

/// Reloads every spill file in `dir` into `cache`, in file-name order
/// (deterministic LRU seeding). Invalid files are counted and skipped;
/// an unreadable or absent directory loads nothing. Inserting through the
/// cache's normal first-write-wins path means a reload never touches the
/// hit/miss counters — a warm restart's first request probes with zero
/// recorded misses.
pub fn load_dir(dir: &Path, cache: &mut ArtifactCache) -> SpillStats {
    let mut stats = SpillStats::default();
    let Ok(entries) = fs::read_dir(dir) else {
        return stats;
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(SPILL_EXT))
        .collect();
    paths.sort();
    for path in paths {
        let decoded = fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| decode(&bytes));
        match decoded {
            Ok((key, artifact)) => {
                cache.insert(key, artifact);
                stats.loaded += 1;
            }
            Err(reason) => {
                eprintln!("xp serve: skipping spill file {}: {reason}", path.display());
                stats.skipped += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use cmp_platform::{Platform, RoutePolicy};

    fn artifacts() -> Vec<(ArtifactKey, Artifact)> {
        let inst = Instance::new(spg::chain(&[2e8; 6], &[1e4; 5]), Platform::paper(2, 2), 0.5);
        vec![
            (
                ArtifactKey::Lattice { workload: 0xabc },
                Artifact::Lattice(inst.lattice(10_000).unwrap()),
            ),
            (
                ArtifactKey::Skeleton {
                    workload: 0xabc,
                    platform: 0xdef,
                    ceiling: f64::INFINITY.to_bits(),
                },
                Artifact::Skeleton(
                    inst.transition_skeleton(&crate::Dpa1dConfig::default())
                        .unwrap()
                        .expect("6-stage chain fits the edge cap"),
                ),
            ),
            (
                ArtifactKey::Route {
                    platform: 0xdef,
                    policy: RoutePolicy::Snake.index() as u8,
                },
                Artifact::Route(inst.route_table(RoutePolicy::Snake)),
            ),
        ]
    }

    #[test]
    fn every_artifact_kind_round_trips() {
        for (key, artifact) in artifacts() {
            let image = encode(&key, &artifact);
            let (k2, a2) = decode(&image).unwrap();
            assert_eq!(k2, key);
            // Re-encoding the decoded artifact is bit-stable — the strong
            // form of payload fidelity.
            assert_eq!(encode(&k2, &a2), image);
        }
    }

    #[test]
    fn corruption_truncation_and_version_skew_are_rejected() {
        let (key, artifact) = artifacts().remove(0);
        let image = encode(&key, &artifact);
        // Flip one payload byte: checksum must catch it.
        let mut flipped = image.clone();
        let mid = image.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(decode(&flipped).unwrap_err().contains("checksum"));
        // Truncate at a sample of boundaries.
        for cut in [0, 7, 12, 20, image.len() - 1] {
            assert!(decode(&image[..cut]).is_err(), "cut {cut}");
        }
        // Version skew is reported as such (checksum recomputed so the
        // version check, not the checksum, rejects it).
        let mut skewed = image.clone();
        skewed[8..12].copy_from_slice(&(SPILL_VERSION + 1).to_le_bytes());
        let body_len = skewed.len() - 8;
        let sum = Fingerprint::new().bytes(&skewed[..body_len]).finish();
        skewed[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(decode(&skewed).unwrap_err().contains("version"));
    }

    #[test]
    fn load_dir_is_tolerant_and_counts_outcomes() {
        let dir = std::env::temp_dir().join(format!("xp-spill-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let arts = artifacts();
        for (key, artifact) in &arts {
            spill(&dir, key, artifact).unwrap();
        }
        // One corrupt file and one non-spill file alongside.
        fs::write(dir.join("garbage.xpa"), b"not a spill file").unwrap();
        fs::write(dir.join("README.txt"), b"ignored entirely").unwrap();
        let mut cache = ArtifactCache::new(usize::MAX);
        let stats = load_dir(&dir, &mut cache);
        assert_eq!(stats.loaded, 3);
        assert_eq!(stats.skipped, 1);
        assert_eq!(cache.len(), 3);
        for (key, _) in &arts {
            assert!(cache.contains(key), "missing {key}");
        }
        // Reload must not have counted hits or misses.
        let cs = cache.stats();
        assert_eq!((cs.hits, cs.misses), (0, 0));
        // A missing directory loads nothing and is not an error.
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(load_dir(&dir, &mut cache), SpillStats::default());
    }
}
