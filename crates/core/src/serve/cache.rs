//! The byte-bounded LRU artifact cache.
//!
//! A daemon outlives any single request, so the expensive derived state an
//! [`crate::Instance`] builds lazily — the interned ideal lattice, the
//! `DPA1D` transition skeleton, per-policy route tables — can be kept and
//! re-seeded into later instances whose *content* matches (see
//! [`super::fingerprint`]). All three artifacts are period-independent,
//! which is exactly why `Instance::with_period` shares them; the cache
//! extends that sharing across requests and connections.
//!
//! The bound is **bytes**, not entries: one Filterbank lattice outweighs a
//! thousand route tables, so an entry-count LRU would be meaningless. Each
//! artifact reports its approximate heap footprint via the `size_bytes`
//! accessors grown on the underlying types.
//!
//! Eviction is strict least-recently-*used* (get or insert bumps a
//! monotonic tick) and therefore deterministic under serialized replay of
//! the same request sequence — the integration tests replay a scripted
//! session twice and assert the eviction logs match. The scan for the
//! minimum tick is O(entries); a daemon holds tens of artifacts, not
//! millions, so a heap would be pure ceremony.

use std::collections::HashMap;
use std::sync::Arc;

use cmp_platform::RouteTable;

use crate::dpa1d::TransitionSkeleton;
use crate::instance::SharedLattice;

/// Cache key: which artifact, derived from which content.
///
/// Fingerprints (see [`super::fingerprint`]) stand in for the content
/// itself. The skeleton key carries both fingerprints because the
/// transition skeleton folds platform quantities (DVFS table, snake
/// route) into workload structure; route tables never look at the
/// workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKey {
    /// Interned ideal lattice + cut volumes for a workload.
    Lattice {
        /// [`super::fingerprint::workload_fingerprint`] of the SPG.
        workload: u64,
    },
    /// `DPA1D` transition skeleton for a workload on a platform.
    ///
    /// `ceiling` is the bit pattern of the skeleton's
    /// [`TransitionSkeleton::period_ceiling`]
    /// (`f64::INFINITY.to_bits()` for a complete skeleton), so bounded
    /// and complete artifacts for the same workload/platform pair
    /// coexist instead of shadowing each other.
    Skeleton {
        /// Workload fingerprint.
        workload: u64,
        /// [`super::fingerprint::platform_fingerprint`] of the platform.
        platform: u64,
        /// `f64::to_bits` of the skeleton's period ceiling.
        ceiling: u64,
    },
    /// Route table for a platform under one routing policy.
    Route {
        /// Platform fingerprint.
        platform: u64,
        /// [`cmp_platform::RoutePolicy::index`] of the policy.
        policy: u8,
    },
}

impl ArtifactKey {
    /// Stable kind tag (`stats` output, eviction log).
    pub fn kind(&self) -> &'static str {
        match self {
            ArtifactKey::Lattice { .. } => "lattice",
            ArtifactKey::Skeleton { .. } => "skeleton",
            ArtifactKey::Route { .. } => "route",
        }
    }
}

impl std::fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactKey::Lattice { workload } => write!(f, "lattice/{workload:016x}"),
            ArtifactKey::Skeleton {
                workload,
                platform,
                ceiling,
            } => {
                write!(f, "skeleton/{workload:016x}/{platform:016x}/{ceiling:016x}")
            }
            ArtifactKey::Route { platform, policy } => {
                write!(f, "route/{platform:016x}/{policy}")
            }
        }
    }
}

/// A cached artifact: a shared handle to one piece of derived state.
#[derive(Clone)]
pub enum Artifact {
    /// See [`SharedLattice`].
    Lattice(Arc<SharedLattice>),
    /// See [`TransitionSkeleton`].
    Skeleton(Arc<TransitionSkeleton>),
    /// See [`RouteTable`].
    Route(Arc<RouteTable>),
}

impl std::fmt::Debug for Artifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            Artifact::Lattice(_) => "Lattice",
            Artifact::Skeleton(_) => "Skeleton",
            Artifact::Route(_) => "Route",
        };
        write!(f, "Artifact::{kind}({} bytes)", self.size_bytes())
    }
}

impl Artifact {
    /// Approximate heap footprint, charged against the cache bound.
    pub fn size_bytes(&self) -> usize {
        match self {
            Artifact::Lattice(l) => l.size_bytes(),
            Artifact::Skeleton(s) => s.size_bytes(),
            Artifact::Route(r) => r.size_bytes(),
        }
    }
}

/// Counters surfaced by the daemon's `stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found their artifact.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries evicted to respect the byte bound.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Live bytes (sum of entry `size_bytes`).
    pub bytes: usize,
    /// The configured bound.
    pub limit_bytes: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    artifact: Artifact,
    bytes: usize,
    tick: u64,
}

/// How many evicted keys the cache remembers for diagnostics.
const EVICTION_LOG_CAP: usize = 64;

/// Byte-bounded LRU map from [`ArtifactKey`] to [`Artifact`].
pub struct ArtifactCache {
    limit_bytes: usize,
    map: HashMap<ArtifactKey, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    eviction_log: Vec<ArtifactKey>,
}

impl ArtifactCache {
    /// An empty cache bounded at `limit_bytes` of artifact payload.
    pub fn new(limit_bytes: usize) -> Self {
        ArtifactCache {
            limit_bytes,
            map: HashMap::new(),
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            eviction_log: Vec::new(),
        }
    }

    /// Looks up an artifact, bumping its recency and the hit/miss
    /// counters.
    pub fn get(&mut self, key: &ArtifactKey) -> Option<Artifact> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.tick = self.tick;
                self.hits += 1;
                Some(e.artifact.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up presence **without** bumping recency or the hit/miss
    /// counters — the admission controller's service-time predictor probes
    /// a request's keys before the request is accepted, and a shed request
    /// must leave neither LRU order nor the deterministic counter sequence
    /// behind.
    pub fn contains(&self, key: &ArtifactKey) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts an artifact (no-op if the key is already live — the first
    /// materialisation wins, matching the seed-slot semantics on
    /// [`crate::Instance`]), then evicts least-recently-used entries
    /// until the byte bound holds. An artifact larger than the whole
    /// bound is evicted immediately; the insert still counts. Returns
    /// whether the artifact was newly inserted (the write-behind spill
    /// trigger; a first-write-wins no-op must not re-spill).
    pub fn insert(&mut self, key: ArtifactKey, artifact: Artifact) -> bool {
        if self.map.contains_key(&key) {
            return false;
        }
        self.tick += 1;
        let bytes = artifact.size_bytes();
        self.bytes += bytes;
        self.map.insert(
            key,
            Entry {
                artifact,
                bytes,
                tick: self.tick,
            },
        );
        while self.bytes > self.limit_bytes {
            let Some((&oldest, _)) = self.map.iter().min_by_key(|(_, e)| e.tick) else {
                break;
            };
            let e = self.map.remove(&oldest).expect("key just observed");
            self.bytes -= e.bytes;
            self.evictions += 1;
            if self.eviction_log.len() == EVICTION_LOG_CAP {
                self.eviction_log.remove(0);
            }
            self.eviction_log.push(oldest);
        }
        true
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.bytes,
            limit_bytes: self.limit_bytes,
        }
    }

    /// The most recent evictions, oldest first (capped, for diagnostics
    /// and determinism tests).
    pub fn eviction_log(&self) -> &[ArtifactKey] {
        &self.eviction_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use cmp_platform::{Platform, RoutePolicy};

    /// A real (small) artifact set harvested from an instance session.
    fn artifacts() -> Vec<(ArtifactKey, Artifact)> {
        let inst = Instance::new(spg::chain(&[2e8; 6], &[1e4; 5]), Platform::paper(2, 2), 0.5);
        let lattice = inst.lattice(10_000).unwrap();
        let skeleton = inst
            .transition_skeleton(&crate::Dpa1dConfig::default())
            .unwrap()
            .expect("a 6-stage chain fits the default edge cap");
        let route = inst.route_table(RoutePolicy::Xy);
        vec![
            (
                ArtifactKey::Lattice { workload: 1 },
                Artifact::Lattice(lattice),
            ),
            (
                ArtifactKey::Skeleton {
                    workload: 1,
                    platform: 9,
                    ceiling: f64::INFINITY.to_bits(),
                },
                Artifact::Skeleton(skeleton),
            ),
            (
                ArtifactKey::Route {
                    platform: 9,
                    policy: 0,
                },
                Artifact::Route(route),
            ),
        ]
    }

    #[test]
    fn hit_miss_and_byte_accounting() {
        let mut cache = ArtifactCache::new(usize::MAX);
        let arts = artifacts();
        for (k, a) in &arts {
            assert!(cache.get(k).is_none());
            cache.insert(*k, a.clone());
        }
        let expected_bytes: usize = arts.iter().map(|(_, a)| a.size_bytes()).sum();
        for (k, _) in &arts {
            assert!(cache.get(k).is_some());
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (3, 3, 0));
        assert_eq!(s.entries, 3);
        assert_eq!(s.bytes, expected_bytes);
        assert!(s.bytes > 0, "artifacts must report non-zero footprints");
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_deterministically() {
        let arts = artifacts();
        // Bound that fits the three artifacts exactly — any further insert
        // must evict.
        let total: usize = arts.iter().map(|(_, a)| a.size_bytes()).sum();
        let limit = total;
        let replay = || {
            let mut cache = ArtifactCache::new(limit);
            for (k, a) in &arts {
                cache.insert(*k, a.clone());
            }
            // Touch the first key so the second becomes LRU, then insert a
            // duplicate-sized artifact under a fresh key to force eviction.
            let _ = cache.get(&arts[0].0);
            cache.insert(ArtifactKey::Lattice { workload: 77 }, arts[0].1.clone());
            cache.eviction_log().to_vec()
        };
        let a = replay();
        let b = replay();
        assert_eq!(a, b, "same request order must evict in the same order");
        assert!(!a.is_empty(), "the bound must have forced evictions");
        // arts[0] was touched after insertion, so the oldest un-touched
        // entry — arts[1] — goes first.
        assert_eq!(a[0], arts[1].0);
    }

    #[test]
    fn insert_is_first_write_wins() {
        let arts = artifacts();
        let mut cache = ArtifactCache::new(usize::MAX);
        cache.insert(arts[0].0, arts[0].1.clone());
        let before = cache.stats().bytes;
        cache.insert(arts[0].0, arts[1].1.clone());
        assert_eq!(cache.stats().bytes, before, "re-insert must be a no-op");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn oversized_artifact_is_evicted_immediately() {
        let arts = artifacts();
        let mut cache = ArtifactCache::new(1);
        cache.insert(arts[0].0, arts[0].1.clone());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().bytes, 0);
        assert_eq!(cache.eviction_log(), &[arts[0].0]);
    }
}
