//! A blocking client for the serve protocol.
//!
//! One connection, one request in flight: the protocol is strictly
//! request/response, so the client is a thin frame pump plus typed
//! helpers. Applications needing pipelining open more connections — the
//! daemon serves each on its own thread while solver work multiplexes
//! onto the shared rayon pool.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;

use crate::json::{obj, Json};

use super::protocol::{read_frame, write_frame};

enum StreamKind {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for StreamKind {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            StreamKind::Unix(s) => s.read(buf),
        }
    }
}

impl Write for StreamKind {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            StreamKind::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            StreamKind::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            StreamKind::Tcp(s) => s.flush(),
            #[cfg(unix)]
            StreamKind::Unix(s) => s.flush(),
        }
    }
}

/// A connected serve-protocol client.
pub struct Client {
    stream: StreamKind,
}

impl Client {
    /// Connects over TCP (with `TCP_NODELAY`: frames are written whole,
    /// so Nagle could only delay the next request behind a stale ACK).
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream: StreamKind::Tcp(stream),
        })
    }

    /// Connects over a Unix socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        Ok(Client {
            stream: StreamKind::Unix(UnixStream::connect(path)?),
        })
    }

    /// Sends one request frame and blocks for its response frame. A
    /// server that hangs up before responding surfaces as
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, msg: &Json) -> io::Result<Json> {
        write_frame(&mut self.stream, msg)?;
        read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<Json> {
        self.request(&obj([("op", Json::from("ping"))]))
    }

    /// Counter/histogram snapshot.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.request(&obj([("op", Json::from("stats"))]))
    }

    /// Asks the daemon to stop accepting, drain, and exit.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.request(&obj([("op", Json::from("shutdown"))]))
    }
}
