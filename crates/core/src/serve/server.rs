//! The daemon: sockets, connection threads, and the request service.
//!
//! The transport split is deliberate: [`Service`] is the pure
//! frame-in/frame-out request handler (fully testable in-process, no
//! sockets), and [`Server`] wires it to a Unix or TCP listener.
//!
//! ## The batched hot path
//!
//! Connection threads do not dispatch solves themselves. They parse,
//! validate, fingerprint, and **enqueue** onto the scheduler's bounded
//! `SolveQueue`, then block on a response channel.
//! One scheduler thread drains the queue in batches: identical requests
//! (same full request fingerprint) are coalesced single-flight — solved
//! once, the frame fanned to every waiter — and the distinct ones run as
//! **one** [`Portfolio::run_batch`] wave over the global rayon pool, so
//! eight concurrent clients saturate the workers instead of launching
//! eight competing fan-outs. Admission control sheds at enqueue time
//! (structured `overloaded` frame with `retry_after_ms`) when the
//! predicted queue wait would blow the request's deadline. `sweep`
//! requests keep the direct path — they are already one long batch
//! internally — as does every solve when `batching` is disabled.
//!
//! ## Cache persistence
//!
//! With [`ServeConfig::cache_dir`] set, every artifact the cache accepts
//! is also spilled to disk write-behind (outside the cache lock), and
//! [`Service::new`] reloads the directory — validated and checksummed,
//! corrupt or version-skewed files skipped — so a restarted daemon
//! answers its first request warm. See [`super::spill`].
//!
//! ## Warm solves are bit-identical to cold solves
//!
//! The cache never stores *answers* — it stores the period-independent
//! derived state ([`crate::SharedLattice`], [`crate::TransitionSkeleton`],
//! [`cmp_platform::RouteTable`]) that an [`Instance`] would rebuild from
//! scratch. A warm request seeds those artifacts into a fresh `Instance`
//! whose content fingerprints match, and the solvers then run exactly the
//! code they run cold, over structures that are value-equal by
//! construction. Energies therefore agree bit-for-bit; only wall time
//! changes. The integration suite asserts this across the StreamIt table.
//!
//! ## Shutdown discipline
//!
//! `shutdown` flips one flag. The accept loop stops admitting connections;
//! each connection thread finishes the frame it is processing (a dispatch
//! runs to completion — in-flight work is never cancelled), notices the
//! flag at its next read timeout, and exits; [`Server::run`] joins them
//! all before returning, then removes a Unix socket file it created.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::Path;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::instance::Instance;
use crate::json::{obj, Json};
use crate::portfolio::{Portfolio, PortfolioReport};
use crate::solver::SolverRegistry;

use super::cache::{Artifact, ArtifactCache, ArtifactKey, CacheStats};
use super::fingerprint::{
    fault_free_platform_fingerprint, platform_fingerprint, route_platform_fingerprint,
    workload_fingerprint, Fingerprint,
};
use super::histogram::LatencyHistogram;
use super::protocol::{
    error_response, failure_response, ok_response, overloaded_response, parse_request, write_frame,
    FrameReader, PeriodReq, Request, SolveReq, SweepReq,
};
use super::scheduler::{Admission, SchedulerStats, SolveJob, SolveQueue};
use super::spill::{self, SpillStats};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Byte bound on the artifact cache.
    pub cache_bytes: usize,
    /// Default per-request wall-clock budget (requests may override via
    /// `deadline_ms`; `None` = unbounded).
    pub default_deadline_ms: Option<u64>,
    /// Portfolio base seed used when a request carries none.
    pub default_seed: u64,
    /// Cache-persistence directory: artifacts spill here write-behind on
    /// insert and reload (validated, checksummed, tolerant of corrupt or
    /// version-skewed files) at startup, so a restarted daemon starts
    /// warm. `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// Route solves through the batched scheduler (on by default).
    /// Disabling it restores dispatch-per-connection-thread — useful only
    /// for comparison benchmarks.
    pub batching: bool,
    /// Bound on queued solve jobs; admits beyond it are shed with an
    /// `overloaded` frame.
    pub queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_bytes: 64 << 20,
            default_deadline_ms: None,
            default_seed: 2011,
            cache_dir: None,
            batching: true,
            queue_cap: 1024,
        }
    }
}

/// How often idle connection reads and the accept loop re-check the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// How long a peer may stall *mid-frame* before the connection is dropped.
/// The poll timeout alone never aborts a frame — a peer pausing between
/// chunks of a large frame is normal TCP behaviour; only a stall this long
/// counts as a dead or malicious peer.
const FRAME_STALL_LIMIT: Duration = Duration::from_secs(30);

/// Mid-frame stall allowance once shutdown has been requested: long
/// enough for in-flight bytes on a healthy link to land, short enough
/// that a stalled peer cannot hold the drain hostage.
const SHUTDOWN_STALL_LIMIT: Duration = Duration::from_millis(500);

/// How long a write may block on a peer that stops reading before the
/// connection is dropped (keeps [`Server::run`]'s join from hanging on a
/// full socket buffer).
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// How many jobs the scheduler thread drains per batch. Bounds the width
/// of one [`Portfolio::run_batch`] wave; a drain never blocks waiting to
/// fill the batch, so the cap only matters under real backlog.
const SCHED_BATCH_CAP: usize = 32;

/// The transport-independent request service: parse → admit → batch →
/// seed from cache → dispatch on the rayon pool → harvest → respond.
///
/// `Service` is a thin owning handle: the state lives in [`ServiceCore`]
/// behind an `Arc` shared with the scheduler thread, and `Deref` forwards
/// every method. Dropping the handle requests shutdown, drains the queue,
/// and joins the scheduler.
pub struct Service {
    core: Arc<ServiceCore>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Service {
    /// A fresh service with the default solver registry. The cache starts
    /// empty unless [`ServeConfig::cache_dir`] points at a spill
    /// directory, in which case every loadable artifact is re-seeded
    /// (through the normal insert path, so hit/miss counters stay zero).
    /// With [`ServeConfig::batching`] on, this also spawns the scheduler
    /// thread.
    pub fn new(cfg: ServeConfig) -> Self {
        let mut cache = ArtifactCache::new(cfg.cache_bytes);
        let mut spill_stats = SpillStats::default();
        if let Some(dir) = &cfg.cache_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("xp serve: cannot create cache dir {}: {e}", dir.display());
            }
            spill_stats = spill::load_dir(dir, &mut cache);
        }
        let (queue_cap, batching) = (cfg.queue_cap, cfg.batching);
        let core = Arc::new(ServiceCore {
            cfg,
            registry: SolverRegistry::with_defaults(),
            cache: Mutex::new(cache),
            queue: SolveQueue::new(queue_cap),
            shutdown: std::sync::atomic::AtomicBool::new(false),
            requests: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            cold: Mutex::new(LatencyHistogram::new()),
            warm: Mutex::new(LatencyHistogram::new()),
            spill_loaded: spill_stats.loaded,
            spill_skipped: spill_stats.skipped,
            spilled: AtomicU64::new(0),
            spill_errors: AtomicU64::new(0),
            prune_kept: AtomicU64::new(0),
            prune_pruned: AtomicU64::new(0),
            prune_solves: AtomicU64::new(0),
            prune_frontier_max: AtomicU64::new(0),
            prune_bound_gap_max: AtomicU64::new(0.0_f64.to_bits()),
        });
        let worker = if batching {
            let w = Arc::clone(&core);
            Some(
                std::thread::Builder::new()
                    .name("xp-serve-scheduler".into())
                    .spawn(move || w.scheduler_loop())
                    .expect("spawn the scheduler thread"),
            )
        } else {
            None
        };
        Service {
            core,
            worker: Mutex::new(worker),
        }
    }
}

impl std::ops::Deref for Service {
    type Target = ServiceCore;
    fn deref(&self) -> &ServiceCore {
        &self.core
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Closing the queue wakes the scheduler, which drains whatever is
        // already queued (answering every waiter) and exits.
        self.core.request_shutdown();
        if let Some(worker) = self.worker.lock().unwrap().take() {
            let _ = worker.join();
        }
    }
}

/// A solve ready to run: the cache-seeded instance plus the configured
/// portfolio, with the hit bookkeeping the response frame reports. The
/// split lets the batched and direct paths share all preparation and
/// response code (which is what keeps their energies bit-identical).
struct PreparedSolve {
    inst: Instance,
    keys: [ArtifactKey; 3],
    hits: [bool; 3],
    route_patched: bool,
    bounded_hit: bool,
    portfolio: Portfolio,
}

/// The service state proper — everything [`Service`] methods touch,
/// shared between connection threads and the scheduler thread.
pub struct ServiceCore {
    cfg: ServeConfig,
    registry: SolverRegistry,
    cache: Mutex<ArtifactCache>,
    queue: SolveQueue,
    shutdown: std::sync::atomic::AtomicBool,
    requests: AtomicU64,
    bad_requests: AtomicU64,
    cold: Mutex<LatencyHistogram>,
    warm: Mutex<LatencyHistogram>,
    /// Artifacts reloaded from the spill directory at startup.
    spill_loaded: u64,
    /// Spill files skipped at startup (corrupt, truncated, version skew).
    spill_skipped: u64,
    /// Artifacts spilled write-behind since startup.
    spilled: AtomicU64,
    /// Spill writes that failed (disk full, permissions, …).
    spill_errors: AtomicU64,
    /// `DPA1D` dominance telemetry aggregated over every winning solution
    /// that carried [`crate::PruneStats`] (sums for the transition
    /// counters, maxima for the frontier width and bound gap).
    prune_kept: AtomicU64,
    prune_pruned: AtomicU64,
    prune_solves: AtomicU64,
    prune_frontier_max: AtomicU64,
    /// Largest certified bound gap observed, stored as `f64::to_bits`
    /// (non-negative, so the bit pattern orders like the float).
    prune_bound_gap_max: AtomicU64,
}

impl ServiceCore {
    /// The scheduler thread body: drain → coalesce → batch-solve →
    /// respond, until shutdown drains the queue dry.
    fn scheduler_loop(&self) {
        while let Some(jobs) = self.queue.next_batch(SCHED_BATCH_CAP) {
            self.run_batch_jobs(jobs);
        }
    }

    /// Folds one winning solution's prune telemetry into the `stats`
    /// aggregates.
    fn record_prune(&self, p: &crate::PruneStats) {
        self.prune_kept
            .fetch_add(p.transitions_kept, Ordering::Relaxed);
        self.prune_pruned
            .fetch_add(p.transitions_pruned, Ordering::Relaxed);
        self.prune_solves.fetch_add(1, Ordering::Relaxed);
        self.prune_frontier_max
            .fetch_max(u64::from(p.frontier_max), Ordering::Relaxed);
        self.prune_bound_gap_max
            .fetch_max(p.bound_gap.to_bits(), Ordering::Relaxed);
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag (also reachable via the wire `shutdown`
    /// op) and tells the scheduler to drain and exit. Solves arriving
    /// after the drain finishes run inline on their connection thread —
    /// no request is ever lost to the race.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Scheduler counter snapshot (queue depth, batches, coalesced and
    /// shed jobs).
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.queue.stats()
    }

    /// Artifact-cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().unwrap().stats()
    }

    /// Recent evictions, oldest first (see
    /// [`ArtifactCache::eviction_log`]).
    pub fn eviction_log(&self) -> Vec<ArtifactKey> {
        self.cache.lock().unwrap().eviction_log().to_vec()
    }

    /// Handles one request frame and returns the response frame. Never
    /// panics on malformed input — bad requests get a `bad_request` error
    /// frame.
    pub fn handle(&self, frame: &Json) -> Json {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let response = match parse_request(frame) {
            Err(msg) => error_response("bad_request", &msg),
            Ok(Request::Ping) => ok_response(obj([("pong", Json::from(true))])),
            Ok(Request::Stats) => ok_response(self.stats_json()),
            Ok(Request::Shutdown) => {
                self.request_shutdown();
                ok_response(obj([("shutting_down", Json::from(true))]))
            }
            Ok(Request::Solve(req)) => self.dispatch_solve(req),
            Ok(Request::Sweep(req)) => self.sweep(&req),
        };
        // Count every bad_request, whether it failed at the frame, the
        // request grammar, or resolution (unknown workload/solver).
        let kind = response
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str);
        if kind == Some("bad_request") {
            self.bad_requests.fetch_add(1, Ordering::Relaxed);
        }
        response
    }

    /// The `stats` payload: request counters, cache counters, and
    /// warm/cold latency distributions.
    pub fn stats_json(&self) -> Json {
        let cache = self.cache_stats();
        let hist = |h: &Mutex<LatencyHistogram>| {
            let h = h.lock().unwrap();
            obj([
                ("count", Json::from(h.count())),
                ("mean_ms", Json::from(h.mean() / 1e6)),
                ("p50_ms", Json::from(h.percentile(0.50) as f64 / 1e6)),
                ("p99_ms", Json::from(h.percentile(0.99) as f64 / 1e6)),
                ("p999_ms", Json::from(h.percentile(0.999) as f64 / 1e6)),
                ("max_ms", Json::from(h.max() as f64 / 1e6)),
            ])
        };
        obj([
            (
                "requests",
                Json::from(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "bad_requests",
                Json::from(self.bad_requests.load(Ordering::Relaxed)),
            ),
            (
                "cache",
                obj([
                    ("hits", Json::from(cache.hits)),
                    ("misses", Json::from(cache.misses)),
                    ("evictions", Json::from(cache.evictions)),
                    ("entries", Json::from(cache.entries)),
                    ("bytes", Json::from(cache.bytes)),
                    ("limit_bytes", Json::from(cache.limit_bytes)),
                    ("hit_rate", Json::from(cache.hit_rate())),
                ]),
            ),
            ("cold", hist(&self.cold)),
            ("warm", hist(&self.warm)),
            ("scheduler", {
                let s = self.queue.stats();
                obj([
                    ("queue_depth", Json::from(s.queue_depth)),
                    ("batches", Json::from(s.batches)),
                    ("batched_requests", Json::from(s.batched_requests)),
                    ("deduped", Json::from(s.deduped)),
                    ("shed", Json::from(s.shed)),
                ])
            }),
            (
                "spill",
                obj([
                    ("loaded", Json::from(self.spill_loaded)),
                    ("skipped", Json::from(self.spill_skipped)),
                    ("spilled", Json::from(self.spilled.load(Ordering::Relaxed))),
                    (
                        "errors",
                        Json::from(self.spill_errors.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "prune",
                obj([
                    (
                        "solves",
                        Json::from(self.prune_solves.load(Ordering::Relaxed)),
                    ),
                    (
                        "transitions_kept",
                        Json::from(self.prune_kept.load(Ordering::Relaxed)),
                    ),
                    (
                        "transitions_pruned",
                        Json::from(self.prune_pruned.load(Ordering::Relaxed)),
                    ),
                    (
                        "frontier_max",
                        Json::from(self.prune_frontier_max.load(Ordering::Relaxed)),
                    ),
                    (
                        "bound_gap_max",
                        Json::from(f64::from_bits(
                            self.prune_bound_gap_max.load(Ordering::Relaxed),
                        )),
                    ),
                ]),
            ),
        ])
    }

    /// Resolves a request's solver CSV against the registry (`None` = the
    /// paper's five heuristics).
    fn solvers_for(
        &self,
        csv: Option<&str>,
    ) -> Result<Vec<Arc<dyn crate::solver::Solver>>, String> {
        match csv {
            Some(csv) => self.registry.parse_list(csv),
            None => Ok(crate::solvers::default_heuristics()),
        }
    }

    /// The three cache keys a solve request probes, with fault-aware
    /// keying (see [`ServiceCore::seeded_instance`]).
    fn request_keys(workload: &spg::Spg, req: &SolveReq) -> [ArtifactKey; 3] {
        let wfp = workload_fingerprint(workload);
        let pfp = platform_fingerprint(&req.platform);
        let (skeleton_pfp, route_pfp) = if req.platform.is_faulted() {
            (
                fault_free_platform_fingerprint(&req.platform),
                route_platform_fingerprint(&req.platform),
            )
        } else {
            (pfp, pfp)
        };
        [
            ArtifactKey::Lattice { workload: wfp },
            ArtifactKey::Skeleton {
                workload: wfp,
                platform: skeleton_pfp,
                ceiling: f64::INFINITY.to_bits(),
            },
            ArtifactKey::Route {
                platform: route_pfp,
                policy: req.platform.policy.index() as u8,
            },
        ]
    }

    /// Admission-control service-time estimate in nanoseconds: the warm
    /// median when every cache key for this request is resident, the cold
    /// median otherwise; 0 (admit) when the matching histogram has no
    /// history yet. The probe uses [`ArtifactCache::contains`], which
    /// touches neither the hit/miss counters nor LRU recency — admission
    /// must not perturb the deterministic counter sequences the bench
    /// pins.
    fn estimate_solve_ns(&self, workload: &spg::Spg, req: &SolveReq) -> u64 {
        let keys = Self::request_keys(workload, req);
        let resident = {
            let cache = self.cache.lock().unwrap();
            keys.iter().all(|k| cache.contains(k))
        };
        let hist = if resident { &self.warm } else { &self.cold };
        let hist = hist.lock().unwrap();
        hist.percentile(0.5)
    }

    /// The full request-identity fingerprint used for single-flight
    /// coalescing: workload content, platform content (faults included),
    /// period request, resolved solver names, resolved seed, resolved
    /// deadline, and the anytime flag. Two jobs with equal fingerprints
    /// are guaranteed to produce identical response frames (energies are
    /// deterministic in all of the above), so one solve may answer both.
    fn request_fingerprint(
        &self,
        workload: &spg::Spg,
        req: &SolveReq,
        solvers: &[Arc<dyn crate::solver::Solver>],
    ) -> u64 {
        let mut fp = Fingerprint::new();
        fp.u64(workload_fingerprint(workload));
        fp.u64(platform_fingerprint(&req.platform));
        match req.period {
            PeriodReq::Period(t) => fp.u64(0).f64(t),
            PeriodReq::Utilisation(u) => fp.u64(1).f64(u),
        };
        fp.u64(solvers.len() as u64);
        for s in solvers {
            fp.str(s.name());
        }
        fp.u64(req.seed.unwrap_or(self.cfg.default_seed));
        match req.deadline_ms.or(self.cfg.default_deadline_ms) {
            Some(ms) => fp.u64(1).u64(ms),
            None => fp.u64(0),
        };
        fp.u64(req.anytime as u64);
        fp.finish()
    }

    /// Builds the instance for a request and warm-seeds it from the
    /// cache. Returns the instance, the three cache keys, which of them
    /// hit, and whether a missed route table was *derived* by patching a
    /// cached healthy sibling.
    ///
    /// Fault-aware keying (see `docs/fault-model.md`): the skeleton key
    /// uses the fault-stripped platform fingerprint (the transition
    /// skeleton ignores faults), the route key strips only core faults
    /// (core faults leave routing untouched), and a link-faulted route
    /// miss falls back to patching the healthy table via
    /// [`cmp_platform::RouteTable::patched`] — so a warm daemon stays
    /// warm across faults instead of rebuilding from scratch.
    fn seeded_instance(
        &self,
        req_workload: spg::Spg,
        req: &SolveReq,
    ) -> (Instance, [ArtifactKey; 3], [bool; 3], bool) {
        let keys = Self::request_keys(&req_workload, req);
        let policy = req.platform.policy;
        let inst = match req.period {
            PeriodReq::Period(t) => Instance::new(req_workload, req.platform.clone(), t),
            PeriodReq::Utilisation(u) => {
                Instance::for_utilisation(req_workload, req.platform.clone(), u)
            }
        };
        let mut hits = [false; 3];
        let mut cache = self.cache.lock().unwrap();
        for (i, key) in keys.iter().enumerate() {
            if let Some(artifact) = cache.get(key) {
                hits[i] = true;
                match artifact {
                    Artifact::Lattice(l) => inst.seed_lattice(l),
                    Artifact::Skeleton(s) => inst.seed_skeleton(s),
                    Artifact::Route(r) => inst.seed_route_table(policy, r),
                }
            }
        }
        let mut route_patched = false;
        if !hits[2] && req.platform.has_link_faults() {
            let healthy_key = ArtifactKey::Route {
                platform: fault_free_platform_fingerprint(&req.platform),
                policy: policy.index() as u8,
            };
            if let Some(Artifact::Route(t)) = cache.get(&healthy_key) {
                inst.seed_route_table(policy, Arc::new(t.patched(&req.platform)));
                route_patched = true;
            }
        }
        (inst, keys, hits, route_patched)
    }

    /// Probes the cache for a **bounded** skeleton whose work ceiling is
    /// `ceiling` (the period the request would build one under — see
    /// [`crate::TransitionSkeleton::period_ceiling`]) and seeds it into
    /// `inst` on a hit. Only called when the complete-skeleton key
    /// missed; returns whether the bounded probe hit.
    fn seed_bounded(&self, inst: &Instance, keys: &[ArtifactKey; 3], ceiling: f64) -> bool {
        let ArtifactKey::Skeleton {
            workload, platform, ..
        } = keys[1]
        else {
            unreachable!("keys[1] is the skeleton key");
        };
        let key = ArtifactKey::Skeleton {
            workload,
            platform,
            ceiling: ceiling.to_bits(),
        };
        let mut cache = self.cache.lock().unwrap();
        match cache.get(&key) {
            Some(Artifact::Skeleton(s)) => {
                inst.seed_skeleton(s);
                true
            }
            _ => false,
        }
    }

    /// Stores whichever artifacts a solve materialised that the cache did
    /// not already hold. A bounded skeleton is keyed by the ceiling it was
    /// actually built under, which may be looser than the probe ceiling
    /// (the sweep hint wins). Returns the artifacts that were **newly
    /// inserted** so the caller can spill them write-behind, outside the
    /// cache lock — even an entry the LRU immediately evicts is worth
    /// spilling, because the disk tier is what makes a restart warm.
    fn harvest(
        &self,
        inst: &Instance,
        keys: &[ArtifactKey; 3],
        hits: &[bool; 3],
    ) -> Vec<(ArtifactKey, Artifact)> {
        let policy = inst.platform().policy;
        let mut fresh = Vec::new();
        let mut cache = self.cache.lock().unwrap();
        if !hits[0] {
            if let Some(l) = inst.cached_lattice() {
                let a = Artifact::Lattice(l);
                if cache.insert(keys[0], a.clone()) {
                    fresh.push((keys[0], a));
                }
            }
        }
        if !hits[1] {
            if let Some(s) = inst.cached_skeleton() {
                let a = Artifact::Skeleton(s);
                if cache.insert(keys[1], a.clone()) {
                    fresh.push((keys[1], a));
                }
            }
        }
        if let Some(b) = inst.cached_bounded_skeleton() {
            let ArtifactKey::Skeleton {
                workload, platform, ..
            } = keys[1]
            else {
                unreachable!("keys[1] is the skeleton key");
            };
            let key = ArtifactKey::Skeleton {
                workload,
                platform,
                ceiling: b.period_ceiling().to_bits(),
            };
            let a = Artifact::Skeleton(b);
            if cache.insert(key, a.clone()) {
                fresh.push((key, a));
            }
        }
        if !hits[2] {
            if let Some(r) = inst.cached_route_table(policy) {
                let a = Artifact::Route(r);
                if cache.insert(keys[2], a.clone()) {
                    fresh.push((keys[2], a));
                }
            }
        }
        drop(cache);
        fresh
    }

    /// Write-behind spill of freshly inserted artifacts (no-op without a
    /// [`ServeConfig::cache_dir`]). Failures are counted and logged, never
    /// fatal — persistence is an optimisation, not a correctness
    /// dependency.
    fn spill_fresh(&self, fresh: &[(ArtifactKey, Artifact)]) {
        let Some(dir) = &self.cfg.cache_dir else {
            return;
        };
        for (key, artifact) in fresh {
            match spill::spill(dir, key, artifact) {
                Ok(()) => {
                    self.spilled.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    self.spill_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("xp serve: failed to spill {key}: {e}");
                }
            }
        }
    }

    fn record_latency(&self, warm: bool, nanos: u64) {
        let hist = if warm { &self.warm } else { &self.cold };
        hist.lock().unwrap().record(nanos);
    }

    /// Routes a decoded solve. With batching on, the request is
    /// validated, fingerprinted, estimated, and enqueued; the connection
    /// thread then blocks on the response channel while the scheduler
    /// thread does the work. Shed requests get the structured
    /// `overloaded` frame without ever touching the queue.
    fn dispatch_solve(&self, req: SolveReq) -> Json {
        if !self.cfg.batching {
            return self.solve(&req);
        }
        let arrival = Instant::now();
        let workload = match req.workload.instantiate() {
            Ok(g) => g,
            Err(msg) => return error_response("bad_request", &msg),
        };
        let solvers = match self.solvers_for(req.solvers.as_deref()) {
            Ok(s) => s,
            Err(msg) => return error_response("bad_request", &msg),
        };
        let est_ns = self.estimate_solve_ns(&workload, &req);
        let dedup = self.request_fingerprint(&workload, &req, &solvers);
        let deadline_ns = req
            .deadline_ms
            .or(self.cfg.default_deadline_ms)
            .map(|ms| ms.saturating_mul(1_000_000));
        let (tx, rx) = mpsc::channel();
        let job = SolveJob {
            req,
            workload,
            solvers,
            dedup,
            est_ns,
            deadline_ns,
            arrival,
            tx,
        };
        match self.queue.admit(job) {
            Admission::Queued => rx.recv().unwrap_or_else(|_| {
                error_response("overloaded", "the solve scheduler terminated unexpectedly")
            }),
            Admission::Shed {
                predicted_wait_ns,
                queue_depth,
            } => overloaded_response(predicted_wait_ns, queue_depth),
            Admission::Draining(job) => self.solve_job(*job),
        }
    }

    /// Executes one drained batch: group identical requests
    /// (single-flight), prepare each distinct one, run them all as one
    /// [`Portfolio::run_batch`] wave, then fan each response to its
    /// waiters. Coalesced waiters receive a byte-identical clone of the
    /// leader's frame (including `wall_ms` — they shared the solve, so
    /// they share its latency sample too).
    fn run_batch_jobs(&self, jobs: Vec<SolveJob>) {
        let total = jobs.len() as u64;
        let mut groups: Vec<(SolveJob, Vec<mpsc::Sender<Json>>)> = Vec::new();
        for job in jobs {
            match groups.iter_mut().find(|(lead, _)| lead.dedup == job.dedup) {
                Some((_, extras)) => extras.push(job.tx),
                None => groups.push((job, Vec::new())),
            }
        }
        let deduped = total - groups.len() as u64;
        // Leaders prepare in parallel: cold preparation (lattice and
        // skeleton construction) dominates a cold solve, and the
        // per-request dispatch path gets it concurrently for free on its
        // connection threads — a serial loop here would hand that
        // advantage back. Cache inserts only happen at finish time, so
        // concurrent prepares see exactly the same cache state a
        // sequential loop would.
        let prepared: Vec<_> = {
            use rayon::prelude::*;
            groups
                .into_par_iter()
                .map(|(job, extras)| {
                    let SolveJob {
                        req,
                        workload,
                        solvers,
                        arrival,
                        tx,
                        ..
                    } = job;
                    let p = self.prepare_solve(workload, solvers, &req, arrival);
                    (p, req, arrival, tx, extras)
                })
                .collect()
        };
        let reports: Vec<PortfolioReport> = {
            let pairs: Vec<(&Portfolio, &Instance)> = prepared
                .iter()
                .map(|(p, ..)| (&p.portfolio, &p.inst))
                .collect();
            match pairs.as_slice() {
                // A batch of one is exactly a plain run; skip the
                // flattening (identical report either way).
                [(portfolio, inst)] => vec![portfolio.run(inst)],
                _ => Portfolio::run_batch(&pairs),
            }
        };
        for ((p, req, arrival, tx, extras), report) in prepared.iter().zip(&reports) {
            let response = self.finish_solve(p, report, req, *arrival);
            for extra in extras {
                let _ = extra.send(response.clone());
            }
            let _ = tx.send(response);
        }
        self.queue.batch_done(total, deduped);
    }

    /// Runs one job inline (the post-shutdown drain path).
    fn solve_job(&self, job: SolveJob) -> Json {
        let SolveJob {
            req,
            workload,
            solvers,
            arrival,
            ..
        } = job;
        let p = self.prepare_solve(workload, solvers, &req, arrival);
        let report = p.portfolio.run(&p.inst);
        self.finish_solve(&p, &report, &req, arrival)
    }

    /// The direct, unbatched solve path (`batching: false`), kept
    /// behaviourally identical to the batched one: both share
    /// [`ServiceCore::prepare_solve`] and [`ServiceCore::finish_solve`],
    /// so energies agree bit-for-bit.
    fn solve(&self, req: &SolveReq) -> Json {
        let arrival = Instant::now();
        let workload = match req.workload.instantiate() {
            Ok(g) => g,
            Err(msg) => return error_response("bad_request", &msg),
        };
        let solvers = match self.solvers_for(req.solvers.as_deref()) {
            Ok(s) => s,
            Err(msg) => return error_response("bad_request", &msg),
        };
        let p = self.prepare_solve(workload, solvers, req, arrival);
        let report = p.portfolio.run(&p.inst);
        self.finish_solve(&p, &report, req, arrival)
    }

    /// Everything a solve needs before the portfolio runs: the
    /// cache-seeded instance and a configured portfolio whose wall-clock
    /// budget is **anchored at request arrival** — a job that waited in
    /// the queue has its wait charged against its own deadline.
    fn prepare_solve(
        &self,
        workload: spg::Spg,
        solvers: Vec<Arc<dyn crate::solver::Solver>>,
        req: &SolveReq,
        arrival: Instant,
    ) -> PreparedSolve {
        let (inst, keys, hits, route_patched) = self.seeded_instance(workload, req);
        // A bounded skeleton built at exactly this period can stand in
        // when no complete skeleton is cached (the complete build may
        // overflow the edge cap for this workload entirely).
        let bounded_hit = !hits[1] && self.seed_bounded(&inst, &keys, inst.period());
        let mut portfolio = Portfolio::new(solvers)
            .seeded(req.seed.unwrap_or(self.cfg.default_seed))
            .anytime(req.anytime);
        if let Some(ms) = req.deadline_ms.or(self.cfg.default_deadline_ms) {
            if let Some(deadline_at) = arrival.checked_add(Duration::from_millis(ms)) {
                portfolio =
                    portfolio.with_budget(deadline_at.saturating_duration_since(Instant::now()));
            }
        }
        PreparedSolve {
            inst,
            keys,
            hits,
            route_patched,
            bounded_hit,
            portfolio,
        }
    }

    /// The tail of a solve: harvest and spill fresh artifacts, record the
    /// arrival-to-response latency, build the response frame.
    fn finish_solve(
        &self,
        p: &PreparedSolve,
        report: &PortfolioReport,
        req: &SolveReq,
        arrival: Instant,
    ) -> Json {
        let fresh = self.harvest(&p.inst, &p.keys, &p.hits);
        self.spill_fresh(&fresh);
        let skeleton_hit = p.hits[1] || p.bounded_hit;
        let route_hit = p.hits[2] || p.route_patched;
        let warm = p.hits[0] && skeleton_hit && route_hit;
        let elapsed_ns = arrival.elapsed().as_nanos() as u64;
        self.record_latency(warm, elapsed_ns);
        let inst = &p.inst;
        let hits = &p.hits;
        let route_patched = p.route_patched;

        let cache_tags = obj([
            ("lattice", Json::from(if hits[0] { "hit" } else { "miss" })),
            (
                "skeleton",
                Json::from(if skeleton_hit { "hit" } else { "miss" }),
            ),
            (
                "route",
                Json::from(if hits[2] {
                    "hit"
                } else if route_patched {
                    "patched"
                } else {
                    "miss"
                }),
            ),
        ]);
        match report.best_run() {
            Some(run) => {
                let sol = run.result.as_ref().expect("best_run is a success");
                let mut fields = vec![
                    ("workload", Json::from(req.workload.describe())),
                    ("energy", Json::from(sol.energy())),
                    ("solver", Json::from(run.name.clone())),
                    ("active_cores", Json::from(sol.eval.active_cores)),
                    ("max_cycle_time", Json::from(sol.eval.max_cycle_time)),
                    ("period", Json::from(inst.period())),
                    ("warm", Json::from(warm)),
                    ("cache", cache_tags),
                    ("wall_ms", Json::from(elapsed_ns as f64 / 1e6)),
                ];
                if let Some(p) = sol.prune {
                    self.record_prune(&p);
                    fields.push(("bound_gap", Json::from(p.bound_gap)));
                    fields.push((
                        "prune",
                        obj([
                            ("transitions_kept", Json::from(p.transitions_kept)),
                            ("transitions_pruned", Json::from(p.transitions_pruned)),
                            ("frontier_max", Json::from(u64::from(p.frontier_max))),
                        ]),
                    ));
                }
                let fields: Vec<(String, Json)> = fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect();
                ok_response(Json::Obj(fields.into_iter().collect()))
            }
            None => {
                // Every solver failed. Budget exhaustion dominates the
                // report (it is actionable backpressure — retry with a
                // longer deadline); otherwise the first failure speaks.
                let errs: Vec<&crate::common::Failure> = report
                    .runs
                    .iter()
                    .filter_map(|r| r.result.as_ref().err())
                    .collect();
                let failure = errs
                    .iter()
                    .find(|f| f.budget_exceeded().is_some())
                    .or_else(|| errs.first());
                match failure {
                    Some(f) => failure_response(f),
                    None => error_response("bad_request", "empty solver portfolio"),
                }
            }
        }
    }

    fn sweep(&self, req: &SweepReq) -> Json {
        let started = Instant::now();
        let workload = match req.workload.instantiate() {
            Ok(g) => g,
            Err(msg) => return error_response("bad_request", &msg),
        };
        let solvers = match self.solvers_for(req.solvers.as_deref()) {
            Ok(s) => s,
            Err(msg) => return error_response("bad_request", &msg),
        };
        // A sweep is a solve per grid value sharing one seeded instance
        // session (so the lattice/skeleton build — or cache hit — pays
        // once), with the deadline covering the *whole* sweep.
        let solve_shape = SolveReq {
            workload: req.workload.clone(),
            platform: req.platform.clone(),
            period: PeriodReq::Period(1.0),
            solvers: req.solvers.clone(),
            seed: req.seed,
            deadline_ms: req.deadline_ms,
            anytime: req.anytime,
        };
        let (base, keys, hits, route_patched) = self.seeded_instance(workload, &solve_shape);
        // Resolve the whole grid up front so the loosest period can (a)
        // prime the bounded-skeleton ceiling hint — one bounded build then
        // serves every tighter point — and (b) drive the warm-cache probe
        // for a bounded artifact from an identical earlier sweep.
        let periods: Vec<f64> = req
            .values
            .iter()
            .map(|&value| {
                if req.over_utilisation {
                    base.utilisation_period(value)
                } else {
                    value
                }
            })
            .collect();
        let mut bounded_hit = false;
        if let Some(loosest) = periods
            .iter()
            .copied()
            .max_by(f64::total_cmp)
            .filter(|t| t.is_finite() && *t > 0.0)
        {
            base.note_period_ceiling(loosest);
            bounded_hit = !hits[1] && self.seed_bounded(&base, &keys, loosest);
        }
        let deadline_at = req
            .deadline_ms
            .or(self.cfg.default_deadline_ms)
            .and_then(|ms| started.checked_add(Duration::from_millis(ms)));
        let seed = req.seed.unwrap_or(self.cfg.default_seed);
        let mut points = Vec::with_capacity(req.values.len());
        let mut exhausted: Option<crate::common::Failure> = None;
        for (&value, &period) in req.values.iter().zip(&periods) {
            let inst = base.with_period(period);
            let mut portfolio = Portfolio::new(solvers.clone())
                .seeded(seed)
                .anytime(req.anytime);
            if let Some(at) = deadline_at {
                let remaining = at.saturating_duration_since(Instant::now());
                portfolio = portfolio.with_budget(remaining);
            }
            let report = portfolio.run(&inst);
            if exhausted.is_none() {
                exhausted = report
                    .runs
                    .iter()
                    .filter_map(|r| r.result.as_ref().err())
                    .find(|f| f.budget_exceeded().is_some())
                    .cloned();
            }
            let (energy, solver, prune) = match report.best_run() {
                Some(run) => {
                    let sol = run.result.as_ref().expect("best_run is a success");
                    (
                        Json::from(sol.energy()),
                        Json::from(run.name.clone()),
                        sol.prune,
                    )
                }
                None => (Json::Null, Json::Null, None),
            };
            let mut fields = vec![
                ("value", Json::from(value)),
                ("period", Json::from(period)),
                ("energy", energy),
                ("solver", solver),
            ];
            if let Some(p) = prune {
                self.record_prune(&p);
                fields.push(("bound_gap", Json::from(p.bound_gap)));
                fields.push(("transitions_kept", Json::from(p.transitions_kept)));
                fields.push(("transitions_pruned", Json::from(p.transitions_pruned)));
                fields.push(("frontier_max", Json::from(u64::from(p.frontier_max))));
            }
            let fields: Vec<(String, Json)> = fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            points.push(Json::Obj(fields.into_iter().collect()));
        }
        let fresh = self.harvest(&base, &keys, &hits);
        self.spill_fresh(&fresh);
        let warm = hits[0] && (hits[1] || bounded_hit) && (hits[2] || route_patched);
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        self.record_latency(warm, elapsed_ns);
        // A sweep that lost points to the deadline still reports the grid
        // (with null energies) — but flags the exhaustion structurally.
        let mut fields = vec![
            (
                "axis",
                Json::from(if req.over_utilisation {
                    "utilisation"
                } else {
                    "period"
                }),
            ),
            ("workload", Json::from(req.workload.describe())),
            ("points", Json::from(points)),
            ("warm", Json::from(warm)),
            ("wall_ms", Json::from(elapsed_ns as f64 / 1e6)),
        ];
        if let Some(f) = &exhausted {
            let budget = f.budget_exceeded().expect("filtered on budget_exceeded");
            fields.push((
                "deadline_exceeded",
                obj([
                    ("phase", Json::from(budget.phase.name())),
                    ("cap", Json::from(budget.cap)),
                    ("count", Json::from(budget.count)),
                ]),
            ));
        }
        let fields: Vec<(String, Json)> = fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        ok_response(Json::Obj(fields.into_iter().collect()))
    }
}

/// A connected byte stream the daemon can serve: both socket families,
/// unified over read timeouts.
pub trait Conn: Read + Write + Send {
    /// Sets the read timeout (used to poll the shutdown flag while idle).
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
    /// Sets the write timeout (bounds how long a peer that stops reading
    /// can block a connection thread).
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, dur)
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, dur)
    }
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        UnixStream::set_write_timeout(self, dur)
    }
}

/// Writes one response frame. A response that overflows the frame cap
/// (e.g. a sweep over an enormous grid) is replaced by a structured
/// `too_large` error frame — `write_frame` rejects oversized bodies
/// *before* touching the stream, so framing stays intact and the
/// connection stays usable. Returns `false` when the connection is dead.
fn send_response<W: Write>(stream: &mut W, response: &Json) -> bool {
    match write_frame(stream, response) {
        Ok(()) => true,
        Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
            write_frame(stream, &error_response("too_large", &e.to_string())).is_ok()
        }
        Err(_) => false,
    }
}

/// Serves one connection until the peer closes, a protocol error occurs,
/// or shutdown is requested (public so integration tests can drive a
/// service over an in-process socket pair).
///
/// The read timeout only separates *frames*: between frames it is the
/// shutdown-poll tick, but once a frame has started, timeouts keep the
/// partially-read frame intact (via [`FrameReader`]) and reading resumes —
/// bounded by a 30 s stall limit so a dead peer cannot pin the thread.
pub fn serve_connection<S: Conn>(service: &Service, stream: &mut S) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut reader = FrameReader::new();
    // First stall of the frame currently in progress, if any.
    let mut stalled_since: Option<Instant> = None;
    loop {
        match reader.poll(stream) {
            Ok(Some(frame)) => {
                stalled_since = None;
                let response = service.handle(&frame);
                if !send_response(stream, &response) {
                    return;
                }
            }
            Ok(None) => return,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if reader.mid_frame() {
                    let since = *stalled_since.get_or_insert_with(Instant::now);
                    let limit = if service.shutdown_requested() {
                        SHUTDOWN_STALL_LIMIT
                    } else {
                        FRAME_STALL_LIMIT
                    };
                    if since.elapsed() >= limit {
                        let _ = write_frame(
                            stream,
                            &error_response("bad_request", "frame stalled past the read deadline"),
                        );
                        return;
                    }
                } else {
                    stalled_since = None;
                    if service.shutdown_requested() {
                        return;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Framing is lost; report and hang up.
                let _ = write_frame(stream, &error_response("bad_request", &e.to_string()));
                return;
            }
            Err(_) => return,
        }
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

/// The daemon: a listener plus a shared [`Service`].
pub struct Server {
    listener: ListenerKind,
    service: Arc<Service>,
}

impl Server {
    /// Binds a TCP listener (e.g. `"127.0.0.1:0"` for an ephemeral test
    /// port).
    pub fn bind_tcp(addr: &str, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener: ListenerKind::Tcp(listener),
            service: Arc::new(Service::new(cfg)),
        })
    }

    /// Binds a Unix socket, replacing a *stale* socket file at `path`. A
    /// pre-existing socket is probed first: if a peer accepts the
    /// connection, a live daemon owns the endpoint and binding refuses
    /// with [`io::ErrorKind::AddrInUse`] rather than silently stealing
    /// it; only a socket nobody answers on (a crashed daemon's leftover)
    /// is unlinked. A non-socket file at `path` is never touched. The
    /// socket file is removed again when [`Server::run`] returns.
    #[cfg(unix)]
    pub fn bind_unix(path: &Path, cfg: ServeConfig) -> io::Result<Server> {
        match std::fs::metadata(path) {
            Ok(meta) => {
                use std::os::unix::fs::FileTypeExt;
                if !meta.file_type().is_socket() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        format!("{} exists and is not a socket", path.display()),
                    ));
                }
                if UnixStream::connect(path).is_ok() {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("{} is in use by a live daemon", path.display()),
                    ));
                }
                std::fs::remove_file(path)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let listener = UnixListener::bind(path)?;
        Ok(Server {
            listener: ListenerKind::Unix(listener, path.to_path_buf()),
            service: Arc::new(Service::new(cfg)),
        })
    }

    /// The bound TCP address (`None` for Unix listeners).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            ListenerKind::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            ListenerKind::Unix(..) => None,
        }
    }

    /// A handle to the shared service (tests use it to inspect cache
    /// stats and request shutdown in-process).
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// Runs the accept loop until shutdown, then joins every connection
    /// thread (draining in-flight requests) before returning.
    pub fn run(self) -> io::Result<()> {
        match &self.listener {
            ListenerKind::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            ListenerKind::Unix(l, _) => l.set_nonblocking(true)?,
        }
        let service = &self.service;
        let result = std::thread::scope(|scope| -> io::Result<()> {
            loop {
                if service.shutdown_requested() {
                    return Ok(());
                }
                let accepted = match &self.listener {
                    ListenerKind::Tcp(l) => match l.accept() {
                        Ok((s, _)) => {
                            let _ = s.set_nonblocking(false);
                            // Frames are written whole; Nagle only adds
                            // latency between a response and the client's
                            // next request.
                            let _ = s.set_nodelay(true);
                            scope.spawn(move || {
                                let mut s = s;
                                serve_connection(service, &mut s);
                            });
                            Ok(())
                        }
                        Err(e) => Err(e),
                    },
                    #[cfg(unix)]
                    ListenerKind::Unix(l, _) => match l.accept() {
                        Ok((s, _)) => {
                            let _ = s.set_nonblocking(false);
                            scope.spawn(move || {
                                let mut s = s;
                                serve_connection(service, &mut s);
                            });
                            Ok(())
                        }
                        Err(e) => Err(e),
                    },
                };
                if let Err(e) = accepted {
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::Interrupted
                    {
                        std::thread::sleep(POLL_INTERVAL / 10);
                    } else {
                        return Err(e);
                    }
                }
            }
        });
        #[cfg(unix)]
        if let ListenerKind::Unix(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A low-elevation workload so `DPA1D` materialises its lattice and
    /// skeleton within the default caps (high-elevation StreamIt flows
    /// overflow the ideal cap and legitimately cache nothing).
    fn solve_frame(seed: u64) -> Json {
        Json::parse(&format!(
            r#"{{"op":"solve","workload":{{"family":"deep-chain","n":12,"seed":1}},
                 "platform":{{"p":2,"q":2}},"utilisation":0.5,
                 "solvers":"greedy,dpa1d","seed":{seed}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn warm_solve_is_bit_identical_and_counted() {
        let svc = Service::new(ServeConfig::default());
        let cold = svc.handle(&solve_frame(7));
        assert_eq!(cold.get("ok").and_then(Json::as_bool), Some(true));
        let cold_r = cold.get("result").unwrap();
        assert_eq!(cold_r.get("warm").and_then(Json::as_bool), Some(false));

        let warm = svc.handle(&solve_frame(7));
        let warm_r = warm.get("result").unwrap();
        assert_eq!(
            warm_r.get("warm").and_then(Json::as_bool),
            Some(true),
            "warm response: {warm}"
        );
        assert_eq!(
            warm_r.get("energy").and_then(Json::as_f64),
            cold_r.get("energy").and_then(Json::as_f64),
            "warm energy must be bit-identical to cold"
        );
        let stats = svc.cache_stats();
        assert_eq!(stats.entries, 3, "lattice + skeleton + route cached");
        assert_eq!(stats.hits, 3);
        // Cold probes four keys (the complete-skeleton miss triggers a
        // bounded-skeleton probe); warm hits the three live entries.
        assert_eq!(stats.misses, 4);
    }

    /// The same workload/platform/solvers as [`solve_frame`], with faults.
    fn faulted_frame(faults: &str) -> Json {
        Json::parse(&format!(
            r#"{{"op":"solve","workload":{{"family":"deep-chain","n":12,"seed":1}},
                 "platform":{{"p":2,"q":2,"faults":{faults}}},"utilisation":0.5,
                 "solvers":"greedy,dpa1d","seed":7}}"#
        ))
        .unwrap()
    }

    fn result_of(resp: &Json) -> &Json {
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        resp.get("result").unwrap()
    }

    #[test]
    fn warm_daemon_stays_warm_across_faults() {
        let svc = Service::new(ServeConfig::default());
        let _ = result_of(&svc.handle(&solve_frame(7)));

        // Core fault: every artifact is fault-invariant, so the solve is
        // fully warm — and bit-identical to a cold solve of the same
        // faulted request on a fresh daemon.
        let core = result_of(&svc.handle(&faulted_frame(r#"{"cores":[[1,1]]}"#))).clone();
        assert_eq!(core.get("warm").and_then(Json::as_bool), Some(true));
        let tags = core.get("cache").unwrap();
        assert_eq!(tags.get("skeleton").and_then(Json::as_str), Some("hit"));
        assert_eq!(tags.get("route").and_then(Json::as_str), Some("hit"));
        let fresh = Service::new(ServeConfig::default());
        let cold = result_of(&fresh.handle(&faulted_frame(r#"{"cores":[[1,1]]}"#))).clone();
        assert_eq!(cold.get("warm").and_then(Json::as_bool), Some(false));
        assert_eq!(
            core.get("energy").and_then(Json::as_f64),
            cold.get("energy").and_then(Json::as_f64),
            "warm faulted solve must be bit-identical to cold faulted solve"
        );

        // Link fault: the route table is *patched* from the cached healthy
        // sibling rather than rebuilt; the solve still counts as warm.
        let link = result_of(&svc.handle(&faulted_frame(r#"{"links":[[0,0,0,1]]}"#))).clone();
        assert_eq!(link.get("warm").and_then(Json::as_bool), Some(true));
        assert_eq!(
            link.get("cache")
                .unwrap()
                .get("route")
                .and_then(Json::as_str),
            Some("patched")
        );
        // The patched table was harvested under its own key: an identical
        // follow-up hits it directly, at the same energy.
        let again = result_of(&svc.handle(&faulted_frame(r#"{"links":[[0,0,0,1]]}"#))).clone();
        assert_eq!(
            again
                .get("cache")
                .unwrap()
                .get("route")
                .and_then(Json::as_str),
            Some("hit")
        );
        assert_eq!(
            again.get("energy").and_then(Json::as_f64),
            link.get("energy").and_then(Json::as_f64)
        );
        let fresh = Service::new(ServeConfig::default());
        let cold = result_of(&fresh.handle(&faulted_frame(r#"{"links":[[0,0,0,1]]}"#))).clone();
        assert_eq!(
            link.get("energy").and_then(Json::as_f64),
            cold.get("energy").and_then(Json::as_f64),
            "patched-route solve must be bit-identical to cold faulted solve"
        );
    }

    #[test]
    fn fault_requests_are_validated_not_panicked() {
        let svc = Service::new(ServeConfig::default());
        for faults in [
            r#"{"cores":[[9,9]]}"#,
            r#"{"cores":[[0]]}"#,
            r#"{"links":[[0,0,1,1]]}"#,
            r#"{"links":[[0,0,0,1,0]]}"#,
            r#"{"cores":[[0,0],[0,1],[1,0],[1,1]]}"#,
        ] {
            let resp = svc.handle(&faulted_frame(faults));
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(false),
                "{faults} must be rejected"
            );
            assert_eq!(
                resp.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str),
                Some("bad_request"),
                "{faults}"
            );
        }
    }

    #[test]
    fn anytime_converts_backpressure_into_a_certified_mapping() {
        let svc = Service::new(ServeConfig::default());
        let frame = Json::parse(
            r#"{"op":"solve","workload":{"family":"deep-chain","n":12,"seed":1},
                "platform":{"p":2,"q":2},"utilisation":0.5,
                "deadline_ms":0,"anytime":true}"#,
        )
        .unwrap();
        let resp = svc.handle(&frame);
        let r = result_of(&resp);
        assert_eq!(
            r.get("solver").and_then(Json::as_str),
            Some("Anytime(Greedy)")
        );
        let gap = r.get("bound_gap").and_then(Json::as_f64).unwrap();
        assert!(gap.is_finite() && gap >= 0.0);
        let energy = r.get("energy").and_then(Json::as_f64).unwrap();
        assert!(energy > gap, "the certified lower bound must be positive");
    }

    #[test]
    fn deadline_zero_is_structured_backpressure() {
        let svc = Service::new(ServeConfig::default());
        let frame = Json::parse(
            r#"{"op":"solve","workload":{"streamit":"DCT"},"utilisation":0.5,"deadline_ms":0}"#,
        )
        .unwrap();
        let resp = svc.handle(&frame);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        let err = resp.get("error").unwrap();
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("too_expensive")
        );
        assert_eq!(err.get("phase").and_then(Json::as_str), Some("deadline"));
    }

    #[test]
    fn sweep_shares_the_session_and_reports_points() {
        let svc = Service::new(ServeConfig::default());
        let frame = Json::parse(
            r#"{"op":"sweep","workload":{"family":"deep-chain","n":12,"seed":1},
                "platform":{"p":2,"q":2},
                "axis":"utilisation","values":[0.3,0.5],"solvers":"greedy,dpa1d"}"#,
        )
        .unwrap();
        let resp = svc.handle(&frame);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        let points = resp
            .get("result")
            .and_then(|r| r.get("points"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(points.len(), 2);
        for p in points {
            assert!(p.get("energy").and_then(Json::as_f64).is_some());
        }
        // The sweep harvested its artifacts: a follow-up solve is warm.
        let warm = svc.handle(&solve_frame(1));
        assert_eq!(
            warm.get("result")
                .and_then(|r| r.get("warm"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn bad_requests_are_reported_not_panicked() {
        let svc = Service::new(ServeConfig::default());
        for text in [
            r#"{"op":"solve"}"#,
            r#"{"op":"solve","workload":{"streamit":"NotAFlow"},"period":1}"#,
            r#"{"op":"solve","workload":{"streamit":"FFT"},"period":1,"solvers":"bogus"}"#,
            r#"{}"#,
        ] {
            let resp = svc.handle(&Json::parse(text).unwrap());
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(false),
                "{text}"
            );
            assert_eq!(
                resp.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str),
                Some("bad_request"),
                "{text}"
            );
        }
        assert!(svc.stats_json().get("bad_requests").unwrap().as_f64() >= Some(4.0));
    }

    #[test]
    fn oversized_responses_become_structured_too_large_errors() {
        use super::super::protocol::{read_frame, MAX_FRAME_BYTES};
        let huge = ok_response(Json::from("x".repeat(MAX_FRAME_BYTES + 1)));
        let mut wire = Vec::new();
        assert!(
            send_response(&mut wire, &huge),
            "the connection must survive an oversized response"
        );
        let frame = read_frame(&mut std::io::Cursor::new(wire))
            .unwrap()
            .unwrap();
        assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            frame
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("too_large")
        );
    }

    #[test]
    fn batched_identical_requests_are_coalesced_single_flight() {
        // Drive run_batch_jobs directly (batching off, so no scheduler
        // thread competes) for a deterministic grouping assertion.
        let svc = Service::new(ServeConfig {
            batching: false,
            ..ServeConfig::default()
        });
        let frame = solve_frame(7);
        let Ok(Request::Solve(req)) = parse_request(&frame) else {
            panic!("fixture must parse as a solve");
        };
        let make_job = |req: &SolveReq| {
            let workload = req.workload.instantiate().unwrap();
            let solvers = svc.solvers_for(req.solvers.as_deref()).unwrap();
            let dedup = svc.request_fingerprint(&workload, req, &solvers);
            let (tx, rx) = mpsc::channel();
            (
                SolveJob {
                    req: req.clone(),
                    workload,
                    solvers,
                    dedup,
                    est_ns: 0,
                    deadline_ns: None,
                    arrival: Instant::now(),
                    tx,
                },
                rx,
            )
        };
        let (j1, rx1) = make_job(&req);
        let (j2, rx2) = make_job(&req);
        let mut distinct = req.clone();
        distinct.seed = Some(99);
        let (j3, rx3) = make_job(&distinct);
        svc.run_batch_jobs(vec![j1, j2, j3]);
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let c = rx3.recv().unwrap();
        assert_eq!(
            a.to_string(),
            b.to_string(),
            "coalesced waiters get byte-identical frames"
        );
        assert_eq!(c.get("ok").and_then(Json::as_bool), Some(true), "{c}");
        let s = svc.scheduler_stats();
        assert_eq!(
            (s.batches, s.batched_requests, s.deduped),
            (1, 3, 1),
            "two identical + one distinct job: one batch, one coalesce"
        );
        // Single-flight means the deduped job never touched the cache:
        // two cold probe sequences (both groups prepare before either
        // harvests), not three.
        assert_eq!(
            svc.cache_stats().misses,
            4 + 4,
            "two prepared groups, no third probe"
        );
    }

    #[test]
    fn zero_capacity_queue_sheds_with_structured_overloaded() {
        let svc = Service::new(ServeConfig {
            queue_cap: 0,
            ..ServeConfig::default()
        });
        let resp = svc.handle(&solve_frame(7));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        let err = resp.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(Json::as_str), Some("overloaded"));
        assert!(
            err.get("retry_after_ms").and_then(Json::as_f64).unwrap() >= 1.0,
            "shed frames carry a retry hint: {resp}"
        );
        assert_eq!(err.get("queue_depth").and_then(Json::as_f64), Some(0.0));
        assert_eq!(svc.scheduler_stats().shed, 1);
        // A shed is backpressure, not a client error.
        assert_eq!(
            svc.stats_json().get("bad_requests").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn solves_after_shutdown_drain_run_inline() {
        let svc = Service::new(ServeConfig::default());
        let _ = svc.handle(&Json::parse(r#"{"op":"shutdown"}"#).unwrap());
        // Whether the job beats the drain (queued, worker solves it) or
        // loses the race (bounced back, solved inline), it must succeed.
        let resp = svc.handle(&solve_frame(7));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    }

    #[test]
    fn cache_dir_restart_serves_first_request_warm() {
        let dir = std::env::temp_dir().join(format!("xp-serve-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || ServeConfig {
            cache_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let spill_field = |svc: &Service, field: &str| {
            svc.stats_json()
                .get("spill")
                .and_then(|s| s.get(field))
                .and_then(Json::as_f64)
        };
        let cold_energy = {
            let svc = Service::new(cfg());
            assert_eq!(spill_field(&svc, "loaded"), Some(0.0));
            let cold = svc.handle(&solve_frame(7));
            let r = cold.get("result").unwrap();
            assert_eq!(r.get("warm").and_then(Json::as_bool), Some(false));
            assert_eq!(
                spill_field(&svc, "spilled"),
                Some(3.0),
                "lattice + skeleton + route spilled write-behind"
            );
            assert_eq!(spill_field(&svc, "errors"), Some(0.0));
            r.get("energy").and_then(Json::as_f64).unwrap()
        };
        // "Restart": a fresh service over the same directory.
        let svc = Service::new(cfg());
        assert_eq!(spill_field(&svc, "loaded"), Some(3.0));
        assert_eq!(spill_field(&svc, "skipped"), Some(0.0));
        let warm = svc.handle(&solve_frame(7));
        let r = warm.get("result").unwrap();
        assert_eq!(
            r.get("warm").and_then(Json::as_bool),
            Some(true),
            "a restarted daemon must serve its first request warm: {warm}"
        );
        assert_eq!(
            r.get("energy").and_then(Json::as_f64),
            Some(cold_energy),
            "reloaded artifacts must reproduce bit-identical energies"
        );
        let stats = svc.cache_stats();
        assert_eq!(
            stats.misses, 0,
            "zero lattice/skeleton/route misses after a warm restart"
        );
        assert_eq!(stats.hits, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_and_shutdown_flow() {
        let svc = Service::new(ServeConfig::default());
        let _ = svc.handle(&solve_frame(1));
        let stats = svc.handle(&Json::parse(r#"{"op":"stats"}"#).unwrap());
        let r = stats.get("result").unwrap();
        assert_eq!(
            r.get("cache")
                .and_then(|c| c.get("entries"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(
            r.get("cold")
                .and_then(|c| c.get("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert!(!svc.shutdown_requested());
        let bye = svc.handle(&Json::parse(r#"{"op":"shutdown"}"#).unwrap());
        assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
        assert!(svc.shutdown_requested());
    }
}
