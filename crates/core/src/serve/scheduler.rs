//! The batched solve queue and admission controller.
//!
//! Per-connection threads used to dispatch straight into
//! [`crate::Portfolio::run`], so eight concurrent clients meant eight
//! overlapping rayon fan-outs fighting for the same worker pool. The
//! `SolveQueue` inverts that: connection threads *enqueue* decoded solve
//! jobs and block on a response channel, while one scheduler thread drains
//! the queue in batches, coalesces identical requests (single-flight:
//! solve once, fan the frame to every waiter), and runs the distinct ones
//! through [`crate::Portfolio::run_batch`] — one rayon wave that keeps the
//! pool saturated instead of oversubscribed.
//!
//! **Admission control** happens at enqueue time, not at timeout time. A
//! job arrives with a service-time estimate (the warm or cold median from
//! the daemon's latency histograms, picked by probing whether all of its
//! cache keys are resident); when the queued-plus-inflight estimate
//! already exceeds the request's own deadline, or the queue is at
//! capacity, the job is **shed** with a structured `overloaded` frame
//! carrying `retry_after_ms` — the client learns immediately instead of
//! burning its deadline in line.
//!
//! The queue itself is transport-free and deterministic: everything
//! time-dependent (estimates, deadlines) is computed by the caller and
//! carried on the job, so unit tests drive admission decisions exactly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::solver::Solver;

use super::protocol::SolveReq;

/// How long an under-full drain lingers for peer requests to join the
/// batch. Concurrent clients replaying the same workload land their
/// requests within microseconds of each other; without the window the
/// scheduler grabs the first arrival solo, solves it, and the peers form
/// a second (redundant) flight. Two milliseconds is far above loopback
/// jitter and far below any solve worth batching — a lone request pays at
/// most this once, and shutdown bypasses it.
pub(crate) const COALESCE_WINDOW: Duration = Duration::from_millis(2);

/// One decoded, validated solve waiting for the scheduler thread.
///
/// The connection thread has already instantiated the workload, resolved
/// the solver list, fingerprinted the request, and estimated its service
/// time — the scheduler only groups, runs, and responds.
pub(crate) struct SolveJob {
    /// The decoded request (seed/deadline fields still unresolved —
    /// resolution against config defaults happens in the solve path, and
    /// the dedup fingerprint already covers the resolved values).
    pub req: SolveReq,
    /// The instantiated workload graph.
    pub workload: spg::Spg,
    /// The resolved solver set.
    pub solvers: Vec<std::sync::Arc<dyn Solver>>,
    /// Full request-identity fingerprint: jobs with equal `dedup` are
    /// guaranteed to produce identical response frames, so the scheduler
    /// solves one and fans the frame out.
    pub dedup: u64,
    /// Estimated service time in nanoseconds (0 = no history yet).
    pub est_ns: u64,
    /// The request's resolved deadline in nanoseconds, if any — the
    /// admission bound.
    pub deadline_ns: Option<u64>,
    /// When the request frame arrived (latency and budget anchor).
    pub arrival: Instant,
    /// Where the response frame goes.
    pub tx: Sender<Json>,
}

/// Admission verdict for one job.
pub(crate) enum Admission {
    /// Queued; the caller blocks on its receiver.
    Queued,
    /// Shed at the door: predicted queue wait would blow the deadline, or
    /// the queue is full. The caller answers with an `overloaded` frame.
    Shed {
        /// The queued-plus-inflight service-time estimate at decision
        /// time (the `retry_after_ms` basis).
        predicted_wait_ns: u64,
        /// Queue depth at decision time.
        queue_depth: u64,
    },
    /// The scheduler has drained and exited (shutdown): the caller runs
    /// the job inline so no request is ever lost to the race.
    Draining(Box<SolveJob>),
}

/// Counter snapshot for the `stats` op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Batches the scheduler thread has executed.
    pub batches: u64,
    /// Solve jobs that went through the batched path (including
    /// coalesced ones).
    pub batched_requests: u64,
    /// Jobs answered from another identical job's solve (single-flight).
    pub deduped: u64,
    /// Jobs shed by admission control.
    pub shed: u64,
}

/// The bounded MPSC solve queue: connection threads push, the scheduler
/// thread drains.
pub(crate) struct SolveQueue {
    cap: usize,
    queue: Mutex<VecDeque<SolveJob>>,
    available: Condvar,
    /// Set once the scheduler thread has drained and exited; admits after
    /// this point bounce back to the caller as [`Admission::Draining`].
    closed: AtomicBool,
    /// Set by shutdown to tell the scheduler thread to drain and exit.
    closing: AtomicBool,
    /// Sum of `est_ns` over queued jobs.
    queued_est_ns: AtomicU64,
    /// Sum of `est_ns` over the batch currently executing.
    inflight_est_ns: AtomicU64,
    batches: AtomicU64,
    batched: AtomicU64,
    deduped: AtomicU64,
    shed: AtomicU64,
}

impl SolveQueue {
    /// An open queue holding at most `cap` waiting jobs.
    pub fn new(cap: usize) -> Self {
        SolveQueue {
            cap,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            closed: AtomicBool::new(false),
            closing: AtomicBool::new(false),
            queued_est_ns: AtomicU64::new(0),
            inflight_est_ns: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Applies admission control and enqueues on success. The predicted
    /// wait is the sum of service-time estimates ahead of this job
    /// (queued plus the batch in flight); a job whose own deadline is
    /// tighter than that wait is shed *now*, before it burns its budget
    /// in line.
    pub fn admit(&self, job: SolveJob) -> Admission {
        let mut q = self.queue.lock().unwrap();
        if self.closed.load(Ordering::SeqCst) {
            return Admission::Draining(Box::new(job));
        }
        let predicted_wait_ns = self
            .queued_est_ns
            .load(Ordering::Relaxed)
            .saturating_add(self.inflight_est_ns.load(Ordering::Relaxed));
        let over_deadline = job
            .deadline_ns
            .is_some_and(|deadline| predicted_wait_ns > deadline);
        if q.len() >= self.cap || over_deadline {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed {
                predicted_wait_ns,
                queue_depth: q.len() as u64,
            };
        }
        self.queued_est_ns.fetch_add(job.est_ns, Ordering::Relaxed);
        q.push_back(job);
        self.available.notify_one();
        Admission::Queued
    }

    /// Blocks until at least one job is queued (or shutdown), then drains
    /// up to `max` jobs. Returns `None` once the queue is empty *and*
    /// closing — after which the queue is marked closed and every
    /// subsequent [`SolveQueue::admit`] bounces.
    ///
    /// A drain that would come in under `max` first **lingers** for
    /// [`COALESCE_WINDOW`]: concurrent clients issue their identical
    /// requests within microseconds of each other, but an eager drain
    /// would grab the first arrival solo and solve it before its peers
    /// hit the queue, fragmenting the single-flight groups. The window is
    /// bounded (one fixed deadline per batch, never re-armed by later
    /// arrivals) so a lone request pays at most the window in extra
    /// latency, and shutdown skips it entirely.
    pub fn next_batch(&self, max: usize) -> Option<Vec<SolveJob>> {
        let mut q = self.queue.lock().unwrap();
        let mut linger_until: Option<Instant> = None;
        loop {
            if !q.is_empty() {
                if q.len() < max.max(1) && !self.closing.load(Ordering::SeqCst) {
                    let until =
                        *linger_until.get_or_insert_with(|| Instant::now() + COALESCE_WINDOW);
                    let now = Instant::now();
                    if now < until {
                        q = self.available.wait_timeout(q, until - now).unwrap().0;
                        continue;
                    }
                }
                let n = q.len().min(max.max(1));
                let jobs: Vec<SolveJob> = q.drain(..n).collect();
                let est: u64 = jobs.iter().map(|j| j.est_ns).sum();
                self.queued_est_ns.fetch_sub(est, Ordering::Relaxed);
                self.inflight_est_ns.store(est, Ordering::Relaxed);
                return Some(jobs);
            }
            if self.closing.load(Ordering::SeqCst) {
                // Closed is flipped under the queue lock, so an admit
                // either saw it set (and solves inline) or enqueued
                // before we drained — never neither.
                self.closed.store(true, Ordering::SeqCst);
                return None;
            }
            // The timeout is a safety net against a lost notification;
            // shutdown explicitly notifies.
            q = self
                .available
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap()
                .0;
        }
    }

    /// Marks the executing batch finished (clears the inflight estimate)
    /// and records its size and how many jobs were answered by
    /// coalescing.
    pub fn batch_done(&self, batched: u64, deduped: u64) {
        self.inflight_est_ns.store(0, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched.fetch_add(batched, Ordering::Relaxed);
        self.deduped.fetch_add(deduped, Ordering::Relaxed);
    }

    /// Tells the scheduler thread to drain and exit (idempotent).
    pub fn close(&self) {
        self.closing.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            queue_depth: self.queue.lock().unwrap().len() as u64,
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::protocol::{parse_request, Request};

    fn job(est_ns: u64, deadline_ns: Option<u64>) -> (SolveJob, std::sync::mpsc::Receiver<Json>) {
        let frame = Json::parse(
            r#"{"op":"solve","workload":{"family":"deep-chain","n":4,"seed":1},
                "platform":{"p":2,"q":2},"utilisation":0.5,"solvers":"greedy"}"#,
        )
        .unwrap();
        let Ok(Request::Solve(req)) = parse_request(&frame) else {
            panic!("fixture frame must parse as a solve");
        };
        let workload = req.workload.instantiate().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        (
            SolveJob {
                req,
                workload,
                solvers: crate::solvers::default_heuristics(),
                dedup: 0,
                est_ns,
                deadline_ns,
                arrival: Instant::now(),
                tx,
            },
            rx,
        )
    }

    #[test]
    fn admission_sheds_on_capacity_and_deadline() {
        let q = SolveQueue::new(1);
        // Empty queue, no history: everything admits, even deadline 0.
        let (j, _rx) = job(0, Some(0));
        assert!(matches!(q.admit(j), Admission::Queued));
        // Queue at capacity: shed regardless of deadline.
        let (j, _rx2) = job(0, None);
        let Admission::Shed { queue_depth, .. } = q.admit(j) else {
            panic!("full queue must shed");
        };
        assert_eq!(queue_depth, 1);

        // Predicted wait beyond the deadline: shed with the estimate.
        let roomy = SolveQueue::new(16);
        let (j, _rx3) = job(5_000_000, None); // 5 ms queued ahead
        assert!(matches!(roomy.admit(j), Admission::Queued));
        let (j, _rx4) = job(0, Some(1_000_000)); // 1 ms deadline
        let Admission::Shed {
            predicted_wait_ns, ..
        } = roomy.admit(j)
        else {
            panic!("deadline tighter than the queue must shed");
        };
        assert_eq!(predicted_wait_ns, 5_000_000);
        // An unbounded request still admits behind the same queue.
        let (j, _rx5) = job(0, None);
        assert!(matches!(roomy.admit(j), Admission::Queued));
        assert_eq!(roomy.stats().shed, 1);
        assert_eq!(roomy.stats().queue_depth, 2);
    }

    #[test]
    fn next_batch_drains_in_arrival_order_and_clears_estimates() {
        let q = SolveQueue::new(16);
        let mut rxs = Vec::new();
        for est in [1_000u64, 2_000, 3_000] {
            let (j, rx) = job(est, None);
            assert!(matches!(q.admit(j), Admission::Queued));
            rxs.push(rx);
        }
        let batch = q.next_batch(2).unwrap();
        assert_eq!(batch.len(), 2, "batch respects the drain cap");
        assert_eq!(batch[0].est_ns, 1_000, "FIFO order");
        assert_eq!(batch[1].est_ns, 2_000);
        q.batch_done(2, 1);
        let rest = q.next_batch(8).unwrap();
        assert_eq!(rest.len(), 1);
        q.batch_done(1, 0);
        let s = q.stats();
        assert_eq!((s.batches, s.batched_requests, s.deduped), (2, 3, 1));
        assert_eq!(s.queue_depth, 0);
        assert_eq!(q.queued_est_ns.load(Ordering::Relaxed), 0);
        assert_eq!(q.inflight_est_ns.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn close_bounces_later_admits_to_the_caller() {
        let q = SolveQueue::new(16);
        let (j, _rx) = job(0, None);
        assert!(matches!(q.admit(j), Admission::Queued));
        q.close();
        // Already-queued work still drains after close.
        assert_eq!(q.next_batch(8).unwrap().len(), 1);
        q.batch_done(1, 0);
        // The queue is now empty and closing: the drain loop ends.
        assert!(q.next_batch(8).is_none());
        // Post-drain admits bounce back for inline execution.
        let (j, _rx2) = job(0, None);
        assert!(matches!(q.admit(j), Admission::Draining(_)));
    }
}
